// Failure injection: truncated and corrupted on-disk artifacts must be
// rejected with exceptions, never silently mis-parsed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "io/io.h"
#include "layout/squish.h"
#include "nn/checkpoint.h"
#include "nn/modules.h"

namespace dio = diffpattern::io;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;
namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void write_all(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string make_library_file() {
  dl::Layout l;
  l.width = 100;
  l.height = 100;
  l.rects.push_back(dg::Rect{10, 10, 60, 40});
  const auto path = temp_path("dp_fi_library.bin");
  dio::save_pattern_library(path, {dl::extract_squish(l),
                                   dl::extract_squish(l)});
  return path;
}

std::string make_checkpoint_file(nn::ParamRegistry& registry) {
  dc::Rng rng(3);
  const auto path = temp_path("dp_fi_ckpt.bin");
  nn::save_checkpoint(registry, path);
  return path;
}

}  // namespace

class LibraryTruncation : public ::testing::TestWithParam<double> {};

TEST_P(LibraryTruncation, TruncatedFileThrows) {
  const auto path = make_library_file();
  const auto bytes = read_all(path);
  ASSERT_GT(bytes.size(), 16U);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * GetParam());
  const auto trunc_path = temp_path("dp_fi_library_trunc.bin");
  write_all(trunc_path,
            std::vector<char>(bytes.begin(),
                              bytes.begin() + static_cast<std::ptrdiff_t>(
                                                  std::max<std::size_t>(cut, 1))));
  EXPECT_THROW(dio::load_pattern_library(trunc_path), std::exception);
  std::remove(path.c_str());
  std::remove(trunc_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, LibraryTruncation,
                         ::testing::Values(0.05, 0.2, 0.5, 0.75, 0.95, 0.999));

TEST(LibraryCorruption, FlippedMagicRejected) {
  const auto path = make_library_file();
  auto bytes = read_all(path);
  bytes[0] ^= 0x40;
  write_all(path, bytes);
  EXPECT_THROW(dio::load_pattern_library(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(LibraryCorruption, AbsurdCountRejected) {
  const auto path = make_library_file();
  auto bytes = read_all(path);
  // Pattern count lives right after the 8-byte magic; blow it up.
  for (int i = 8; i < 16; ++i) {
    bytes[static_cast<std::size_t>(i)] = static_cast<char>(0xFF);
  }
  write_all(path, bytes);
  EXPECT_THROW(dio::load_pattern_library(path), std::exception);
  std::remove(path.c_str());
}

class CheckpointTruncation : public ::testing::TestWithParam<double> {};

TEST_P(CheckpointTruncation, TruncatedFileThrows) {
  dc::Rng rng(9);
  nn::ParamRegistry reg;
  nn::Linear lin(reg, rng, "lin", 8, 8);
  const auto path = make_checkpoint_file(reg);
  const auto bytes = read_all(path);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * GetParam());
  write_all(path, std::vector<char>(
                      bytes.begin(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(
                                          std::max<std::size_t>(cut, 1))));
  nn::ParamRegistry fresh;
  dc::Rng rng2(10);
  nn::Linear lin2(fresh, rng2, "lin", 8, 8);
  EXPECT_THROW(nn::load_checkpoint(fresh, path), std::exception);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, CheckpointTruncation,
                         ::testing::Values(0.1, 0.4, 0.7, 0.9));

TEST(CheckpointCorruption, ValuesSurviveIntactOtherwise) {
  // Control: an untouched file loads exactly.
  dc::Rng rng(11);
  nn::ParamRegistry reg;
  nn::Linear lin(reg, rng, "lin", 4, 4);
  const auto path = make_checkpoint_file(reg);
  nn::ParamRegistry fresh;
  dc::Rng rng2(12);
  nn::Linear lin2(fresh, rng2, "lin", 4, 4);
  nn::load_checkpoint(fresh, path);
  for (std::size_t i = 0; i < reg.size(); ++i) {
    for (std::int64_t j = 0; j < reg.params()[i].numel(); ++j) {
      EXPECT_FLOAT_EQ(fresh.params()[i].value()[j],
                      reg.params()[i].value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(PatternValidation, LoadedLibraryEntriesAreValidated) {
  // A library whose delta bytes are zeroed must fail SquishPattern
  // validation on load (positive-delta invariant).
  const auto path = make_library_file();
  auto bytes = read_all(path);
  // Zero the last 16 bytes (tail of the last pattern's dy deltas).
  for (std::size_t i = bytes.size() - 16; i < bytes.size(); ++i) {
    bytes[i] = 0;
  }
  write_all(path, bytes);
  EXPECT_THROW(dio::load_pattern_library(path), std::invalid_argument);
  std::remove(path.c_str());
}
