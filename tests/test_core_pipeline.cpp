// Integration tests for the full DiffPattern pipeline at miniature scale:
// dataset -> train -> sample -> pre-filter -> legalize -> evaluate.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.h"
#include "drc/checker.h"

namespace dcore = diffpattern::core;
namespace dd = diffpattern::drc;
namespace dc = diffpattern::common;

namespace {

dcore::PipelineConfig mini_config() {
  dcore::PipelineConfig cfg;
  cfg.dataset_tiles = 16;
  cfg.grid_side = 16;
  cfg.channels = 4;
  cfg.schedule.steps = 8;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  cfg.attention_levels = {};
  cfg.dropout = 0.0F;
  cfg.train_iterations = 10;
  cfg.batch_size = 4;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(PipelineConfig, FoldedSideDerivation) {
  auto cfg = mini_config();
  EXPECT_EQ(cfg.folded_side(), 8);  // 16 / sqrt(4)
  cfg.grid_side = 15;
  EXPECT_THROW(cfg.folded_side(), std::invalid_argument);
}

TEST(PipelineConfig, PaperConfigMatchesSectionIVA) {
  const auto paper = dcore::PipelineConfig::paper();
  EXPECT_EQ(paper.grid_side, 128);
  EXPECT_EQ(paper.channels, 16);
  EXPECT_EQ(paper.folded_side(), 32);
  EXPECT_EQ(paper.schedule.steps, 1000);
  EXPECT_EQ(paper.model_channels, 128);
  EXPECT_EQ(paper.train_iterations, 500000);
  EXPECT_EQ(paper.batch_size, 128);
  EXPECT_FLOAT_EQ(paper.adam.learning_rate, 2e-4F);
  EXPECT_FLOAT_EQ(paper.loss.lambda, 0.001F);
}

TEST(Pipeline, DatasetIsBuiltOnceAndCached) {
  dcore::Pipeline pipeline(mini_config());
  const auto& a = pipeline.dataset();
  const auto& b = pipeline.dataset();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.patterns.size(), 16U);
}

TEST(Pipeline, TrainRunsAndReportsProgress) {
  dcore::Pipeline pipeline(mini_config());
  std::int64_t calls = 0;
  double last_loss = 0.0;
  pipeline.train([&](std::int64_t, const diffpattern::diffusion::LossBreakdown&
                                      loss) {
    ++calls;
    last_loss = loss.total;
    EXPECT_TRUE(std::isfinite(loss.total));
  });
  EXPECT_EQ(calls, 10);
  EXPECT_GT(last_loss, 0.0);
}

TEST(Pipeline, SampledTopologiesHaveDatasetShape) {
  dcore::Pipeline pipeline(mini_config());
  pipeline.train();
  const auto topologies = pipeline.sample_topologies(3);
  ASSERT_EQ(topologies.size(), 3U);
  for (const auto& t : topologies) {
    EXPECT_EQ(t.rows(), 16);
    EXPECT_EQ(t.cols(), 16);
  }
}

TEST(Pipeline, GenerateProducesOnlyDrcCleanPatterns) {
  // The legality guarantee of Table I: every emitted pattern is DRC-clean,
  // regardless of model quality (here: barely trained).
  auto cfg = mini_config();
  dcore::Pipeline pipeline(cfg);
  pipeline.train();
  const auto report = pipeline.generate(6);
  EXPECT_EQ(report.topologies_requested, 6);
  EXPECT_EQ(report.prefilter_rejected + report.solver_rejected +
                static_cast<std::int64_t>(report.patterns.size()),
            6);
  for (const auto& p : report.patterns) {
    EXPECT_TRUE(dd::check_pattern(p, cfg.datagen.rules).clean());
    EXPECT_EQ(p.width(), cfg.datagen.tile);
  }
  EXPECT_GE(report.solving_seconds, 0.0);
}

TEST(Pipeline, EvaluateCountsLegalityAndDiversity) {
  auto cfg = mini_config();
  dcore::Pipeline pipeline(cfg);
  const auto& data = pipeline.dataset();
  const auto eval =
      dcore::evaluate_patterns(data.patterns, cfg.datagen.rules);
  EXPECT_EQ(eval.total_patterns, 16);
  EXPECT_EQ(eval.legal_patterns, 16);  // Dataset is DRC-clean by contract.
  EXPECT_NEAR(eval.legality_ratio(), 1.0, 1e-12);
  EXPECT_GT(eval.diversity, 0.5);
  EXPECT_NEAR(eval.diversity, eval.legal_diversity, 1e-12);
}

TEST(Pipeline, AssignLibraryDeltasPreservesTileSpan) {
  auto cfg = mini_config();
  dcore::Pipeline pipeline(cfg);
  const auto& data = pipeline.dataset();
  dc::Rng rng(3);
  const auto pattern = dcore::assign_library_deltas(
      data.patterns.front().topology, data.library, cfg.datagen.tile,
      cfg.datagen.tile, rng);
  EXPECT_EQ(pattern.width(), cfg.datagen.tile);
  EXPECT_EQ(pattern.height(), cfg.datagen.tile);
}

TEST(Pipeline, ModelCheckpointRoundTrip) {
  const std::string path = "/tmp/dp_pipeline_ckpt.bin";
  auto cfg = mini_config();
  dcore::Pipeline a(cfg);
  a.train();
  a.save_model(path);
  dcore::Pipeline b(cfg);
  b.load_model(path);
  // Same weights -> same samples for the same internal seeds.
  const auto pa = a.model().registry().params();
  const auto pb = b.model().registry().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].numel(); ++j) {
      ASSERT_FLOAT_EQ(pa[i].value()[j], pb[i].value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Pipeline, GenerationIsSeedDeterministicAcrossInstances) {
  // Regression: seed must thread through every sampling entry point, so two
  // pipelines with the same config + seed (and the same call sequence)
  // produce byte-identical patterns — the service executes their requests
  // through per-request RNG streams, worker pools, and fused batches.
  auto cfg = mini_config();
  dcore::Pipeline a(cfg);
  dcore::Pipeline b(cfg);
  a.train();
  b.train();
  const auto ra = a.generate(4);
  const auto rb = b.generate(4);
  ASSERT_EQ(ra.patterns.size(), rb.patterns.size());
  for (std::size_t i = 0; i < ra.patterns.size(); ++i) {
    EXPECT_TRUE(ra.patterns[i].topology == rb.patterns[i].topology);
    EXPECT_EQ(ra.patterns[i].dx, rb.patterns[i].dx);
    EXPECT_EQ(ra.patterns[i].dy, rb.patterns[i].dy);
  }
}

TEST(Pipeline, LegalizeExternalTopologies) {
  auto cfg = mini_config();
  dcore::Pipeline pipeline(cfg);
  const auto& data = pipeline.dataset();
  // Feed dataset topologies through the assessment: all should pass the
  // pre-filter and nearly all should legalize.
  std::vector<diffpattern::geometry::BinaryGrid> topologies(
      data.patterns.size() > 4 ? 4 : data.patterns.size());
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    topologies[i] = data.patterns[i].topology;
  }
  const auto report = pipeline.legalize_topologies(topologies);
  EXPECT_EQ(report.prefilter_rejected, 0);
  EXPECT_GE(static_cast<std::int64_t>(report.patterns.size()), 3);
}

TEST(Pipeline, MultiGeometryGeneratesDistinctPatterns) {
  auto cfg = mini_config();
  dcore::Pipeline pipeline(cfg);
  const auto& data = pipeline.dataset();
  const std::vector<diffpattern::geometry::BinaryGrid> one = {
      data.patterns.front().topology};
  const auto report = pipeline.legalize_topologies(one, 5);
  EXPECT_GE(report.patterns.size(), 2U);
  for (std::size_t i = 1; i < report.patterns.size(); ++i) {
    EXPECT_FALSE(report.patterns[i].dx == report.patterns[0].dx &&
                 report.patterns[i].dy == report.patterns[0].dy);
  }
}
