// Tests for q_sample, the diffusion loss, the trainer, and the sampler —
// including an end-to-end "learn a two-mode toy distribution" check.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "diffusion/diffusion.h"
#include "tensor/tensor_ops.h"

namespace dd = diffpattern::diffusion;
namespace du = diffpattern::unet;
namespace dc = diffpattern::common;
using diffpattern::tensor::Tensor;

namespace {

du::UNetConfig micro_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  cfg.attention_levels = {};
  cfg.dropout = 0.0F;
  return cfg;
}

/// Toy dataset over 1x4x4 binary images: two modes, "left half on" and
/// "right half on".
Tensor toy_batch(dc::Rng& rng, std::int64_t n) {
  Tensor x({n, 1, 4, 4}, 0.0F);
  for (std::int64_t i = 0; i < n; ++i) {
    const bool left = rng.bernoulli(0.5);
    for (std::int64_t r = 0; r < 4; ++r) {
      for (std::int64_t c = 0; c < 4; ++c) {
        const bool on = left ? c < 2 : c >= 2;
        x.at({i, 0, r, c}) = on ? 1.0F : 0.0F;
      }
    }
  }
  return x;
}

std::string image_signature(const Tensor& x, std::int64_t sample) {
  std::string s;
  for (std::int64_t i = 0; i < 16; ++i) {
    s.push_back(x[sample * 16 + i] != 0.0F ? '1' : '0');
  }
  return s;
}

}  // namespace

TEST(QSample, FlipsMatchCumulativeProbability) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 20});
  dc::Rng rng(1);
  const std::int64_t n = 64;
  Tensor x0({n, 1, 8, 8}, 0.0F);  // All zeros: flips are directly countable.
  for (std::int64_t k : {1, 5, 20}) {
    std::vector<std::int64_t> ks(static_cast<std::size_t>(n), k);
    Tensor xk = dd::q_sample(schedule, x0, ks, rng);
    const double flips = diffpattern::tensor::sum(xk);
    const double expected =
        schedule.cumulative_flip(k) * static_cast<double>(xk.numel());
    EXPECT_NEAR(flips / static_cast<double>(xk.numel()),
                expected / static_cast<double>(xk.numel()), 0.05)
        << "k=" << k;
  }
}

TEST(QSample, AtFinalStepNearlyUniform) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 50});
  dc::Rng rng(2);
  Tensor x0({32, 1, 8, 8}, 1.0F);
  std::vector<std::int64_t> ks(32, 50);
  Tensor xk = dd::q_sample(schedule, x0, ks, rng);
  const double ones = diffpattern::tensor::sum(xk) /
                      static_cast<double>(xk.numel());
  EXPECT_NEAR(ones, 0.5, 0.05);
}

TEST(QSample, RejectsNonBinaryInput) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 5});
  dc::Rng rng(3);
  Tensor x0({1, 1, 2, 2}, 0.5F);
  EXPECT_THROW(dd::q_sample(schedule, x0, {3}, rng), std::invalid_argument);
}

TEST(DiffusionLoss, FiniteAndBackpropagates) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 10});
  du::UNet model(micro_config(), 1);
  dc::Rng rng(4);
  Tensor x0 = toy_batch(rng, 4);
  auto result = dd::diffusion_loss(model, schedule, x0, dd::LossConfig{}, rng);
  EXPECT_TRUE(std::isfinite(result.breakdown.total));
  EXPECT_GE(result.breakdown.kl, -1e-6);  // KL is non-negative.
  EXPECT_GT(result.breakdown.cross_entropy, 0.0);
  EXPECT_NO_THROW(result.loss.backward());
}

TEST(DiffusionLoss, PerfectPredictionGivesNearZeroKl) {
  // If p_theta(x0|xk) is exactly the delta on the true x0, the KL term
  // vanishes. We emulate this by bypassing the network: compare the
  // analytic KL of q against itself through the same coefficient algebra.
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 10});
  for (std::int64_t k = 2; k <= 10; ++k) {
    for (int xk = 0; xk <= 1; ++xk) {
      for (int x0 = 0; x0 <= 1; ++x0) {
        const double q1 = schedule.posterior_prob1(k, xk, x0);
        // Network predicting x0 with certainty: p1 equals q1 -> KL == 0.
        const double a = schedule.posterior_prob1(k, xk, 1);
        const double b = schedule.posterior_prob1(k, xk, 0);
        const double p0_true = x0 == 1 ? 1.0 : 0.0;
        const double p1 = a * p0_true + b * (1.0 - p0_true);
        EXPECT_NEAR(p1, q1, 1e-12);
      }
    }
  }
}

TEST(Trainer, LossDecreasesOnToyData) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 8});
  du::UNet model(micro_config(), 7);
  diffpattern::nn::AdamConfig adam;
  adam.learning_rate = 2e-3F;
  dd::DiffusionTrainer trainer(model, schedule, dd::LossConfig{}, adam);
  dc::Rng rng(8);

  // Deterministic probe: same batch, same step draws, same corruption noise
  // before and after training, so the comparison isolates model improvement.
  dc::Rng probe_data_rng(100);
  const Tensor probe_batch = toy_batch(probe_data_rng, 16);
  const auto probe_ce = [&]() {
    dc::Rng probe_rng(999);
    return dd::diffusion_loss(model, schedule, probe_batch, dd::LossConfig{},
                              probe_rng)
        .breakdown.cross_entropy;
  };

  const double before = probe_ce();
  const int iters = 60;
  for (int it = 0; it < iters; ++it) {
    Tensor x0 = toy_batch(rng, 8);
    trainer.step(x0, rng);
  }
  const double after = probe_ce();
  EXPECT_EQ(trainer.steps_taken(), iters);
  EXPECT_LT(after, before * 0.85)
      << "training did not reduce the denoising CE (before=" << before
      << ", after=" << after << ")";
}

TEST(Sampler, ProducesBinaryOutputOfRequestedShape) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 5});
  du::UNet model(micro_config(), 3);
  dc::Rng rng(9);
  Tensor s = dd::sample(model, schedule, 3, 4, 4, dd::SamplerConfig{}, rng);
  EXPECT_EQ(s.shape(), (diffpattern::tensor::Shape{3, 1, 4, 4}));
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_TRUE(s[i] == 0.0F || s[i] == 1.0F);
  }
}

TEST(Sampler, ObserverSeesFullChain) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  du::UNet model(micro_config(), 3);
  dc::Rng rng(10);
  std::vector<std::int64_t> seen;
  dd::sample(model, schedule, 1, 4, 4, dd::SamplerConfig{}, rng,
             [&](std::int64_t k, const Tensor&) { seen.push_back(k); });
  // K, K-1, ..., 0: K+1 snapshots.
  ASSERT_EQ(seen.size(), 7U);
  EXPECT_EQ(seen.front(), 6);
  EXPECT_EQ(seen.back(), 0);
}

TEST(EndToEnd, LearnsTwoModeToyDistribution) {
  // Train the micro U-Net on the two-mode dataset, then sample: a majority
  // of samples should land exactly on one of the two modes. This is the
  // core property the paper relies on — the discrete reverse chain
  // reproduces the training distribution with naturally binary outputs.
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 8});
  du::UNet model(micro_config(), 21);
  diffpattern::nn::AdamConfig adam;
  adam.learning_rate = 2e-3F;
  dd::DiffusionTrainer trainer(model, schedule, dd::LossConfig{}, adam);
  dc::Rng rng(22);
  for (int it = 0; it < 250; ++it) {
    Tensor x0 = toy_batch(rng, 8);
    trainer.step(x0, rng);
  }

  const std::string left = "1100110011001100";
  const std::string right = "0011001100110011";
  Tensor samples =
      dd::sample(model, schedule, 24, 4, 4, dd::SamplerConfig{}, rng);
  int on_mode = 0;
  std::map<std::string, int> histogram;
  for (std::int64_t i = 0; i < 24; ++i) {
    const auto sig = image_signature(samples, i);
    ++histogram[sig];
    if (sig == left || sig == right) {
      ++on_mode;
    }
  }
  EXPECT_GE(on_mode, 15) << "only " << on_mode
                         << "/24 samples matched a training mode";
  // Both modes should appear (not a single-mode collapse).
  EXPECT_GE(histogram[left] + histogram[right], on_mode);
  EXPECT_GT(histogram[left], 0);
  EXPECT_GT(histogram[right], 0);
}
