// Runtime discovery tests: the worker-directory text format, file-backed
// re-reads, the announce-fed registry (including its wire handler behind a
// real SocketServer), and the router's sync_directory() seam — replicas
// join, retire, and revive under a live router with byte identity intact.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/discovery.h"
#include "dist/router.h"
#include "dist/socket_transport.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker_node.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace dd = diffpattern::dist;
namespace dc = diffpattern::common;
namespace ds = diffpattern::service;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

std::string unique_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/dp_dir_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1)) + ".txt";
}

/// Writes `text` to a fresh temp file and returns its path.
std::string write_file(const std::string& tag, const std::string& text) {
  const std::string path = unique_path(tag);
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

// ---------------------------------------------------------------- parsing

TEST(WorkerDirectoryParse, ParsesModelAddressLines) {
  const auto parsed = dd::parse_worker_directory(
      "# fleet config\n"
      "demo tcp:host-a:7000\n"
      "\n"
      "demo unix:/tmp/w1.sock  # inline comment\n"
      "other tcp:[::1]:7002\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].model, "demo");
  EXPECT_EQ((*parsed)[0].address, "tcp:host-a:7000");
  EXPECT_EQ((*parsed)[1].address, "unix:/tmp/w1.sock");
  EXPECT_EQ((*parsed)[2].model, "other");
  EXPECT_EQ((*parsed)[2].address, "tcp:[::1]:7002");
}

TEST(WorkerDirectoryParse, RejectsMalformedLinesWithLineNumber) {
  const std::string bad[] = {
      "demo\n",                       // one token
      "demo tcp:a:1 extra-token\n",   // three tokens
  };
  for (const auto& text : bad) {
    const auto parsed = dd::parse_worker_directory("# ok\n" + text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), dc::StatusCode::kInvalidArgument);
    // The comment line is line 1, the broken line is line 2.
    EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
        << parsed.status().to_string();
  }
}

// ------------------------------------------------------------------- file

TEST(WorkerDirectoryFile, ReReadsOnEverySnapshot) {
  const std::string path = write_file("rr", "demo tcp:host-a:7000\n");
  dd::FileWorkerDirectory directory(path);
  auto first = directory.snapshot();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 1u);

  {
    std::ofstream out(path, std::ios::trunc);
    out << "demo tcp:host-a:7000\ndemo tcp:host-b:7001\n";
  }
  // No restart, no re-open: the next snapshot sees the edit.
  auto second = directory.snapshot();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 2u);
  EXPECT_EQ((*second)[1].address, "tcp:host-b:7001");
  std::remove(path.c_str());
}

TEST(WorkerDirectoryFile, UnreadableFileIsNotFound) {
  dd::FileWorkerDirectory directory("/nonexistent/dp_workers.txt");
  const auto snapshot = directory.snapshot();
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), dc::StatusCode::kNotFound);
}

TEST(WorkerDirectoryFile, MalformedLineNamesThePath) {
  const std::string path = write_file("bad", "just-one-token\n");
  dd::FileWorkerDirectory directory(path);
  const auto snapshot = directory.snapshot();
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), dc::StatusCode::kInvalidArgument);
  EXPECT_NE(snapshot.status().message().find(path), std::string::npos)
      << snapshot.status().to_string();
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- static

TEST(WorkerDirectoryStatic, SwapAddRemove) {
  dd::StaticWorkerDirectory directory(
      std::vector<dd::WorkerEndpoint>{{"demo", "tcp:a:1"}});
  ASSERT_EQ(directory.snapshot()->size(), 1u);

  directory.add_endpoint({"demo", "tcp:b:2"});
  ASSERT_EQ(directory.snapshot()->size(), 2u);

  directory.remove_address("tcp:a:1");
  auto snapshot = directory.snapshot();
  ASSERT_EQ(snapshot->size(), 1u);
  EXPECT_EQ((*snapshot)[0].address, "tcp:b:2");

  directory.set_endpoints({});
  EXPECT_TRUE(directory.snapshot()->empty());
}

// --------------------------------------------------------------- registry

TEST(WorkerDirectoryRegistry, AnnounceReplaceRemove) {
  dd::WorkerRegistry registry;
  dd::WorkerAnnounce announce;
  announce.worker = "w0";
  announce.address = "tcp:host-a:7000";
  announce.models = {"demo", "other"};
  ASSERT_TRUE(registry.apply_announce(announce).ok());

  auto snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->size(), 2u);
  EXPECT_EQ((*snapshot)[0].model, "demo");
  EXPECT_EQ((*snapshot)[0].address, "tcp:host-a:7000");

  // A re-announce from the same address REPLACES its model list.
  announce.models = {"demo"};
  ASSERT_TRUE(registry.apply_announce(announce).ok());
  ASSERT_EQ(registry.snapshot()->size(), 1u);

  registry.remove_address("tcp:host-a:7000");
  EXPECT_TRUE(registry.snapshot()->empty());
  EXPECT_EQ(registry.counters().announces, 2);
  EXPECT_EQ(registry.counters().removes, 1);
}

TEST(WorkerDirectoryRegistry, RejectsEmptyAnnounces) {
  dd::WorkerRegistry registry;
  dd::WorkerAnnounce no_address;
  no_address.worker = "w0";
  no_address.models = {"demo"};
  EXPECT_EQ(registry.apply_announce(no_address).code(),
            dc::StatusCode::kInvalidArgument);

  dd::WorkerAnnounce no_models;
  no_models.worker = "w0";
  no_models.address = "tcp:a:1";
  EXPECT_EQ(registry.apply_announce(no_models).code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.counters().announce_rejects, 2);
  EXPECT_TRUE(registry.snapshot()->empty());
}

TEST(WorkerDirectoryRegistry, HandlerServesAnnouncesOverRealSocket) {
  dd::WorkerRegistry registry;
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start("unix:/tmp/dp_registry_" +
                             std::to_string(::getpid()) + ".sock",
                         registry.handler())
                  .ok());

  // A transport-free worker self-announces through the real socket, the
  // same path `serve --announce` takes.
  dd::WorkerNode node("w0");
  diffpattern::unet::UNet weights(mini_model_config().unet_config(), 7);
  ASSERT_TRUE(node.service()
                  .models()
                  .register_model("demo", mini_model_config(),
                                  weights.registry(), {})
                  .ok());
  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  auto ack = channel->call(node.announce_frame("tcp:host-a:7000"));
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  auto status_frame = dd::decode_status(ack.value());
  ASSERT_TRUE(status_frame.ok()) << status_frame.status().to_string();
  EXPECT_TRUE(status_frame->status.ok()) << status_frame->status.to_string();

  auto snapshot = registry.snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->size(), 1u);
  EXPECT_EQ((*snapshot)[0].model, "demo");
  EXPECT_EQ((*snapshot)[0].address, "tcp:host-a:7000");
  EXPECT_EQ(registry.counters().announces, 1);

  // A non-announce frame is answered with the typed decode error, never a
  // crash or a hang.
  auto bad = channel->call(dd::encode_health_probe());
  ASSERT_TRUE(bad.ok()) << bad.status().to_string();
  auto bad_status = dd::decode_status(bad.value());
  ASSERT_TRUE(bad_status.ok());
  EXPECT_FALSE(bad_status->status.ok());
}

// -------------------------------------------------------- router syncing

/// Two loopback workers sharing one weights object; the directory decides
/// which of them the router may route to.
class WorkerDirectorySyncTest : public ::testing::Test {
 protected:
  WorkerDirectorySyncTest()
      : weights_(mini_model_config().unet_config(), /*seed=*/7) {}

  std::unique_ptr<dd::WorkerNode> make_worker(const std::string& name) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = 8;
    auto node = std::make_unique<dd::WorkerNode>(name, transport_, config);
    EXPECT_TRUE(node->service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights_.registry(), {})
                    .ok());
    return node;
  }

  dd::ReplicaRouter::ChannelFactory factory() {
    return [this](const std::string& address) {
      return transport_.connect(address);
    };
  }

  ds::GenerateRequest demo_request(std::uint64_t seed = 11) {
    ds::GenerateRequest request;
    request.model = "demo";
    request.count = 2;
    request.seed = seed;
    return request;
  }

  diffpattern::unet::UNet weights_;
  dd::LoopbackTransport transport_;
};

TEST_F(WorkerDirectorySyncTest, AddsRetiresAndRevivesReplicas) {
  auto w0 = make_worker("w0");
  auto w1 = make_worker("w1");
  dd::StaticWorkerDirectory directory(
      {{"demo", "w0"}, {"demo", "w1"}});
  dd::ReplicaRouter router;

  // First sync populates an empty router from the directory.
  auto synced = router.sync_directory(directory, factory());
  ASSERT_TRUE(synced.ok()) << synced.status().to_string();
  EXPECT_EQ(synced->added, 2);
  EXPECT_EQ(synced->retired, 0);
  EXPECT_EQ(router.healthy_replicas("demo"), 2);

  const auto request = demo_request();
  auto before = router.generate(request);
  ASSERT_TRUE(before.ok()) << before.status().to_string();

  // w1 leaves the directory: retired, not freed — and traffic still flows.
  directory.remove_address("w1");
  synced = router.sync_directory(directory, factory());
  ASSERT_TRUE(synced.ok());
  EXPECT_EQ(synced->added, 0);
  EXPECT_EQ(synced->retired, 1);
  EXPECT_EQ(router.healthy_replicas("demo"), 1);
  auto during = router.generate(request);
  ASSERT_TRUE(during.ok()) << during.status().to_string();
  EXPECT_TRUE(same_patterns(before->patterns, during->patterns));

  // w1 re-lists: revived in place (an add, but no new channel dialing is
  // asserted here — that's an implementation detail).
  directory.add_endpoint({"demo", "w1"});
  synced = router.sync_directory(directory, factory());
  ASSERT_TRUE(synced.ok());
  EXPECT_EQ(synced->added, 1);
  EXPECT_EQ(router.healthy_replicas("demo"), 2);
  auto after = router.generate(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(same_patterns(before->patterns, after->patterns));

  const auto counters = router.counters();
  EXPECT_EQ(counters.directory_adds, 3);  // 2 initial + 1 revival.
  EXPECT_EQ(counters.directory_removes, 1);
  EXPECT_EQ(counters.directory_sync_failures, 0);
}

TEST_F(WorkerDirectorySyncTest, SnapshotErrorLeavesReplicaSetUntouched) {
  auto w0 = make_worker("w0");
  dd::StaticWorkerDirectory good(
      std::vector<dd::WorkerEndpoint>{{"demo", "w0"}});
  dd::ReplicaRouter router;
  ASSERT_TRUE(router.sync_directory(good, factory()).ok());
  ASSERT_EQ(router.healthy_replicas("demo"), 1);

  // A flaky source (unreadable file) must not drain the healthy router.
  dd::FileWorkerDirectory flaky("/nonexistent/dp_workers.txt");
  const auto synced = router.sync_directory(flaky, factory());
  ASSERT_FALSE(synced.ok());
  EXPECT_EQ(synced.status().code(), dc::StatusCode::kNotFound);
  EXPECT_EQ(router.healthy_replicas("demo"), 1);
  EXPECT_TRUE(router.generate(demo_request()).ok());
  EXPECT_EQ(router.counters().directory_sync_failures, 1);
}

TEST_F(WorkerDirectorySyncTest, IdempotentSyncChangesNothing) {
  auto w0 = make_worker("w0");
  dd::StaticWorkerDirectory directory(
      std::vector<dd::WorkerEndpoint>{{"demo", "w0"}});
  dd::ReplicaRouter router;
  ASSERT_TRUE(router.sync_directory(directory, factory()).ok());
  const auto again = router.sync_directory(directory, factory());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->added, 0);
  EXPECT_EQ(again->retired, 0);
  EXPECT_EQ(router.healthy_replicas("demo"), 1);
}

}  // namespace
