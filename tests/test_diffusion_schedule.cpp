#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "diffusion/schedule.h"

namespace dd = diffpattern::diffusion;

TEST(Schedule, LinearBetaEndpoints) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 100});
  EXPECT_NEAR(s.beta(1), 0.01, 1e-12);
  EXPECT_NEAR(s.beta(100), 0.5, 1e-12);
  // Monotone increasing (Eq. 8 with beta_end > beta_start).
  for (std::int64_t k = 2; k <= 100; ++k) {
    EXPECT_GT(s.beta(k), s.beta(k - 1));
  }
}

TEST(Schedule, SingleStepUsesBetaStart) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 1});
  EXPECT_NEAR(s.beta(1), 0.01, 1e-12);
}

TEST(Schedule, CumulativeFlipMatchesExplicitProduct) {
  // cbar_k from the recurrence must equal the (0,1) entry of the explicit
  // 2x2 matrix product Q_1 ... Q_k.
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 50});
  double m00 = 1.0, m01 = 0.0;  // Row 0 of the cumulative matrix.
  for (std::int64_t k = 1; k <= 50; ++k) {
    const double b = s.beta(k);
    const double n00 = m00 * (1.0 - b) + m01 * b;
    const double n01 = m00 * b + m01 * (1.0 - b);
    m00 = n00;
    m01 = n01;
    EXPECT_NEAR(s.cumulative_flip(k), m01, 1e-12) << "k=" << k;
  }
}

TEST(Schedule, ConvergesToUniformStationary) {
  // Paper Eq. 6: q(x_K | x_0) -> [0.5, 0.5].
  for (std::int64_t steps : {10, 50, 1000}) {
    dd::BinarySchedule s(dd::ScheduleConfig{.steps = steps});
    EXPECT_NEAR(s.cumulative_flip(steps), 0.5, 1e-3) << "K=" << steps;
  }
}

TEST(Schedule, CumulativeFlipMonotone) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 200});
  for (std::int64_t k = 1; k <= 200; ++k) {
    EXPECT_GE(s.cumulative_flip(k), s.cumulative_flip(k - 1) - 1e-15);
    EXPECT_LE(s.cumulative_flip(k), 0.5 + 1e-12);
  }
}

TEST(Schedule, PosteriorMatchesBayesBruteForce) {
  // q(x_{k-1}|x_k, x_0) from the closed form must match Bayes' rule applied
  // to the chain probabilities directly.
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 30});
  for (std::int64_t k = 1; k <= 30; ++k) {
    const double b = s.beta(k);
    const double cb_prev = s.cumulative_flip(k - 1);
    for (int x0 = 0; x0 <= 1; ++x0) {
      for (int xk = 0; xk <= 1; ++xk) {
        // joint(s) = q(x_{k-1}=s | x0) * q(x_k | x_{k-1}=s)
        double joint[2];
        for (int state = 0; state <= 1; ++state) {
          const double q_prev = state == x0 ? 1.0 - cb_prev : cb_prev;
          const double q_step = state == xk ? 1.0 - b : b;
          joint[state] = q_prev * q_step;
        }
        const double expected = joint[1] / (joint[0] + joint[1]);
        EXPECT_NEAR(s.posterior_prob1(k, xk, x0), expected, 1e-12)
            << "k=" << k << " xk=" << xk << " x0=" << x0;
      }
    }
  }
}

TEST(Schedule, PosteriorAtStepOnePinsToX0) {
  // cbar_0 = 0, so x_{k-1} = x_0 deterministically when k = 1.
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 10});
  EXPECT_NEAR(s.posterior_prob1(1, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s.posterior_prob1(1, 1, 1), 1.0, 1e-12);
  EXPECT_NEAR(s.posterior_prob1(1, 0, 0), 0.0, 1e-12);
  EXPECT_NEAR(s.posterior_prob1(1, 1, 0), 0.0, 1e-12);
}

TEST(Schedule, RejectsBadConfig) {
  EXPECT_THROW(dd::BinarySchedule(dd::ScheduleConfig{.steps = 0}),
               std::invalid_argument);
  EXPECT_THROW(dd::BinarySchedule(dd::ScheduleConfig{
                   .steps = 10, .beta_start = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(dd::BinarySchedule(dd::ScheduleConfig{
                   .steps = 10, .beta_start = 0.01, .beta_end = 0.6}),
               std::invalid_argument);
  EXPECT_THROW(dd::BinarySchedule(dd::ScheduleConfig{
                   .steps = 10, .beta_start = 0.4, .beta_end = 0.2}),
               std::invalid_argument);
}

TEST(Schedule, PaperConfigDefaults) {
  const auto cfg = dd::ScheduleConfig::paper();
  EXPECT_EQ(cfg.steps, 1000);
  EXPECT_DOUBLE_EQ(cfg.beta_start, 0.01);
  EXPECT_DOUBLE_EQ(cfg.beta_end, 0.5);
}
