// Inference memory plan: the activation arena must eliminate tensor-storage
// heap allocations in steady-state denoising (the zero-allocation claim),
// the plan cache must bound its footprint via LRU eviction and key plans by
// batch shape, and the time-embedding cache must invalidate itself when the
// time-MLP parameters change. Byte-identity of arena-on vs arena-off lives
// in test_sampling_determinism.cpp; this file covers the machinery.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/compute_pool.h"
#include "common/rng.h"
#include "diffusion/diffusion.h"
#include "tensor/arena.h"
#include "unet/unet.h"

namespace dd = diffpattern::diffusion;
namespace dc = diffpattern::common;
namespace du = diffpattern::unet;
namespace dt = diffpattern::tensor;
using diffpattern::tensor::Tensor;

namespace {

// Saves and restores the process-wide arena switch around each test.
class ArenaGuard {
 public:
  ArenaGuard() : previous_(dt::activation_arena_enabled()) {}
  ~ArenaGuard() { dt::set_activation_arena_enabled(previous_); }
  ArenaGuard(const ArenaGuard&) = delete;
  ArenaGuard& operator=(const ArenaGuard&) = delete;

 private:
  bool previous_;
};

du::UNetConfig micro_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  // Attention on so bmm/softmax (the ops with internal scratch) are on the
  // measured path.
  cfg.attention_levels = {1};
  cfg.dropout = 0.0F;
  return cfg;
}

Tensor run_sampling(du::UNet& model, const dd::BinarySchedule& schedule) {
  std::vector<dc::Rng> streams;
  streams.reserve(2);
  for (std::uint64_t slot = 0; slot < 2; ++slot) {
    streams.emplace_back(dc::derive_seed(515151, /*stream=*/3, slot));
  }
  std::vector<dc::Rng*> ptrs;
  for (auto& s : streams) {
    ptrs.push_back(&s);
  }
  return dd::sample_streams(model, schedule, /*height=*/8, /*width=*/8,
                            dd::SamplerConfig{}, ptrs);
}

}  // namespace

// The zero-allocation claim. With the arena on and a 1-thread compute pool
// (so every parallel_for chunk runs inline on the thread that owns the
// arena scope), a warmed-up sampling run performs exactly ONE tensor heap
// allocation — the prior tensor created before the round loop, outside any
// arena scope. Every activation inside the rounds recycles through the
// plan: zero steady-state tensor-storage heap allocations per round.
TEST(InferenceArena, ZeroSteadyStateTensorHeapAllocationsPerRound) {
  ArenaGuard guard;
  dt::set_activation_arena_enabled(true);
  ASSERT_TRUE(dc::set_global_compute_threads(1).ok());
  du::UNet model(micro_config(), /*seed=*/17);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});

  // Warmup: records the activation plan and fills the embedding cache.
  run_sampling(model, schedule);

  const auto before = dt::tensor_alloc_stats();
  run_sampling(model, schedule);
  const auto after = dt::tensor_alloc_stats();

  EXPECT_EQ(after.heap_allocations - before.heap_allocations, 1)
      << "expected only the pre-loop prior tensor to hit the heap; "
         "steady-state rounds must be served entirely from the plan";
  EXPECT_GT(after.pool_reuses - before.pool_reuses, 0)
      << "the warmed plan served no recycled storage";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// With the kill switch off the arena must be fully inert: no pool traffic,
// and sampling allocates from the heap exactly as it did before the layer
// existed.
TEST(InferenceArena, KillSwitchDisablesAllPooling) {
  ArenaGuard guard;
  dt::set_activation_arena_enabled(false);
  ASSERT_TRUE(dc::set_global_compute_threads(1).ok());
  du::UNet model(micro_config(), /*seed=*/17);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});

  const auto before = dt::arena_stats();
  run_sampling(model, schedule);
  const auto after = dt::arena_stats();

  EXPECT_EQ(after.pool_hits, before.pool_hits);
  EXPECT_EQ(after.pool_misses, before.pool_misses);
  EXPECT_EQ(after.plan_cache_hits, before.plan_cache_hits);
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Size-keyed freelist mechanics: a released storage comes back on the next
// same-size acquire, and pooled_bytes tracks what is parked.
TEST(InferenceArena, ArenaRecyclesReleasedStorageBySize) {
  dt::ActivationArena arena;
  std::vector<float> buf;
  EXPECT_FALSE(arena.acquire(buf, 64)) << "empty pool cannot hit";
  EXPECT_GE(buf.capacity(), 64U);
  const auto capacity = buf.capacity();
  arena.release(std::move(buf));
  EXPECT_EQ(arena.pooled_bytes(),
            static_cast<std::int64_t>(capacity * sizeof(float)));
  std::vector<float> again;
  EXPECT_TRUE(arena.acquire(again, 64)) << "same-size acquire must recycle";
  EXPECT_EQ(again.capacity(), capacity);
  EXPECT_TRUE(again.empty()) << "recycled storage must come back cleared";
  EXPECT_EQ(arena.pooled_bytes(), 0);
  // A different size keys a different freelist: no hit.
  std::vector<float> other;
  EXPECT_FALSE(arena.acquire(other, 128));
}

// Plans are keyed by batch shape and the cache is LRU-bounded: the oldest
// idle plan is evicted at capacity, and a rekeyed (re-created) shape counts
// as a fresh plan.
TEST(InferenceArena, PlanCacheEvictsLeastRecentlyUsedShape) {
  ArenaGuard guard;
  dt::set_activation_arena_enabled(true);
  dt::InferencePlanCache cache(/*capacity=*/2);
  const dt::Shape a = {3, 1, 8, 8};
  const dt::Shape b = {2, 1, 8, 8};
  const dt::Shape c = {1, 1, 8, 8};

  dt::ActivationArena* pa = cache.lease(a);
  ASSERT_NE(pa, nullptr);
  cache.unlease(pa);
  dt::ActivationArena* pb = cache.lease(b);
  ASSERT_NE(pb, nullptr);
  cache.unlease(pb);
  EXPECT_EQ(cache.plan_count(), 2U);
  EXPECT_EQ(cache.evictions(), 0);

  // Third shape evicts `a` (least recently used).
  dt::ActivationArena* pc = cache.lease(c);
  ASSERT_NE(pc, nullptr);
  cache.unlease(pc);
  EXPECT_EQ(cache.plan_count(), 2U);
  EXPECT_EQ(cache.evictions(), 1);

  // `a` comes back as a brand-new plan, evicting `b` in turn.
  dt::ActivationArena* pa2 = cache.lease(a);
  ASSERT_NE(pa2, nullptr);
  cache.unlease(pa2);
  EXPECT_EQ(cache.plan_count(), 2U);
  EXPECT_EQ(cache.evictions(), 2);

  // `c` stayed resident: leasing it again is a hit, not a re-record.
  const auto before = dt::arena_stats();
  dt::ActivationArena* pc2 = cache.lease(c);
  ASSERT_NE(pc2, nullptr);
  cache.unlease(pc2);
  const auto after = dt::arena_stats();
  EXPECT_EQ(after.plan_cache_hits - before.plan_cache_hits, 1);
}

// A plan is leased exclusively: a second lease of the same shape while the
// first is out yields nullptr (that round runs arena-less — same bytes,
// just unpooled), and the plan becomes available again after unlease.
TEST(InferenceArena, ConcurrentSameShapeLeaseYieldsNull) {
  ArenaGuard guard;
  dt::set_activation_arena_enabled(true);
  dt::InferencePlanCache cache(/*capacity=*/2);
  const dt::Shape shape = {4, 1, 8, 8};
  dt::ActivationArena* first = cache.lease(shape);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.lease(shape), nullptr)
      << "a leased plan must not be handed out twice";
  cache.unlease(first);
  dt::ActivationArena* second = cache.lease(shape);
  EXPECT_EQ(second, first) << "unleased plan should be reusable";
  cache.unlease(second);
}

// Distinct shapes own distinct plans (a narrowed strided batch never pools
// into the full batch's plan), and a disabled switch short-circuits lease.
TEST(InferenceArena, PlanCacheKeysByShapeAndHonorsKillSwitch) {
  ArenaGuard guard;
  dt::set_activation_arena_enabled(true);
  dt::InferencePlanCache cache(/*capacity=*/4);
  dt::ActivationArena* full = cache.lease({3, 1, 8, 8});
  dt::ActivationArena* narrowed = cache.lease({2, 1, 8, 8});
  ASSERT_NE(full, nullptr);
  ASSERT_NE(narrowed, nullptr);
  EXPECT_NE(full, narrowed);
  cache.unlease(full);
  cache.unlease(narrowed);

  dt::set_activation_arena_enabled(false);
  EXPECT_EQ(cache.lease({3, 1, 8, 8}), nullptr)
      << "disabled arena must never lease a plan";
}

// Fingerprint invalidation of the time-embedding cache: after the time-MLP
// parameters change (here: every parameter, as an EMA swap would), the
// cached rows from the old weights must NOT be served. The reference is an
// arena-off run of the mutated model (the embedding cache is bypassed when
// the plan is off), which the arena-on run must reproduce byte for byte.
TEST(InferenceArena, EmbeddingCacheInvalidatesWhenParametersChange) {
  ArenaGuard guard;
  ASSERT_TRUE(dc::set_global_compute_threads(1).ok());
  du::UNet model(micro_config(), /*seed=*/17);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});

  // Populate the embedding cache under the original weights.
  dt::set_activation_arena_enabled(true);
  run_sampling(model, schedule);

  // Mutate every parameter in place, exactly like Ema::swap_in does.
  for (auto param : model.registry().params()) {
    Tensor& value = param.mutable_value();
    for (std::int64_t i = 0; i < value.numel(); ++i) {
      value[i] += 0.125F;
    }
  }

  dt::set_activation_arena_enabled(false);
  const Tensor reference = run_sampling(model, schedule);
  dt::set_activation_arena_enabled(true);
  const Tensor cached = run_sampling(model, schedule);
  ASSERT_TRUE(reference.same_shape(cached));
  EXPECT_EQ(std::memcmp(reference.data(), cached.data(),
                        static_cast<std::size_t>(reference.numel()) *
                            sizeof(float)),
            0)
      << "stale time-embedding rows served after a parameter mutation";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}
