#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/checkpoint.h"
#include "nn/optim.h"
#include "unet/unet.h"

namespace du = diffpattern::unet;
namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;
using diffpattern::tensor::Tensor;

namespace {

du::UNetConfig tiny_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 8;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  cfg.attention_levels = {1};
  cfg.dropout = 0.0F;
  return cfg;
}

Tensor random_binary(dc::Rng& rng, diffpattern::tensor::Shape shape) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0F : 0.0F;
  }
  return t;
}

}  // namespace

TEST(TimeEmbedding, ShapeAndRange) {
  auto emb = du::sinusoidal_time_embedding({1, 50, 999}, 16);
  EXPECT_EQ(emb.shape(), (diffpattern::tensor::Shape{3, 16}));
  for (std::int64_t i = 0; i < emb.numel(); ++i) {
    EXPECT_LE(std::abs(emb[i]), 1.0F);
  }
}

TEST(TimeEmbedding, DistinctStepsDistinctEmbeddings) {
  auto emb = du::sinusoidal_time_embedding({3, 700}, 32);
  double diff = 0.0;
  for (std::int64_t j = 0; j < 32; ++j) {
    diff += std::abs(emb.at({0, j}) - emb.at({1, j}));
  }
  EXPECT_GT(diff, 0.5);
}

TEST(TimeEmbedding, RejectsOddDim) {
  EXPECT_THROW(du::sinusoidal_time_embedding({1}, 7), std::invalid_argument);
}

TEST(UNet, ForwardShape) {
  du::UNet model(tiny_config(), /*seed=*/1);
  dc::Rng rng(2);
  Tensor x = random_binary(rng, {2, 4, 8, 8});
  auto y = model.forward(x, {3, 7}, /*training=*/false, rng);
  EXPECT_EQ(y.shape(), (diffpattern::tensor::Shape{2, 8, 8, 8}));
}

TEST(UNet, RejectsBadInputs) {
  du::UNet model(tiny_config(), 1);
  dc::Rng rng(2);
  Tensor x = random_binary(rng, {2, 4, 8, 8});
  EXPECT_THROW(model.forward(x, {3}, false, rng), std::invalid_argument);
  Tensor bad_channels = random_binary(rng, {2, 3, 8, 8});
  EXPECT_THROW(model.forward(bad_channels, {3, 7}, false, rng),
               std::invalid_argument);
  // 5 is not divisible by 2^(levels-1) = 2.
  Tensor bad_size = random_binary(rng, {1, 4, 5, 5});
  EXPECT_THROW(model.forward(bad_size, {3}, false, rng),
               std::invalid_argument);
}

TEST(UNet, TimeStepChangesOutput) {
  du::UNet model(tiny_config(), 1);
  dc::Rng rng(3);
  Tensor x = random_binary(rng, {1, 4, 8, 8});
  const auto y1 = model.forward(x, {1}, false, rng).value();
  const auto y2 = model.forward(x, {40}, false, rng).value();
  double diff = 0.0;
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    diff += std::abs(y1[i] - y2[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(UNet, DeterministicInEvalMode) {
  du::UNet model(tiny_config(), 1);
  dc::Rng rng(4);
  Tensor x = random_binary(rng, {1, 4, 8, 8});
  const auto y1 = model.forward(x, {5}, false, rng).value();
  const auto y2 = model.forward(x, {5}, false, rng).value();
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_FLOAT_EQ(y1[i], y2[i]);
  }
}

TEST(UNet, GradientsReachAllParameters) {
  du::UNet model(tiny_config(), 1);
  dc::Rng rng(5);
  Tensor x = random_binary(rng, {1, 4, 8, 8});
  for (auto p : model.registry().params()) {  // Vars are shared handles.
    p.zero_grad();
  }
  auto y = model.forward(x, {5}, /*training=*/true, rng);
  nn::sum_all(nn::mul(y, y)).backward();
  std::size_t touched = 0;
  for (const auto& p : model.registry().params()) {
    const auto& g = p.grad();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      if (g[i] != 0.0F) {
        ++touched;
        break;
      }
    }
  }
  // Every parameter tensor should receive some gradient signal.
  EXPECT_EQ(touched, model.registry().size());
}

TEST(UNet, PaperConfigIsConstructible) {
  // The full DAC-2023 configuration (16x32x32 input, channels
  // [128, 256, 256, 256], attention at 16x16). Construction allocates ~30M
  // parameters' worth of tensors; we only verify wiring, not a forward pass.
  du::UNetConfig cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 32;
  cfg.model_channels = 128;
  cfg.channel_mult = {1, 2, 2, 2};
  cfg.num_res_blocks = 2;
  cfg.attention_levels = {1};
  du::UNet model(cfg, 1);
  EXPECT_GT(model.registry().parameter_count(), 10'000'000);
}

TEST(UNet, LogitHelpers) {
  dc::Rng rng(6);
  Tensor logits({1, 4, 2, 2});
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.normal());
  }
  nn::Var lv(logits);
  auto d = du::logit_difference(lv, 2);
  auto p = du::logits_to_prob1(lv, 2);
  EXPECT_EQ(d.shape(), (diffpattern::tensor::Shape{1, 2, 2, 2}));
  for (std::int64_t i = 0; i < d.numel(); ++i) {
    const float expect_d = logits[8 + i] - logits[i];
    EXPECT_NEAR(d.value()[i], expect_d, 1e-5F);
    EXPECT_NEAR(p.value()[i], 1.0F / (1.0F + std::exp(-expect_d)), 1e-5F);
  }
}

TEST(UNet, CheckpointRoundTripThroughRegistry) {
  const std::string path = "/tmp/dp_unet_ckpt_test.bin";
  du::UNet a(tiny_config(), 11);
  nn::save_checkpoint(a.registry(), path);
  du::UNet b(tiny_config(), 99);
  nn::load_checkpoint(b.registry(), path);
  dc::Rng rng(7);
  Tensor x = random_binary(rng, {1, 4, 8, 8});
  const auto ya = a.forward(x, {3}, false, rng).value();
  const auto yb = b.forward(x, {3}, false, rng).value();
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
  std::remove(path.c_str());
}
