// Chaos suite: a multi-worker SOCKET topology stormed through every
// injected fault class — added latency, connection refusal, stalls that
// trip the read deadline, mid-frame truncation, byte corruption, and
// partitions — behind seeded FaultInjector proxies so each run is
// reproducible. The invariant under test is the one that makes the serving
// plane trustworthy: every admitted request returns bytes identical to a
// direct PatternService call, and every fault surfaces as a typed status
// (DATA_LOSS / UNAVAILABLE / DEADLINE_EXCEEDED lineage), never a hang, a
// crash, or a silently wrong answer. The final test proves LoopbackTransport
// fault parity: the same assertions run without sockets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/fault_injection.h"
#include "dist/router.h"
#include "dist/socket_transport.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker_node.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace dd = diffpattern::dist;
namespace dc = diffpattern::common;
namespace ds = diffpattern::service;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

/// Socket topology: N workers, each listening on its own TCP port behind
/// its own FaultInjector, fronted by a ReplicaRouter over SocketTransport
/// channels that dial the INJECTORS. A transport-free golden worker with
/// identical weights provides the direct-service reference bytes.
class ChaosFailoverTest : public ::testing::Test {
 protected:
  ChaosFailoverTest()
      : weights_(mini_model_config().unet_config(), /*seed=*/7),
        golden_("golden") {
    register_demo(golden_);
  }

  void register_demo(dd::WorkerNode& node) {
    ASSERT_TRUE(node.service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights_.registry(), {})
                    .ok());
  }

  /// Brings up `count` worker+injector pairs and a router whose channels
  /// carry `transport_cfg`. Injector i gets fault config `faults[i]`
  /// (reused cyclically when fewer configs than workers are given).
  void start_topology(int count,
                      const std::vector<dd::FaultConfig>& faults,
                      dd::SocketTransportConfig transport_cfg = {},
                      dd::RouterConfig router_cfg = {}) {
    transport_ = std::make_unique<dd::SocketTransport>(transport_cfg);
    router_ = std::make_unique<dd::ReplicaRouter>(router_cfg);
    for (int i = 0; i < count; ++i) {
      ds::ServiceConfig config;
      config.legalize_workers = 2;
      config.max_fused_batch = 8;
      auto node = std::make_unique<dd::WorkerNode>(
          "w" + std::to_string(i), config);
      register_demo(*node);
      auto server = std::make_unique<dd::SocketServer>();
      dd::WorkerNode* raw = node.get();
      ASSERT_TRUE(server
                      ->start("tcp:127.0.0.1:0",
                              [raw](const dd::Bytes& request) {
                                return raw->handle(request);
                              })
                      .ok());
      auto injector = std::make_unique<dd::FaultInjector>(
          faults.empty() ? dd::FaultConfig{}
                         : faults[static_cast<std::size_t>(i) %
                                  faults.size()]);
      ASSERT_TRUE(
          injector->start("tcp:127.0.0.1:0", server->bound_address()).ok());
      router_->add_replica("demo", transport_->connect(injector->address()));
      workers_.push_back(std::move(node));
      servers_.push_back(std::move(server));
      injectors_.push_back(std::move(injector));
    }
  }

  void TearDown() override {
    // Injectors first: their upstream channels must die before servers.
    for (auto& injector : injectors_) {
      injector->shutdown();
    }
    for (auto& server : servers_) {
      server->shutdown();
    }
  }

  ds::GenerateRequest demo_request(std::uint64_t seed) {
    ds::GenerateRequest request;
    request.model = "demo";
    request.count = 2;
    request.seed = seed;
    return request;
  }

  /// Direct-service bytes for `seed` — the answer every routed success
  /// must match bit for bit.
  std::vector<diffpattern::layout::SquishPattern> golden_for(
      std::uint64_t seed) {
    auto result = golden_.service().generate(demo_request(seed));
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::move(result).value().patterns
                       : std::vector<diffpattern::layout::SquishPattern>{};
  }

  diffpattern::unet::UNet weights_;
  dd::WorkerNode golden_;
  std::vector<std::unique_ptr<dd::WorkerNode>> workers_;
  std::vector<std::unique_ptr<dd::SocketServer>> servers_;
  std::vector<std::unique_ptr<dd::FaultInjector>> injectors_;
  std::unique_ptr<dd::SocketTransport> transport_;
  std::unique_ptr<dd::ReplicaRouter> router_;
};

dd::FaultConfig clean_faults(std::uint64_t seed = 1) {
  dd::FaultConfig config;
  config.seed = seed;
  return config;
}

TEST_F(ChaosFailoverTest, InjectedLatencyPreservesBytes) {
  auto slow = clean_faults(3);
  slow.latency_ms = 30;
  start_topology(2, {slow});
  auto routed = router_->generate(demo_request(11));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(11)));
  std::int64_t relayed = 0;
  for (const auto& injector : injectors_) {
    relayed += injector->counters().relayed;
  }
  EXPECT_GE(relayed, 1);
}

TEST_F(ChaosFailoverTest, RefusedReplicaFailsOverWithTypedCounter) {
  auto refusing = clean_faults(5);
  refusing.refuse_probability = 1.0;
  start_topology(2, {refusing, clean_faults(6)});
  auto routed = router_->generate(demo_request(13));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(13)));
  const auto counters = router_->counters();
  EXPECT_GE(counters.failovers, 1);
  EXPECT_GE(counters.transport_errors, 1);
  EXPECT_GE(injectors_[0]->counters().refused, 1);
}

TEST_F(ChaosFailoverTest, ResetAfterRequestFailsOver) {
  auto resetting = clean_faults(7);
  resetting.reset_probability = 1.0;
  start_topology(2, {resetting, clean_faults(8)});
  auto routed = router_->generate(demo_request(17));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(17)));
  EXPECT_GE(router_->counters().transport_errors, 1);
  EXPECT_GE(injectors_[0]->counters().resets, 1);
}

TEST_F(ChaosFailoverTest, StallTripsDeadlineAndFailsOver) {
  auto stalling = clean_faults(9);
  stalling.stall_probability = 1.0;
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = 250;  // Small so the stall trips fast.
  start_topology(2, {stalling, clean_faults(10)}, transport_cfg);
  const auto started = std::chrono::steady_clock::now();
  auto routed = router_->generate(demo_request(19));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(19)));
  EXPECT_LT(elapsed, 10000);  // Deadline bounded the stall, not a hang.
  const auto counters = router_->counters();
  EXPECT_GE(counters.transport_timeouts, 1);
  EXPECT_GE(counters.failovers, 1);
  EXPECT_GE(injectors_[0]->counters().stalled, 1);
}

TEST_F(ChaosFailoverTest, TruncatedResponseIsDataLossThenFailover) {
  auto truncating = clean_faults(21);
  truncating.truncate_probability = 1.0;
  start_topology(2, {truncating, clean_faults(22)});
  auto routed = router_->generate(demo_request(23));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(23)));
  EXPECT_GE(router_->counters().decode_failures, 1);
  EXPECT_GE(injectors_[0]->counters().truncated, 1);
}

TEST_F(ChaosFailoverTest, CorruptedResponseNeverSurfacesAsWrongBytes) {
  auto corrupting = clean_faults(25);
  corrupting.corrupt_probability = 1.0;
  start_topology(2, {corrupting, clean_faults(26)});
  // The outer-frame checksum is the only thing between a flipped payload
  // byte and a silently wrong pattern: the corrupt replica must be read
  // as DATA_LOSS and the answer must come, bit-exact, from its peer.
  auto routed = router_->generate(demo_request(29));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(29)));
  EXPECT_GE(router_->counters().decode_failures, 1);
  EXPECT_GE(injectors_[0]->counters().corrupted, 1);
}

TEST_F(ChaosFailoverTest, PartitionHealsAfterRecovery) {
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = 2000;
  transport_cfg.backoff_base_ms = 1;
  transport_cfg.backoff_max_ms = 10;
  dd::RouterConfig router_cfg;
  router_cfg.health_refresh_every = 0;  // Probe explicitly below.
  start_topology(2, {clean_faults(31), clean_faults(32)}, transport_cfg,
                 router_cfg);
  injectors_[0]->set_partitioned(true);

  // Traffic survives the partition through the healthy replica.
  for (std::uint64_t seed = 41; seed < 44; ++seed) {
    auto routed = router_->generate(demo_request(seed));
    ASSERT_TRUE(routed.ok()) << routed.status().to_string();
    EXPECT_TRUE(same_patterns(routed->patterns, golden_for(seed)));
  }
  router_->refresh_health();
  EXPECT_EQ(router_->healthy_replicas("demo"), 1);

  injectors_[0]->set_partitioned(false);
  // Probes may land inside the channel's backoff window right after the
  // partition lifts; retry until the replica revives.
  bool healed = false;
  for (int attempt = 0; attempt < 100 && !healed; ++attempt) {
    router_->refresh_health();
    healed = router_->healthy_replicas("demo") == 2;
    if (!healed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(healed);
  auto routed = router_->generate(demo_request(47));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(47)));
}

TEST_F(ChaosFailoverTest, MixedFaultStormStaysTypedAndByteIdentical) {
  // Both replicas misbehave with every fault class at once; the run is
  // still deterministic for the fixed seeds. Two invariants survive the
  // storm: successes are bit-exact, failures are typed.
  dd::FaultConfig stormy = clean_faults(1234);
  stormy.latency_ms = 5;
  stormy.refuse_probability = 0.15;
  stormy.reset_probability = 0.10;
  stormy.corrupt_probability = 0.10;
  stormy.truncate_probability = 0.10;
  stormy.stall_probability = 0.10;
  dd::FaultConfig stormy2 = stormy;
  stormy2.seed = 5678;
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = 300;  // Stalls must trip quickly.
  transport_cfg.backoff_base_ms = 1;
  transport_cfg.backoff_max_ms = 20;
  start_topology(2, {stormy, stormy2}, transport_cfg);

  const std::set<dc::StatusCode> typed = {
      dc::StatusCode::kUnavailable,
      dc::StatusCode::kResourceExhausted,
      dc::StatusCode::kDeadlineExceeded,
      dc::StatusCode::kDataLoss,
  };
  int successes = 0;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    auto routed = router_->generate(demo_request(seed));
    if (routed.ok()) {
      ++successes;
      EXPECT_TRUE(same_patterns(routed->patterns, golden_for(seed)))
          << "seed " << seed << ": admitted bytes diverged from golden";
    } else {
      EXPECT_TRUE(typed.count(routed.status().code()) == 1)
          << "seed " << seed << ": untyped failure "
          << routed.status().to_string();
    }
  }
  EXPECT_GE(successes, 1);  // Failover keeps the plane serving.

  // Counter taxonomy: every failover is classified into exactly one
  // fault class, so the breakdown must sum back to the total.
  const auto counters = router_->counters();
  EXPECT_EQ(counters.failovers, counters.transport_timeouts +
                                    counters.transport_errors +
                                    counters.decode_failures);
}

// Satellite: the loopback transport carries the same fault controls, so
// chaos assertions run without sockets — per-call latency and one-shot
// typed call failures drive the identical failover machinery.
TEST(ChaosFailoverLoopback, FaultParityWithoutSockets) {
  diffpattern::unet::UNet weights(mini_model_config().unet_config(),
                                  /*seed=*/7);
  dd::LoopbackTransport transport;
  ds::ServiceConfig config;
  config.legalize_workers = 2;
  config.max_fused_batch = 8;
  dd::WorkerNode w0("w0", transport, config);
  dd::WorkerNode w1("w1", transport, config);
  for (dd::WorkerNode* node : {&w0, &w1}) {
    ASSERT_TRUE(node->service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights.registry(), {})
                    .ok());
  }
  dd::ReplicaRouter router;
  router.add_replica("demo", transport.connect("w0"));
  router.add_replica("demo", transport.connect("w1"));

  ds::GenerateRequest request;
  request.model = "demo";
  request.count = 2;
  request.seed = 51;
  auto direct = w0.service().generate(request);
  ASSERT_TRUE(direct.ok());

  // One-shot injected timeout on w0: the router must classify it as a
  // transport timeout and fail over to w1 with identical bytes.
  transport.inject_call_failure(
      "w0", dc::Status::DeadlineExceeded("injected stall"));
  transport.inject_call_failure(
      "w1", dc::Status::DeadlineExceeded("injected stall"));
  auto routed = router.generate(request);
  // Both replicas ate an injected timeout only if both were tried; at
  // least one failover happened either way, and a success must be
  // byte-identical.
  if (routed.ok()) {
    EXPECT_TRUE(same_patterns(routed->patterns, direct->patterns));
  } else {
    EXPECT_EQ(routed.status().code(), dc::StatusCode::kUnavailable);
  }
  const auto counters = router.counters();
  EXPECT_GE(counters.transport_timeouts, 1);
  EXPECT_EQ(counters.failovers, counters.transport_timeouts +
                                    counters.transport_errors +
                                    counters.decode_failures);

  // Injected latency: the call still answers, just later.
  transport.set_endpoint_latency("w0", 30);
  const auto started = std::chrono::steady_clock::now();
  auto channel = transport.connect("w0");
  auto via_channel = channel->call(dd::encode_health_probe());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ASSERT_TRUE(via_channel.ok());
  EXPECT_GE(elapsed, 30);
}

}  // namespace
