// Chaos suite: a multi-worker SOCKET topology stormed through every
// injected fault class — added latency, connection refusal, stalls that
// trip the read deadline, mid-frame truncation, byte corruption, and
// partitions — behind seeded FaultInjector proxies so each run is
// reproducible. The invariant under test is the one that makes the serving
// plane trustworthy: every admitted request returns bytes identical to a
// direct PatternService call, and every fault surfaces as a typed status
// (DATA_LOSS / UNAVAILABLE / DEADLINE_EXCEEDED lineage), never a hang, a
// crash, or a silently wrong answer. The final test proves LoopbackTransport
// fault parity: the same assertions run without sockets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <map>

#include "common/status.h"
#include "dist/discovery.h"
#include "dist/fault_injection.h"
#include "dist/router.h"
#include "dist/socket_transport.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker_node.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace dd = diffpattern::dist;
namespace dc = diffpattern::common;
namespace ds = diffpattern::service;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

/// Socket topology: N workers, each listening on its own TCP port behind
/// its own FaultInjector, fronted by a ReplicaRouter over SocketTransport
/// channels that dial the INJECTORS. A transport-free golden worker with
/// identical weights provides the direct-service reference bytes.
class ChaosFailoverTest : public ::testing::Test {
 protected:
  ChaosFailoverTest()
      : weights_(mini_model_config().unet_config(), /*seed=*/7),
        golden_("golden") {
    register_demo(golden_);
  }

  void register_demo(dd::WorkerNode& node) {
    ASSERT_TRUE(node.service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights_.registry(), {})
                    .ok());
  }

  /// Brings up `count` worker+injector pairs and a router whose channels
  /// carry `transport_cfg`. Injector i gets fault config `faults[i]`
  /// (reused cyclically when fewer configs than workers are given).
  void start_topology(int count,
                      const std::vector<dd::FaultConfig>& faults,
                      dd::SocketTransportConfig transport_cfg = {},
                      dd::RouterConfig router_cfg = {}) {
    transport_ = std::make_unique<dd::SocketTransport>(transport_cfg);
    router_ = std::make_unique<dd::ReplicaRouter>(router_cfg);
    for (int i = 0; i < count; ++i) {
      ds::ServiceConfig config;
      config.legalize_workers = 2;
      config.max_fused_batch = 8;
      auto node = std::make_unique<dd::WorkerNode>(
          "w" + std::to_string(i), config);
      register_demo(*node);
      auto server = std::make_unique<dd::SocketServer>();
      dd::WorkerNode* raw = node.get();
      ASSERT_TRUE(server
                      ->start("tcp:127.0.0.1:0",
                              [raw](const dd::Bytes& request) {
                                return raw->handle(request);
                              })
                      .ok());
      auto injector = std::make_unique<dd::FaultInjector>(
          faults.empty() ? dd::FaultConfig{}
                         : faults[static_cast<std::size_t>(i) %
                                  faults.size()]);
      ASSERT_TRUE(
          injector->start("tcp:127.0.0.1:0", server->bound_address()).ok());
      router_->add_replica("demo", transport_->connect(injector->address()));
      workers_.push_back(std::move(node));
      servers_.push_back(std::move(server));
      injectors_.push_back(std::move(injector));
    }
  }

  void TearDown() override {
    // Injectors first: their upstream channels must die before servers.
    for (auto& injector : injectors_) {
      injector->shutdown();
    }
    for (auto& server : servers_) {
      server->shutdown();
    }
  }

  ds::GenerateRequest demo_request(std::uint64_t seed) {
    ds::GenerateRequest request;
    request.model = "demo";
    request.count = 2;
    request.seed = seed;
    return request;
  }

  /// Direct-service bytes for `seed` — the answer every routed success
  /// must match bit for bit.
  std::vector<diffpattern::layout::SquishPattern> golden_for(
      std::uint64_t seed) {
    auto result = golden_.service().generate(demo_request(seed));
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::move(result).value().patterns
                       : std::vector<diffpattern::layout::SquishPattern>{};
  }

  diffpattern::unet::UNet weights_;
  dd::WorkerNode golden_;
  std::vector<std::unique_ptr<dd::WorkerNode>> workers_;
  std::vector<std::unique_ptr<dd::SocketServer>> servers_;
  std::vector<std::unique_ptr<dd::FaultInjector>> injectors_;
  std::unique_ptr<dd::SocketTransport> transport_;
  std::unique_ptr<dd::ReplicaRouter> router_;
};

dd::FaultConfig clean_faults(std::uint64_t seed = 1) {
  dd::FaultConfig config;
  config.seed = seed;
  return config;
}

TEST_F(ChaosFailoverTest, InjectedLatencyPreservesBytes) {
  auto slow = clean_faults(3);
  slow.latency_ms = 30;
  start_topology(2, {slow});
  auto routed = router_->generate(demo_request(11));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(11)));
  std::int64_t relayed = 0;
  for (const auto& injector : injectors_) {
    relayed += injector->counters().relayed;
  }
  EXPECT_GE(relayed, 1);
}

TEST_F(ChaosFailoverTest, RefusedReplicaFailsOverWithTypedCounter) {
  auto refusing = clean_faults(5);
  refusing.refuse_probability = 1.0;
  start_topology(2, {refusing, clean_faults(6)});
  auto routed = router_->generate(demo_request(13));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(13)));
  const auto counters = router_->counters();
  EXPECT_GE(counters.failovers, 1);
  EXPECT_GE(counters.transport_errors, 1);
  EXPECT_GE(injectors_[0]->counters().refused, 1);
}

TEST_F(ChaosFailoverTest, ResetAfterRequestFailsOver) {
  auto resetting = clean_faults(7);
  resetting.reset_probability = 1.0;
  start_topology(2, {resetting, clean_faults(8)});
  auto routed = router_->generate(demo_request(17));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(17)));
  EXPECT_GE(router_->counters().transport_errors, 1);
  EXPECT_GE(injectors_[0]->counters().resets, 1);
}

TEST_F(ChaosFailoverTest, StallTripsDeadlineAndFailsOver) {
  auto stalling = clean_faults(9);
  stalling.stall_probability = 1.0;
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = 250;  // Small so the stall trips fast.
  start_topology(2, {stalling, clean_faults(10)}, transport_cfg);
  const auto started = std::chrono::steady_clock::now();
  auto routed = router_->generate(demo_request(19));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(19)));
  EXPECT_LT(elapsed, 10000);  // Deadline bounded the stall, not a hang.
  const auto counters = router_->counters();
  EXPECT_GE(counters.transport_timeouts, 1);
  EXPECT_GE(counters.failovers, 1);
  EXPECT_GE(injectors_[0]->counters().stalled, 1);
}

TEST_F(ChaosFailoverTest, TruncatedResponseIsDataLossThenFailover) {
  auto truncating = clean_faults(21);
  truncating.truncate_probability = 1.0;
  start_topology(2, {truncating, clean_faults(22)});
  auto routed = router_->generate(demo_request(23));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(23)));
  EXPECT_GE(router_->counters().decode_failures, 1);
  EXPECT_GE(injectors_[0]->counters().truncated, 1);
}

TEST_F(ChaosFailoverTest, CorruptedResponseNeverSurfacesAsWrongBytes) {
  auto corrupting = clean_faults(25);
  corrupting.corrupt_probability = 1.0;
  start_topology(2, {corrupting, clean_faults(26)});
  // The outer-frame checksum is the only thing between a flipped payload
  // byte and a silently wrong pattern: the corrupt replica must be read
  // as DATA_LOSS and the answer must come, bit-exact, from its peer.
  auto routed = router_->generate(demo_request(29));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(29)));
  EXPECT_GE(router_->counters().decode_failures, 1);
  EXPECT_GE(injectors_[0]->counters().corrupted, 1);
}

TEST_F(ChaosFailoverTest, PartitionHealsAfterRecovery) {
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = 2000;
  transport_cfg.backoff_base_ms = 1;
  transport_cfg.backoff_max_ms = 10;
  dd::RouterConfig router_cfg;
  router_cfg.health_refresh_every = 0;  // Probe explicitly below.
  start_topology(2, {clean_faults(31), clean_faults(32)}, transport_cfg,
                 router_cfg);
  injectors_[0]->set_partitioned(true);

  // Traffic survives the partition through the healthy replica.
  for (std::uint64_t seed = 41; seed < 44; ++seed) {
    auto routed = router_->generate(demo_request(seed));
    ASSERT_TRUE(routed.ok()) << routed.status().to_string();
    EXPECT_TRUE(same_patterns(routed->patterns, golden_for(seed)));
  }
  router_->refresh_health();
  EXPECT_EQ(router_->healthy_replicas("demo"), 1);

  injectors_[0]->set_partitioned(false);
  // Probes may land inside the channel's backoff window right after the
  // partition lifts; retry until the replica revives.
  bool healed = false;
  for (int attempt = 0; attempt < 100 && !healed; ++attempt) {
    router_->refresh_health();
    healed = router_->healthy_replicas("demo") == 2;
    if (!healed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(healed);
  auto routed = router_->generate(demo_request(47));
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_TRUE(same_patterns(routed->patterns, golden_for(47)));
}

TEST_F(ChaosFailoverTest, MixedFaultStormStaysTypedAndByteIdentical) {
  // Both replicas misbehave with every fault class at once; the run is
  // still deterministic for the fixed seeds. Two invariants survive the
  // storm: successes are bit-exact, failures are typed.
  dd::FaultConfig stormy = clean_faults(1234);
  stormy.latency_ms = 5;
  stormy.refuse_probability = 0.15;
  stormy.reset_probability = 0.10;
  stormy.corrupt_probability = 0.10;
  stormy.truncate_probability = 0.10;
  stormy.stall_probability = 0.10;
  dd::FaultConfig stormy2 = stormy;
  stormy2.seed = 5678;
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = 300;  // Stalls must trip quickly.
  transport_cfg.backoff_base_ms = 1;
  transport_cfg.backoff_max_ms = 20;
  start_topology(2, {stormy, stormy2}, transport_cfg);

  const std::set<dc::StatusCode> typed = {
      dc::StatusCode::kUnavailable,
      dc::StatusCode::kResourceExhausted,
      dc::StatusCode::kDeadlineExceeded,
      dc::StatusCode::kDataLoss,
  };
  int successes = 0;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    auto routed = router_->generate(demo_request(seed));
    if (routed.ok()) {
      ++successes;
      EXPECT_TRUE(same_patterns(routed->patterns, golden_for(seed)))
          << "seed " << seed << ": admitted bytes diverged from golden";
    } else {
      EXPECT_TRUE(typed.count(routed.status().code()) == 1)
          << "seed " << seed << ": untyped failure "
          << routed.status().to_string();
    }
  }
  EXPECT_GE(successes, 1);  // Failover keeps the plane serving.

  // Counter taxonomy: every failover is classified into exactly one
  // fault class, so the breakdown must sum back to the total.
  const auto counters = router_->counters();
  EXPECT_EQ(counters.failovers, counters.transport_timeouts +
                                    counters.transport_errors +
                                    counters.decode_failures);
}

TEST_F(ChaosFailoverTest, WrongKeyReplicaRejectedTypedNeverWrongBytes) {
  // Auth chaos dials the workers DIRECTLY: the fault injector relays
  // plaintext frames, so a keyed stream cannot traverse it. Replica 0's
  // host is misconfigured with a stale key; the fleet key is "fleet-key".
  auto node0 = std::make_unique<dd::WorkerNode>("w0");
  auto node1 = std::make_unique<dd::WorkerNode>("w1");
  register_demo(*node0);
  register_demo(*node1);
  dd::SocketServerConfig stale_cfg;
  stale_cfg.auth_key = "fleet-key-ROTATED-OUT";
  auto server0 = std::make_unique<dd::SocketServer>(stale_cfg);
  dd::WorkerNode* raw0 = node0.get();
  ASSERT_TRUE(server0
                  ->start("tcp:127.0.0.1:0",
                          [raw0](const dd::Bytes& r) {
                            return raw0->handle(r);
                          })
                  .ok());
  dd::SocketServerConfig fleet_cfg;
  fleet_cfg.auth_key = "fleet-key";
  auto server1 = std::make_unique<dd::SocketServer>(fleet_cfg);
  dd::WorkerNode* raw1 = node1.get();
  ASSERT_TRUE(server1
                  ->start("tcp:127.0.0.1:0",
                          [raw1](const dd::Bytes& r) {
                            return raw1->handle(r);
                          })
                  .ok());

  dd::SocketTransportConfig transport_cfg;
  transport_cfg.auth_key = "fleet-key";
  transport_cfg.backoff_base_ms = 1;
  transport_cfg.backoff_max_ms = 10;
  dd::SocketTransport transport(transport_cfg);
  dd::RouterConfig router_cfg;
  router_cfg.health_refresh_every = 0;
  dd::ReplicaRouter router(router_cfg);
  router.add_replica("demo", transport.connect(server0->bound_address()));
  router.add_replica("demo", transport.connect(server1->bound_address()));

  // Whatever replica the router tries first, every request must land on
  // the good one with bytes identical to the golden — a wrong-key peer
  // surfaces as a typed failover, never as wrong output.
  for (std::uint64_t seed = 61; seed < 65; ++seed) {
    auto routed = router.generate(demo_request(seed));
    ASSERT_TRUE(routed.ok()) << routed.status().to_string();
    EXPECT_TRUE(same_patterns(routed->patterns, golden_for(seed)));
  }
  // A health sweep probes both: the stale-key replica fails its probe
  // (PERMISSION_DENIED at the frame layer) and is marked down.
  router.refresh_health();
  EXPECT_EQ(router.healthy_replicas("demo"), 1);
  EXPECT_GE(server0->counters().auth_failures, 1);
  // The rejection happened BEFORE any wire decode: the stale worker's
  // handler never saw a single frame.
  EXPECT_EQ(node0->wire_counters().calls, 0);
  const auto counters = router.counters();
  EXPECT_EQ(counters.failovers, counters.transport_timeouts +
                                    counters.transport_errors +
                                    counters.decode_failures);
  server0->shutdown();
  server1->shutdown();
}

TEST_F(ChaosFailoverTest, PooledStormUnderResetsKeepsCounterTaxonomy) {
  auto resetting = clean_faults(77);
  resetting.reset_probability = 0.25;
  auto resetting2 = clean_faults(78);
  resetting2.reset_probability = 0.25;
  dd::SocketTransportConfig transport_cfg;
  transport_cfg.max_connections = 4;  // Pooled: callers overlap per replica.
  transport_cfg.call_timeout_ms = 5000;
  transport_cfg.backoff_base_ms = 1;
  transport_cfg.backoff_max_ms = 20;
  start_topology(2, {resetting, resetting2}, transport_cfg);

  // Goldens precomputed on this thread; storm threads only compare.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::map<std::uint64_t, std::vector<diffpattern::layout::SquishPattern>>
      goldens;
  for (std::uint64_t seed = 200;
       seed < 200 + kThreads * kPerThread; ++seed) {
    goldens[seed] = golden_for(seed);
  }
  const std::set<dc::StatusCode> typed = {
      dc::StatusCode::kUnavailable,
      dc::StatusCode::kResourceExhausted,
      dc::StatusCode::kDeadlineExceeded,
      dc::StatusCode::kDataLoss,
  };
  std::atomic<int> successes{0};
  std::atomic<int> wrong_bytes{0};
  std::atomic<int> untyped{0};
  std::vector<std::thread> stormers;
  for (int t = 0; t < kThreads; ++t) {
    stormers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto seed =
            static_cast<std::uint64_t>(200 + t * kPerThread + i);
        auto routed = router_->generate(demo_request(seed));
        if (routed.ok()) {
          successes.fetch_add(1);
          if (!same_patterns(routed->patterns, goldens[seed])) {
            wrong_bytes.fetch_add(1);
          }
        } else if (typed.count(routed.status().code()) == 0) {
          untyped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : stormers) {
    t.join();
  }
  EXPECT_GE(successes.load(), 1);
  EXPECT_EQ(wrong_bytes.load(), 0);
  EXPECT_EQ(untyped.load(), 0);
  // The taxonomy survives concurrent pooled exchanges: every failover
  // still lands in exactly one fault-class bucket.
  const auto counters = router_->counters();
  EXPECT_EQ(counters.failovers, counters.transport_timeouts +
                                    counters.transport_errors +
                                    counters.decode_failures);
}

TEST_F(ChaosFailoverTest, ReplicaJoinsMidStormWithoutRouterRestart) {
  // One replica serves alone; mid-storm a second one appears in the
  // worker directory and a sync_directory() call — no router restart —
  // brings it into rotation, serving byte-identically.
  auto node0 = std::make_unique<dd::WorkerNode>("w0");
  auto node1 = std::make_unique<dd::WorkerNode>("w1");
  register_demo(*node0);
  register_demo(*node1);
  auto server0 = std::make_unique<dd::SocketServer>();
  dd::WorkerNode* raw0 = node0.get();
  ASSERT_TRUE(server0
                  ->start("tcp:127.0.0.1:0",
                          [raw0](const dd::Bytes& r) {
                            return raw0->handle(r);
                          })
                  .ok());
  auto server1 = std::make_unique<dd::SocketServer>();
  dd::WorkerNode* raw1 = node1.get();
  ASSERT_TRUE(server1
                  ->start("tcp:127.0.0.1:0",
                          [raw1](const dd::Bytes& r) {
                            return raw1->handle(r);
                          })
                  .ok());

  dd::SocketTransport transport;
  dd::ReplicaRouter router;
  dd::StaticWorkerDirectory directory(std::vector<dd::WorkerEndpoint>{
      {"demo", server0->bound_address()}});
  auto connect = [&transport](const std::string& address) {
    return transport.connect(address);
  };
  ASSERT_TRUE(router.sync_directory(directory, connect).ok());
  ASSERT_EQ(router.healthy_replicas("demo"), 1);

  std::map<std::uint64_t, std::vector<diffpattern::layout::SquishPattern>>
      goldens;
  for (std::uint64_t seed = 300; seed < 316; ++seed) {
    goldens[seed] = golden_for(seed);
  }
  std::atomic<int> failures{0};
  std::atomic<int> wrong_bytes{0};
  std::atomic<bool> joined{false};
  std::thread storm([&] {
    for (std::uint64_t seed = 300; seed < 316; ++seed) {
      auto routed = router.generate(demo_request(seed));
      if (!routed.ok()) {
        failures.fetch_add(1);
      } else if (!same_patterns(routed->patterns, goldens[seed])) {
        wrong_bytes.fetch_add(1);
      }
      if (seed == 303) {
        // The join lands while requests are in flight.
        directory.add_endpoint({"demo", server1->bound_address()});
        auto synced = router.sync_directory(directory, connect);
        EXPECT_TRUE(synced.ok()) << synced.status().to_string();
        EXPECT_EQ(synced->added, 1);
        joined.store(true);
      }
    }
  });
  storm.join();
  ASSERT_TRUE(joined.load());
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_bytes.load(), 0);
  EXPECT_EQ(router.healthy_replicas("demo"), 2);
  EXPECT_EQ(router.counters().directory_adds, 2);

  // The joiner genuinely serves: keep routing until a request lands on it
  // (power-of-two placement reaches both replicas quickly).
  bool joiner_served = false;
  for (std::uint64_t seed = 400; seed < 460 && !joiner_served; ++seed) {
    auto routed = router.generate(demo_request(seed));
    ASSERT_TRUE(routed.ok()) << routed.status().to_string();
    joiner_served = node1->wire_counters().generate_calls > 0;
  }
  EXPECT_TRUE(joiner_served);
  server0->shutdown();
  server1->shutdown();
}

// Satellite: the loopback transport carries the same fault controls, so
// chaos assertions run without sockets — per-call latency and one-shot
// typed call failures drive the identical failover machinery.
TEST(ChaosFailoverLoopback, FaultParityWithoutSockets) {
  diffpattern::unet::UNet weights(mini_model_config().unet_config(),
                                  /*seed=*/7);
  dd::LoopbackTransport transport;
  ds::ServiceConfig config;
  config.legalize_workers = 2;
  config.max_fused_batch = 8;
  dd::WorkerNode w0("w0", transport, config);
  dd::WorkerNode w1("w1", transport, config);
  for (dd::WorkerNode* node : {&w0, &w1}) {
    ASSERT_TRUE(node->service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights.registry(), {})
                    .ok());
  }
  dd::ReplicaRouter router;
  router.add_replica("demo", transport.connect("w0"));
  router.add_replica("demo", transport.connect("w1"));

  ds::GenerateRequest request;
  request.model = "demo";
  request.count = 2;
  request.seed = 51;
  auto direct = w0.service().generate(request);
  ASSERT_TRUE(direct.ok());

  // One-shot injected timeout on w0: the router must classify it as a
  // transport timeout and fail over to w1 with identical bytes.
  transport.inject_call_failure(
      "w0", dc::Status::DeadlineExceeded("injected stall"));
  transport.inject_call_failure(
      "w1", dc::Status::DeadlineExceeded("injected stall"));
  auto routed = router.generate(request);
  // Both replicas ate an injected timeout only if both were tried; at
  // least one failover happened either way, and a success must be
  // byte-identical.
  if (routed.ok()) {
    EXPECT_TRUE(same_patterns(routed->patterns, direct->patterns));
  } else {
    EXPECT_EQ(routed.status().code(), dc::StatusCode::kUnavailable);
  }
  const auto counters = router.counters();
  EXPECT_GE(counters.transport_timeouts, 1);
  EXPECT_EQ(counters.failovers, counters.transport_timeouts +
                                    counters.transport_errors +
                                    counters.decode_failures);

  // Injected latency: the call still answers, just later.
  transport.set_endpoint_latency("w0", 30);
  const auto started = std::chrono::steady_clock::now();
  auto channel = transport.connect("w0");
  auto via_channel = channel->call(dd::encode_health_probe());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ASSERT_TRUE(via_channel.ok());
  EXPECT_GE(elapsed, 30);
}

}  // namespace
