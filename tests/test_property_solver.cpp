// Parameterized solver properties: whatever the solver emits must be
// DRC-clean under every rule preset, backend, and init mode.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "drc/checker.h"
#include "legalize/solver.h"

namespace dle = diffpattern::legalize;
namespace dd = diffpattern::drc;
namespace dg = diffpattern::geometry;
namespace dc = diffpattern::common;

namespace {

/// Random bowtie-free topology grid.
dg::BinaryGrid random_topology(dc::Rng& rng, std::int64_t side) {
  for (int guard = 0; guard < 200; ++guard) {
    dg::BinaryGrid g(side, side);
    const auto n = rng.uniform_int(1, 4);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto r0 = rng.uniform_int(0, side - 2);
      const auto c0 = rng.uniform_int(0, side - 2);
      const auto r1 = rng.uniform_int(r0 + 1, side - 1);
      const auto c1 = rng.uniform_int(c0 + 1, side - 1);
      for (auto r = r0; r <= r1; ++r) {
        for (auto c = c0; c <= c1; ++c) {
          g.set(r, c, 1);
        }
      }
    }
    if (dle::prefilter_topology(g) == dle::PrefilterVerdict::ok) {
      return g;
    }
  }
  throw std::runtime_error("random_topology: generation stuck");
}

enum class RulePreset { standard, space, area, corner };

dd::DesignRules preset_rules(RulePreset preset) {
  switch (preset) {
    case RulePreset::standard: return dd::standard_rules();
    case RulePreset::space: return dd::larger_space_rules();
    case RulePreset::area: return dd::smaller_area_rules();
    case RulePreset::corner: {
      auto rules = dd::standard_rules();
      rules.euclidean_corner_space = true;
      return rules;
    }
  }
  return dd::standard_rules();
}

}  // namespace

using SolverCase = std::tuple<RulePreset, dle::SolverBackend, dle::InitMode>;

class SolverMatrix : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverMatrix, EmittedPatternsAreAlwaysClean) {
  const auto [preset, backend, init] = GetParam();
  const auto rules = preset_rules(preset);
  dle::SolverConfig config;
  config.backend = backend;
  config.init = init;
  dle::DeltaLibrary library;
  library.dx_pool = {{128, 128, 128, 128, 128, 128, 128, 128,
                      128, 128, 128, 128, 128, 128, 128, 128}};
  library.dy_pool = library.dx_pool;

  dc::Rng rng(17);
  int solved = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto topology = random_topology(rng, 8);
    const auto result = dle::legalize_topology(
        topology, rules, 2048, 2048, config, rng,
        init == dle::InitMode::solving_e ? &library : nullptr);
    if (result.success) {
      ++solved;
      EXPECT_TRUE(dd::check_pattern(result.pattern, rules).clean())
          << "preset=" << static_cast<int>(preset)
          << " backend=" << dle::to_string(backend)
          << " init=" << dle::to_string(init) << "\n"
          << topology.to_ascii();
      EXPECT_EQ(result.pattern.topology, topology);
      EXPECT_EQ(result.pattern.width(), 2048);
      EXPECT_EQ(result.pattern.height(), 2048);
    }
  }
  EXPECT_GT(solved, 6) << "solver failed on too many feasible instances";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, SolverMatrix,
    ::testing::Combine(
        ::testing::Values(RulePreset::standard, RulePreset::space,
                          RulePreset::area, RulePreset::corner),
        ::testing::Values(dle::SolverBackend::repair,
                          dle::SolverBackend::penalty_descent),
        ::testing::Values(dle::InitMode::solving_r,
                          dle::InitMode::solving_e)));

class SolverTileSweep : public ::testing::TestWithParam<dg::Coord> {};

TEST_P(SolverTileSweep, SumConstraintExactForEveryTileSize) {
  const auto tile = GetParam();
  dc::Rng rng(tile);
  dd::DesignRules rules;
  rules.space_min = tile / 32;
  rules.width_min = tile / 32;
  rules.area_min = (tile / 32) * (tile / 32);
  rules.area_max = tile * tile / 4;
  const auto topology = random_topology(rng, 6);
  const auto result = dle::legalize_topology(topology, rules, tile, tile,
                                             dle::SolverConfig{}, rng);
  if (result.success) {
    EXPECT_EQ(result.pattern.width(), tile);
    EXPECT_EQ(result.pattern.height(), tile);
    EXPECT_TRUE(dd::check_pattern(result.pattern, rules).clean());
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, SolverTileSweep,
                         ::testing::Values(512, 1024, 2048, 4096, 3000));

TEST(SolverDeterminism, SameSeedSameSolution) {
  dc::Rng topo_rng(5);
  const auto topology = random_topology(topo_rng, 8);
  const auto rules = dd::standard_rules();
  dc::Rng rng_a(77);
  dc::Rng rng_b(77);
  const auto a = dle::legalize_topology(topology, rules, 2048, 2048,
                                        dle::SolverConfig{}, rng_a);
  const auto b = dle::legalize_topology(topology, rules, 2048, 2048,
                                        dle::SolverConfig{}, rng_b);
  ASSERT_EQ(a.success, b.success);
  if (a.success) {
    EXPECT_EQ(a.pattern.dx, b.pattern.dx);
    EXPECT_EQ(a.pattern.dy, b.pattern.dy);
  }
}

TEST(SolverStress, ManyTopologiesNeverEmitDirtyPatterns) {
  // The Table I guarantee under stress: 60 random topologies, three rule
  // presets, no dirty pattern may ever escape.
  dc::Rng rng(99);
  for (const auto preset :
       {RulePreset::standard, RulePreset::space, RulePreset::area}) {
    const auto rules = preset_rules(preset);
    for (int trial = 0; trial < 20; ++trial) {
      const auto topology = random_topology(rng, 10);
      const auto result = dle::legalize_topology(
          topology, rules, 2048, 2048, dle::SolverConfig{}, rng);
      if (result.success) {
        ASSERT_TRUE(dd::check_pattern(result.pattern, rules).clean());
      } else {
        EXPECT_FALSE(result.failure_reason.empty());
      }
    }
  }
}
