// Parameterized properties of the diffusion schedule, the strided sampler,
// and the EMA helper.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "diffusion/diffusion.h"
#include "tensor/tensor_ops.h"

namespace dd = diffpattern::diffusion;
namespace du = diffpattern::unet;
namespace dc = diffpattern::common;
namespace nn = diffpattern::nn;
using diffpattern::tensor::Tensor;

// ---- schedule sweep ---------------------------------------------------------

class ScheduleSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScheduleSweep, StationaryAndMonotone) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = GetParam()});
  double prev = 0.0;
  for (std::int64_t k = 1; k <= GetParam(); ++k) {
    const double flip = s.cumulative_flip(k);
    EXPECT_GE(flip, prev - 1e-15);
    EXPECT_LE(flip, 0.5 + 1e-12);
    prev = flip;
  }
  if (GetParam() >= 5) {
    EXPECT_NEAR(s.cumulative_flip(GetParam()), 0.5, 1e-3);
  }
}

TEST_P(ScheduleSweep, PosteriorsAreProbabilities) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = GetParam()});
  for (std::int64_t k = 1; k <= GetParam(); ++k) {
    for (int xk = 0; xk <= 1; ++xk) {
      for (int x0 = 0; x0 <= 1; ++x0) {
        const double p = s.posterior_prob1(k, xk, x0);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

TEST_P(ScheduleSweep, FlipBetweenComposesConsistently) {
  // Qbar_to = Qbar_from * Q_{from->to}: the flip probabilities must satisfy
  // the composition rule c_to = c_from + s - 2 c_from s.
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = GetParam()});
  const auto k_max = GetParam();
  for (std::int64_t from = 0; from < k_max; from += std::max<std::int64_t>(1, k_max / 7)) {
    for (std::int64_t to = from + 1; to <= k_max;
         to += std::max<std::int64_t>(1, k_max / 5)) {
      const double a = s.cumulative_flip(from);
      const double step = s.flip_between(from, to);
      const double composed = a + step - 2.0 * a * step;
      EXPECT_NEAR(composed, s.cumulative_flip(to), 1e-9)
          << "from=" << from << " to=" << to;
      EXPECT_GE(step, -1e-12);
      EXPECT_LE(step, 0.5 + 1e-12);
    }
  }
}

TEST_P(ScheduleSweep, AdjacentJumpPosteriorEqualsClassicPosterior) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = GetParam()});
  for (std::int64_t k = 1; k <= GetParam();
       k += std::max<std::int64_t>(1, GetParam() / 9)) {
    for (int xk = 0; xk <= 1; ++xk) {
      for (int x0 = 0; x0 <= 1; ++x0) {
        EXPECT_DOUBLE_EQ(s.posterior_prob1_between(k - 1, k, xk, x0),
                         s.posterior_prob1(k, xk, x0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StepCounts, ScheduleSweep,
                         ::testing::Values(1, 2, 5, 10, 40, 100, 1000));

// ---- q_sample marginals -----------------------------------------------------

class QSampleSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(QSampleSweep, MarginalMatchesCumulativeFlip) {
  dd::BinarySchedule s(dd::ScheduleConfig{.steps = 20});
  const auto k = GetParam();
  dc::Rng rng(k);
  const std::int64_t n = 48;
  Tensor x0({n, 1, 8, 8}, 0.0F);
  std::vector<std::int64_t> ks(static_cast<std::size_t>(n), k);
  const Tensor xk = dd::q_sample(s, x0, ks, rng);
  const double observed = diffpattern::tensor::sum(xk) /
                          static_cast<double>(xk.numel());
  EXPECT_NEAR(observed, s.cumulative_flip(k), 0.04) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Steps, QSampleSweep,
                         ::testing::Values(1, 3, 7, 12, 20));

// ---- strided sampler --------------------------------------------------------

namespace {

du::UNetConfig micro_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  cfg.attention_levels = {};
  cfg.dropout = 0.0F;
  return cfg;
}

Tensor toy_batch(dc::Rng& rng, std::int64_t n) {
  Tensor x({n, 1, 4, 4}, 0.0F);
  for (std::int64_t i = 0; i < n; ++i) {
    const bool left = rng.bernoulli(0.5);
    for (std::int64_t r = 0; r < 4; ++r) {
      for (std::int64_t c = 0; c < 4; ++c) {
        x.at({i, 0, r, c}) = (left ? c < 2 : c >= 2) ? 1.0F : 0.0F;
      }
    }
  }
  return x;
}

}  // namespace

class StridedSampler : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StridedSampler, ProducesBinaryOutputAndVisitsExpectedSteps) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 12});
  du::UNet model(micro_config(), 3);
  dc::Rng rng(9);
  std::vector<std::int64_t> visited;
  const auto stride = GetParam();
  Tensor s = dd::sample_strided(
      model, schedule, 2, 4, 4, stride, dd::SamplerConfig{}, rng,
      [&](std::int64_t k, const Tensor&) { visited.push_back(k); });
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_TRUE(s[i] == 0.0F || s[i] == 1.0F);
  }
  // Chain starts at K, strictly decreases by at most `stride`, ends at 0.
  ASSERT_GE(visited.size(), 2U);
  EXPECT_EQ(visited.front(), 12);
  EXPECT_EQ(visited.back(), 0);
  for (std::size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LT(visited[i], visited[i - 1]);
    EXPECT_LE(visited[i - 1] - visited[i], stride);
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, StridedSampler,
                         ::testing::Values(1, 2, 3, 5, 12, 50));

TEST(StridedSampler, StrideOneVisitsEveryStep) {
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  du::UNet model(micro_config(), 3);
  dc::Rng rng(4);
  std::vector<std::int64_t> visited;
  dd::sample_strided(model, schedule, 1, 4, 4, 1, dd::SamplerConfig{}, rng,
                     [&](std::int64_t k, const Tensor&) {
                       visited.push_back(k);
                     });
  EXPECT_EQ(visited.size(), 7U);  // 6, 5, ..., 0.
}

TEST(StridedSampler, TrainedModelStillHitsModesWithStride) {
  // The fast sampler must preserve the learned distribution reasonably: on
  // the two-mode toy task a stride of 2 should still produce mostly
  // mode-consistent columns.
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 8});
  du::UNet model(micro_config(), 21);
  diffpattern::nn::AdamConfig adam;
  adam.learning_rate = 2e-3F;
  dd::DiffusionTrainer trainer(model, schedule, dd::LossConfig{}, adam);
  dc::Rng rng(22);
  for (int it = 0; it < 220; ++it) {
    Tensor x0 = toy_batch(rng, 8);
    trainer.step(x0, rng);
  }
  Tensor samples = dd::sample_strided(model, schedule, 16, 4, 4, 2,
                                      dd::SamplerConfig{}, rng);
  int mode_like = 0;
  for (std::int64_t i = 0; i < 16; ++i) {
    // A mode-like sample has uniform columns: count column-consistency.
    int consistent_cols = 0;
    for (std::int64_t c = 0; c < 4; ++c) {
      const float top = samples[i * 16 + c];
      bool same = true;
      for (std::int64_t r = 1; r < 4; ++r) {
        same = same && samples[i * 16 + r * 4 + c] == top;
      }
      consistent_cols += same;
    }
    mode_like += consistent_cols >= 3;
  }
  EXPECT_GE(mode_like, 9) << "strided samples lost the learned structure";
}

// ---- EMA ---------------------------------------------------------------------

TEST(Ema, TracksParametersTowardCurrentValues) {
  nn::ParamRegistry reg;
  nn::Var p = reg.add("p", Tensor({2}, 0.0F));
  dd::Ema ema(reg, 0.5);
  p.mutable_value()[0] = 8.0F;
  p.mutable_value()[1] = -4.0F;
  ema.update();  // shadow = 0.5*0 + 0.5*current
  ema.swap_in();
  EXPECT_FLOAT_EQ(p.value()[0], 4.0F);
  EXPECT_FLOAT_EQ(p.value()[1], -2.0F);
  ema.swap_out();
  EXPECT_FLOAT_EQ(p.value()[0], 8.0F);
}

TEST(Ema, SwapInRestoresExactTrainingWeights) {
  dc::Rng rng(5);
  nn::ParamRegistry reg;
  nn::Linear lin(reg, rng, "lin", 3, 2);
  dd::Ema ema(reg, 0.9);
  const Tensor before = reg.params()[0].value();
  // Perturb, update, round-trip.
  for (auto p : reg.params()) {
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      p.mutable_value()[i] += 1.0F;
    }
  }
  ema.update();
  const Tensor training = reg.params()[0].value();
  ema.swap_in();
  EXPECT_TRUE(ema.active());
  // EMA value = 0.9 * init + 0.1 * (init + 1).
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(reg.params()[0].value()[i], before[i] + 0.1F, 1e-5F);
  }
  ema.swap_out();
  for (std::int64_t i = 0; i < training.numel(); ++i) {
    EXPECT_FLOAT_EQ(reg.params()[0].value()[i], training[i]);
  }
}

TEST(Ema, GuardsAgainstMisuse) {
  nn::ParamRegistry reg;
  reg.add("p", Tensor({1}, 0.0F));
  EXPECT_THROW(dd::Ema(reg, 0.0), std::invalid_argument);
  EXPECT_THROW(dd::Ema(reg, 1.0), std::invalid_argument);
  dd::Ema ema(reg, 0.9);
  EXPECT_THROW(ema.swap_out(), std::invalid_argument);
  ema.swap_in();
  EXPECT_THROW(ema.swap_in(), std::invalid_argument);
  EXPECT_THROW(ema.update(), std::invalid_argument);
}
