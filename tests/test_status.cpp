#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace dc = diffpattern::common;

TEST(Status, DefaultIsOk) {
  const dc::Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), dc::StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const auto status = dc::Status::InvalidArgument("count must be >= 1");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "count must be >= 1");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: count must be >= 1");

  EXPECT_EQ(dc::Status::NotFound("x").code(), dc::StatusCode::kNotFound);
  EXPECT_EQ(dc::Status::FailedPrecondition("x").code(),
            dc::StatusCode::kFailedPrecondition);
  EXPECT_EQ(dc::Status::Internal("x").code(), dc::StatusCode::kInternal);
  EXPECT_EQ(dc::Status::Unavailable("x").code(),
            dc::StatusCode::kUnavailable);
  EXPECT_EQ(dc::Status::ResourceExhausted("x").code(),
            dc::StatusCode::kResourceExhausted);
  EXPECT_EQ(dc::Status::DeadlineExceeded("x").code(),
            dc::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(dc::Status::DataLoss("x").code(), dc::StatusCode::kDataLoss);
}

TEST(Status, RetryAfterHintIsStructuredAndPrinted) {
  const auto bare = dc::Status::Unavailable("overloaded");
  EXPECT_FALSE(bare.has_retry_after());
  EXPECT_EQ(bare.retry_after_ms(), 0);

  const auto hinted = bare.with_retry_after(75);
  EXPECT_TRUE(hinted.has_retry_after());
  EXPECT_EQ(hinted.retry_after_ms(), 75);
  EXPECT_EQ(hinted.code(), dc::StatusCode::kUnavailable);
  EXPECT_EQ(hinted.message(), "overloaded");
  EXPECT_EQ(hinted.to_string(),
            "UNAVAILABLE: overloaded (retry after 75 ms)");
  // The hint participates in equality (it is part of the answer).
  EXPECT_FALSE(bare == hinted);
  EXPECT_EQ(hinted, bare.with_retry_after(75));
  // Non-positive hints are clamped to "no hint".
  EXPECT_FALSE(bare.with_retry_after(-3).has_retry_after());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(dc::Status::NotFound("m"), dc::Status::NotFound("m"));
  EXPECT_FALSE(dc::Status::NotFound("m") == dc::Status::NotFound("other"));
  EXPECT_FALSE(dc::Status::NotFound("m") == dc::Status::Internal("m"));
}

TEST(StatusCode, NamesAreCanonical) {
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kOk), "OK");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(dc::to_string(dc::StatusCode::kPermissionDenied),
               "PERMISSION_DENIED");
}

TEST(Status, PermissionDeniedFactory) {
  const auto status = dc::Status::PermissionDenied("bad key");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), dc::StatusCode::kPermissionDenied);
  EXPECT_EQ(status.to_string(), "PERMISSION_DENIED: bad key");
}

TEST(Result, HoldsValueWhenOk) {
  dc::Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.status().code(), dc::StatusCode::kOk);
}

TEST(Result, HoldsStatusWhenError) {
  dc::Result<int> result(dc::Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dc::StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, ValueOnErrorIsTypedFailureNotUb) {
  dc::Result<std::string> result(dc::Status::Internal("boom"));
  EXPECT_THROW((void)result.value(), std::logic_error);
}

TEST(Result, OkStatusWithoutValueIsRejected) {
  EXPECT_THROW(dc::Result<int>(dc::Status::Ok()), std::invalid_argument);
}

TEST(Result, MoveExtractsValue) {
  dc::Result<std::string> result(std::string("payload"));
  const std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ArrowOperatorReachesMembers) {
  dc::Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3U);
}

TEST(DeriveSeed, DeterministicAndStreamSeparated) {
  EXPECT_EQ(dc::derive_seed(1, 2, 3), dc::derive_seed(1, 2, 3));
  EXPECT_NE(dc::derive_seed(1, 2, 3), dc::derive_seed(1, 2, 4));
  EXPECT_NE(dc::derive_seed(1, 2, 3), dc::derive_seed(1, 3, 3));
  EXPECT_NE(dc::derive_seed(1, 2, 3), dc::derive_seed(2, 2, 3));
  // Zero seed must still produce distinct streams (splitmix64 guarantees).
  EXPECT_NE(dc::derive_seed(0, 0, 0), dc::derive_seed(0, 0, 1));
}
