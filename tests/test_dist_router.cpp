// ReplicaRouter integration tests over the loopback transport: cross-replica
// byte determinism (including replay after injected failover), shed
// redirect with retry-hint cooldowns, load-aware placement against reported
// health, and streaming through the wire. The distributed plane inherits
// the service invariant: routing decides WHERE a request runs, never what
// it samples — the same (model, seed) yields identical bytes through any
// replica, any policy, any failover path.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/router.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker_node.h"
#include "service/admission.h"
#include "service/pattern_service.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace dd = diffpattern::dist;
namespace dc = diffpattern::common;
namespace ds = diffpattern::service;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

ds::FlowControlConfig depth_only_flow(std::int64_t max_depth,
                                      std::int64_t shed_depth) {
  ds::FlowControlConfig flow;
  flow.max_queue_depth = max_depth;
  flow.shed_queue_depth = shed_depth;
  flow.shed_fill_ratio = 0.0;
  flow.retry_after_ms = 10;
  return flow;
}

/// Workers share one trained-weights object (seed 7), so every replica is
/// the same model — the precondition for cross-replica byte identity.
class DistRouterTest : public ::testing::Test {
 protected:
  DistRouterTest() : weights_(mini_model_config().unet_config(), /*seed=*/7) {}

  std::unique_ptr<dd::WorkerNode> make_worker(
      const std::string& name,
      const ds::FlowControlConfig& flow = depth_only_flow(64, 64)) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = 8;
    config.flow = flow;
    auto node = std::make_unique<dd::WorkerNode>(name, transport_, config);
    EXPECT_TRUE(node->service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights_.registry(), {})
                    .ok());
    return node;
  }

  /// Registers a raw endpoint that sheds every generate with a hinted
  /// status and answers health probes as a healthy worker.
  void register_shedder(const std::string& name, std::int64_t hint_ms,
                        bool stream_shed = false) {
    transport_.register_endpoint(name, [hint_ms,
                                        stream_shed](const dd::Bytes& req) {
      const auto shed =
          dc::Status::Unavailable("synthetic overload").with_retry_after(
              hint_ms);
      if (dd::peek_type(req).value() == dd::MessageType::kHealthProbe) {
        return dd::encode_worker_health(dd::WorkerHealth{.worker = "shedder"});
      }
      if (stream_shed) {
        return dd::encode_stream_end(shed, ds::GenerateStats{});
      }
      return dd::encode_status(shed);
    });
  }

  dd::RouterConfig round_robin() {
    dd::RouterConfig config;
    config.policy = dd::RouterConfig::Policy::kRoundRobin;
    config.health_refresh_every = 0;  // Probe only on demand: deterministic.
    return config;
  }

  dd::LoopbackTransport transport_;
  diffpattern::unet::UNet weights_;
};

TEST_F(DistRouterTest, NoReplicasIsNotFound) {
  dd::ReplicaRouter router;
  const auto result =
      router.generate(ds::GenerateRequest{.model = "demo", .count = 1});
  EXPECT_EQ(result.status().code(), dc::StatusCode::kNotFound);
}

TEST_F(DistRouterTest, WorkerTypedErrorsReturnVerbatim) {
  // A model the router knows replicas for but the worker's service does
  // not: the service's NOT_FOUND crosses the wire untouched (and the
  // replica is not blamed — no failover, no cooldown).
  auto worker = make_worker("w0");
  dd::ReplicaRouter router(round_robin());
  router.add_replica("ghost", transport_.connect("w0"));
  const auto result =
      router.generate(ds::GenerateRequest{.model = "ghost", .count = 1});
  EXPECT_EQ(result.status().code(), dc::StatusCode::kNotFound);
  EXPECT_EQ(router.counters().failovers, 0);
  EXPECT_EQ(router.healthy_replicas("ghost"), 1);
}

TEST_F(DistRouterTest, CrossReplicaByteDeterminism) {
  auto w0 = make_worker("w0");
  auto w1 = make_worker("w1");
  auto w2 = make_worker("w2");
  const ds::GenerateRequest request{.model = "demo", .count = 3, .seed = 2023};

  // Golden: one replica's service, called directly (no wire).
  const auto golden = w0->service().generate(request);
  ASSERT_TRUE(golden.ok()) << golden.status().to_string();

  // Each replica through the wire individually: identical bytes.
  const dd::Bytes frame = dd::encode_generate_request(request);
  for (const auto* name : {"w0", "w1", "w2"}) {
    auto response = transport_.connect(name)->call(frame);
    ASSERT_TRUE(response.ok()) << name;
    const auto decoded = dd::decode_generate_result(response.value());
    ASSERT_TRUE(decoded.ok()) << name << ": "
                              << decoded.status().to_string();
    EXPECT_TRUE(same_patterns(golden->patterns, decoded->patterns)) << name;
  }

  // Through the router, repeatedly: whichever replica p2c lands on, the
  // bytes cannot differ.
  dd::ReplicaRouter router(dd::RouterConfig{.seed = 11});
  for (const auto* name : {"w0", "w1", "w2"}) {
    router.add_replica("demo", transport_.connect(name));
  }
  for (int i = 0; i < 4; ++i) {
    const auto routed = router.generate(request);
    ASSERT_TRUE(routed.ok()) << routed.status().to_string();
    EXPECT_TRUE(same_patterns(golden->patterns, routed->patterns));
  }
}

TEST_F(DistRouterTest, FailoverReplaysIdenticalBytesAndProbesRevive) {
  auto w0 = make_worker("w0");
  auto w1 = make_worker("w1");
  const ds::GenerateRequest request{.model = "demo", .count = 3, .seed = 5};
  const auto golden = w1->service().generate(request);
  ASSERT_TRUE(golden.ok());

  dd::ReplicaRouter router(round_robin());
  router.add_replica("demo", transport_.connect("w0"));
  router.add_replica("demo", transport_.connect("w1"));

  // Partition w0. Round-robin tries it first (deterministically), takes
  // the transport failure, marks it down, and replays on w1 — the client
  // sees one OK result, byte-identical to an unloaded run.
  transport_.set_endpoint_reachable("w0", false);
  const auto failed_over = router.generate(request);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().to_string();
  EXPECT_TRUE(same_patterns(golden->patterns, failed_over->patterns));
  EXPECT_GE(router.counters().failovers, 1);
  EXPECT_EQ(router.healthy_replicas("demo"), 1);

  // Heal the partition: an on-demand probe revives w0.
  transport_.set_endpoint_reachable("w0", true);
  router.refresh_health();
  EXPECT_EQ(router.healthy_replicas("demo"), 2);
  EXPECT_GE(router.counters().health_probes, 2);

  // Replay after recovery still reproduces the identical bytes.
  const auto after = router.generate(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(same_patterns(golden->patterns, after->patterns));
}

TEST_F(DistRouterTest, FailedProbeMarksReplicaDown) {
  auto w0 = make_worker("w0");
  dd::ReplicaRouter router(round_robin());
  router.add_replica("demo", transport_.connect("w0"));
  transport_.set_endpoint_reachable("w0", false);
  router.refresh_health();
  EXPECT_EQ(router.healthy_replicas("demo"), 0);
  EXPECT_GE(router.counters().health_failures, 1);
  const auto result =
      router.generate(ds::GenerateRequest{.model = "demo", .count = 1});
  EXPECT_EQ(result.status().code(), dc::StatusCode::kUnavailable);
}

TEST_F(DistRouterTest, ShedRedirectsToPeerWithHintedCooldown) {
  // The hint is deliberately far longer than the test: the cooldown must
  // still be in force after the (slow) redirected generation finishes.
  // Cooldown EXPIRY is covered by StreamShedFromRealWorkerCarriesRetryHint.
  register_shedder("shedder", /*hint_ms=*/60'000);
  auto worker = make_worker("w1");
  const ds::GenerateRequest request{.model = "demo", .count = 3, .seed = 31};
  const auto golden = worker->service().generate(request);
  ASSERT_TRUE(golden.ok());

  auto config = round_robin();
  config.max_backoff_ms = 60'000;  // Let the full hint stand as cooldown.
  dd::ReplicaRouter router(config);
  router.add_replica("demo", transport_.connect("shedder"));
  router.add_replica("demo", transport_.connect("w1"));

  // Round-robin hits the shedder first; the shed redirects to the peer and
  // the client still gets the golden bytes.
  const auto result = router.generate(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(same_patterns(golden->patterns, result->patterns));
  const auto counters = router.counters();
  EXPECT_EQ(counters.redirects, 1);
  EXPECT_EQ(counters.sheds_returned, 0);

  // The hint became a cooldown (capped at max_backoff_ms, still >> this
  // test): the shedder is out of rotation, so the next request reaches the
  // peer without a redirect.
  EXPECT_EQ(router.healthy_replicas("demo"), 1);
  const auto second = router.generate(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(router.counters().redirects, 1);
}

TEST_F(DistRouterTest, AllReplicasShedReturnsHintedStatus) {
  register_shedder("shedder", /*hint_ms=*/25);
  dd::ReplicaRouter router(round_robin());
  router.add_replica("demo", transport_.connect("shedder"));
  const auto result =
      router.generate(ds::GenerateRequest{.model = "demo", .count = 1});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(result.status().has_retry_after());
  EXPECT_EQ(result.status().retry_after_ms(), 25);
  EXPECT_EQ(router.counters().sheds_returned, 1);
}

TEST_F(DistRouterTest, LoadAwarePlacementFollowsReportedHealth) {
  // Two synthetic replicas that differ only in reported load; each tags
  // its (empty) result so the test can see who served. With fresh health
  // before every request, power-of-two-choices must always keep the idle
  // one; round-robin — the load-blind control — must hit both.
  const auto fake_worker = [this](const std::string& name,
                                  std::int64_t admission_pending,
                                  std::int64_t marker) {
    transport_.register_endpoint(
        name, [name, admission_pending, marker](const dd::Bytes& req) {
          if (dd::peek_type(req).value() == dd::MessageType::kHealthProbe) {
            dd::WorkerHealth health;
            health.worker = name;
            health.seq = 1;
            health.admission_pending = admission_pending;
            return dd::encode_worker_health(health);
          }
          ds::GenerateResult result;
          result.stats.solver_rounds = marker;
          return dd::encode_generate_result(result);
        });
  };
  fake_worker("busy", /*admission_pending=*/100, /*marker=*/111);
  fake_worker("idle", /*admission_pending=*/0, /*marker=*/222);

  dd::RouterConfig load_aware;
  load_aware.seed = 3;
  load_aware.health_refresh_every = 1;  // Fresh signal for every request.
  dd::ReplicaRouter router(load_aware);
  router.add_replica("demo", transport_.connect("busy"));
  router.add_replica("demo", transport_.connect("idle"));

  const ds::GenerateRequest request{.model = "demo", .count = 1};
  for (int i = 0; i < 8; ++i) {
    const auto result = router.generate(request);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(result->stats.solver_rounds, 222) << "request " << i
        << " landed on the loaded replica";
  }

  dd::ReplicaRouter control(round_robin());
  control.add_replica("demo", transport_.connect("busy"));
  control.add_replica("demo", transport_.connect("idle"));
  std::int64_t busy_hits = 0;
  for (int i = 0; i < 8; ++i) {
    const auto result = control.generate(request);
    ASSERT_TRUE(result.ok());
    busy_hits += result->stats.solver_rounds == 111 ? 1 : 0;
  }
  EXPECT_EQ(busy_hits, 4);  // Load-blind: an even split.
}

TEST_F(DistRouterTest, StreamThroughRouterMatchesBlockingBytes) {
  auto w0 = make_worker("w0");
  auto w1 = make_worker("w1");
  const ds::GenerateRequest request{.model = "demo", .count = 4, .seed = 41};
  const auto golden = w0->service().generate(request);
  ASSERT_TRUE(golden.ok());

  dd::ReplicaRouter router(dd::RouterConfig{.seed = 9});
  router.add_replica("demo", transport_.connect("w0"));
  router.add_replica("demo", transport_.connect("w1"));

  std::vector<ds::StreamedPattern> slots;
  const auto stats = router.generate_stream(
      request,
      [&slots](const ds::StreamedPattern& slot) { slots.push_back(slot); });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats->topologies_requested, 4);
  EXPECT_TRUE(same_patterns(
      golden->patterns, ds::assemble_stream_patterns(std::move(slots))));
}

TEST_F(DistRouterTest, StreamShedRedirectsBeforeAnyDelivery) {
  // A replica that sheds the stream before delivering anything is safe to
  // replay: the router retries on the peer and the client sees exactly one
  // complete stream.
  register_shedder("stream-shedder", /*hint_ms=*/25, /*stream_shed=*/true);
  auto worker = make_worker("w1");
  const ds::GenerateRequest request{.model = "demo", .count = 3, .seed = 51};
  const auto golden = worker->service().generate(request);
  ASSERT_TRUE(golden.ok());

  dd::ReplicaRouter router(round_robin());
  router.add_replica("demo", transport_.connect("stream-shedder"));
  router.add_replica("demo", transport_.connect("w1"));

  std::vector<ds::StreamedPattern> slots;
  const auto stats = router.generate_stream(
      request,
      [&slots](const ds::StreamedPattern& slot) { slots.push_back(slot); });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_TRUE(same_patterns(
      golden->patterns, ds::assemble_stream_patterns(std::move(slots))));
  EXPECT_EQ(router.counters().redirects, 1);
}

TEST_F(DistRouterTest, StreamShedFromRealWorkerCarriesRetryHint) {
  // End to end over a REAL overloaded worker (not a synthetic shedder):
  // the admission shed inside the service crosses the wire as a hinted
  // StreamEnd, and the router — out of peers — hands the hint to the
  // client with zero deliveries.
  auto worker = make_worker("w0", depth_only_flow(4, 1));
  dd::ReplicaRouter router(round_robin());
  router.add_replica("demo", transport_.connect("w0"));

  const ds::GenerateRequest busy{.model = "demo", .count = 8, .seed = 61};
  std::thread holder(
      [&] { ASSERT_TRUE(worker->service().generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return worker->service().counters().admission_pending >= 1; }));

  std::int64_t deliveries = 0;
  const auto shed = router.generate_stream(
      ds::GenerateRequest{.model = "demo", .count = 1, .seed = 62},
      [&deliveries](const ds::StreamedPattern&) { ++deliveries; });
  EXPECT_EQ(shed.status().code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(shed.status().has_retry_after());
  EXPECT_EQ(deliveries, 0);
  holder.join();

  // The hinted cooldown expires and the same request then succeeds.
  ASSERT_TRUE(wait_for([&] { return router.healthy_replicas("demo") == 1; }));
  const auto retry = router.generate_stream(
      ds::GenerateRequest{.model = "demo", .count = 1, .seed = 62},
      [&deliveries](const ds::StreamedPattern&) { ++deliveries; });
  ASSERT_TRUE(retry.ok()) << retry.status().to_string();
  EXPECT_EQ(deliveries, 1);
}

}  // namespace
