// Wire-protocol tests: byte-exact round trips for every message type plus
// robustness against hostile buffers. The contract under attack: decoding
// never throws, never reads out of bounds, and answers structural
// corruption with DATA_LOSS and semantic problems with INVALID_ARGUMENT —
// a corrupt frame is an error value, not UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/wire.h"
#include "geometry/grid.h"
#include "layout/squish.h"

namespace dd = diffpattern::dist;
namespace dc = diffpattern::common;
namespace ds = diffpattern::service;
namespace dg = diffpattern::geometry;

namespace {

/// A small non-trivial pattern: 2x3 checkerboard-ish topology with
/// distinctive deltas so a byte got lost would show.
diffpattern::layout::SquishPattern sample_pattern(std::int64_t salt) {
  diffpattern::layout::SquishPattern p;
  dg::BinaryGrid grid(2, 3);
  grid.set(0, 0, 1);
  grid.set(0, 2, 1);
  grid.set(1, 1, 1);
  p.topology = grid;
  p.dx = {10 + salt, 20 + salt, 30 + salt};
  p.dy = {40 + salt, 50 + salt};
  return p;
}

ds::GenerateStats sample_stats() {
  ds::GenerateStats stats;
  stats.topologies_requested = 9;
  stats.topologies_admitted = 4;
  stats.degraded = true;
  stats.prefilter_rejected = 1;
  stats.solver_rejected = 2;
  stats.solver_rounds = 3;
  stats.sampling_seconds = 0.125;
  stats.solving_seconds = 2.5;
  stats.fused_batch_slots = 4;
  return stats;
}

void expect_same_pattern(const diffpattern::layout::SquishPattern& a,
                         const diffpattern::layout::SquishPattern& b) {
  EXPECT_TRUE(a.topology == b.topology);
  EXPECT_EQ(a.dx, b.dx);
  EXPECT_EQ(a.dy, b.dy);
}

// --------------------------------------------------------- round trips

TEST(DistWire, GenerateRequestRoundTrip) {
  ds::GenerateRequest request;
  request.model = "edge-model";
  request.count = 17;
  request.geometries_per_topology = 3;
  request.rule_set = "space";
  request.seed = 0xDEADBEEFCAFEF00DULL;
  request.priority = -2;
  request.deadline_ms = 750;
  request.allow_degrade = true;

  const auto frame = dd::encode_generate_request(request);
  ASSERT_EQ(dd::peek_type(frame).value(), dd::MessageType::kGenerateRequest);
  const auto decoded = dd::decode_generate_request(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->model, request.model);
  EXPECT_EQ(decoded->count, request.count);
  EXPECT_EQ(decoded->geometries_per_topology,
            request.geometries_per_topology);
  EXPECT_EQ(decoded->rule_set, request.rule_set);
  EXPECT_EQ(decoded->seed, request.seed);
  EXPECT_EQ(decoded->priority, request.priority);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded->allow_degrade, request.allow_degrade);

  // The streaming tag carries the identical payload and decodes through the
  // same function (the worker peeks the tag to dispatch).
  const auto stream_frame = dd::encode_generate_request(
      request, dd::MessageType::kGenerateStreamRequest);
  ASSERT_EQ(dd::peek_type(stream_frame).value(),
            dd::MessageType::kGenerateStreamRequest);
  const auto stream_decoded = dd::decode_generate_request(stream_frame);
  ASSERT_TRUE(stream_decoded.ok());
  EXPECT_EQ(stream_decoded->seed, request.seed);
}

TEST(DistWire, EncodingIsDeterministic) {
  ds::GenerateRequest request;
  request.model = "m";
  request.seed = 42;
  EXPECT_EQ(dd::encode_generate_request(request),
            dd::encode_generate_request(request));

  ds::GenerateResult result;
  result.patterns = {sample_pattern(0), sample_pattern(7)};
  result.stats = sample_stats();
  EXPECT_EQ(dd::encode_generate_result(result),
            dd::encode_generate_result(result));
}

TEST(DistWire, GenerateResultRoundTrip) {
  ds::GenerateResult result;
  result.patterns = {sample_pattern(0), sample_pattern(100)};
  result.stats = sample_stats();

  const auto decoded =
      dd::decode_generate_result(dd::encode_generate_result(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded->patterns.size(), 2U);
  expect_same_pattern(decoded->patterns[0], result.patterns[0]);
  expect_same_pattern(decoded->patterns[1], result.patterns[1]);
  EXPECT_EQ(decoded->stats.topologies_requested, 9);
  EXPECT_EQ(decoded->stats.topologies_admitted, 4);
  EXPECT_TRUE(decoded->stats.degraded);
  EXPECT_DOUBLE_EQ(decoded->stats.sampling_seconds, 0.125);
  EXPECT_EQ(decoded->stats.fused_batch_slots, 4);
}

TEST(DistWire, EmptyResultRoundTrip) {
  const auto decoded =
      dd::decode_generate_result(dd::encode_generate_result({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->patterns.empty());
  EXPECT_EQ(decoded->stats.topologies_requested, 0);
}

TEST(DistWire, StreamedPatternRoundTrip) {
  ds::StreamedPattern slot;
  slot.index = 5;
  slot.legal = true;
  slot.prefiltered = false;
  slot.patterns = {sample_pattern(3)};

  const auto decoded =
      dd::decode_streamed_pattern(dd::encode_streamed_pattern(slot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->index, 5);
  EXPECT_TRUE(decoded->legal);
  EXPECT_FALSE(decoded->prefiltered);
  ASSERT_EQ(decoded->patterns.size(), 1U);
  expect_same_pattern(decoded->patterns[0], slot.patterns[0]);
}

TEST(DistWire, StatusRoundTripKeepsRetryHint) {
  const auto shed =
      dc::Status::Unavailable("shard overloaded").with_retry_after(35);
  const auto decoded = dd::decode_status(dd::encode_status(shed));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->status.code(), dc::StatusCode::kUnavailable);
  EXPECT_EQ(decoded->status.message(), "shard overloaded");
  EXPECT_TRUE(decoded->status.has_retry_after());
  EXPECT_EQ(decoded->status.retry_after_ms(), 35);

  // A hint-free status stays hint-free through the wire.
  const auto plain = dd::decode_status(
      dd::encode_status(dc::Status::NotFound("no such model")));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->status.has_retry_after());
}

TEST(DistWire, WorkerHealthRoundTrip) {
  dd::WorkerHealth health;
  health.worker = "worker-2";
  health.seq = 77;
  health.admission_pending = 3;
  health.queue_depth_peak = 6;
  health.fused_fill_ratio = 0.875;
  health.requests_shed = 4;
  health.requests_accepted = 40;
  health.requests_completed = 36;
  health.arena_bytes_reserved = 1 << 20;
  health.plan_cache_hits = 250;
  health.plan_cache_misses = 5;
  health.embedding_cache_hits = 1200;

  const auto decoded =
      dd::decode_worker_health(dd::encode_worker_health(health));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->worker, "worker-2");
  EXPECT_EQ(decoded->seq, 77U);
  EXPECT_EQ(decoded->admission_pending, 3);
  EXPECT_EQ(decoded->queue_depth_peak, 6);
  EXPECT_DOUBLE_EQ(decoded->fused_fill_ratio, 0.875);
  EXPECT_EQ(decoded->requests_shed, 4);
  EXPECT_EQ(decoded->requests_accepted, 40);
  EXPECT_EQ(decoded->requests_completed, 36);
  EXPECT_EQ(decoded->arena_bytes_reserved, 1 << 20);
  EXPECT_EQ(decoded->plan_cache_hits, 250);
  EXPECT_EQ(decoded->plan_cache_misses, 5);
  EXPECT_EQ(decoded->embedding_cache_hits, 1200);
}

TEST(DistWire, StreamEndRoundTrip) {
  const auto end_status =
      dc::Status::ResourceExhausted("window full").with_retry_after(12);
  const auto decoded =
      dd::decode_stream_end(dd::encode_stream_end(end_status, sample_stats()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->status.code(), dc::StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->status.retry_after_ms(), 12);
  EXPECT_EQ(decoded->stats.topologies_requested, 9);
}

TEST(DistWire, HealthProbeRoundTrip) {
  const auto probe = dd::encode_health_probe();
  EXPECT_EQ(probe.size(), dd::kFrameHeaderBytes);  // Empty payload.
  EXPECT_EQ(dd::peek_type(probe).value(), dd::MessageType::kHealthProbe);
}

TEST(DistWire, SplitFramesSeparatesAStreamingResponse) {
  ds::StreamedPattern slot;
  slot.index = 0;
  slot.legal = true;
  slot.patterns = {sample_pattern(1)};
  dd::Bytes buffer = dd::encode_streamed_pattern(slot);
  slot.index = 1;
  const auto second = dd::encode_streamed_pattern(slot);
  buffer.insert(buffer.end(), second.begin(), second.end());
  const auto end = dd::encode_stream_end(dc::Status::Ok(), sample_stats());
  buffer.insert(buffer.end(), end.begin(), end.end());

  const auto frames = dd::split_frames(buffer);
  ASSERT_TRUE(frames.ok()) << frames.status().to_string();
  ASSERT_EQ(frames->size(), 3U);
  EXPECT_EQ(dd::peek_type((*frames)[0]).value(),
            dd::MessageType::kStreamedPattern);
  EXPECT_EQ(dd::peek_type((*frames)[2]).value(), dd::MessageType::kStreamEnd);
  EXPECT_EQ(dd::decode_streamed_pattern((*frames)[1])->index, 1);
}

// ----------------------------------------------------- hostile buffers

TEST(DistWire, EveryTruncationPrefixIsATypedError) {
  // Chop a real frame at every possible length: each prefix must decode to
  // a typed error (never throw, never read past the end — the asan-ubsan CI
  // job turns a violation into a hard failure).
  ds::GenerateResult result;
  result.patterns = {sample_pattern(0)};
  result.stats = sample_stats();
  const auto frame = dd::encode_generate_result(result);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const dd::Bytes prefix(frame.begin(),
                           frame.begin() + static_cast<std::ptrdiff_t>(len));
    const auto decoded = dd::decode_generate_result(prefix);
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    ASSERT_EQ(decoded.status().code(), dc::StatusCode::kDataLoss)
        << "prefix length " << len << ": " << decoded.status().to_string();
  }
}

TEST(DistWire, TruncatedRequestAndStatusFramesAreDataLoss) {
  ds::GenerateRequest request;
  request.model = "m";
  const auto req_frame = dd::encode_generate_request(request);
  for (std::size_t len = 0; len < req_frame.size(); ++len) {
    const dd::Bytes prefix(
        req_frame.begin(), req_frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(dd::decode_generate_request(prefix).status().code(),
              dc::StatusCode::kDataLoss);
  }
  const auto status_frame =
      dd::encode_status(dc::Status::Unavailable("x").with_retry_after(5));
  for (std::size_t len = 0; len < status_frame.size(); ++len) {
    const dd::Bytes prefix(status_frame.begin(),
                           status_frame.begin() +
                               static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(dd::decode_status(prefix).status().code(),
              dc::StatusCode::kDataLoss);
  }
}

TEST(DistWire, BadMagicIsDataLoss) {
  auto frame = dd::encode_health_probe();
  frame[0] ^= 0xFF;
  EXPECT_EQ(dd::peek_type(frame).status().code(), dc::StatusCode::kDataLoss);
}

TEST(DistWire, UnsupportedVersionIsInvalidArgument) {
  auto frame = dd::encode_health_probe();
  frame[4] = 0x63;  // version 99.
  const auto peeked = dd::peek_type(frame);
  EXPECT_EQ(peeked.status().code(), dc::StatusCode::kInvalidArgument);
}

TEST(DistWire, UnknownMessageTypeIsInvalidArgument) {
  auto frame = dd::encode_health_probe();
  frame[6] = 0x2A;  // type 42: outside the enum.
  EXPECT_EQ(dd::peek_type(frame).status().code(),
            dc::StatusCode::kInvalidArgument);
  frame[6] = 0x00;  // type 0: below the enum.
  EXPECT_EQ(dd::peek_type(frame).status().code(),
            dc::StatusCode::kInvalidArgument);
}

TEST(DistWire, WrongTypePayloadIsInvalidArgument) {
  // A well-formed status frame handed to the result decoder (and vice
  // versa) must answer with a typed error, not misinterpret the payload.
  const auto status_frame = dd::encode_status(dc::Status::Internal("boom"));
  EXPECT_EQ(dd::decode_generate_result(status_frame).status().code(),
            dc::StatusCode::kInvalidArgument);
  const auto result_frame = dd::encode_generate_result({});
  EXPECT_EQ(dd::decode_status(result_frame).status().code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(dd::decode_worker_health(result_frame).status().code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(dd::decode_stream_end(result_frame).status().code(),
            dc::StatusCode::kInvalidArgument);
}

TEST(DistWire, OverlongNameIsInvalidArgumentNotAllocation) {
  // A model name longer than the decoder's cap is rejected semantically —
  // the length prefix is validated before any byte is consumed.
  ds::GenerateRequest request;
  request.model = std::string(dd::kMaxNameBytes + 1, 'x');
  const auto frame = dd::encode_generate_request(request);
  EXPECT_EQ(dd::decode_generate_request(frame).status().code(),
            dc::StatusCode::kInvalidArgument);

  // At exactly the cap it still round-trips.
  request.model = std::string(dd::kMaxNameBytes, 'x');
  const auto ok = dd::decode_generate_request(
      dd::encode_generate_request(request));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->model.size(), dd::kMaxNameBytes);
}

TEST(DistWire, HostileLengthPrefixCannotDriveAllocation) {
  // Patch the request's model-name length to 0xFFFFFFFF: the decoder must
  // notice the buffer cannot hold it BEFORE allocating.
  ds::GenerateRequest request;
  request.model = "m";
  auto frame = dd::encode_generate_request(request);
  for (int i = 0; i < 4; ++i) {
    frame[dd::kFrameHeaderBytes + static_cast<std::size_t>(i)] = 0xFF;
  }
  const auto decoded = dd::decode_generate_request(frame);
  ASSERT_FALSE(decoded.ok());
  // 4G exceeds the name cap -> semantic rejection fires first; either typed
  // error is acceptable, UB is not.
  EXPECT_TRUE(decoded.status().code() == dc::StatusCode::kInvalidArgument ||
              decoded.status().code() == dc::StatusCode::kDataLoss);
}

TEST(DistWire, HostilePatternCountIsDataLoss) {
  // An empty result frame whose pattern count claims 2^32-1 entries: the
  // count-vs-remaining check rejects it before the reserve.
  auto frame = dd::encode_generate_result({});
  for (int i = 0; i < 4; ++i) {
    frame[dd::kFrameHeaderBytes + static_cast<std::size_t>(i)] = 0xFF;
  }
  EXPECT_EQ(dd::decode_generate_result(frame).status().code(),
            dc::StatusCode::kDataLoss);
}

TEST(DistWire, HostilePatternDimensionsAreDataLoss) {
  // One pattern claiming 65535x65535 cells inside a tiny payload.
  ds::GenerateResult result;
  result.patterns = {sample_pattern(0)};
  auto frame = dd::encode_generate_result(result);
  // Rows field sits right after the 4-byte pattern count.
  const std::size_t rows_at = dd::kFrameHeaderBytes + 4;
  for (std::size_t i = 0; i < 8; ++i) {
    frame[rows_at + i] = 0xFF;
  }
  EXPECT_EQ(dd::decode_generate_result(frame).status().code(),
            dc::StatusCode::kDataLoss);
}

TEST(DistWire, NonBinaryTopologyCellIsDataLoss) {
  ds::GenerateResult result;
  result.patterns = {sample_pattern(0)};
  auto frame = dd::encode_generate_result(result);
  // First cell byte: after pattern count (4) and rows/cols (8).
  frame[dd::kFrameHeaderBytes + 12] = 7;
  EXPECT_EQ(dd::decode_generate_result(frame).status().code(),
            dc::StatusCode::kDataLoss);
}

TEST(DistWire, UnknownStatusCodeIsInvalidArgument) {
  auto frame = dd::encode_status(dc::Status::Ok());
  frame[dd::kFrameHeaderBytes] = 0x77;  // Code 119: not a StatusCode.
  EXPECT_EQ(dd::decode_status(frame).status().code(),
            dc::StatusCode::kInvalidArgument);
}

TEST(DistWire, TrailingBytesAreDataLoss) {
  // Bytes past the declared payload inside a single-frame decode are
  // structural corruption (a streaming *buffer* uses split_frames instead).
  auto frame = dd::encode_status(dc::Status::Ok());
  frame.push_back(0x00);
  EXPECT_EQ(dd::decode_status(frame).status().code(),
            dc::StatusCode::kDataLoss);

  // Payload-internal padding is caught too: grow the payload and patch the
  // header length to match, so only the exhaustion check can notice.
  auto padded = dd::encode_status(dc::Status::Ok());
  padded.push_back(0x00);
  const auto payload =
      static_cast<std::uint32_t>(padded.size() - dd::kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    padded[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((payload >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(dd::decode_status(padded).status().code(),
            dc::StatusCode::kDataLoss);
}

TEST(DistWire, SplitFramesRejectsTrailingGarbage) {
  auto buffer = dd::encode_health_probe();
  buffer.push_back(0x42);  // Not even a full header.
  EXPECT_EQ(dd::split_frames(buffer).status().code(),
            dc::StatusCode::kDataLoss);
}

TEST(DistWire, EmptyAndGarbageBuffersAreTypedErrors) {
  EXPECT_EQ(dd::peek_type({}).status().code(), dc::StatusCode::kDataLoss);
  dd::Bytes garbage(64, 0xA5);
  EXPECT_EQ(dd::peek_type(garbage).status().code(),
            dc::StatusCode::kDataLoss);
  EXPECT_EQ(dd::decode_generate_request(garbage).status().code(),
            dc::StatusCode::kDataLoss);
  // An empty buffer splits into zero frames (a valid empty stream body
  // never occurs, but the function is total).
  const auto empty = dd::split_frames({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(DistWire, WorkerAnnounceRoundTrip) {
  dd::WorkerAnnounce announce;
  announce.worker = "worker-3";
  announce.address = "tcp:[::1]:7070";
  announce.models = {"demo", "mini", "prod"};
  const auto frame = dd::encode_worker_announce(announce);
  EXPECT_EQ(dd::peek_type(frame).value(), dd::MessageType::kWorkerAnnounce);
  auto decoded = dd::decode_worker_announce(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->worker, announce.worker);
  EXPECT_EQ(decoded->address, announce.address);
  EXPECT_EQ(decoded->models, announce.models);
  // No-model announces encode fine (the registry rejects them upstream).
  dd::WorkerAnnounce empty;
  auto empty_decoded =
      dd::decode_worker_announce(dd::encode_worker_announce(empty));
  ASSERT_TRUE(empty_decoded.ok());
  EXPECT_TRUE(empty_decoded->models.empty());
}

TEST(DistWire, EveryAnnounceTruncationPrefixIsATypedError) {
  dd::WorkerAnnounce announce;
  announce.worker = "w";
  announce.address = "unix:/tmp/w.sock";
  announce.models = {"demo"};
  const auto frame = dd::encode_worker_announce(announce);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    dd::Bytes prefix(frame.begin(), frame.begin() + len);
    const auto decoded = dd::decode_worker_announce(prefix);
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.status().code(), dc::StatusCode::kDataLoss)
        << "prefix length " << len;
  }
}

TEST(DistWire, HostileAnnounceModelCountIsBounded) {
  dd::WorkerAnnounce announce;
  announce.worker = "w";
  announce.address = "tcp:h:1";
  const auto frame = dd::encode_worker_announce(announce);
  // The model-count word sits right past the two strings; claim 2^32-1
  // models and the decoder must answer typed without allocating them.
  auto mutant = frame;
  const std::size_t count_at = mutant.size() - 4;
  mutant[count_at] = 0xFF;
  mutant[count_at + 1] = 0xFF;
  mutant[count_at + 2] = 0xFF;
  mutant[count_at + 3] = 0xFF;
  const auto decoded = dd::decode_worker_announce(mutant);
  ASSERT_FALSE(decoded.ok());
  const auto code = decoded.status().code();
  EXPECT_TRUE(code == dc::StatusCode::kDataLoss ||
              code == dc::StatusCode::kInvalidArgument)
      << decoded.status().to_string();
}

TEST(DistWire, ByteFlipSweepNeverCrashes) {
  // Deterministic single-byte corruption sweep over a result frame: every
  // mutant must come back as ok-or-typed-error. This is the cheap, seedless
  // fuzz tier the asan-ubsan job amplifies.
  ds::GenerateResult result;
  result.patterns = {sample_pattern(0), sample_pattern(9)};
  result.stats = sample_stats();
  const auto frame = dd::encode_generate_result(result);
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      auto mutant = frame;
      mutant[pos] = static_cast<std::uint8_t>(mutant[pos] ^ flip);
      const auto decoded = dd::decode_generate_result(mutant);
      if (!decoded.ok()) {
        const auto code = decoded.status().code();
        ASSERT_TRUE(code == dc::StatusCode::kDataLoss ||
                    code == dc::StatusCode::kInvalidArgument)
            << "pos " << pos << " flip " << int{flip} << ": "
            << decoded.status().to_string();
      }
    }
  }
}

}  // namespace
