#include <gtest/gtest.h>

#include "common/rng.h"
#include "layout/deep_squish.h"
#include "layout/squish.h"

namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;
using dg::BinaryGrid;
using dg::Rect;
using dl::Layout;
using dl::SquishPattern;

namespace {

Layout two_bar_layout() {
  // Two horizontal bars in a 100x100 tile.
  Layout l;
  l.width = 100;
  l.height = 100;
  l.rects.push_back(Rect{10, 10, 90, 30});
  l.rects.push_back(Rect{10, 60, 50, 80});
  return l;
}

Layout random_layout(diffpattern::common::Rng& rng, int n_rects) {
  Layout l;
  l.width = 256;
  l.height = 256;
  for (int i = 0; i < n_rects; ++i) {
    const auto x0 = rng.uniform_int(0, 200);
    const auto y0 = rng.uniform_int(0, 200);
    const auto w = rng.uniform_int(8, 56);
    const auto h = rng.uniform_int(8, 56);
    l.rects.push_back(Rect{x0, y0, x0 + w, y0 + h});
  }
  return l;
}

}  // namespace

TEST(Squish, ExtractKnownTopology) {
  SquishPattern p = dl::extract_squish(two_bar_layout());
  // Scan lines: x = {0,10,50,90,100}, y = {0,10,30,60,80,100}.
  EXPECT_EQ(p.topology.cols(), 4);
  EXPECT_EQ(p.topology.rows(), 5);
  EXPECT_EQ(p.dx, (std::vector<dg::Coord>{10, 40, 40, 10}));
  EXPECT_EQ(p.dy, (std::vector<dg::Coord>{10, 20, 30, 20, 20}));
  // Bottom bar spans columns 1..2 on row 1; top bar column 1 on row 3.
  EXPECT_EQ(p.topology.at(1, 1), 1);
  EXPECT_EQ(p.topology.at(1, 2), 1);
  EXPECT_EQ(p.topology.at(3, 1), 1);
  EXPECT_EQ(p.topology.at(3, 2), 0);
  EXPECT_EQ(p.topology.at(0, 0), 0);
}

TEST(Squish, RoundTripIsLossless) {
  diffpattern::common::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Layout original = random_layout(rng, 6);
    SquishPattern p = dl::extract_squish(original);
    Layout restored = dl::restore_layout(p);
    SquishPattern p2 = dl::extract_squish(restored);
    EXPECT_TRUE(dl::same_layout(p, p2)) << "trial " << trial;
  }
}

TEST(Squish, OverlappingRectsMerge) {
  Layout l;
  l.width = 100;
  l.height = 100;
  l.rects.push_back(Rect{10, 10, 50, 50});
  l.rects.push_back(Rect{30, 30, 70, 70});
  SquishPattern p = dl::extract_squish(l);
  Layout restored = dl::restore_layout(p);
  // The union is an 8-vertex rectilinear polygon; re-extraction must agree.
  EXPECT_TRUE(dl::same_layout(p, dl::extract_squish(restored)));
}

TEST(Squish, ValidateRejectsBadPatterns) {
  SquishPattern p;
  p.topology = BinaryGrid(2, 2);
  p.dx = {10, 10};
  p.dy = {10};  // Wrong size.
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.dy = {10, 0};  // Non-positive delta.
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.dy = {10, 10};
  EXPECT_NO_THROW(p.validate());
}

TEST(Squish, ExtractRejectsOutOfTileRect) {
  Layout l;
  l.width = 50;
  l.height = 50;
  l.rects.push_back(Rect{40, 40, 60, 45});
  EXPECT_THROW(dl::extract_squish(l), std::invalid_argument);
}

TEST(Squish, CanonicalizeMergesDuplicateLines) {
  SquishPattern p = dl::extract_squish(two_bar_layout());
  SquishPattern padded = dl::pad_to(p, 8, 8);
  EXPECT_EQ(padded.topology.rows(), 8);
  EXPECT_EQ(padded.topology.cols(), 8);
  SquishPattern canon = dl::canonicalize(padded);
  EXPECT_EQ(canon.topology.rows(), p.topology.rows());
  EXPECT_EQ(canon.topology.cols(), p.topology.cols());
  EXPECT_EQ(canon.dx, p.dx);
  EXPECT_EQ(canon.dy, p.dy);
}

TEST(Squish, PadPreservesGeometry) {
  diffpattern::common::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Layout original = random_layout(rng, 4);
    SquishPattern p = dl::extract_squish(original);
    if (p.topology.rows() > 16 || p.topology.cols() > 16) {
      continue;
    }
    SquishPattern padded = dl::pad_to(p, 16, 16);
    EXPECT_TRUE(dl::same_layout(p, padded)) << "trial " << trial;
    EXPECT_EQ(padded.width(), p.width());
    EXPECT_EQ(padded.height(), p.height());
  }
}

TEST(Squish, PadRejectsOversizedPattern) {
  SquishPattern p = dl::extract_squish(two_bar_layout());
  EXPECT_THROW(dl::pad_to(p, 2, 2), std::invalid_argument);
}

TEST(DeepSquish, FoldUnfoldRoundTrip) {
  diffpattern::common::Rng rng(3);
  dl::DeepSquishConfig cfg;
  cfg.channels = 4;
  BinaryGrid g(8, 8);
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < 8; ++c) {
      g.set(r, c, rng.bernoulli(0.4) ? 1 : 0);
    }
  }
  auto folded = dl::fold_topology(g, cfg);
  EXPECT_EQ(folded.shape(), (diffpattern::tensor::Shape{4, 4, 4}));
  BinaryGrid back = dl::unfold_topology(folded, cfg);
  EXPECT_EQ(back, g);
}

TEST(DeepSquish, FoldPlacementConvention) {
  dl::DeepSquishConfig cfg;
  cfg.channels = 4;
  BinaryGrid g(4, 4);
  g.set(0, 0, 1);  // Patch (0,0), cell (0,0) -> channel 0.
  g.set(2, 3, 1);  // Patch (1,1), cell (0,1) -> channel 1.
  auto folded = dl::fold_topology(g, cfg);
  EXPECT_FLOAT_EQ(folded.at({0, 0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(folded.at({1, 1, 1}), 1.0F);
  EXPECT_FLOAT_EQ(folded.at({2, 0, 0}), 0.0F);
}

TEST(DeepSquish, ChannelsMustBePerfectSquare) {
  dl::DeepSquishConfig cfg;
  cfg.channels = 3;
  BinaryGrid g(6, 6);
  EXPECT_THROW(dl::fold_topology(g, cfg), std::invalid_argument);
}

TEST(DeepSquish, FoldBatchStacksSamples) {
  dl::DeepSquishConfig cfg;
  cfg.channels = 4;
  BinaryGrid a(4, 4);
  a.set(0, 0, 1);
  BinaryGrid b(4, 4);
  b.set(3, 3, 1);
  auto batch = dl::fold_batch({a, b}, cfg);
  EXPECT_EQ(batch.shape(), (diffpattern::tensor::Shape{2, 4, 2, 2}));
  EXPECT_FLOAT_EQ(batch.at({0, 0, 0, 0}), 1.0F);
  // b's bit: row 3, col 3 -> patch (1,1), cell (1,1) -> channel 3.
  EXPECT_FLOAT_EQ(batch.at({1, 3, 1, 1}), 1.0F);
}

TEST(DeepSquish, NaiveConcatRoundTripAndPowers) {
  dl::DeepSquishConfig cfg;
  cfg.channels = 4;
  diffpattern::common::Rng rng(9);
  BinaryGrid g(6, 6);
  for (std::int64_t r = 0; r < 6; ++r) {
    for (std::int64_t c = 0; c < 6; ++c) {
      g.set(r, c, rng.bernoulli(0.5) ? 1 : 0);
    }
  }
  auto states = dl::naive_concat_encode(g, cfg);
  EXPECT_EQ(states.shape(), (diffpattern::tensor::Shape{3, 3}));
  for (std::int64_t i = 0; i < states.numel(); ++i) {
    EXPECT_GE(states[i], 0.0F);
    EXPECT_LT(states[i], 16.0F);
  }
  BinaryGrid back = dl::naive_concat_decode(states, cfg);
  EXPECT_EQ(back, g);
}

TEST(DeepSquish, StateSpaceGrowsExponentiallyForNaive) {
  // The representation ablation's core claim: the folded tensor keeps a
  // 2-state alphabet regardless of C, while naive concatenation needs 2^C.
  for (std::int64_t c : {1, 4, 9, 16}) {
    dl::DeepSquishConfig cfg;
    cfg.channels = c;
    EXPECT_EQ(cfg.patch_side() * cfg.patch_side(), c);
  }
  dl::DeepSquishConfig big;
  big.channels = 25;
  BinaryGrid g(10, 10);
  EXPECT_THROW(dl::naive_concat_encode(g, big), std::invalid_argument);
}
