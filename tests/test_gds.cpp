#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "io/gds.h"
#include "layout/squish.h"

namespace dio = diffpattern::io;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

dl::SquishPattern two_shape_pattern() {
  dl::Layout l;
  l.width = 2048;
  l.height = 2048;
  l.rects.push_back(dg::Rect{128, 128, 512, 512});
  l.rects.push_back(dg::Rect{768, 768, 1024, 1536});
  l.rects.push_back(dg::Rect{1024, 768, 1280, 1024});  // L with the above.
  return dl::extract_squish(l);
}

}  // namespace

class GdsRealSweep : public ::testing::TestWithParam<double> {};

TEST_P(GdsRealSweep, EncodeDecodeRoundTrip) {
  const double value = GetParam();
  const double decoded = dio::decode_gds_real(dio::encode_gds_real(value));
  if (value == 0.0) {
    EXPECT_EQ(decoded, 0.0);
  } else {
    EXPECT_NEAR(decoded / value, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, GdsRealSweep,
                         ::testing::Values(0.0, 1.0, -1.0, 1e-9, 1e-3, 0.5,
                                           2048.0, -3.25, 6.25e-10, 1e6));

TEST(GdsReal, KnownEncodings) {
  // 1.0 = 16^1 * (1/16): exponent 65, mantissa 2^52 pattern.
  EXPECT_EQ(dio::encode_gds_real(1.0), 0x4110000000000000ULL);
  // 2.0 = 16^1 * (2/16).
  EXPECT_EQ(dio::encode_gds_real(2.0), 0x4120000000000000ULL);
  // Sign bit for negatives.
  EXPECT_EQ(dio::encode_gds_real(-1.0), 0xC110000000000000ULL);
}

TEST(Gds, LibraryRoundTrip) {
  dio::GdsLibrary library;
  library.name = "TESTLIB";
  dio::GdsStructure structure;
  structure.name = "CELL_A";
  dio::GdsPolygon polygon;
  polygon.layer = 7;
  polygon.datatype = 2;
  polygon.ring = {{0, 0}, {100, 0}, {100, 50}, {0, 50}};
  structure.polygons.push_back(polygon);
  library.structures.push_back(structure);

  const auto path = temp_path("dp_test.gds");
  dio::write_gds(path, library);
  const auto loaded = dio::read_gds(path);
  EXPECT_EQ(loaded.name, "TESTLIB");
  ASSERT_EQ(loaded.structures.size(), 1U);
  EXPECT_EQ(loaded.structures[0].name, "CELL_A");
  ASSERT_EQ(loaded.structures[0].polygons.size(), 1U);
  const auto& p = loaded.structures[0].polygons[0];
  EXPECT_EQ(p.layer, 7);
  EXPECT_EQ(p.datatype, 2);
  EXPECT_EQ(p.ring, polygon.ring);
  std::remove(path.c_str());
}

TEST(Gds, PatternToStructurePolygonCount) {
  const auto pattern = two_shape_pattern();
  const auto structure = dio::pattern_to_structure(pattern, "P0", 3);
  // The two abutting rects merge into one polygon: 2 components total.
  EXPECT_EQ(structure.polygons.size(), 2U);
  for (const auto& polygon : structure.polygons) {
    EXPECT_EQ(polygon.layer, 3);
    EXPECT_GE(polygon.ring.size(), 4U);
    // Rectilinear ring: consecutive vertices share an axis.
    for (std::size_t i = 0; i < polygon.ring.size(); ++i) {
      const auto& a = polygon.ring[i];
      const auto& b = polygon.ring[(i + 1) % polygon.ring.size()];
      EXPECT_TRUE(a.x == b.x || a.y == b.y);
    }
  }
}

TEST(Gds, PatternGeometrySurvivesGdsRoundTrip) {
  // Writing a pattern to GDS and reading it back must preserve the exact nm
  // geometry: re-rasterize the boundaries into rects and compare squish
  // forms.
  const auto pattern = two_shape_pattern();
  const auto path = temp_path("dp_pattern.gds");
  dio::write_pattern_library_gds(path, {pattern});
  const auto library = dio::read_gds(path);
  ASSERT_EQ(library.structures.size(), 1U);
  EXPECT_EQ(library.structures[0].name, "PATTERN_0000");

  // The union of the boundary bounding traversals equals the original
  // shapes; verify via total polygon area (shoelace) == shape area in nm^2.
  std::int64_t shape_area = 0;
  for (std::int64_t r = 0; r < pattern.topology.rows(); ++r) {
    for (std::int64_t c = 0; c < pattern.topology.cols(); ++c) {
      if (pattern.topology.get_unchecked(r, c)) {
        shape_area += pattern.dx[static_cast<std::size_t>(c)] *
                      pattern.dy[static_cast<std::size_t>(r)];
      }
    }
  }
  double gds_area = 0.0;
  for (const auto& polygon : library.structures[0].polygons) {
    double twice = 0.0;
    const auto& ring = polygon.ring;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const auto& a = ring[i];
      const auto& b = ring[(i + 1) % ring.size()];
      twice += static_cast<double>(a.x) * b.y - static_cast<double>(b.x) * a.y;
    }
    gds_area += std::abs(twice) / 2.0;
  }
  EXPECT_DOUBLE_EQ(gds_area, static_cast<double>(shape_area));
  std::remove(path.c_str());
}

TEST(Gds, MultiplePatternsMultipleStructures) {
  diffpattern::common::Rng rng(3);
  std::vector<dl::SquishPattern> patterns = {two_shape_pattern(),
                                             two_shape_pattern()};
  const auto path = temp_path("dp_multi.gds");
  dio::write_pattern_library_gds(path, patterns, 9);
  const auto library = dio::read_gds(path);
  ASSERT_EQ(library.structures.size(), 2U);
  EXPECT_EQ(library.structures[1].name, "PATTERN_0001");
  EXPECT_EQ(library.structures[0].polygons.front().layer, 9);
  std::remove(path.c_str());
}

TEST(Gds, ReaderRejectsGarbageAndTruncation) {
  const auto path = temp_path("dp_bad.gds");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a gds file at all";
  }
  EXPECT_THROW(dio::read_gds(path), std::exception);
  // Valid file truncated before ENDLIB.
  dio::GdsLibrary library;
  library.structures.push_back(dio::GdsStructure{"C", {}});
  dio::write_gds(path, library);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  std::filesystem::resize_file(path, size - 6, ec);
  EXPECT_THROW(dio::read_gds(path), std::exception);
  std::remove(path.c_str());
  EXPECT_THROW(dio::read_gds("/nonexistent.gds"), std::runtime_error);
}

TEST(Gds, WriterRejectsDegeneratePolygon) {
  dio::GdsLibrary library;
  dio::GdsStructure structure;
  structure.name = "BAD";
  dio::GdsPolygon polygon;
  polygon.ring = {{0, 0}, {1, 0}};  // Two vertices only.
  structure.polygons.push_back(polygon);
  library.structures.push_back(structure);
  EXPECT_THROW(dio::write_gds(temp_path("dp_degenerate.gds"), library),
               std::invalid_argument);
}
