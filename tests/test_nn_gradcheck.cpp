// Numerical gradient checks for every differentiable op.
//
// For each op we build a scalar loss L(theta) = sum(w ⊙ f(theta)) with a
// fixed random weighting w (so the gradient is not trivially uniform),
// compare autograd gradients against central differences, and require
// agreement to a relative tolerance appropriate for float32.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"

namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;
using diffpattern::tensor::Shape;
using diffpattern::tensor::Tensor;
using nn::Var;

namespace {

Tensor random_tensor(dc::Rng& rng, Shape shape, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, scale));
  }
  return t;
}

/// Weighted-sum loss so each output element has a distinct gradient path.
Var weighted_sum(const Var& y, const Tensor& w) {
  return nn::sum_all(nn::mul_const(y, w));
}

/// Checks d(loss)/d(inputs[i]) for every input against central differences.
void grad_check(const std::function<Var(const std::vector<Var>&)>& fn,
                std::vector<Tensor> inputs, double eps = 1e-3,
                double tol = 2e-2) {
  // Analytic gradients.
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (auto& t : inputs) {
    vars.emplace_back(t, /*requires_grad=*/true);
  }
  Var loss = fn(vars);
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();

  for (std::size_t vi = 0; vi < vars.size(); ++vi) {
    const Tensor analytic = vars[vi].grad();
    for (std::int64_t i = 0; i < inputs[vi].numel(); ++i) {
      const float saved = inputs[vi][i];
      inputs[vi][i] = saved + static_cast<float>(eps);
      std::vector<Var> vp;
      for (const auto& t : inputs) vp.emplace_back(t, false);
      const double lp = fn(vp).value()[0];
      inputs[vi][i] = saved - static_cast<float>(eps);
      std::vector<Var> vm;
      for (const auto& t : inputs) vm.emplace_back(t, false);
      const double lm = fn(vm).value()[0];
      inputs[vi][i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double a = analytic[i];
      const double denom = std::max({std::abs(a), std::abs(numeric), 1.0});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "input " << vi << " element " << i;
    }
  }
}

}  // namespace

TEST(GradCheck, AddSubMulScale) {
  dc::Rng rng(1);
  Tensor w = random_tensor(rng, {2, 3});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::add(v[0], v[1]);
        y = nn::sub(y, nn::scale(v[1], 0.5F));
        y = nn::mul(y, v[0]);
        y = nn::add_scalar(y, 0.3F);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {2, 3}), random_tensor(rng, {2, 3})});
}

TEST(GradCheck, ConstOps) {
  dc::Rng rng(2);
  Tensor w = random_tensor(rng, {4});
  Tensor c1 = random_tensor(rng, {4});
  Tensor c2 = random_tensor(rng, {4});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::mul_const(v[0], c1);
        y = nn::add_const(y, c2);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {4})});
}

TEST(GradCheck, ActivationsSmooth) {
  dc::Rng rng(3);
  Tensor w = random_tensor(rng, {3, 3});
  for (auto* op : {&nn::sigmoid, &nn::silu, &nn::gelu, &nn::tanh_act,
                   &nn::softplus}) {
    grad_check(
        [&](const std::vector<Var>& v) { return weighted_sum((*op)(v[0]), w); },
        {random_tensor(rng, {3, 3})});
  }
}

TEST(GradCheck, ReluAwayFromKink) {
  dc::Rng rng(4);
  Tensor x = random_tensor(rng, {10});
  // Keep inputs away from 0 where the numerical derivative is invalid.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05F) {
      x[i] = 0.2F;
    }
  }
  Tensor w = random_tensor(rng, {10});
  grad_check(
      [&](const std::vector<Var>& v) { return weighted_sum(nn::relu(v[0]), w); },
      {x});
}

TEST(GradCheck, LogClamped) {
  dc::Rng rng(5);
  Tensor x({6});
  for (std::int64_t i = 0; i < 6; ++i) {
    x[i] = 0.2F + static_cast<float>(rng.uniform(0.0, 2.0));
  }
  Tensor w = random_tensor(rng, {6});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::log_clamped(v[0]), w);
      },
      {x});
}

TEST(GradCheck, MatmulAndLinear) {
  dc::Rng rng(6);
  Tensor w = random_tensor(rng, {2, 4});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::matmul(v[0], v[1]), w);
      },
      {random_tensor(rng, {2, 3}), random_tensor(rng, {3, 4})});

  Tensor w2 = random_tensor(rng, {3, 5});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::linear(v[0], v[1], v[2]), w2);
      },
      {random_tensor(rng, {3, 4}), random_tensor(rng, {5, 4}),
       random_tensor(rng, {5})});
}

TEST(GradCheck, Bmm) {
  dc::Rng rng(7);
  Tensor w = random_tensor(rng, {2, 2, 4});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::bmm(v[0], v[1]), w);
      },
      {random_tensor(rng, {2, 2, 3}), random_tensor(rng, {2, 3, 4})});
}

TEST(GradCheck, Conv2dStridePadding) {
  dc::Rng rng(8);
  // 2 samples, 2 in channels, 3 out channels, 3x3 kernel, stride 2, pad 1.
  Tensor w = random_tensor(rng, {2, 3, 3, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::conv2d(v[0], v[1], v[2], /*stride=*/2, /*padding=*/1);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {2, 2, 5, 4}), random_tensor(rng, {3, 2, 3, 3}),
       random_tensor(rng, {3})});
}

TEST(GradCheck, GroupNorm) {
  dc::Rng rng(9);
  Tensor w = random_tensor(rng, {2, 4, 3, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::group_norm(v[0], v[1], v[2], /*groups=*/2);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {2, 4, 3, 2}), random_tensor(rng, {4}),
       random_tensor(rng, {4})},
      1e-3, 3e-2);
}

TEST(GradCheck, LayerNorm) {
  dc::Rng rng(10);
  Tensor w = random_tensor(rng, {3, 6});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::layer_norm(v[0], v[1], v[2]);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {3, 6}), random_tensor(rng, {6}),
       random_tensor(rng, {6})},
      1e-3, 3e-2);
}

TEST(GradCheck, SoftmaxLast) {
  dc::Rng rng(11);
  Tensor w = random_tensor(rng, {2, 5});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::softmax_last(v[0]), w);
      },
      {random_tensor(rng, {2, 5})});
}

TEST(GradCheck, ShapeOps) {
  dc::Rng rng(12);
  Tensor w = random_tensor(rng, {6, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::reshape(v[0], {6, 2});
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {3, 4})});

  Tensor w2 = random_tensor(rng, {4, 3, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::permute(v[0], {2, 1, 0});
        return weighted_sum(y, w2);
      },
      {random_tensor(rng, {2, 3, 4})});
}

TEST(GradCheck, SliceAndConcatChannels) {
  dc::Rng rng(13);
  Tensor w = random_tensor(rng, {2, 2, 2, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::slice_channels(v[0], 1, 2);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {2, 4, 2, 2})});

  Tensor w2 = random_tensor(rng, {2, 5, 2, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var y = nn::concat_channels(v[0], v[1]);
        return weighted_sum(y, w2);
      },
      {random_tensor(rng, {2, 2, 2, 2}), random_tensor(rng, {2, 3, 2, 2})});
}

TEST(GradCheck, AddSpatialBroadcast) {
  dc::Rng rng(18);
  Tensor w = random_tensor(rng, {2, 3, 2, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::add_spatial_broadcast(v[0], v[1]), w);
      },
      {random_tensor(rng, {2, 3, 2, 2}), random_tensor(rng, {2, 3})});
}

TEST(GradCheck, UpsampleAndPool) {
  dc::Rng rng(14);
  Tensor w = random_tensor(rng, {1, 2, 4, 4});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::upsample_nearest2(v[0]), w);
      },
      {random_tensor(rng, {1, 2, 2, 2})});

  Tensor w2 = random_tensor(rng, {1, 2, 2, 2});
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::avg_pool2(v[0]), w2);
      },
      {random_tensor(rng, {1, 2, 4, 4})});
}

TEST(GradCheck, EmbeddingLookup) {
  dc::Rng rng(15);
  Tensor w = random_tensor(rng, {4, 3});
  const std::vector<std::int64_t> ids = {0, 2, 2, 1};
  grad_check(
      [&](const std::vector<Var>& v) {
        return weighted_sum(nn::embedding_lookup(v[0], ids), w);
      },
      {random_tensor(rng, {3, 3})});
}

TEST(GradCheck, CompositeAttentionBlock) {
  // Gradients flow through a full scaled-dot-product attention assembled
  // from primitives (the same composition the U-Net and transformer use).
  dc::Rng rng(16);
  const std::int64_t b = 1, t = 4, d = 3;
  Tensor w = random_tensor(rng, {b, t, d});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var q = v[0];
        Var k = v[1];
        Var val = v[2];
        Var scores =
            nn::scale(nn::bmm(q, nn::permute(k, {0, 2, 1})),
                      1.0F / std::sqrt(static_cast<float>(d)));
        Var attn = nn::softmax_last(scores);
        Var out = nn::bmm(attn, val);
        return weighted_sum(out, w);
      },
      {random_tensor(rng, {b, t, d}), random_tensor(rng, {b, t, d}),
       random_tensor(rng, {b, t, d})});
}

TEST(GradCheck, DiamondGraphAccumulatesBothPaths) {
  // y = x*x + x used twice: checks gradient accumulation on shared nodes.
  dc::Rng rng(17);
  Tensor w = random_tensor(rng, {3});
  grad_check(
      [&](const std::vector<Var>& v) {
        Var sq = nn::mul(v[0], v[0]);
        Var y = nn::add(sq, v[0]);
        return weighted_sum(y, w);
      },
      {random_tensor(rng, {3})});
}
