#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "drc/checker.h"
#include "layout/squish.h"
#include "legalize/constraints.h"
#include "legalize/solver.h"

namespace dle = diffpattern::legalize;
namespace dd = diffpattern::drc;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;
namespace dc = diffpattern::common;
using dg::BinaryGrid;

namespace {

BinaryGrid grid_from_ascii(const std::vector<std::string>& rows_top_first) {
  const auto rows = static_cast<std::int64_t>(rows_top_first.size());
  const auto cols = static_cast<std::int64_t>(rows_top_first.front().size());
  BinaryGrid g(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto& line = rows_top_first[static_cast<std::size_t>(rows - 1 - r)];
    for (std::int64_t c = 0; c < cols; ++c) {
      g.set(r, c, line[static_cast<std::size_t>(c)] == '#' ? 1 : 0);
    }
  }
  return g;
}

dd::DesignRules test_rules() {
  dd::DesignRules rules;
  rules.space_min = 30;
  rules.width_min = 30;
  rules.area_min = 900;
  rules.area_max = 40000;
  return rules;
}

/// Random bowtie-free topology with a controlled shape density.
BinaryGrid random_topology(dc::Rng& rng, std::int64_t side) {
  while (true) {
    BinaryGrid g(side, side);
    // Random rectangles in grid space produce realistic run structure.
    const auto n = rng.uniform_int(1, 4);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto r0 = rng.uniform_int(0, side - 2);
      const auto c0 = rng.uniform_int(0, side - 2);
      const auto r1 = rng.uniform_int(r0 + 1, side - 1);
      const auto c1 = rng.uniform_int(c0 + 1, side - 1);
      for (auto r = r0; r <= r1; ++r) {
        for (auto c = c0; c <= c1; ++c) {
          g.set(r, c, 1);
        }
      }
    }
    if (dle::prefilter_topology(g) == dle::PrefilterVerdict::ok) {
      return g;
    }
  }
}

}  // namespace

TEST(Constraints, ExtractsSetWAndSetS) {
  // One row: ##.# -> 1-runs [0,1], [3,3]; interior 0-run [2,2].
  BinaryGrid g = grid_from_ascii({"##.#"});
  auto system = dle::build_constraints(g, test_rules(), 400, 100);
  // x: two width intervals + one space interval; y: column 1-runs ([0,0])
  // for columns 0, 1, 3 dedup to one [0,0] interval.
  EXPECT_EQ(system.x_intervals.size(), 3U);
  EXPECT_EQ(system.y_intervals.size(), 1U);
  bool found_space = false;
  for (const auto& c : system.x_intervals) {
    if (c.lo == 2 && c.hi == 2) {
      EXPECT_EQ(c.min_span, test_rules().space_min);
      found_space = true;
    }
  }
  EXPECT_TRUE(found_space);
}

TEST(Constraints, DuplicateIntervalsKeepLargestBound) {
  auto rules = test_rules();
  rules.width_min = 10;
  rules.space_min = 50;
  // Column 0: a 1-run [0,0] in rows; row runs give [0,0] as width too.
  BinaryGrid g = grid_from_ascii({"#.#"});
  auto system = dle::build_constraints(g, rules, 300, 100);
  // Interval [1,1] is a space run (50); intervals [0,0] and [2,2] are
  // width runs (10).
  for (const auto& c : system.x_intervals) {
    if (c.lo == 1) {
      EXPECT_EQ(c.min_span, 50);
    } else {
      EXPECT_EQ(c.min_span, 10);
    }
  }
}

TEST(Constraints, PolygonCellsCaptured) {
  BinaryGrid g = grid_from_ascii({"#.", "##"});
  auto system = dle::build_constraints(g, test_rules(), 200, 200);
  ASSERT_EQ(system.polygons.size(), 1U);
  EXPECT_EQ(system.polygons[0].cells.size(), 3U);
  EXPECT_EQ(system.polygons[0].area_min, test_rules().area_min);
}

TEST(Constraints, ObviousInfeasibilityDetected) {
  // 4 columns alternating #.#. -> demands 30+30+30 over disjoint intervals
  // plus delta_min, far above a 50 nm tile.
  BinaryGrid g = grid_from_ascii({"#.#."});
  auto system = dle::build_constraints(g, test_rules(), 50, 50);
  EXPECT_TRUE(system.obviously_infeasible());
  auto roomy = dle::build_constraints(g, test_rules(), 500, 500);
  EXPECT_FALSE(roomy.obviously_infeasible());
}

TEST(Prefilter, Verdicts) {
  EXPECT_EQ(dle::prefilter_topology(grid_from_ascii({"..", ".."})),
            dle::PrefilterVerdict::empty_topology);
  EXPECT_EQ(dle::prefilter_topology(grid_from_ascii({"#.", ".#"})),
            dle::PrefilterVerdict::bowtie);
  EXPECT_EQ(dle::prefilter_topology(grid_from_ascii({"##", ".."})),
            dle::PrefilterVerdict::ok);
}

TEST(Solver, SolvesSimpleTopologyAndIsDrcClean) {
  BinaryGrid g = grid_from_ascii({"....",
                                  ".##.",
                                  ".##.",
                                  "...."});
  dc::Rng rng(1);
  dle::SolverConfig config;
  config.init = dle::InitMode::solving_r;
  auto result =
      dle::legalize_topology(g, test_rules(), 400, 400, config, rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  result.pattern.validate();
  EXPECT_EQ(result.pattern.width(), 400);
  EXPECT_EQ(result.pattern.height(), 400);
  EXPECT_TRUE(dd::check_pattern(result.pattern, test_rules()).clean());
}

TEST(Solver, PropertyRandomTopologiesAlwaysCleanOrRejected) {
  // The central legality property (Table I, 100% legality): whatever the
  // solver returns must be DRC-clean; infeasible inputs must be rejected,
  // not mangled.
  dc::Rng rng(7);
  int solved = 0;
  for (int trial = 0; trial < 30; ++trial) {
    BinaryGrid g = random_topology(rng, 6);
    dle::SolverConfig config;
    config.init = dle::InitMode::solving_r;
    auto result =
        dle::legalize_topology(g, test_rules(), 600, 600, config, rng);
    if (result.success) {
      ++solved;
      EXPECT_TRUE(dd::check_pattern(result.pattern, test_rules()).clean())
          << "trial " << trial << "\n"
          << g.to_ascii();
      EXPECT_EQ(result.pattern.topology, g);
    }
  }
  EXPECT_GT(solved, 20) << "solver failed on too many feasible instances";
}

TEST(Solver, RespectsAllThreeRulePresets) {
  dc::Rng rng(13);
  BinaryGrid g = grid_from_ascii({"......",
                                  ".##...",
                                  ".##.#.",
                                  "....#.",
                                  "....#.",
                                  "......"});
  for (const auto& rules :
       {dd::standard_rules(), dd::larger_space_rules(),
        dd::smaller_area_rules()}) {
    dle::SolverConfig config;
    auto result =
        dle::legalize_topology(g, rules, 2048, 2048, config, rng);
    ASSERT_TRUE(result.success) << result.failure_reason;
    EXPECT_TRUE(dd::check_pattern(result.pattern, rules).clean());
  }
}

TEST(Solver, PrefilterShortCircuits) {
  dc::Rng rng(2);
  BinaryGrid bowtie = grid_from_ascii({"#.", ".#"});
  auto result = dle::legalize_topology(bowtie, test_rules(), 100, 100,
                                       dle::SolverConfig{}, rng);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure_reason.find("bowtie"), std::string::npos);
}

TEST(Solver, InfeasibleTileRejected) {
  dc::Rng rng(3);
  BinaryGrid g = grid_from_ascii({"#.#.#.#"});
  auto result = dle::legalize_topology(g, test_rules(), 60, 60,
                                       dle::SolverConfig{}, rng);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(Solver, AreaMaxForcesSmallPolygons) {
  // A single polygon covering the whole grid: area == tile area would
  // exceed area_max, so the solver cannot succeed (sum constraints pin the
  // total span).
  dc::Rng rng(4);
  BinaryGrid g = grid_from_ascii({"##", "##"});
  auto rules = test_rules();
  rules.area_max = 300;  // Tile is 400x400 => polygon area is 160000 fixed.
  auto result =
      dle::legalize_topology(g, rules, 400, 400, dle::SolverConfig{}, rng);
  EXPECT_FALSE(result.success);
}

TEST(Solver, SolvingEUsesLibraryAndConverges) {
  dc::Rng rng(5);
  BinaryGrid g = grid_from_ascii({"....",
                                  ".##.",
                                  ".##.",
                                  "...."});
  dle::DeltaLibrary library;
  library.dx_pool = {{100, 100, 100, 100}, {50, 150, 150, 50}};
  library.dy_pool = {{100, 100, 100, 100}, {80, 120, 120, 80}};
  dle::SolverConfig config;
  config.init = dle::InitMode::solving_e;
  auto result = dle::legalize_topology(g, test_rules(), 400, 400, config,
                                       rng, &library);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_TRUE(dd::check_pattern(result.pattern, test_rules()).clean());
}

TEST(Solver, ManySolutionsAreDistinctAndClean) {
  // Fig. 7 / DiffPattern-L: one topology, many legal geometry assignments.
  dc::Rng rng(6);
  BinaryGrid g = grid_from_ascii({"......",
                                  ".##...",
                                  ".##.#.",
                                  "....#.",
                                  "......"});
  auto rules = test_rules();
  auto patterns = dle::legalize_topology_many(g, rules, 800, 800,
                                              dle::SolverConfig{}, 10, rng);
  EXPECT_GE(patterns.size(), 5U);
  std::set<std::vector<dg::Coord>> dxs;
  for (const auto& p : patterns) {
    EXPECT_TRUE(dd::check_pattern(p, rules).clean());
    EXPECT_EQ(p.topology, g);
    dxs.insert(p.dx);
  }
  EXPECT_EQ(dxs.size(), patterns.size()) << "duplicate geometry assignments";
}

TEST(Solver, EuclideanCornerRuleRespectedWhenEnabled) {
  // Diagonally separated polygons: with the extension rule the solver must
  // open the diagonal gap; the extended DRC validates it.
  dc::Rng rng(8);
  BinaryGrid g = grid_from_ascii({"...##",
                                  "...##",
                                  ".....",
                                  "##...",
                                  "##..."});
  auto rules = test_rules();
  rules.euclidean_corner_space = true;
  auto result = dle::legalize_topology(g, rules, 500, 500,
                                       dle::SolverConfig{}, rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_TRUE(dd::check_pattern(result.pattern, rules).clean());
}

TEST(Solver, StatsArePopulated) {
  dc::Rng rng(9);
  BinaryGrid g = grid_from_ascii({".#.", "###", ".#."});
  auto result = dle::legalize_topology(g, test_rules(), 300, 300,
                                       dle::SolverConfig{}, rng);
  ASSERT_TRUE(result.success);
  EXPECT_GE(result.stats.rounds, 1);
  EXPECT_GE(result.stats.attempts, 1);
  EXPECT_GE(result.stats.seconds, 0.0);
}

TEST(Solver, RestoredLayoutMatchesTopology) {
  // restore -> re-extract -> canonical equality with the solver's pattern.
  dc::Rng rng(10);
  BinaryGrid g = grid_from_ascii({"....",
                                  ".#..",
                                  ".#.#",
                                  "...#"});
  // Note: cells (2,3),(1,1) diagonal? (1,1) and (2,3) are not adjacent.
  if (dle::prefilter_topology(g) != dle::PrefilterVerdict::ok) {
    GTEST_SKIP();
  }
  auto result = dle::legalize_topology(g, test_rules(), 400, 400,
                                       dle::SolverConfig{}, rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  auto restored = dl::restore_layout(result.pattern);
  EXPECT_TRUE(dl::same_layout(result.pattern,
                              dl::extract_squish(restored)));
}
