// PatternService API tests: request validation (typed error codes), model
// registry semantics, rule-set table, seed determinism, and concurrent
// generation reproducing single-threaded results bit-for-bit.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "drc/checker.h"
#include "service/pattern_service.h"
#include "service_test_util.h"
#include "tensor/simd.h"
#include "ulp_test_util.h"
#include "unet/unet.h"

namespace ds = diffpattern::service;
namespace dc = diffpattern::common;
namespace dd = diffpattern::drc;
namespace dl = diffpattern::layout;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

/// Service with an (untrained) model registered as "mini". Untrained
/// weights are fine for API tests: the white-box assessment still only
/// emits DRC-clean patterns.
class PatternServiceTest : public ::testing::Test {
 protected:
  PatternServiceTest()
      : model_(mini_model_config().unet_config(), /*seed=*/3) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = 16;
    service_ = std::make_unique<ds::PatternService>(config);
    const auto status = service_->models().register_model(
        "mini", mini_model_config(), model_.registry(), {});
    EXPECT_TRUE(status.ok()) << status.to_string();
  }

  diffpattern::unet::UNet model_;
  std::unique_ptr<ds::PatternService> service_;
};

}  // namespace

// ---------------------------------------------------------- validation

TEST_F(PatternServiceTest, RejectsBadCounts) {
  ds::GenerateRequest request{.model = "mini", .count = 0};
  EXPECT_EQ(service_->validate(request).code(),
            dc::StatusCode::kInvalidArgument);
  request.count = -7;
  EXPECT_EQ(service_->generate(request).status().code(),
            dc::StatusCode::kInvalidArgument);
  request.count = service_->config().max_count + 1;
  EXPECT_EQ(service_->validate(request).code(),
            dc::StatusCode::kInvalidArgument);
  request.count = 1;
  request.geometries_per_topology = 0;
  EXPECT_EQ(service_->validate(request).code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, ZeroLegalizeWorkersIsInvalidArgument) {
  ds::ServiceConfig config;
  config.legalize_workers = 0;
  ds::PatternService service(config);
  ds::GenerateRequest request;
  request.model = "anything";
  const auto result = service.generate(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.validate(request).code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, ZeroComputeThreadsIsInvalidArgument) {
  ds::ServiceConfig config;
  config.compute_threads = 0;
  ds::PatternService service(config);
  ds::SampleTopologiesRequest request;
  request.model = "anything";
  const auto result = service.sample_topologies(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, UnknownKernelBackendIsInvalidArgument) {
  ds::ServiceConfig config;
  config.kernel_backend = "warp9";
  ds::PatternService service(config);
  ds::GenerateRequest request;
  request.model = "anything";
  const auto result = service.generate(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dc::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("kernel backend"),
            std::string::npos)
      << result.status().to_string();
  // The config error gates every entry point, like compute_threads = 0.
  EXPECT_EQ(service.validate(request).code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, UnsupportedKernelIsaIsInvalidArgument) {
  // Find an ISA this host cannot run (neon on x86, avx2 on arm, ...).
  std::string unsupported;
  for (const auto backend :
       {diffpattern::tensor::KernelBackend::kAvx2,
        diffpattern::tensor::KernelBackend::kNeon}) {
    if (!diffpattern::tensor::kernel_backend_supported(backend)) {
      unsupported = diffpattern::tensor::kernel_backend_label(backend);
      break;
    }
  }
  if (unsupported.empty()) {
    GTEST_SKIP() << "host supports every compiled backend";
  }
  ds::ServiceConfig config;
  config.kernel_backend = unsupported;
  ds::PatternService service(config);
  ds::SampleTopologiesRequest request;
  request.model = "anything";
  const auto result = service.sample_topologies(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dc::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("not supported on this host"),
            std::string::npos)
      << result.status().to_string();
}

TEST_F(PatternServiceTest, ExplicitScalarBackendServesAndIsReported) {
  // Restores the ambient dispatch even when an assertion bails out early.
  diffpattern::testutil::BackendGuard backend_guard;
  ds::ServiceConfig config;
  config.legalize_workers = 2;
  config.kernel_backend = "scalar";
  ds::PatternService service(config);
  const auto status = service.models().register_model(
      "mini", mini_model_config(), model_.registry(), {});
  ASSERT_TRUE(status.ok()) << status.to_string();
  ds::SampleTopologiesRequest request;
  request.model = "mini";
  request.count = 1;
  request.seed = 5;
  const auto result = service.sample_topologies(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto counters = service.counters();
  EXPECT_EQ(counters.kernel_backend, "scalar");
  EXPECT_NE(counters.compute_pool.find("thread"), std::string::npos);
  EXPECT_NE(counters.to_string().find("kernel_backend:     scalar"),
            std::string::npos);
}

TEST_F(PatternServiceTest, NegativeWorkerCountsMeanAutoAndStillServe) {
  ds::ServiceConfig config;
  config.legalize_workers = -1;   // Hardware default (>= 1 even when the
  config.compute_threads = -1;    // runtime reports 0 cores).
  ds::PatternService service(config);
  const auto status = service.models().register_model(
      "mini", mini_model_config(), model_.registry(), {});
  ASSERT_TRUE(status.ok()) << status.to_string();
  ds::SampleTopologiesRequest request;
  request.model = "mini";
  request.count = 2;
  request.seed = 5;
  const auto result = service.sample_topologies(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->topologies.size(), 2U);
}

TEST_F(PatternServiceTest, RejectsMissingModel) {
  const ds::GenerateRequest request{.model = "nope", .count = 1};
  EXPECT_EQ(service_->validate(request).code(), dc::StatusCode::kNotFound);
  EXPECT_EQ(service_->generate(request).status().code(),
            dc::StatusCode::kNotFound);
  const ds::GenerateRequest unnamed{.model = "", .count = 1};
  EXPECT_EQ(service_->validate(unnamed).code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, RejectsUnknownRuleSet) {
  ds::GenerateRequest request{.model = "mini", .count = 1};
  request.rule_set = "euv-beta";
  EXPECT_EQ(service_->validate(request).code(), dc::StatusCode::kNotFound);
  EXPECT_EQ(service_->generate(request).status().code(),
            dc::StatusCode::kNotFound);
}

TEST_F(PatternServiceTest, RejectsEmptyLegalizeRequests) {
  ds::LegalizeTopologiesRequest request;
  request.model = "mini";
  EXPECT_EQ(service_->legalize_topologies(request).status().code(),
            dc::StatusCode::kInvalidArgument);
  request.topologies.emplace_back();  // Empty grid.
  EXPECT_EQ(service_->legalize_topologies(request).status().code(),
            dc::StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ registry

TEST_F(PatternServiceTest, RegistryListsAndUnregisters) {
  EXPECT_TRUE(service_->models().contains("mini"));
  EXPECT_EQ(service_->models().names(),
            std::vector<std::string>{"mini"});
  EXPECT_TRUE(service_->models().lookup("mini").ok());
  EXPECT_EQ(service_->models().lookup("ghost").status().code(),
            dc::StatusCode::kNotFound);
  EXPECT_TRUE(service_->models().unregister("mini").ok());
  EXPECT_EQ(service_->models().unregister("mini").code(),
            dc::StatusCode::kNotFound);
  EXPECT_FALSE(service_->models().contains("mini"));
}

TEST_F(PatternServiceTest, RegistryRejectsBadConfigs) {
  auto cfg = mini_model_config();
  cfg.channels = 3;  // Not a perfect square.
  EXPECT_EQ(service_->models()
                .register_model("bad", cfg, model_.registry(), {})
                .code(),
            dc::StatusCode::kInvalidArgument);
  cfg = mini_model_config();
  cfg.grid_side = 15;  // Not divisible by sqrt(channels).
  EXPECT_EQ(service_->models()
                .register_model("bad", cfg, model_.registry(), {})
                .code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(service_->models()
                .register_model("", mini_model_config(), model_.registry(),
                                {})
                .code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, RegistryRejectsEmptyAndUnprintableNames) {
  // Regression: registration surfaces must reject names that would become
  // unreachable or shadowed registry keys — empty, whitespace-padded, or
  // holding control characters (common::validate_resource_name).
  const std::vector<std::string> bad_names = {
      "", " ", " padded", "padded ", "a\tb", std::string("nul\0byte", 8),
      "line\nbreak"};
  for (const std::string& bad : bad_names) {
    EXPECT_EQ(service_->models()
                  .register_model(bad, mini_model_config(),
                                  model_.registry(), {})
                  .code(),
              dc::StatusCode::kInvalidArgument)
        << "model name accepted: '" << bad << "'";
    EXPECT_EQ(service_->register_rule_set(bad, dd::standard_rules()).code(),
              dc::StatusCode::kInvalidArgument)
        << "rule-set name accepted: '" << bad << "'";
  }
  // Interior spaces are legitimate.
  EXPECT_TRUE(service_->register_rule_set("euv beta",
                                          dd::standard_rules()).ok());
}

TEST_F(PatternServiceTest, RegistryRejectsMismatchedWeights) {
  auto cfg = mini_model_config();
  cfg.model_channels = 16;  // Different architecture than model_.
  EXPECT_EQ(service_->models()
                .register_model("wide", cfg, model_.registry(), {})
                .code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(PatternServiceTest, RegistryCheckpointMissingFileIsNotFound) {
  EXPECT_EQ(service_->models()
                .register_checkpoint("ckpt", mini_model_config(),
                                     "/tmp/dp_no_such_checkpoint.bin", {})
                .code(),
            dc::StatusCode::kNotFound);
}

// ----------------------------------------------------------- rule sets

TEST_F(PatternServiceTest, RuleSetTableServesNamedDecks) {
  const auto names = service_->rule_set_names();
  EXPECT_EQ(names.size(), 3U);  // area, normal, space.
  EXPECT_TRUE(service_->rule_set("normal").ok());
  EXPECT_TRUE(service_->rule_set("space").ok());
  EXPECT_TRUE(service_->rule_set("area").ok());
  EXPECT_EQ(service_->rule_set("nope").status().code(),
            dc::StatusCode::kNotFound);
  EXPECT_EQ(service_->register_rule_set("", dd::standard_rules()).code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      service_->register_rule_set("custom", dd::larger_space_rules()).ok());
  EXPECT_TRUE(service_->rule_set("custom").ok());
}

// ---------------------------------------------------------- generation

TEST_F(PatternServiceTest, GenerateEmitsOnlyDrcCleanPatterns) {
  ds::GenerateRequest request{.model = "mini", .count = 6, .seed = 11};
  const auto result = service_->generate(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->stats.topologies_requested, 6);
  EXPECT_EQ(result->stats.prefilter_rejected +
                result->stats.solver_rejected +
                static_cast<std::int64_t>(result->patterns.size()),
            6);
  const auto rules = service_->rule_set("normal").value();
  for (const auto& pattern : result->patterns) {
    EXPECT_TRUE(dd::check_pattern(pattern, rules).clean());
  }
}

TEST_F(PatternServiceTest, SampleTopologiesMatchesConfiguredGrid) {
  ds::SampleTopologiesRequest request{.model = "mini", .count = 3,
                                      .seed = 5};
  const auto result = service_->sample_topologies(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result->topologies.size(), 3U);
  for (const auto& topology : result->topologies) {
    EXPECT_EQ(topology.rows(), 16);
    EXPECT_EQ(topology.cols(), 16);
  }
}

TEST_F(PatternServiceTest, SameSeedReproducesByteIdenticalPatterns) {
  const ds::GenerateRequest request{.model = "mini", .count = 5,
                                    .geometries_per_topology = 2,
                                    .seed = 77};
  const auto a = service_->generate(request);
  const auto b = service_->generate(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(same_patterns(a->patterns, b->patterns));
}

TEST_F(PatternServiceTest, DifferentSeedsDiverge) {
  ds::SampleTopologiesRequest request{.model = "mini", .count = 4,
                                      .seed = 1};
  const auto a = service_->sample_topologies(request);
  request.seed = 2;
  const auto b = service_->sample_topologies(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_different = false;
  for (std::size_t i = 0; i < a->topologies.size(); ++i) {
    any_different =
        any_different || !(a->topologies[i] == b->topologies[i]);
  }
  EXPECT_TRUE(any_different);
}

TEST_F(PatternServiceTest, RequestCountInvariantToRoundChunking) {
  // A request larger than max_fused_batch runs in several fused rounds;
  // per-slot streams must make the chunking invisible.
  ds::SampleTopologiesRequest request{.model = "mini", .count = 3,
                                      .seed = 21};
  const auto small = service_->sample_topologies(request);
  ASSERT_TRUE(small.ok());

  ds::ServiceConfig tight;
  tight.legalize_workers = 2;
  tight.max_fused_batch = 2;  // Forces 3 slots into 2 rounds.
  ds::PatternService chunked(tight);
  ASSERT_TRUE(chunked.models()
                  .register_model("mini", mini_model_config(),
                                  model_.registry(), {})
                  .ok());
  const auto chunked_result = chunked.sample_topologies(request);
  ASSERT_TRUE(chunked_result.ok());
  ASSERT_EQ(small->topologies.size(), chunked_result->topologies.size());
  for (std::size_t i = 0; i < small->topologies.size(); ++i) {
    EXPECT_TRUE(small->topologies[i] == chunked_result->topologies[i]);
  }
}

// ---------------------------------------------------------- concurrency

TEST_F(PatternServiceTest, ConcurrentGenerateMatchesSingleThreaded) {
  constexpr int kClients = 4;
  const auto request_for = [](int client) {
    return ds::GenerateRequest{.model = "mini", .count = 3,
                               .geometries_per_topology = 1,
                               .seed = 500 + static_cast<std::uint64_t>(
                                                 client)};
  };

  // Single-threaded reference, one request at a time.
  std::vector<ds::GenerateResult> reference;
  for (int c = 0; c < kClients; ++c) {
    auto result = service_->generate(request_for(c));
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    reference.push_back(std::move(result).value());
  }

  // The same requests from distinct threads; the service may fuse their
  // sampling into shared batches and scatter legalization across workers.
  std::vector<dc::Result<ds::GenerateResult>> concurrent(
      kClients, dc::Status::Unavailable("not served"));
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        concurrent[static_cast<std::size_t>(c)] =
            service_->generate(request_for(c));
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }

  for (int c = 0; c < kClients; ++c) {
    const auto& result = concurrent[static_cast<std::size_t>(c)];
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_TRUE(same_patterns(reference[static_cast<std::size_t>(c)].patterns,
                              result->patterns))
        << "client " << c << " diverged under concurrency";
  }
}

TEST_F(PatternServiceTest, ConcurrentDistinctRequestsAllComplete) {
  constexpr int kClients = 6;
  std::vector<dc::Result<ds::GenerateResult>> results(
      kClients, dc::Status::Unavailable("not served"));
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ds::GenerateRequest request{.model = "mini",
                                  .count = 1 + (c % 3),
                                  .seed = static_cast<std::uint64_t>(c)};
      results[static_cast<std::size_t>(c)] = service_->generate(request);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    const auto& result = results[static_cast<std::size_t>(c)];
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(result->stats.topologies_requested, 1 + (c % 3));
  }
}
