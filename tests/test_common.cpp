#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/contracts.h"
#include "common/rng.h"
#include "common/timer.h"

namespace dc = diffpattern::common;

TEST(Contracts, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DP_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(DP_REQUIRE(true, "fine"));
}

TEST(Contracts, CheckThrowsLogicError) {
  EXPECT_THROW(DP_CHECK(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(DP_CHECK(true, "fine"));
}

TEST(Contracts, MessageContainsContext) {
  try {
    DP_REQUIRE(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  dc::Rng a(42);
  dc::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  dc::Rng a(1);
  dc::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBoundsInclusive) {
  dc::Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3U);
}

TEST(Rng, BernoulliExtremes) {
  dc::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  dc::Rng rng(11);
  const int n = 20000;
  double mean = 0.0;
  double var = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    mean += v;
    var += v * v;
  }
  mean /= n;
  var = var / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, CategoricalRespectsWeights) {
  dc::Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.categorical(w)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalRejectsBadInput) {
  dc::Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  dc::Rng parent(99);
  dc::Rng child1 = parent.split();
  dc::Rng child2 = parent.split();
  // Children seeded from different parent draws should not track each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.uniform() == child2.uniform()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ShufflePermutes) {
  dc::Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Timer, MeasuresNonNegativeTime) {
  dc::Timer t;
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) {
    sink += std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(t.seconds(), 0.0);
}
