// Socket transport tests: framing (every-prefix torn-read sweep, hostile
// lengths rejected before allocation, checksum mismatch), address parsing,
// real Unix/TCP round trips through a WorkerNode handler with bytes
// identical to a direct service call, and the typed failure contract —
// refused connects answer UNAVAILABLE (then fail fast under backoff with a
// retry hint), stalls trip the call deadline as DEADLINE_EXCEEDED, torn or
// oversized frames answer DATA_LOSS, and a graceful server shutdown drains
// the in-flight call instead of tearing it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/socket_transport.h"
#include "dist/wire.h"
#include "dist/worker_node.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace dd = diffpattern::dist;
namespace dc = diffpattern::common;
namespace ds = diffpattern::service;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

/// Unique socket path per test (unlinked by the server on shutdown).
std::string unique_unix_address(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "unix:/tmp/dp_sock_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

dd::Bytes make_payload(std::size_t size) {
  dd::Bytes payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>((i * 131) & 0xFF);
  }
  return payload;
}

// ---------------------------------------------------------------- framing

TEST(SocketTransportFraming, RoundTripSingleFeed) {
  const dd::Bytes payload = make_payload(257);
  const dd::Bytes framed = dd::frame_payload(payload);
  ASSERT_EQ(framed.size(), payload.size() + dd::kSocketFrameHeaderBytes);
  dd::FrameAssembler assembler;
  ASSERT_TRUE(assembler.feed(framed.data(), framed.size()).ok());
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(assembler.take(), payload);
  EXPECT_FALSE(assembler.complete());  // take() resets for the next frame.
}

TEST(SocketTransportFraming, EmptyPayloadFrames) {
  const dd::Bytes framed = dd::frame_payload({});
  dd::FrameAssembler assembler;
  ASSERT_TRUE(assembler.feed(framed.data(), framed.size()).ok());
  ASSERT_TRUE(assembler.complete());
  EXPECT_TRUE(assembler.take().empty());
}

// The satellite sweep: a partial recv may split the stream at ANY byte
// boundary — header bytes, length/checksum straddles, body bytes — and
// the assembler must reassemble the identical payload from every split.
TEST(SocketTransportFraming, EveryPrefixTornReadSweep) {
  const dd::Bytes payload = make_payload(61);
  const dd::Bytes framed = dd::frame_payload(payload);
  for (std::size_t split = 1; split < framed.size(); ++split) {
    dd::FrameAssembler assembler;
    ASSERT_TRUE(assembler.feed(framed.data(), split).ok())
        << "split at byte " << split;
    EXPECT_FALSE(assembler.complete()) << "split at byte " << split;
    // want() never reaches past this frame's end — and while the header
    // is incomplete it asks only for the header remainder, so a hostile
    // length is validated before a single body byte is requested.
    EXPECT_GE(assembler.want(), 1u) << "split at byte " << split;
    EXPECT_LE(assembler.want(), framed.size() - split)
        << "split at byte " << split;
    ASSERT_TRUE(
        assembler.feed(framed.data() + split, framed.size() - split).ok())
        << "split at byte " << split;
    ASSERT_TRUE(assembler.complete()) << "split at byte " << split;
    EXPECT_EQ(assembler.take(), payload) << "split at byte " << split;
  }
}

TEST(SocketTransportFraming, ByteAtATimeReassembles) {
  const dd::Bytes payload = make_payload(29);
  const dd::Bytes framed = dd::frame_payload(payload);
  dd::FrameAssembler assembler;
  for (const std::uint8_t byte : framed) {
    ASSERT_TRUE(assembler.feed(&byte, 1).ok());
  }
  ASSERT_TRUE(assembler.complete());
  EXPECT_EQ(assembler.take(), payload);
}

TEST(SocketTransportFraming, HostileLengthRejectedAtHeaderBeforeBody) {
  // A length above the bound must be refused the moment the header
  // completes — no body byte is ever wanted, no allocation happens.
  dd::FrameAssembler assembler(/*max_frame_bytes=*/1024);
  std::uint8_t header[dd::kSocketFrameHeaderBytes] = {};
  header[0] = 0xFF;
  header[1] = 0xFF;
  header[2] = 0xFF;
  header[3] = 0x7F;  // ~2 GiB claimed.
  const auto status =
      assembler.feed(header, dd::kSocketFrameHeaderBytes);
  EXPECT_EQ(status.code(), dc::StatusCode::kDataLoss);
}

TEST(SocketTransportFraming, ChecksumMismatchIsDataLoss) {
  const dd::Bytes payload = make_payload(40);
  dd::Bytes framed = dd::frame_payload(payload);
  framed[dd::kSocketFrameHeaderBytes + 11] ^= 0x01;  // Flip a payload bit.
  dd::FrameAssembler assembler;
  const auto status = assembler.feed(framed.data(), framed.size());
  EXPECT_EQ(status.code(), dc::StatusCode::kDataLoss);
}

TEST(SocketTransportFraming, BytesPastCompleteFrameAreDataLoss) {
  const dd::Bytes framed = dd::frame_payload(make_payload(8));
  dd::FrameAssembler assembler;
  ASSERT_TRUE(assembler.feed(framed.data(), framed.size()).ok());
  const std::uint8_t extra = 0xAA;
  EXPECT_EQ(assembler.feed(&extra, 1).code(), dc::StatusCode::kDataLoss);
}

// --------------------------------------------------------------- parsing

TEST(SocketTransportAddress, ParsesTcpAndUnix) {
  auto tcp = dd::parse_socket_address("tcp:127.0.0.1:8080");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, dd::SocketAddress::Kind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8080);
  EXPECT_EQ(tcp->to_string(), "tcp:127.0.0.1:8080");

  auto unix_addr = dd::parse_socket_address("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_EQ(unix_addr->kind, dd::SocketAddress::Kind::kUnix);
  EXPECT_EQ(unix_addr->path, "/tmp/x.sock");
  EXPECT_EQ(unix_addr->to_string(), "unix:/tmp/x.sock");
}

TEST(SocketTransportAddress, RejectsMalformedSpecs) {
  const std::string bad[] = {
      "http://x",        // unknown scheme
      "tcp:127.0.0.1",   // missing port
      "tcp::8080",       // missing host
      "tcp:h:",          // empty port
      "tcp:h:notaport",  // non-numeric port
      "tcp:h:70000",     // port out of range
      "unix:",           // empty path
      "unix:" + std::string(200, 'a'),  // overlong sun_path
  };
  for (const auto& spec : bad) {
    const auto parsed = dd::parse_socket_address(spec);
    ASSERT_FALSE(parsed.ok()) << spec;
    EXPECT_EQ(parsed.status().code(), dc::StatusCode::kInvalidArgument)
        << spec;
  }
}

// ------------------------------------------------------------ round trips

/// One real worker behind a SocketServer, the mini demo model registered,
/// plus a direct (transport-free) golden worker with identical weights.
class SocketTransportTest : public ::testing::Test {
 protected:
  SocketTransportTest()
      : weights_(mini_model_config().unet_config(), /*seed=*/7),
        golden_("golden") {
    register_demo(golden_);
  }

  void register_demo(dd::WorkerNode& node) {
    ASSERT_TRUE(node.service()
                    .models()
                    .register_model("demo", mini_model_config(),
                                    weights_.registry(), {})
                    .ok());
  }

  std::unique_ptr<dd::WorkerNode> make_worker(const std::string& name) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = 8;
    auto node = std::make_unique<dd::WorkerNode>(name, config);
    register_demo(*node);
    return node;
  }

  ds::GenerateRequest demo_request(std::uint64_t seed = 11) {
    ds::GenerateRequest request;
    request.model = "demo";
    request.count = 2;
    request.seed = seed;
    return request;
  }

  diffpattern::unet::UNet weights_;
  dd::WorkerNode golden_;
};

TEST_F(SocketTransportTest, UnixRoundTripMatchesDirectServiceBytes) {
  auto worker = make_worker("w0");
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start(unique_unix_address("unix_rt"),
                         [&worker](const dd::Bytes& request) {
                           return worker->handle(request);
                         })
                  .ok());

  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  const auto request = demo_request();
  auto response = channel->call(dd::encode_generate_request(request));
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  auto decoded = dd::decode_generate_result(response.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();

  auto direct = golden_.service().generate(request);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(same_patterns(decoded->patterns, direct->patterns));

  const auto stats = channel->stats();
  EXPECT_EQ(stats.connects, 1);
  EXPECT_EQ(stats.reconnects, 0);
  EXPECT_GE(server.counters().requests, 1);
}

TEST_F(SocketTransportTest, TcpPortZeroRoundTripAndConnectionReuse) {
  auto worker = make_worker("w0");
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start("tcp:127.0.0.1:0",
                         [&worker](const dd::Bytes& request) {
                           return worker->handle(request);
                         })
                  .ok());
  // Port 0 must resolve to the kernel-assigned port in bound_address().
  ASSERT_NE(server.bound_address(), "tcp:127.0.0.1:0");

  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  for (int i = 0; i < 3; ++i) {
    auto response = channel->call(dd::encode_health_probe());
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    auto health = dd::decode_worker_health(response.value());
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health->worker, "w0");
  }
  // Three calls, one connection: the channel reuses its socket.
  EXPECT_EQ(channel->stats().connects, 1);
  EXPECT_EQ(server.counters().connections, 1);
}

TEST_F(SocketTransportTest, ConnectRefusedIsUnavailableThenBackoffFailFast) {
  dd::SocketTransportConfig config;
  config.connect_timeout_ms = 200;
  config.backoff_base_ms = 200;
  config.backoff_max_ms = 400;
  dd::SocketTransport transport(config);
  // Nothing listens on this path: ECONNREFUSED/ENOENT territory.
  auto channel = transport.connect(unique_unix_address("refused"));

  auto first = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), dc::StatusCode::kUnavailable);

  // Inside the backoff window the channel fails fast — no syscall — and
  // hands back the remaining wait as a structured retry hint.
  auto second = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(second.status().has_retry_after());
  EXPECT_GT(second.status().retry_after_ms(), 0);
}

TEST_F(SocketTransportTest, ReconnectsAfterServerRestart) {
  auto worker = make_worker("w0");
  const std::string address = unique_unix_address("restart");
  auto handler = [&worker](const dd::Bytes& request) {
    return worker->handle(request);
  };
  auto server = std::make_unique<dd::SocketServer>();
  ASSERT_TRUE(server->start(address, handler).ok());

  dd::SocketTransportConfig config;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 2;
  dd::SocketTransport transport(config);
  auto channel = transport.connect(address);
  ASSERT_TRUE(channel->call(dd::encode_health_probe()).ok());

  server->shutdown();
  // The established connection is gone: the next call fails typed.
  auto torn = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), dc::StatusCode::kUnavailable);

  server = std::make_unique<dd::SocketServer>();
  ASSERT_TRUE(server->start(address, handler).ok());
  // Lazy reconnect (past the tiny backoff window) revives the channel.
  dc::Status last = dc::Status::Ok();
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    auto retry = channel->call(dd::encode_health_probe());
    recovered = retry.ok();
    if (!retry.ok()) {
      last = retry.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(recovered) << last.to_string();
  EXPECT_GE(channel->stats().reconnects, 1);
}

TEST_F(SocketTransportTest, StalledHandlerTripsCallDeadline) {
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start(unique_unix_address("stall"),
                         [](const dd::Bytes&) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(1500));
                           return dd::encode_health_probe();
                         })
                  .ok());
  dd::SocketTransportConfig config;
  config.call_timeout_ms = 150;
  dd::SocketTransport transport(config);
  auto channel = transport.connect(server.bound_address());
  const auto started = std::chrono::steady_clock::now();
  auto response = channel->call(dd::encode_health_probe());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), dc::StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 1200);  // Deadline, not the handler, bounded the wait.
  EXPECT_EQ(channel->stats().timeouts, 1);
}

TEST_F(SocketTransportTest, OversizedResponseIsDataLoss) {
  dd::SocketServer server;  // Server side allows the large response...
  ASSERT_TRUE(server
                  .start(unique_unix_address("bigresp"),
                         [](const dd::Bytes&) {
                           return dd::Bytes(8192, 0x5A);
                         })
                  .ok());
  dd::SocketTransportConfig config;
  config.max_frame_bytes = 1024;  // ...the client's bound rejects it.
  dd::SocketTransport transport(config);
  auto channel = transport.connect(server.bound_address());
  auto response = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), dc::StatusCode::kDataLoss);
}

TEST_F(SocketTransportTest, ServerRejectsOversizedRequest) {
  std::atomic<int> handled{0};
  dd::SocketServerConfig server_cfg;
  server_cfg.max_frame_bytes = 1024;
  dd::SocketServer server(server_cfg);
  ASSERT_TRUE(server
                  .start(unique_unix_address("bigreq"),
                         [&handled](const dd::Bytes&) {
                           handled.fetch_add(1);
                           return dd::encode_health_probe();
                         })
                  .ok());
  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  // The hostile frame is refused at the server's header check — the
  // handler never runs, the connection drops, the client sees a typed
  // failure (never a hang).
  auto response = channel->call(dd::Bytes(8192, 0x5A));
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().code() == dc::StatusCode::kUnavailable ||
              response.status().code() == dc::StatusCode::kDataLoss)
      << response.status().to_string();
  EXPECT_EQ(handled.load(), 0);
  EXPECT_GE(server.counters().read_errors, 1);
}

TEST_F(SocketTransportTest, GracefulShutdownDrainsInFlightCall) {
  std::atomic<bool> entered{false};
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start(unique_unix_address("drain"),
                         [&entered](const dd::Bytes& request) {
                           entered.store(true);
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(300));
                           return dd::frame_payload(request);  // Any bytes.
                         })
                  .ok());
  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  dc::Result<dd::Bytes> response = dc::Status::Internal("not called");
  std::thread caller([&] {
    response = channel->call(dd::Bytes{1, 2, 3});
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Shutdown lands mid-handler: the in-flight request must complete and
  // its response must reach the caller before the connection closes.
  server.shutdown();
  caller.join();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
}

// ------------------------------------------------------- resolver / IPv6

TEST(SocketTransportAddress, ParsesBracketedIpv6) {
  auto v6 = dd::parse_socket_address("tcp:[::1]:7070");
  ASSERT_TRUE(v6.ok()) << v6.status().to_string();
  EXPECT_EQ(v6->kind, dd::SocketAddress::Kind::kTcp);
  EXPECT_EQ(v6->host, "::1");  // Brackets stripped in the parsed host...
  EXPECT_EQ(v6->port, 7070);
  EXPECT_EQ(v6->to_string(), "tcp:[::1]:7070");  // ...re-added printing.

  auto full = dd::parse_socket_address("tcp:[fe80::aa:1]:9");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->host, "fe80::aa:1");
  EXPECT_EQ(full->port, 9);
}

TEST(SocketTransportAddress, RejectsMalformedBrackets) {
  const std::string bad[] = {
      "tcp:[::1]",      // no port after the bracket
      "tcp:[::1]8080",  // missing ':' between bracket and port
      "tcp:[::1:8080",  // unterminated bracket
      "tcp:[]:8080",    // empty host
  };
  for (const auto& spec : bad) {
    const auto parsed = dd::parse_socket_address(spec);
    ASSERT_FALSE(parsed.ok()) << spec;
    EXPECT_EQ(parsed.status().code(), dc::StatusCode::kInvalidArgument)
        << spec;
  }
}

/// "tcp:HOST:PORT" → PORT (the tests re-dial a bound server by hostname).
std::uint16_t port_of(const std::string& bound_address) {
  const auto colon = bound_address.rfind(':');
  return static_cast<std::uint16_t>(
      std::stoi(bound_address.substr(colon + 1)));
}

TEST_F(SocketTransportTest, HostnameResolvesThroughGetaddrinfo) {
  auto worker = make_worker("w0");
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start("tcp:127.0.0.1:0",
                         [&worker](const dd::Bytes& request) {
                           return worker->handle(request);
                         })
                  .ok());
  dd::SocketTransport transport;
  // Dial by NAME, not numeric literal — the old inet_pton-only resolver
  // rejected this with "not a numeric IPv4 host".
  auto channel = transport.connect(
      "tcp:localhost:" + std::to_string(port_of(server.bound_address())));
  auto response = channel->call(dd::encode_health_probe());
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  auto health = dd::decode_worker_health(response.value());
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->worker, "w0");
}

TEST(SocketTransportChannel, UnresolvableHostIsInvalidArgument) {
  dd::SocketTransport transport;
  // RFC 6761 reserves .invalid: guaranteed NXDOMAIN, no network needed.
  auto channel = transport.connect("tcp:no-such-host.invalid:1");
  auto response = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), dc::StatusCode::kInvalidArgument)
      << response.status().to_string();
}

TEST_F(SocketTransportTest, Ipv6LoopbackRoundTrip) {
  auto worker = make_worker("w6");
  dd::SocketServer server;
  const auto started = server.start(
      "tcp:[::1]:0", [&worker](const dd::Bytes& request) {
        return worker->handle(request);
      });
  if (!started.ok()) {
    GTEST_SKIP() << "IPv6 loopback unavailable: " << started.to_string();
  }
  EXPECT_NE(server.bound_address().find("tcp:[::1]:"), std::string::npos)
      << server.bound_address();
  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  auto response = channel->call(dd::encode_health_probe());
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  auto health = dd::decode_worker_health(response.value());
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->worker, "w6");
}

// -------------------------------------------------- authenticated framing

TEST(SocketTransportAuth, KeyedFramingRoundTripsEverySplit) {
  const dd::Bytes payload = make_payload(61);
  const dd::Bytes framed = dd::frame_payload(payload, "sesame");
  ASSERT_EQ(framed.size(), payload.size() + dd::kSocketAuthFrameHeaderBytes);
  for (std::size_t split = 1; split < framed.size(); ++split) {
    dd::FrameAssembler assembler(dd::kDefaultMaxFrameBytes, "sesame");
    ASSERT_TRUE(assembler.feed(framed.data(), split).ok())
        << "split at byte " << split;
    ASSERT_TRUE(
        assembler.feed(framed.data() + split, framed.size() - split).ok())
        << "split at byte " << split;
    ASSERT_TRUE(assembler.complete()) << "split at byte " << split;
    EXPECT_EQ(assembler.take(), payload) << "split at byte " << split;
  }
}

TEST(SocketTransportAuth, CorruptionIsDataLossNotAuthFailure) {
  // The unkeyed checksum is verified before the tag, so a flipped payload
  // bit stays DATA_LOSS — corruption and intrusion are distinct signals.
  const dd::Bytes payload = make_payload(40);
  dd::Bytes framed = dd::frame_payload(payload, "sesame");
  framed[dd::kSocketAuthFrameHeaderBytes + 7] ^= 0x01;
  dd::FrameAssembler assembler(dd::kDefaultMaxFrameBytes, "sesame");
  EXPECT_EQ(assembler.feed(framed.data(), framed.size()).code(),
            dc::StatusCode::kDataLoss);
}

TEST(SocketTransportAuth, TamperedTagIsPermissionDenied) {
  const dd::Bytes payload = make_payload(40);
  dd::Bytes framed = dd::frame_payload(payload, "sesame");
  framed[dd::kSocketFrameHeaderBytes] ^= 0x01;  // First tag byte.
  dd::FrameAssembler assembler(dd::kDefaultMaxFrameBytes, "sesame");
  EXPECT_EQ(assembler.feed(framed.data(), framed.size()).code(),
            dc::StatusCode::kPermissionDenied);
}

TEST(SocketTransportAuth, ModeMismatchDetectedAtLengthWord) {
  // A plaintext frame fed to a keyed assembler (and vice versa) is refused
  // the moment the 4-byte length word completes — no stall waiting for a
  // tag that will never arrive, no payload byte ever buffered.
  const dd::Bytes plain = dd::frame_payload(make_payload(8));
  dd::FrameAssembler keyed(dd::kDefaultMaxFrameBytes, "sesame");
  EXPECT_EQ(keyed.feed(plain.data(), 4).code(),
            dc::StatusCode::kPermissionDenied);

  const dd::Bytes authed = dd::frame_payload(make_payload(8), "sesame");
  dd::FrameAssembler plaintext;
  EXPECT_EQ(plaintext.feed(authed.data(), 4).code(),
            dc::StatusCode::kPermissionDenied);
}

TEST_F(SocketTransportTest, AuthRoundTripWithSharedKey) {
  auto worker = make_worker("w0");
  dd::SocketServerConfig server_cfg;
  server_cfg.auth_key = "shared-secret";
  dd::SocketServer server(server_cfg);
  ASSERT_TRUE(server
                  .start(unique_unix_address("auth_ok"),
                         [&worker](const dd::Bytes& request) {
                           return worker->handle(request);
                         })
                  .ok());
  dd::SocketTransportConfig config;
  config.auth_key = "shared-secret";
  dd::SocketTransport transport(config);
  auto channel = transport.connect(server.bound_address());
  const auto request = demo_request();
  auto response = channel->call(dd::encode_generate_request(request));
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  auto decoded = dd::decode_generate_result(response.value());
  ASSERT_TRUE(decoded.ok());
  auto direct = golden_.service().generate(request);
  ASSERT_TRUE(direct.ok());
  // Auth wraps the frame; the payload bytes are untouched by the tag.
  EXPECT_TRUE(same_patterns(decoded->patterns, direct->patterns));
  EXPECT_EQ(server.counters().auth_failures, 0);
}

TEST_F(SocketTransportTest, WrongKeyRejectedTypedBeforeDecode) {
  std::atomic<int> handled{0};
  dd::SocketServerConfig server_cfg;
  server_cfg.auth_key = "right-key";
  dd::SocketServer server(server_cfg);
  ASSERT_TRUE(server
                  .start(unique_unix_address("auth_wrong"),
                         [&handled](const dd::Bytes&) {
                           handled.fetch_add(1);
                           return dd::encode_health_probe();
                         })
                  .ok());
  dd::SocketTransportConfig config;
  config.auth_key = "wrong-key";
  dd::SocketTransport transport(config);
  auto channel = transport.connect(server.bound_address());
  auto response = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), dc::StatusCode::kPermissionDenied)
      << response.status().to_string();
  EXPECT_EQ(handled.load(), 0);  // Handler never saw the frame.
  EXPECT_GE(server.counters().auth_failures, 1);
}

TEST_F(SocketTransportTest, MissingTagRejectedBothDirections) {
  std::atomic<int> handled{0};
  auto handler = [&handled](const dd::Bytes&) {
    handled.fetch_add(1);
    return dd::encode_health_probe();
  };
  // Plaintext client → authed server.
  dd::SocketServerConfig authed_cfg;
  authed_cfg.auth_key = "sesame";
  dd::SocketServer authed(authed_cfg);
  ASSERT_TRUE(authed.start(unique_unix_address("auth_miss_a"), handler).ok());
  dd::SocketTransport plain_transport;
  auto to_authed = plain_transport.connect(authed.bound_address());
  auto a = to_authed->call(dd::encode_health_probe());
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), dc::StatusCode::kPermissionDenied)
      << a.status().to_string();
  EXPECT_GE(authed.counters().auth_failures, 1);

  // Authed client → plaintext server.
  dd::SocketServer plain;
  ASSERT_TRUE(plain.start(unique_unix_address("auth_miss_b"), handler).ok());
  dd::SocketTransportConfig keyed_cfg;
  keyed_cfg.auth_key = "sesame";
  dd::SocketTransport keyed_transport(keyed_cfg);
  auto to_plain = keyed_transport.connect(plain.bound_address());
  auto b = to_plain->call(dd::encode_health_probe());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), dc::StatusCode::kPermissionDenied)
      << b.status().to_string();
  EXPECT_EQ(handled.load(), 0);
}

// -------------------------------------------------------- connection pool

TEST_F(SocketTransportTest, PooledCallsOverlapOnSeparateConnections) {
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start(unique_unix_address("pool"),
                         [](const dd::Bytes& request) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(60));
                           return request;
                         })
                  .ok());
  dd::SocketTransportConfig config;
  config.max_connections = 4;
  dd::SocketTransport transport(config);
  auto channel = transport.connect(server.bound_address());
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&channel, &ok] {
      if (channel->call(dd::encode_health_probe()).ok()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(ok.load(), 4);
  // Concurrent callers dialed extra pool slots instead of serializing.
  EXPECT_GE(channel->stats().pool_peak, 2);
  EXPECT_GE(server.counters().connections, 2);
  EXPECT_LE(server.counters().connections, 4);
}

TEST_F(SocketTransportTest, PoolOfOneSerializesOnSingleConnection) {
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start(unique_unix_address("pool1"),
                         [](const dd::Bytes& request) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(20));
                           return request;
                         })
                  .ok());
  dd::SocketTransportConfig config;
  config.max_connections = 1;  // The pre-pool serialized behavior.
  dd::SocketTransport transport(config);
  auto channel = transport.connect(server.bound_address());
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&channel, &ok] {
      if (channel->call(dd::encode_health_probe()).ok()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(channel->stats().pool_peak, 1);
  EXPECT_EQ(server.counters().connections, 1);
}

// ----------------------------------------- server resource-leak hardening

TEST_F(SocketTransportTest, FinishedConnectionThreadsAreReaped) {
  dd::SocketServer server;
  ASSERT_TRUE(server
                  .start(unique_unix_address("reap"),
                         [](const dd::Bytes& request) { return request; })
                  .ok());
  constexpr int kConnections = 40;
  for (int i = 0; i < kConnections; ++i) {
    // A fresh transport per iteration: connect, one call, disconnect.
    dd::SocketTransport transport;
    auto channel = transport.connect(server.bound_address());
    ASSERT_TRUE(channel->call(dd::encode_health_probe()).ok());
  }
  // Give the last few handler threads a moment to observe their EOF, then
  // trigger one more accept (reaping happens in the accept loop).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  dd::SocketTransport transport;
  auto channel = transport.connect(server.bound_address());
  ASSERT_TRUE(channel->call(dd::encode_health_probe()).ok());
  // The regression: before reaping, every one of the 41 connections left a
  // joinable thread in the server until shutdown. Now only the live tail
  // remains.
  EXPECT_LE(server.live_connection_threads(), 3u);
  EXPECT_EQ(server.counters().connections, kConnections + 1);
}

TEST_F(SocketTransportTest, AcceptCapShedsExcessConnections) {
  std::atomic<bool> entered{false};
  dd::SocketServerConfig server_cfg;
  server_cfg.max_connections = 1;
  dd::SocketServer server(server_cfg);
  ASSERT_TRUE(server
                  .start(unique_unix_address("cap"),
                         [&entered](const dd::Bytes& request) {
                           entered.store(true);
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(400));
                           return request;
                         })
                  .ok());
  dd::SocketTransport transport;
  auto first = transport.connect(server.bound_address());
  dc::Result<dd::Bytes> first_response = dc::Status::Internal("not called");
  std::thread holder([&] {
    first_response = first->call(dd::encode_health_probe());
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The slot is occupied: the second connection is accepted and closed
  // immediately — a typed UNAVAILABLE for the client, a shed for the
  // counters, and no thread or fd held for it.
  dd::SocketTransport second_transport;
  auto second = second_transport.connect(server.bound_address());
  auto shed = second->call(dd::encode_health_probe());
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), dc::StatusCode::kUnavailable)
      << shed.status().to_string();
  holder.join();
  ASSERT_TRUE(first_response.ok()) << first_response.status().to_string();
  EXPECT_GE(server.counters().connections_shed, 1);
  EXPECT_EQ(server.counters().connections, 1);
}

TEST(SocketTransportChannel, MalformedAddressFailsTyped) {
  dd::SocketTransport transport;
  auto channel = transport.connect("bogus-address");
  auto response = channel->call(dd::encode_health_probe());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), dc::StatusCode::kInvalidArgument);
}

TEST(SocketTransportServer, StartOnMalformedAddressFails) {
  dd::SocketServer server;
  const auto status = server.start("nope", [](const dd::Bytes& b) {
    return b;
  });
  EXPECT_EQ(status.code(), dc::StatusCode::kInvalidArgument);
}

}  // namespace
