#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "drc/checker.h"
#include "metrics/metrics.h"

namespace dgen = diffpattern::datagen;
namespace dd = diffpattern::drc;
namespace dc = diffpattern::common;
namespace dl = diffpattern::layout;

namespace {

dgen::DatagenConfig quick_config() {
  dgen::DatagenConfig cfg;
  cfg.tile = 2048;
  cfg.rules = dd::standard_rules();
  cfg.min_shapes = 2;
  cfg.max_shapes = 4;
  return cfg;
}

}  // namespace

TEST(Datagen, TilesAreAlwaysDrcClean) {
  dc::Rng rng(1);
  const auto cfg = quick_config();
  for (int i = 0; i < 10; ++i) {
    const auto tile = dgen::generate_tile(cfg, rng);
    EXPECT_TRUE(dd::check_layout(tile, cfg.rules).clean()) << "tile " << i;
    EXPECT_FALSE(tile.rects.empty());
    EXPECT_EQ(tile.width, cfg.tile);
  }
}

TEST(Datagen, TilesRespectEuclideanCornerRuleToo) {
  // Construction-by-inflation guarantees diagonal clearance as well; check
  // against the extended rule set.
  dc::Rng rng(2);
  auto cfg = quick_config();
  auto rules = cfg.rules;
  rules.euclidean_corner_space = true;
  for (int i = 0; i < 6; ++i) {
    const auto tile = dgen::generate_tile(cfg, rng);
    EXPECT_TRUE(dd::check_layout(tile, rules).clean()) << "tile " << i;
  }
}

TEST(Datagen, TilesVaryInComplexity) {
  dc::Rng rng(3);
  const auto cfg = quick_config();
  std::set<std::pair<std::int64_t, std::int64_t>> complexities;
  for (int i = 0; i < 12; ++i) {
    const auto tile = dgen::generate_tile(cfg, rng);
    const auto c =
        diffpattern::metrics::pattern_complexity(dl::extract_squish(tile));
    complexities.insert({c.cx, c.cy});
  }
  EXPECT_GE(complexities.size(), 4U) << "generator lacks diversity";
}

TEST(Datagen, DatasetBuildsWithPaddedPatterns) {
  dc::Rng rng(4);
  const auto dataset =
      dgen::build_dataset(quick_config(), 12, 16, 4, 0.25, rng);
  EXPECT_EQ(dataset.patterns.size(), 12U);
  EXPECT_EQ(dataset.train_indices.size(), 9U);
  EXPECT_EQ(dataset.test_indices.size(), 3U);
  for (const auto& p : dataset.patterns) {
    EXPECT_EQ(p.topology.rows(), 16);
    EXPECT_EQ(p.topology.cols(), 16);
    EXPECT_EQ(p.width(), 2048);
    EXPECT_NO_THROW(p.validate());
    // Padding must not break legality.
    EXPECT_TRUE(dd::check_pattern(p, quick_config().rules).clean());
  }
  EXPECT_EQ(dataset.library.dx_pool.size(), 12U);
}

TEST(Datagen, FoldedBatchShape) {
  dc::Rng rng(5);
  const auto dataset = dgen::build_dataset(quick_config(), 6, 16, 4, 0.0, rng);
  const auto batch = dataset.sample_training_batch(3, rng);
  EXPECT_EQ(batch.shape(), (diffpattern::tensor::Shape{3, 4, 8, 8}));
  for (std::int64_t i = 0; i < batch.numel(); ++i) {
    EXPECT_TRUE(batch[i] == 0.0F || batch[i] == 1.0F);
  }
}

TEST(Datagen, DeterministicForSeed) {
  const auto cfg = quick_config();
  dc::Rng rng_a(42);
  dc::Rng rng_b(42);
  const auto a = dgen::generate_tile(cfg, rng_a);
  const auto b = dgen::generate_tile(cfg, rng_b);
  ASSERT_EQ(a.rects.size(), b.rects.size());
  for (std::size_t i = 0; i < a.rects.size(); ++i) {
    EXPECT_EQ(a.rects[i], b.rects[i]);
  }
}

TEST(Datagen, AugmentationTriplesAndStaysClean) {
  auto cfg = quick_config();
  cfg.augment = true;
  dc::Rng rng(8);
  const auto dataset = dgen::build_dataset(cfg, 18, 16, 4, 0.0, rng);
  EXPECT_EQ(dataset.patterns.size(), 18U);
  for (const auto& p : dataset.patterns) {
    EXPECT_TRUE(dd::check_pattern(p, cfg.rules).clean());
    EXPECT_EQ(p.width(), cfg.tile);
    EXPECT_EQ(p.height(), cfg.tile);
  }
  // Mirror and transpose variants must actually appear: the transpose of
  // pattern i+2 equals pattern i+1's... instead verify structurally — for
  // each base pattern (every third), its mirror and transpose precede it.
  const auto& base = dataset.patterns[2];
  const auto& mirrored = dataset.patterns[0];
  const auto& transposed = dataset.patterns[1];
  EXPECT_EQ(mirrored.topology,
            diffpattern::geometry::mirrored_horizontal(base.topology));
  EXPECT_EQ(transposed.topology,
            diffpattern::geometry::transposed(base.topology));
  EXPECT_EQ(transposed.dx, base.dy);
  EXPECT_EQ(transposed.dy, base.dx);
}

TEST(Datagen, AugmentedComplexityTransposesSwapCxCy) {
  auto cfg = quick_config();
  cfg.augment = true;
  dc::Rng rng(9);
  const auto dataset = dgen::build_dataset(cfg, 9, 16, 4, 0.0, rng);
  const auto base =
      diffpattern::metrics::pattern_complexity(dataset.patterns[2]);
  const auto mir =
      diffpattern::metrics::pattern_complexity(dataset.patterns[0]);
  const auto tra =
      diffpattern::metrics::pattern_complexity(dataset.patterns[1]);
  EXPECT_EQ(mir.cx, base.cx);
  EXPECT_EQ(mir.cy, base.cy);
  EXPECT_EQ(tra.cx, base.cy);
  EXPECT_EQ(tra.cy, base.cx);
}

TEST(Datagen, RejectsImpossibleConfig) {
  dgen::DatagenConfig cfg = quick_config();
  cfg.tile = 100;  // Tile smaller than 4 * width_min (= 256).
  dc::Rng rng(6);
  EXPECT_THROW(dgen::generate_tile(cfg, rng), std::invalid_argument);
}
