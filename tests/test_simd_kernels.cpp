// SIMD kernel tier tests: runtime dispatch plumbing, bitwise parity between
// the scalar (canonical) backend and every vector backend this host can
// run, and ULP-bounded equivalence against the retained tensor::reference
// oracle — at sizes chosen to exercise every remainder/tail path
// (non-multiples of the 8-float / 4-double lane widths, 1x1 convolutions,
// odd channel counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/compute_pool.h"
#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "ulp_test_util.h"

namespace dc = diffpattern::common;
namespace dt = diffpattern::tensor;
namespace dn = diffpattern::nn;
namespace du = diffpattern::testutil;
using dt::KernelBackend;
using dt::Tensor;

namespace {

using du::BackendGuard;

/// Every backend this host can run, scalar first (the canonical one).
std::vector<KernelBackend> backends_under_test() {
  std::vector<KernelBackend> backends = {KernelBackend::kScalar};
  for (const auto candidate : {KernelBackend::kAvx2, KernelBackend::kNeon}) {
    if (dt::kernel_backend_supported(candidate)) {
      backends.push_back(candidate);
    }
  }
  return backends;
}

/// Element counts covering full-vector blocks, every tail length of the
/// 8-float and 4-double lane widths, and the degenerate n=1 case.
const std::int64_t kTailSizes[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  11,
                                   12, 13, 15, 16, 17, 23, 24, 31, 32, 33,
                                   63, 64, 65, 100};

Tensor random_tensor(dt::Shape shape, dc::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    return ::testing::AssertionFailure()
           << "shape mismatch " << a.shape_string() << " vs "
           << b.shape_string();
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << "tensors differ bitwise";
  }
  return ::testing::AssertionSuccess();
}

/// ULP bound for one fused-vs-split rounding difference per accumulation
/// step, summed over the inner dimensions used below. Observed distances
/// are single digits; the slack guards against unlucky cancellation, not
/// against real bugs (those show up thousands of ULPs away or as shape
/// garbage).
constexpr std::int64_t kGemmUlpBound = 128;

/// Absolute escape hatch for accumulations that cancel towards zero: a
/// fixed absolute drift (~inner_dim * eps * operand scale) is a huge ULP
/// distance on a near-zero result without being any less correct.
constexpr float kGemmAtol = 1e-5F;

}  // namespace

// --------------------------------------------------------------- dispatch

TEST(SimdKernels, ScalarBackendIsAlwaysAvailable) {
  EXPECT_TRUE(dt::kernel_backend_supported(KernelBackend::kScalar));
  ASSERT_NE(dt::simd::table_for(KernelBackend::kScalar), nullptr);
  const auto names = dt::supported_kernel_backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "scalar"), names.end());
}

TEST(SimdKernels, ActiveTableMatchesReportedBackend) {
  BackendGuard guard;
  for (const auto backend : backends_under_test()) {
    ASSERT_TRUE(dt::set_kernel_backend(backend).ok());
    EXPECT_EQ(dt::kernel_backend(), backend);
    EXPECT_EQ(dt::kernel_backend_name(), dt::kernel_backend_label(backend));
    EXPECT_EQ(dt::simd::active().backend, backend);
  }
}

TEST(SimdKernels, ParseRejectsUnknownNamesWithInvalidArgument) {
  for (const char* bad : {"warp9", "", "AVX2", "sse", "scalar "}) {
    const auto parsed = dt::parse_kernel_backend(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "' parsed";
    EXPECT_EQ(parsed.status().code(), dc::StatusCode::kInvalidArgument);
    const auto status = dt::set_kernel_backend_name(bad);
    EXPECT_EQ(status.code(), dc::StatusCode::kInvalidArgument);
  }
}

TEST(SimdKernels, AutoResolvesToDetectedBackend) {
  BackendGuard guard;
  const auto parsed = dt::parse_kernel_backend("auto");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, dt::detected_kernel_backend());
  ASSERT_TRUE(dt::set_kernel_backend_name("auto").ok());
  EXPECT_EQ(dt::kernel_backend(), dt::detected_kernel_backend());
}

TEST(SimdKernels, UnsupportedIsaAnswersInvalidArgumentAndKeepsDispatch) {
  std::string unsupported;
  for (const auto candidate : {KernelBackend::kAvx2, KernelBackend::kNeon}) {
    if (!dt::kernel_backend_supported(candidate)) {
      unsupported = dt::kernel_backend_label(candidate);
      break;
    }
  }
  if (unsupported.empty()) {
    GTEST_SKIP() << "host supports every compiled backend";
  }
  const auto before = dt::kernel_backend();
  const auto status = dt::set_kernel_backend_name(unsupported);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), dc::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("not supported on this host"),
            std::string::npos);
  EXPECT_EQ(dt::kernel_backend(), before);  // Dispatch untouched.
}

// ------------------------------------------------- raw kernel table parity

TEST(SimdKernels, AxpyBackendParityAndTailCoverage) {
  dc::Rng rng(101);
  const auto* scalar = dt::simd::table_for(KernelBackend::kScalar);
  for (const auto backend : backends_under_test()) {
    const auto* table = dt::simd::table_for(backend);
    ASSERT_NE(table, nullptr);
    for (const auto n : kTailSizes) {
      const Tensor x = random_tensor({n}, rng);
      const Tensor y0 = random_tensor({n}, rng);
      const float a = static_cast<float>(rng.normal());
      Tensor want = y0;
      scalar->axpy(a, x.data(), want.data(), n);
      Tensor got = y0;
      table->axpy(a, x.data(), got.data(), n);
      EXPECT_TRUE(bitwise_equal(got, want))
          << dt::kernel_backend_label(backend) << " n=" << n;
      // One fused rounding vs mul+add: within a couple of ULPs of naive.
      for (std::int64_t i = 0; i < n; ++i) {
        const float naive = y0[i] + a * x[i];
        EXPECT_TRUE(du::ulp_distance(got[i], naive) <= 2 ||
                    std::abs(got[i] - naive) <= 2e-6F)
            << "n=" << n << " i=" << i << ": " << got[i] << " vs " << naive;
      }
    }
  }
}

TEST(SimdKernels, DotBackendParityAndDoubleReference) {
  dc::Rng rng(103);
  const auto* scalar = dt::simd::table_for(KernelBackend::kScalar);
  for (const auto n : kTailSizes) {
    const Tensor x = random_tensor({n}, rng);
    const Tensor y = random_tensor({n}, rng);
    const float want = scalar->dot(x.data(), y.data(), n);
    double exact = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      exact += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    EXPECT_TRUE(du::ulp_distance(want, static_cast<float>(exact)) <=
                    kGemmUlpBound ||
                std::abs(want - static_cast<float>(exact)) <= kGemmAtol)
        << "n=" << n << ": " << want << " vs " << exact;
    for (const auto backend : backends_under_test()) {
      const auto* table = dt::simd::table_for(backend);
      const float got = table->dot(x.data(), y.data(), n);
      EXPECT_EQ(du::ulp_distance(got, want), 0)
          << dt::kernel_backend_label(backend) << " n=" << n << ": " << got
          << " vs " << want;
    }
  }
}

TEST(SimdKernels, ElementwiseKernelsExactAcrossBackends) {
  dc::Rng rng(107);
  for (const auto backend : backends_under_test()) {
    const auto* table = dt::simd::table_for(backend);
    for (const auto n : kTailSizes) {
      const Tensor x = random_tensor({n}, rng);
      const Tensor y0 = random_tensor({n}, rng);
      const float s = static_cast<float>(rng.normal());

      Tensor got = y0;
      table->add(got.data(), x.data(), n);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], y0[i] + x[i]) << "add n=" << n;
      }
      got = y0;
      table->mul(got.data(), x.data(), n);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], y0[i] * x[i]) << "mul n=" << n;
      }
      got = y0;
      table->scale(got.data(), s, n);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], y0[i] * s) << "scale n=" << n;
      }
      Tensor shifted({n});
      table->shift(shifted.data(), x.data(), s, n);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(shifted[i], x[i] + s) << "shift n=" << n;
      }
      got = y0;
      table->relu(got.data(), n);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], y0[i] > 0.0F ? y0[i] : 0.0F) << "relu n=" << n;
      }
    }
  }
}

TEST(SimdKernels, MaxKernelExactAcrossBackends) {
  dc::Rng rng(109);
  for (const auto backend : backends_under_test()) {
    const auto* table = dt::simd::table_for(backend);
    for (const auto n : kTailSizes) {
      const Tensor x = random_tensor({n}, rng);
      float want = x[0];
      for (std::int64_t i = 1; i < n; ++i) {
        want = std::max(want, x[i]);
      }
      EXPECT_EQ(table->max(x.data(), n), want)
          << dt::kernel_backend_label(backend) << " n=" << n;
    }
  }
}

TEST(SimdKernels, MomentKernelsBackendParityAndDoubleReference) {
  dc::Rng rng(113);
  const auto* scalar = dt::simd::table_for(KernelBackend::kScalar);
  for (const auto n : kTailSizes) {
    const Tensor x = random_tensor({n}, rng);
    const double sum_want = scalar->sum(x.data(), n);
    double exact = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      exact += static_cast<double>(x[i]);
    }
    EXPECT_NEAR(sum_want, exact, 1e-9 * std::max(1.0, std::abs(exact)));
    const double mean = sum_want / static_cast<double>(n);
    const double sq_want = scalar->sumsq_centered(x.data(), mean, n);
    for (const auto backend : backends_under_test()) {
      const auto* table = dt::simd::table_for(backend);
      // Double lanes reduce in a fixed tree: bitwise across backends.
      EXPECT_EQ(table->sum(x.data(), n), sum_want)
          << dt::kernel_backend_label(backend) << " n=" << n;
      EXPECT_EQ(table->sumsq_centered(x.data(), mean, n), sq_want)
          << dt::kernel_backend_label(backend) << " n=" << n;
    }
  }
}

TEST(SimdKernels, NormalizeAffineBackendParity) {
  dc::Rng rng(127);
  const auto* scalar = dt::simd::table_for(KernelBackend::kScalar);
  for (const auto backend : backends_under_test()) {
    const auto* table = dt::simd::table_for(backend);
    for (const auto n : kTailSizes) {
      const Tensor x = random_tensor({n}, rng);
      const Tensor gamma = random_tensor({n}, rng);
      const Tensor beta = random_tensor({n}, rng);
      const float mean = static_cast<float>(rng.normal());
      const float istd = std::abs(static_cast<float>(rng.normal())) + 0.5F;

      Tensor want_xhat({n});
      Tensor want_y({n});
      scalar->normalize_affine(x.data(), mean, istd, gamma[0], beta[0],
                               want_xhat.data(), want_y.data(), n);
      Tensor got_xhat({n});
      Tensor got_y({n});
      table->normalize_affine(x.data(), mean, istd, gamma[0], beta[0],
                              got_xhat.data(), got_y.data(), n);
      EXPECT_TRUE(bitwise_equal(got_xhat, want_xhat)) << "n=" << n;
      EXPECT_TRUE(bitwise_equal(got_y, want_y)) << "n=" << n;

      scalar->normalize_affine_rows(x.data(), mean, istd, gamma.data(),
                                    beta.data(), want_xhat.data(),
                                    want_y.data(), n);
      table->normalize_affine_rows(x.data(), mean, istd, gamma.data(),
                                   beta.data(), got_xhat.data(),
                                   got_y.data(), n);
      EXPECT_TRUE(bitwise_equal(got_xhat, want_xhat)) << "rows n=" << n;
      EXPECT_TRUE(bitwise_equal(got_y, want_y)) << "rows n=" << n;
    }
  }
}

// ------------------------------------------- tensor-op level equivalence

TEST(SimdKernels, MatmulFamilyBackendInvariantAndUlpCloseToReference) {
  BackendGuard guard;
  dc::Rng rng(131);
  // Odd inner/outer sizes defeat lane alignment; zeros exercise the sparse
  // skip path identically in every backend.
  Tensor a = random_tensor({65, 47}, rng);
  const Tensor b = random_tensor({47, 83}, rng);
  for (std::int64_t i = 0; i < a.numel(); i += 7) {
    a[i] = 0.0F;
  }
  const Tensor ta = random_tensor({65, 83}, rng);  // For transpose_a.
  const Tensor tb = random_tensor({29, 47}, rng);  // For transpose_b.

  Tensor mm_base;
  Tensor mta_base;
  Tensor mtb_base;
  for (const auto backend : backends_under_test()) {
    ASSERT_TRUE(dt::set_kernel_backend(backend).ok());
    const Tensor mm = dt::matmul(a, b);
    const Tensor mta = dt::matmul_transpose_a(a, ta);
    const Tensor mtb = dt::matmul_transpose_b(a, tb);
    if (mm_base.empty()) {
      mm_base = mm;
      mta_base = mta;
      mtb_base = mtb;
    } else {
      EXPECT_TRUE(bitwise_equal(mm, mm_base))
          << dt::kernel_backend_label(backend);
      EXPECT_TRUE(bitwise_equal(mta, mta_base))
          << dt::kernel_backend_label(backend);
      EXPECT_TRUE(bitwise_equal(mtb, mtb_base))
          << dt::kernel_backend_label(backend);
    }
  }
  EXPECT_TRUE(du::ulp_close(mm_base, dt::reference::matmul(a, b),
                            kGemmUlpBound, kGemmAtol));
  EXPECT_TRUE(du::ulp_close(mta_base, dt::reference::matmul_transpose_a(a, ta),
                            kGemmUlpBound, kGemmAtol));
  EXPECT_TRUE(du::ulp_close(mtb_base, dt::reference::matmul_transpose_b(a, tb),
                            kGemmUlpBound, kGemmAtol));
}

TEST(SimdKernels, MatmulSingleColumnAndSingleElementShapes) {
  BackendGuard guard;
  dc::Rng rng(137);
  // N=1 puts every axpy on the tail path; 1x1x1 is the degenerate GEMM.
  const Tensor a = random_tensor({9, 13}, rng);
  const Tensor b = random_tensor({13, 1}, rng);
  const Tensor a1 = random_tensor({1, 1}, rng);
  const Tensor b1 = random_tensor({1, 1}, rng);
  Tensor col_base;
  Tensor one_base;
  for (const auto backend : backends_under_test()) {
    ASSERT_TRUE(dt::set_kernel_backend(backend).ok());
    const Tensor col = dt::matmul(a, b);
    const Tensor one = dt::matmul(a1, b1);
    if (col_base.empty()) {
      col_base = col;
      one_base = one;
    } else {
      EXPECT_TRUE(bitwise_equal(col, col_base));
      EXPECT_TRUE(bitwise_equal(one, one_base));
    }
  }
  EXPECT_TRUE(du::ulp_close(col_base, dt::reference::matmul(a, b),
                            kGemmUlpBound, kGemmAtol));
  EXPECT_TRUE(du::ulp_close(one_base, dt::reference::matmul(a1, b1), 2));
}

TEST(SimdKernels, SoftmaxRowsBackendInvariant) {
  BackendGuard guard;
  dc::Rng rng(139);
  const Tensor logits = random_tensor({33, 37}, rng);  // Odd row width.
  Tensor base;
  for (const auto backend : backends_under_test()) {
    ASSERT_TRUE(dt::set_kernel_backend(backend).ok());
    const Tensor out = dt::softmax_rows(logits);
    if (base.empty()) {
      base = out;
    } else {
      EXPECT_TRUE(bitwise_equal(out, base))
          << dt::kernel_backend_label(backend);
    }
  }
  // Max and the final scale are exact in every backend; the whole op stays
  // bitwise equal to the reference.
  EXPECT_TRUE(bitwise_equal(base, dt::reference::softmax_rows(logits)));
}

namespace {

/// Per-sample conv reference composed from the retained naive kernels
/// (reference GEMM over per-sample im2col), the oracle bench_kernels uses.
Tensor conv_reference(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::int64_t stride, std::int64_t padding) {
  dt::Conv2dGeometry geom;
  geom.in_channels = x.dim(1);
  geom.in_h = x.dim(2);
  geom.in_w = x.dim(3);
  geom.kernel_h = w.dim(2);
  geom.kernel_w = w.dim(3);
  geom.stride = stride;
  geom.padding = padding;
  const auto batch = x.dim(0);
  const auto out_ch = w.dim(0);
  const auto n_out = geom.out_h() * geom.out_w();
  const Tensor w2d = w.reshaped({out_ch, geom.patch_size()});
  Tensor out({batch, out_ch, geom.out_h(), geom.out_w()});
  for (std::int64_t n = 0; n < batch; ++n) {
    Tensor image({x.dim(1), x.dim(2), x.dim(3)});
    std::copy(x.data() + n * image.numel(),
              x.data() + (n + 1) * image.numel(), image.data());
    const Tensor y = dt::reference::matmul(w2d, dt::im2col(image, geom));
    for (std::int64_t o = 0; o < out_ch; ++o) {
      for (std::int64_t p = 0; p < n_out; ++p) {
        out[(n * out_ch + o) * n_out + p] = y[o * n_out + p] + b[o];
      }
    }
  }
  return out;
}

}  // namespace

TEST(SimdKernels, ConvolutionTailShapesBackendInvariantAndUlpClose) {
  BackendGuard guard;
  dc::Rng rng(149);
  dn::NoGradGuard no_grad;
  struct Case {
    dt::Shape x;
    dt::Shape w;
    std::int64_t stride;
    std::int64_t padding;
  };
  // Odd channel counts, 1x1 kernels, and widths straddling the 8-lane
  // boundary — the shapes whose tails hide out-of-bounds bugs.
  const Case cases[] = {
      {{2, 3, 5, 7}, {5, 3, 3, 3}, 1, 1},   // Odd channels, W=7 tail.
      {{1, 1, 8, 9}, {3, 1, 1, 1}, 1, 0},   // 1x1 conv, single channel.
      {{3, 5, 4, 4}, {7, 5, 1, 1}, 1, 0},   // 1x1 conv, odd channels.
      {{2, 2, 9, 9}, {4, 2, 3, 3}, 2, 1},   // Strided, odd output width.
      {{1, 4, 3, 3}, {2, 4, 3, 3}, 1, 0},   // Output collapses to 1x1.
  };
  for (const auto& c : cases) {
    dc::Rng data_rng(151);
    const Tensor x = random_tensor(c.x, data_rng);
    const Tensor w = random_tensor(c.w, data_rng);
    const Tensor b = random_tensor({c.w[0]}, data_rng);
    Tensor base;
    for (const auto backend : backends_under_test()) {
      ASSERT_TRUE(dt::set_kernel_backend(backend).ok());
      const Tensor out =
          dn::conv2d(dn::Var(x), dn::Var(w), dn::Var(b), c.stride, c.padding)
              .value();
      if (base.empty()) {
        base = out;
      } else {
        EXPECT_TRUE(bitwise_equal(out, base))
            << dt::kernel_backend_label(backend);
      }
    }
    EXPECT_TRUE(du::ulp_close(base, conv_reference(x, w, b, c.stride,
                                                   c.padding),
                              kGemmUlpBound, kGemmAtol));
  }
}

TEST(SimdKernels, NormalizationOpsBackendInvariant) {
  BackendGuard guard;
  dc::Rng rng(157);
  // Plane of 3x3 = 9 elements and 37-wide rows keep every normalize call on
  // a tail path.
  const Tensor x4 = random_tensor({2, 6, 3, 3}, rng);
  const Tensor gamma = random_tensor({6}, rng);
  const Tensor beta = random_tensor({6}, rng);
  const Tensor x2 = random_tensor({5, 37}, rng);
  const Tensor lg = random_tensor({37}, rng);
  const Tensor lb = random_tensor({37}, rng);
  Tensor gn_base;
  Tensor ln_base;
  Tensor relu_base;
  for (const auto backend : backends_under_test()) {
    ASSERT_TRUE(dt::set_kernel_backend(backend).ok());
    const Tensor gn =
        dn::group_norm(dn::Var(x4), dn::Var(gamma), dn::Var(beta),
                       /*groups=*/3, /*eps=*/1e-5F)
            .value();
    const Tensor ln =
        dn::layer_norm(dn::Var(x2), dn::Var(lg), dn::Var(lb), 1e-5F).value();
    const Tensor re = dn::relu(dn::Var(x2)).value();
    if (gn_base.empty()) {
      gn_base = gn;
      ln_base = ln;
      relu_base = re;
    } else {
      EXPECT_TRUE(bitwise_equal(gn, gn_base))
          << dt::kernel_backend_label(backend);
      EXPECT_TRUE(bitwise_equal(ln, ln_base))
          << dt::kernel_backend_label(backend);
      EXPECT_TRUE(bitwise_equal(re, relu_base))
          << dt::kernel_backend_label(backend);
    }
  }
}

TEST(SimdKernels, ForcedScalarDispatchServesTheWholeGemmPath) {
  // Forced-scalar parity on the same build: the portable code path must
  // produce the same bytes the vector backend produces (it is the
  // canonical semantics, not a second implementation).
  BackendGuard guard;
  dc::Rng rng(163);
  const Tensor a = random_tensor({17, 31}, rng);
  const Tensor b = random_tensor({31, 9}, rng);
  ASSERT_TRUE(dt::set_kernel_backend(KernelBackend::kScalar).ok());
  const Tensor scalar_out = dt::matmul(a, b);
  const auto detected = dt::detected_kernel_backend();
  if (detected == KernelBackend::kScalar) {
    GTEST_SKIP() << "host has no vector backend to compare against";
  }
  ASSERT_TRUE(dt::set_kernel_backend(detected).ok());
  EXPECT_TRUE(bitwise_equal(dt::matmul(a, b), scalar_out));
}
