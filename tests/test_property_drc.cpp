// Metamorphic / differential DRC properties: the checker's verdict must be
// invariant under representation changes that preserve geometry, and the
// synthetic data generator must never emit a dirty tile under any
// configuration.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/datagen.h"
#include "drc/checker.h"
#include "layout/squish.h"

namespace dd = diffpattern::drc;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;
namespace dc = diffpattern::common;
namespace dgen = diffpattern::datagen;

namespace {

dl::Layout random_layout(dc::Rng& rng, int rects) {
  dl::Layout l;
  l.width = 1024;
  l.height = 1024;
  for (int i = 0; i < rects; ++i) {
    const auto w = rng.uniform_int(16, 300);
    const auto h = rng.uniform_int(16, 300);
    const auto x0 = rng.uniform_int(0, 1024 - w);
    const auto y0 = rng.uniform_int(0, 1024 - h);
    l.rects.push_back(dg::Rect{x0, y0, x0 + w, y0 + h});
  }
  return l;
}

dd::DesignRules moderate_rules() {
  dd::DesignRules rules;
  rules.space_min = 40;
  rules.width_min = 40;
  rules.area_min = 1600;
  rules.area_max = 300000;
  return rules;
}

}  // namespace

class DrcMetamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DrcMetamorphic, VerdictInvariantUnderPadding) {
  // pad_to inserts redundant scan lines without changing geometry; the DRC
  // verdict (clean or dirty, and the violation kinds) must not change.
  dc::Rng rng(GetParam());
  const auto pattern = dl::extract_squish(random_layout(rng, 4));
  if (pattern.topology.rows() > 20 || pattern.topology.cols() > 20) {
    GTEST_SKIP();
  }
  const auto rules = moderate_rules();
  const auto base = dd::check_pattern(pattern, rules);
  const auto padded = dl::pad_to(pattern, 24, 24);
  const auto after = dd::check_pattern(padded, rules);
  EXPECT_EQ(base.clean(), after.clean()) << "padding changed the verdict";
  for (const auto kind :
       {dd::ViolationKind::width, dd::ViolationKind::space,
        dd::ViolationKind::area_min, dd::ViolationKind::area_max,
        dd::ViolationKind::corner_contact}) {
    EXPECT_EQ(base.count(kind) > 0, after.count(kind) > 0)
        << "kind " << dd::to_string(kind);
  }
}

TEST_P(DrcMetamorphic, VerdictInvariantUnderRestoreRoundTrip) {
  dc::Rng rng(GetParam() + 1000);
  const auto layout = random_layout(rng, 5);
  const auto rules = moderate_rules();
  const auto direct = dd::check_layout(layout, rules);
  const auto round_trip =
      dd::check_layout(dl::restore_layout(dl::extract_squish(layout)), rules);
  EXPECT_EQ(direct.clean(), round_trip.clean());
  EXPECT_EQ(direct.violations.size(), round_trip.violations.size());
}

TEST_P(DrcMetamorphic, TighteningRulesNeverRemovesViolations) {
  // Monotonicity: raising space_min/width_min or shrinking the area window
  // can only add violations.
  dc::Rng rng(GetParam() + 2000);
  const auto layout = random_layout(rng, 4);
  auto loose = moderate_rules();
  auto tight = loose;
  tight.space_min *= 2;
  tight.width_min *= 2;
  tight.area_min *= 2;
  tight.area_max /= 2;
  const auto loose_report = dd::check_layout(layout, loose);
  const auto tight_report = dd::check_layout(layout, tight);
  EXPECT_GE(tight_report.violations.size(), loose_report.violations.size());
  if (!loose_report.clean()) {
    EXPECT_FALSE(tight_report.clean());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrcMetamorphic,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

struct DatagenCase {
  std::int64_t quantum;
  std::int64_t min_shapes;
  std::int64_t max_shapes;
  double extend;
};

class DatagenMatrix : public ::testing::TestWithParam<DatagenCase> {};

TEST_P(DatagenMatrix, TilesAlwaysCleanUnderEveryConfig) {
  const auto param = GetParam();
  dgen::DatagenConfig cfg;
  cfg.quantum = param.quantum;
  cfg.min_shapes = param.min_shapes;
  cfg.max_shapes = param.max_shapes;
  cfg.extend_probability = param.extend;
  dc::Rng rng(param.quantum * 1000 + param.max_shapes);
  for (int i = 0; i < 4; ++i) {
    const auto tile = dgen::generate_tile(cfg, rng);
    EXPECT_TRUE(dd::check_layout(tile, cfg.rules).clean());
    // And under the Euclidean-corner extension too (construction uses
    // inflated clearance, which implies it).
    auto extended = cfg.rules;
    extended.euclidean_corner_space = true;
    EXPECT_TRUE(dd::check_layout(tile, extended).clean());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DatagenMatrix,
    ::testing::Values(DatagenCase{64, 2, 4, 0.0},
                      DatagenCase{64, 4, 9, 0.5},
                      DatagenCase{128, 3, 7, 0.4},
                      DatagenCase{32, 2, 6, 0.8},
                      DatagenCase{256, 1, 3, 0.0}));

TEST(DrcDifferential, RunChecksAgreeWithBruteForceOnSmallGrids) {
  // Brute-force oracle: enumerate every horizontal/vertical run on a small
  // pattern in nm space and compare counts with the checker.
  dc::Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pattern = dl::extract_squish(random_layout(rng, 3));
    const auto rules = moderate_rules();
    const auto report = dd::check_pattern(pattern, rules);

    std::int64_t expected_width = 0;
    std::int64_t expected_space = 0;
    const auto& topo = pattern.topology;
    const auto scan = [&](bool rows) {
      const auto lines = rows ? topo.rows() : topo.cols();
      const auto length = rows ? topo.cols() : topo.rows();
      const auto& deltas = rows ? pattern.dx : pattern.dy;
      for (std::int64_t line = 0; line < lines; ++line) {
        std::int64_t i = 0;
        bool seen = false;
        while (i < length) {
          const auto v = rows ? topo.get_unchecked(line, i)
                              : topo.get_unchecked(i, line);
          std::int64_t j = i;
          std::int64_t span = 0;
          while (j < length) {
            const auto w = rows ? topo.get_unchecked(line, j)
                                : topo.get_unchecked(j, line);
            if (w != v) break;
            span += deltas[static_cast<std::size_t>(j)];
            ++j;
          }
          if (v == 1) {
            expected_width += span < rules.width_min;
            seen = true;
          } else if (seen && j < length) {
            expected_space += span < rules.space_min;
          }
          i = j;
        }
      }
    };
    scan(true);
    scan(false);
    EXPECT_EQ(report.count(dd::ViolationKind::width), expected_width);
    EXPECT_EQ(report.count(dd::ViolationKind::space), expected_space);
  }
}
