#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "io/io.h"
#include "layout/squish.h"

namespace dio = diffpattern::io;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

dl::SquishPattern sample_pattern() {
  dl::Layout l;
  l.width = 100;
  l.height = 100;
  l.rects.push_back(dg::Rect{10, 10, 60, 40});
  l.rects.push_back(dg::Rect{70, 50, 90, 90});
  return dl::extract_squish(l);
}

}  // namespace

TEST(Io, GridPgmHasCorrectHeaderAndSize) {
  dg::BinaryGrid g(2, 3);
  g.set(0, 0, 1);
  const auto path = temp_path("dp_grid.pgm");
  dio::write_grid_pgm(path, g, 4);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 12);
  EXPECT_EQ(h, 8);
  EXPECT_EQ(maxval, 255);
  in.get();  // Single whitespace after header.
  std::vector<char> pixels(static_cast<std::size_t>(w * h));
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_TRUE(in.good());
  // Grid row 0 renders at the image bottom: bottom-left block dark.
  EXPECT_EQ(static_cast<unsigned char>(
                pixels[static_cast<std::size_t>((h - 1) * w)]),
            40);
  // Top-right block light.
  EXPECT_EQ(static_cast<unsigned char>(pixels[static_cast<std::size_t>(w - 1)]),
            230);
  std::remove(path.c_str());
}

TEST(Io, PatternPgmWrites) {
  const auto path = temp_path("dp_pattern.pgm");
  dio::write_pattern_pgm(path, sample_pattern(), 64);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 64U * 64U);
  std::remove(path.c_str());
}

TEST(Io, TextFileRoundTrip) {
  const auto path = temp_path("dp_text.csv");
  dio::write_text_file(path, "a,b\n1,2\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(Io, PatternLibraryRoundTrip) {
  diffpattern::common::Rng rng(1);
  std::vector<dl::SquishPattern> patterns;
  for (int i = 0; i < 5; ++i) {
    auto p = sample_pattern();
    // Vary deltas to catch serialization mixups.
    p.dx[0] += i;
    p.dx[1] -= i;
    patterns.push_back(p);
  }
  const auto path = temp_path("dp_library.bin");
  dio::save_pattern_library(path, patterns);
  const auto loaded = dio::load_pattern_library(path);
  ASSERT_EQ(loaded.size(), patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_EQ(loaded[i].topology, patterns[i].topology);
    EXPECT_EQ(loaded[i].dx, patterns[i].dx);
    EXPECT_EQ(loaded[i].dy, patterns[i].dy);
  }
  std::remove(path.c_str());
}

TEST(Io, LoadRejectsGarbage) {
  const auto path = temp_path("dp_garbage.bin");
  dio::write_text_file(path, "not a library");
  EXPECT_THROW(dio::load_pattern_library(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(dio::load_pattern_library("/nonexistent/lib.bin"),
               std::runtime_error);
}

TEST(Io, EnsureDirectoryCreatesNestedPath) {
  const auto base = temp_path("dp_io_dirs");
  const auto nested = base + "/a/b";
  dio::ensure_directory(nested);
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  std::filesystem::remove_all(base);
}
