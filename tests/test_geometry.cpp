#include <gtest/gtest.h>

#include "geometry/components.h"
#include "geometry/grid.h"
#include "geometry/types.h"

namespace dg = diffpattern::geometry;
using dg::BinaryGrid;
using dg::Point;
using dg::Rect;

namespace {

BinaryGrid grid_from_ascii(const std::vector<std::string>& rows_top_first) {
  const auto rows = static_cast<std::int64_t>(rows_top_first.size());
  const auto cols = static_cast<std::int64_t>(rows_top_first.front().size());
  BinaryGrid g(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto& line = rows_top_first[static_cast<std::size_t>(rows - 1 - r)];
    for (std::int64_t c = 0; c < cols; ++c) {
      g.set(r, c, line[static_cast<std::size_t>(c)] == '#' ? 1 : 0);
    }
  }
  return g;
}

}  // namespace

TEST(Rect, BasicPredicates) {
  Rect a{0, 0, 10, 5};
  EXPECT_EQ(a.width(), 10);
  EXPECT_EQ(a.height(), 5);
  EXPECT_EQ(a.area(), 50);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE((Rect{0, 0, 0, 5}).valid());
}

TEST(Rect, OverlapsExclusiveOfEdges) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.overlaps(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(a.overlaps(Rect{10, 0, 20, 10}));  // Shared edge only.
  EXPECT_TRUE(a.touches_or_overlaps(Rect{10, 0, 20, 10}));
  EXPECT_FALSE(a.touches_or_overlaps(Rect{11, 0, 20, 10}));
}

TEST(Rect, InflatedGrowsAllSides) {
  Rect a{5, 5, 10, 10};
  Rect b = a.inflated(2);
  EXPECT_EQ(b, (Rect{3, 3, 12, 12}));
}

TEST(BinaryGrid, SetGetAndBounds) {
  BinaryGrid g(3, 4);
  g.set(2, 3, 1);
  EXPECT_EQ(g.at(2, 3), 1);
  EXPECT_EQ(g.at(0, 0), 0);
  EXPECT_EQ(g.popcount(), 1);
  EXPECT_THROW(g.at(3, 0), std::invalid_argument);
  EXPECT_THROW(g.set(0, 0, 2), std::invalid_argument);
}

TEST(BinaryGrid, BowtieDetection) {
  EXPECT_TRUE(dg::has_bowtie(grid_from_ascii({"#.", ".#"})));
  EXPECT_TRUE(dg::has_bowtie(grid_from_ascii({".#", "#."})));
  EXPECT_FALSE(dg::has_bowtie(grid_from_ascii({"##", ".#"})));
  EXPECT_FALSE(dg::has_bowtie(grid_from_ascii({"##", "##"})));
  EXPECT_FALSE(dg::has_bowtie(grid_from_ascii({"..", ".."})));
}

TEST(BinaryGrid, MirrorAndTranspose) {
  BinaryGrid g = grid_from_ascii({"#..", "##."});
  BinaryGrid m = dg::mirrored_horizontal(g);
  EXPECT_EQ(m, grid_from_ascii({"..#", ".##"}));
  BinaryGrid t = dg::transposed(g);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  // g(r=1, c=0) is '#' (top row, first char) -> t(0, 1).
  EXPECT_EQ(t.at(0, 1), 1);
}

TEST(Components, LabelsFourConnectivity) {
  // Two diagonal cells are distinct components.
  BinaryGrid g = grid_from_ascii({"#.", ".#"});
  auto analysis = dg::analyze_components(g);
  EXPECT_EQ(analysis.components.size(), 2U);
}

TEST(Components, SingleComponentWithBend) {
  BinaryGrid g = grid_from_ascii({"#..",
                                  "#..",
                                  "###"});
  auto analysis = dg::analyze_components(g);
  ASSERT_EQ(analysis.components.size(), 1U);
  EXPECT_EQ(analysis.components[0].cells.size(), 5U);
  EXPECT_EQ(analysis.components[0].min_row, 0);
  EXPECT_EQ(analysis.components[0].max_row, 2);
}

TEST(Components, EmptyGridHasNoComponents) {
  BinaryGrid g(4, 4);
  auto analysis = dg::analyze_components(g);
  EXPECT_TRUE(analysis.components.empty());
  EXPECT_EQ(analysis.label_at(1, 1), -1);
}

TEST(Components, LabelsMatchCells) {
  BinaryGrid g = grid_from_ascii({"##.#",
                                  "...#",
                                  "##.#"});
  auto analysis = dg::analyze_components(g);
  ASSERT_EQ(analysis.components.size(), 3U);
  for (const auto& comp : analysis.components) {
    for (const auto& cell : comp.cells) {
      EXPECT_EQ(analysis.label_at(cell.row, cell.col), comp.id);
    }
  }
}

TEST(Boundary, UnitSquare) {
  BinaryGrid g = grid_from_ascii({"#"});
  auto analysis = dg::analyze_components(g);
  auto loop = dg::trace_outer_boundary(analysis, 0);
  ASSERT_EQ(loop.size(), 4U);
  EXPECT_EQ(loop[0], (Point{0, 0}));
  // Counter-clockwise: (0,0) -> (1,0) -> (1,1) -> (0,1).
  EXPECT_EQ(loop[1], (Point{1, 0}));
  EXPECT_EQ(loop[2], (Point{1, 1}));
  EXPECT_EQ(loop[3], (Point{0, 1}));
}

TEST(Boundary, RectangleHasFourVertices) {
  BinaryGrid g = grid_from_ascii({"###", "###"});
  auto analysis = dg::analyze_components(g);
  auto loop = dg::trace_outer_boundary(analysis, 0);
  ASSERT_EQ(loop.size(), 4U);
  EXPECT_EQ(loop[1], (Point{3, 0}));
  EXPECT_EQ(loop[2], (Point{3, 2}));
}

TEST(Boundary, LShapeHasSixVertices) {
  BinaryGrid g = grid_from_ascii({"#..",
                                  "###"});
  auto analysis = dg::analyze_components(g);
  auto loop = dg::trace_outer_boundary(analysis, 0);
  EXPECT_EQ(loop.size(), 6U);
}

TEST(Boundary, ShoelaceAreaMatchesCellCount) {
  BinaryGrid g = grid_from_ascii({"##..",
                                  "###.",
                                  "####"});
  auto analysis = dg::analyze_components(g);
  ASSERT_EQ(analysis.components.size(), 1U);
  auto loop = dg::trace_outer_boundary(analysis, 0);
  // Shoelace formula on the CCW loop must equal the number of cells.
  double area2 = 0.0;
  for (std::size_t i = 0; i < loop.size(); ++i) {
    const auto& p = loop[i];
    const auto& q = loop[(i + 1) % loop.size()];
    area2 += static_cast<double>(p.x) * q.y - static_cast<double>(q.x) * p.y;
  }
  EXPECT_DOUBLE_EQ(area2 / 2.0, 9.0);
}
