// Parameterized property tests for the squish representation: losslessness,
// canonical-form idempotence, and padding invariance across a sweep of
// random layout populations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "layout/deep_squish.h"
#include "layout/squish.h"

namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;
namespace dc = diffpattern::common;

namespace {

struct SquishCase {
  std::uint64_t seed;
  int rect_count;
  dg::Coord tile;
};

dl::Layout random_layout(const SquishCase& param) {
  dc::Rng rng(param.seed);
  dl::Layout l;
  l.width = param.tile;
  l.height = param.tile;
  for (int i = 0; i < param.rect_count; ++i) {
    const auto w = rng.uniform_int(4, param.tile / 3);
    const auto h = rng.uniform_int(4, param.tile / 3);
    const auto x0 = rng.uniform_int(0, param.tile - w);
    const auto y0 = rng.uniform_int(0, param.tile - h);
    l.rects.push_back(dg::Rect{x0, y0, x0 + w, y0 + h});
  }
  return l;
}

}  // namespace

class SquishProperty : public ::testing::TestWithParam<SquishCase> {};

TEST_P(SquishProperty, ExtractRestoreRoundTripIsLossless) {
  const auto layout = random_layout(GetParam());
  const auto pattern = dl::extract_squish(layout);
  const auto restored = dl::restore_layout(pattern);
  EXPECT_TRUE(dl::same_layout(pattern, dl::extract_squish(restored)));
}

TEST_P(SquishProperty, GeometricVectorsSumToTile) {
  const auto pattern = dl::extract_squish(random_layout(GetParam()));
  EXPECT_EQ(pattern.width(), GetParam().tile);
  EXPECT_EQ(pattern.height(), GetParam().tile);
}

TEST_P(SquishProperty, CanonicalizeIsIdempotent) {
  const auto pattern = dl::extract_squish(random_layout(GetParam()));
  const auto once = dl::canonicalize(pattern);
  const auto twice = dl::canonicalize(once);
  EXPECT_EQ(once.topology, twice.topology);
  EXPECT_EQ(once.dx, twice.dx);
  EXPECT_EQ(once.dy, twice.dy);
}

TEST_P(SquishProperty, CanonicalFormIsNoLargerAndDescribesSameLayout) {
  // Extraction can carry redundant scan lines when a rectangle edge lies in
  // the interior of another rectangle, so extraction output is not
  // guaranteed minimal — but canonicalization must only shrink it and must
  // preserve the geometry.
  const auto pattern = dl::extract_squish(random_layout(GetParam()));
  const auto canon = dl::canonicalize(pattern);
  EXPECT_LE(canon.topology.rows(), pattern.topology.rows());
  EXPECT_LE(canon.topology.cols(), pattern.topology.cols());
  EXPECT_TRUE(dl::same_layout(pattern, canon));
}

TEST_P(SquishProperty, PaddingPreservesGeometryAndCellCountGrows) {
  const auto pattern = dl::extract_squish(random_layout(GetParam()));
  const auto target_rows = pattern.topology.rows() + 5;
  const auto target_cols = pattern.topology.cols() + 3;
  const auto padded = dl::pad_to(pattern, target_rows, target_cols);
  EXPECT_EQ(padded.topology.rows(), target_rows);
  EXPECT_EQ(padded.topology.cols(), target_cols);
  EXPECT_TRUE(dl::same_layout(pattern, padded));
  // Shape area in nm^2 is invariant under padding.
  std::int64_t area_before = 0;
  for (std::int64_t r = 0; r < pattern.topology.rows(); ++r) {
    for (std::int64_t c = 0; c < pattern.topology.cols(); ++c) {
      if (pattern.topology.get_unchecked(r, c)) {
        area_before += pattern.dx[static_cast<std::size_t>(c)] *
                       pattern.dy[static_cast<std::size_t>(r)];
      }
    }
  }
  std::int64_t area_after = 0;
  for (std::int64_t r = 0; r < padded.topology.rows(); ++r) {
    for (std::int64_t c = 0; c < padded.topology.cols(); ++c) {
      if (padded.topology.get_unchecked(r, c)) {
        area_after += padded.dx[static_cast<std::size_t>(c)] *
                      padded.dy[static_cast<std::size_t>(r)];
      }
    }
  }
  EXPECT_EQ(area_before, area_after);
}

INSTANTIATE_TEST_SUITE_P(
    RandomLayouts, SquishProperty,
    ::testing::Values(SquishCase{1, 1, 128}, SquishCase{2, 2, 128},
                      SquishCase{3, 4, 256}, SquishCase{4, 6, 256},
                      SquishCase{5, 8, 512}, SquishCase{6, 10, 512},
                      SquishCase{7, 3, 1024}, SquishCase{8, 12, 2048},
                      SquishCase{9, 5, 333},   // Non-power-of-two tile.
                      SquishCase{10, 7, 777}));

class DeepSquishChannels : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DeepSquishChannels, FoldUnfoldLosslessForEveryChannelCount) {
  const auto channels = GetParam();
  dl::DeepSquishConfig cfg;
  cfg.channels = channels;
  const auto patch = cfg.patch_side();
  const auto side = patch * 6;
  dc::Rng rng(channels);
  dg::BinaryGrid grid(side, side);
  for (std::int64_t r = 0; r < side; ++r) {
    for (std::int64_t c = 0; c < side; ++c) {
      grid.set(r, c, rng.bernoulli(0.35) ? 1 : 0);
    }
  }
  const auto folded = dl::fold_topology(grid, cfg);
  EXPECT_EQ(folded.dim(0), channels);
  EXPECT_EQ(folded.dim(1), side / patch);
  EXPECT_EQ(dl::unfold_topology(folded, cfg), grid);
}

TEST_P(DeepSquishChannels, PopcountInvariantUnderFolding) {
  const auto channels = GetParam();
  dl::DeepSquishConfig cfg;
  cfg.channels = channels;
  const auto side = cfg.patch_side() * 4;
  dc::Rng rng(channels + 100);
  dg::BinaryGrid grid(side, side);
  for (std::int64_t r = 0; r < side; ++r) {
    for (std::int64_t c = 0; c < side; ++c) {
      grid.set(r, c, rng.bernoulli(0.5) ? 1 : 0);
    }
  }
  const auto folded = dl::fold_topology(grid, cfg);
  double ones = 0;
  for (std::int64_t i = 0; i < folded.numel(); ++i) {
    ones += folded[i];
  }
  EXPECT_EQ(static_cast<std::int64_t>(ones), grid.popcount());
}

INSTANTIATE_TEST_SUITE_P(ChannelSweep, DeepSquishChannels,
                         ::testing::Values(1, 4, 9, 16, 25));

class NaiveConcatChannels : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(NaiveConcatChannels, RoundTripWithinOverflowLimit) {
  const auto channels = GetParam();
  dl::DeepSquishConfig cfg;
  cfg.channels = channels;
  const auto side = cfg.patch_side() * 3;
  dc::Rng rng(channels + 7);
  dg::BinaryGrid grid(side, side);
  for (std::int64_t r = 0; r < side; ++r) {
    for (std::int64_t c = 0; c < side; ++c) {
      grid.set(r, c, rng.bernoulli(0.5) ? 1 : 0);
    }
  }
  const auto states = dl::naive_concat_encode(grid, cfg);
  EXPECT_EQ(dl::naive_concat_decode(states, cfg), grid);
  // State values bounded by 2^C.
  for (std::int64_t i = 0; i < states.numel(); ++i) {
    EXPECT_LT(states[i], static_cast<float>(std::int64_t{1} << channels));
  }
}

INSTANTIATE_TEST_SUITE_P(ChannelSweep, NaiveConcatChannels,
                         ::testing::Values(1, 4, 9, 16));
