// Sampling determinism: diffusion::sample_streams must emit byte-identical
// topologies for the same per-slot RNG streams no matter how many threads
// the compute pool runs and no matter which SIMD kernel backend dispatch
// selects — the guarantee that lets the service scale the
// reverse-diffusion hot path without perturbing any request's output. A
// pinned FNV-1a golden digest of the sampled bytes turns silent cross-PR
// byte drift into a loud failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/compute_pool.h"
#include "common/rng.h"
#include "diffusion/diffusion.h"
#include "tensor/simd.h"
#include "ulp_test_util.h"

namespace dd = diffpattern::diffusion;
namespace dc = diffpattern::common;
namespace du = diffpattern::unet;
using diffpattern::tensor::Tensor;

namespace {

du::UNetConfig micro_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  // Attention on the coarse level so the softmax/bmm kernels are on the
  // path whose thread-invariance is being asserted.
  cfg.attention_levels = {1};
  cfg.dropout = 0.0F;
  return cfg;
}

Tensor run_sample_streams(du::UNet& model, const dd::BinarySchedule& schedule,
                          std::int64_t threads) {
  EXPECT_TRUE(dc::set_global_compute_threads(threads).ok());
  // Fresh streams per run: the comparison is across thread counts, so every
  // run must consume identical randomness.
  std::vector<dc::Rng> streams;
  streams.reserve(3);
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    streams.emplace_back(dc::derive_seed(424242, /*stream=*/7, slot));
  }
  std::vector<dc::Rng*> ptrs;
  for (auto& s : streams) {
    ptrs.push_back(&s);
  }
  return dd::sample_streams(model, schedule, /*height=*/8, /*width=*/8,
                            dd::SamplerConfig{}, ptrs);
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) *
                               sizeof(float));
}

using diffpattern::testutil::BackendGuard;

}  // namespace

TEST(SamplingDeterminism, SampleStreamsByteIdenticalAcrossThreadCounts) {
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const Tensor at_1 = run_sample_streams(model, schedule, 1);
  const Tensor at_2 = run_sample_streams(model, schedule, 2);
  const Tensor at_8 = run_sample_streams(model, schedule, 8);
  ASSERT_TRUE(at_1.same_shape(at_2));
  ASSERT_TRUE(at_1.same_shape(at_8));
  const auto bytes = static_cast<std::size_t>(at_1.numel()) * sizeof(float);
  EXPECT_EQ(std::memcmp(at_1.data(), at_2.data(), bytes), 0)
      << "1-thread vs 2-thread sampling diverged";
  EXPECT_EQ(std::memcmp(at_1.data(), at_8.data(), bytes), 0)
      << "1-thread vs 8-thread sampling diverged";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

TEST(SamplingDeterminism, SampleStreamsByteIdenticalAcrossKernelBackends) {
  BackendGuard guard;
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  const Tensor scalar_out = run_sample_streams(model, schedule, 1);
  for (const auto backend : {diffpattern::tensor::KernelBackend::kAvx2,
                             diffpattern::tensor::KernelBackend::kNeon}) {
    if (!diffpattern::tensor::kernel_backend_supported(backend)) {
      continue;
    }
    ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(backend).ok());
    const Tensor vector_out = run_sample_streams(model, schedule, 1);
    ASSERT_TRUE(scalar_out.same_shape(vector_out));
    EXPECT_EQ(std::memcmp(scalar_out.data(), vector_out.data(),
                          static_cast<std::size_t>(scalar_out.numel()) *
                              sizeof(float)),
              0)
        << "scalar vs "
        << diffpattern::tensor::kernel_backend_label(backend)
        << " sampling diverged";
  }
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Golden determinism regression: the FNV-1a digest of the sampled bytes for
// this fixed (model seed, RNG seed, count) is pinned. It is computed under
// forced scalar dispatch and 1 thread — the canonical semantics every
// backend must reproduce — so the constant is host-independent (modulo the
// host libm's exp/tanh, which CI holds fixed). If this fails after a kernel
// change, the PR changed the canonical accumulation semantics: that must be
// an explicit, called-out decision (update the constant in its own commit
// line), never a silent rebaseline.
TEST(SamplingDeterminism, GoldenDigestPinnedUnderScalarDispatch) {
  BackendGuard guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const std::uint64_t run1 = digest(run_sample_streams(model, schedule, 1));
  const std::uint64_t run2 = digest(run_sample_streams(model, schedule, 1));
  EXPECT_EQ(run1, run2) << "same-process replay diverged";
  const std::uint64_t threaded =
      digest(run_sample_streams(model, schedule, 8));
  EXPECT_EQ(run1, threaded) << "thread count leaked into the bytes";
  constexpr std::uint64_t kGoldenDigest = 0x7373f45c5b440cb3ULL;
  EXPECT_EQ(run1, kGoldenDigest)
      << "sampled bytes drifted from the pinned golden digest";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}
