// Sampling determinism: diffusion::sample_streams must emit byte-identical
// topologies for the same per-slot RNG streams no matter how many threads
// the compute pool runs and no matter which SIMD kernel backend dispatch
// selects — the guarantee that lets the service scale the
// reverse-diffusion hot path without perturbing any request's output. A
// pinned FNV-1a golden digest of the sampled bytes turns silent cross-PR
// byte drift into a loud failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/compute_pool.h"
#include "common/rng.h"
#include "diffusion/diffusion.h"
#include "tensor/arena.h"
#include "tensor/simd.h"
#include "ulp_test_util.h"

namespace dd = diffpattern::diffusion;
namespace dc = diffpattern::common;
namespace du = diffpattern::unet;
using diffpattern::tensor::Tensor;

namespace {

du::UNetConfig micro_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  // Attention on the coarse level so the softmax/bmm kernels are on the
  // path whose thread-invariance is being asserted.
  cfg.attention_levels = {1};
  cfg.dropout = 0.0F;
  return cfg;
}

Tensor run_sample_streams(du::UNet& model, const dd::BinarySchedule& schedule,
                          std::int64_t threads) {
  EXPECT_TRUE(dc::set_global_compute_threads(threads).ok());
  // Fresh streams per run: the comparison is across thread counts, so every
  // run must consume identical randomness.
  std::vector<dc::Rng> streams;
  streams.reserve(3);
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    streams.emplace_back(dc::derive_seed(424242, /*stream=*/7, slot));
  }
  std::vector<dc::Rng*> ptrs;
  for (auto& s : streams) {
    ptrs.push_back(&s);
  }
  return dd::sample_streams(model, schedule, /*height=*/8, /*width=*/8,
                            dd::SamplerConfig{}, ptrs);
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t digest(const Tensor& t) {
  return fnv1a64(t.data(), static_cast<std::size_t>(t.numel()) *
                               sizeof(float));
}

using diffpattern::testutil::BackendGuard;

// Saves and restores the process-wide activation-arena switch so a test can
// force either side of the kill switch without leaking into later tests.
class ArenaGuard {
 public:
  ArenaGuard() : previous_(diffpattern::tensor::activation_arena_enabled()) {}
  ~ArenaGuard() {
    diffpattern::tensor::set_activation_arena_enabled(previous_);
  }
  ArenaGuard(const ArenaGuard&) = delete;
  ArenaGuard& operator=(const ArenaGuard&) = delete;

 private:
  bool previous_;
};

// Strided counterpart of run_sample_streams: same per-slot seed derivation
// (so a stride-1 walk must reproduce sample_streams byte for byte), one
// stride per slot.
Tensor run_strided(du::UNet& model, const dd::BinarySchedule& schedule,
                   const std::vector<std::int64_t>& strides,
                   std::int64_t threads,
                   const dd::RoundHook& hook = nullptr) {
  EXPECT_TRUE(dc::set_global_compute_threads(threads).ok());
  std::vector<dc::Rng> streams;
  streams.reserve(strides.size());
  for (std::uint64_t slot = 0; slot < strides.size(); ++slot) {
    streams.emplace_back(dc::derive_seed(424242, /*stream=*/7, slot));
  }
  std::vector<dc::Rng*> ptrs;
  for (auto& s : streams) {
    ptrs.push_back(&s);
  }
  return dd::sample_streams_strided(model, schedule, /*height=*/8,
                                    /*width=*/8, dd::SamplerConfig{}, ptrs,
                                    strides, hook);
}

// Solo run of ONE slot with the stream that slot `slot` carries in a fused
// run — the reference for fusion-invariance checks.
Tensor run_solo_slot(du::UNet& model, const dd::BinarySchedule& schedule,
                     std::uint64_t slot, std::int64_t stride) {
  dc::Rng stream(dc::derive_seed(424242, /*stream=*/7, slot));
  std::vector<dc::Rng*> ptrs{&stream};
  return dd::sample_streams_strided(model, schedule, /*height=*/8,
                                    /*width=*/8, dd::SamplerConfig{}, ptrs,
                                    {stride});
}

}  // namespace

TEST(SamplingDeterminism, SampleStreamsByteIdenticalAcrossThreadCounts) {
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const Tensor at_1 = run_sample_streams(model, schedule, 1);
  const Tensor at_2 = run_sample_streams(model, schedule, 2);
  const Tensor at_8 = run_sample_streams(model, schedule, 8);
  ASSERT_TRUE(at_1.same_shape(at_2));
  ASSERT_TRUE(at_1.same_shape(at_8));
  const auto bytes = static_cast<std::size_t>(at_1.numel()) * sizeof(float);
  EXPECT_EQ(std::memcmp(at_1.data(), at_2.data(), bytes), 0)
      << "1-thread vs 2-thread sampling diverged";
  EXPECT_EQ(std::memcmp(at_1.data(), at_8.data(), bytes), 0)
      << "1-thread vs 8-thread sampling diverged";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

TEST(SamplingDeterminism, SampleStreamsByteIdenticalAcrossKernelBackends) {
  BackendGuard guard;
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  const Tensor scalar_out = run_sample_streams(model, schedule, 1);
  for (const auto backend : {diffpattern::tensor::KernelBackend::kAvx2,
                             diffpattern::tensor::KernelBackend::kNeon}) {
    if (!diffpattern::tensor::kernel_backend_supported(backend)) {
      continue;
    }
    ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(backend).ok());
    const Tensor vector_out = run_sample_streams(model, schedule, 1);
    ASSERT_TRUE(scalar_out.same_shape(vector_out));
    EXPECT_EQ(std::memcmp(scalar_out.data(), vector_out.data(),
                          static_cast<std::size_t>(scalar_out.numel()) *
                              sizeof(float)),
              0)
        << "scalar vs "
        << diffpattern::tensor::kernel_backend_label(backend)
        << " sampling diverged";
  }
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Golden determinism regression: the FNV-1a digest of the sampled bytes for
// this fixed (model seed, RNG seed, count) is pinned. It is computed under
// forced scalar dispatch and 1 thread — the canonical semantics every
// backend must reproduce — so the constant is host-independent (modulo the
// host libm's exp/tanh, which CI holds fixed). If this fails after a kernel
// change, the PR changed the canonical accumulation semantics: that must be
// an explicit, called-out decision (update the constant in its own commit
// line), never a silent rebaseline.
TEST(SamplingDeterminism, GoldenDigestPinnedUnderScalarDispatch) {
  BackendGuard guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const std::uint64_t run1 = digest(run_sample_streams(model, schedule, 1));
  const std::uint64_t run2 = digest(run_sample_streams(model, schedule, 1));
  EXPECT_EQ(run1, run2) << "same-process replay diverged";
  const std::uint64_t threaded =
      digest(run_sample_streams(model, schedule, 8));
  EXPECT_EQ(run1, threaded) << "thread count leaked into the bytes";
  constexpr std::uint64_t kGoldenDigest = 0x7373f45c5b440cb3ULL;
  EXPECT_EQ(run1, kGoldenDigest)
      << "sampled bytes drifted from the pinned golden digest";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// A stride-1 walk through the strided sampler is the SAME algorithm as
// sample_streams (posterior_prob1(k) == posterior_prob1_between(k-1, k),
// identical draw order), so the bytes must match exactly. This is what
// makes switching the serving hot path onto the strided sampler safe.
TEST(SamplingDeterminism, StridedWithStrideOneMatchesSampleStreams) {
  BackendGuard guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const Tensor reference = run_sample_streams(model, schedule, 1);
  const Tensor strided = run_strided(model, schedule, {1, 1, 1}, 1);
  ASSERT_TRUE(reference.same_shape(strided));
  EXPECT_EQ(std::memcmp(reference.data(), strided.data(),
                        static_cast<std::size_t>(reference.numel()) *
                            sizeof(float)),
            0)
      << "stride-1 strided sampling diverged from sample_streams";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// The load-bearing fusion guarantee: a slot's bytes are a pure function of
// (model, stream, stride) — mixing it into one fused batch with slots of
// OTHER strides (which drop out of rounds its subsequence skips, narrowing
// the batch) must not perturb it. Each fused slot is compared against a
// solo run carrying the same stream.
TEST(SamplingDeterminism, FusedMixedStridesByteIdenticalToSoloRuns) {
  BackendGuard guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const std::vector<std::int64_t> strides = {1, 2, 4};
  const Tensor fused = run_strided(model, schedule, strides, 1);
  const auto slot_floats =
      static_cast<std::size_t>(fused.numel() / fused.shape()[0]);
  for (std::uint64_t slot = 0; slot < strides.size(); ++slot) {
    const Tensor solo = run_solo_slot(model, schedule, slot, strides[slot]);
    ASSERT_EQ(static_cast<std::size_t>(solo.numel()), slot_floats);
    EXPECT_EQ(std::memcmp(fused.data() + slot * slot_floats, solo.data(),
                          slot_floats * sizeof(float)),
              0)
        << "slot " << slot << " (stride " << strides[slot]
        << ") changed bytes when fused with other strides";
  }
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Strided sampling carries the full determinism contract of sample_streams:
// thread count and kernel backend never reach the bytes.
TEST(SamplingDeterminism, StridedByteIdenticalAcrossThreadsAndBackends) {
  BackendGuard guard;
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const std::vector<std::int64_t> strides = {1, 2, 4};
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  const Tensor at_1 = run_strided(model, schedule, strides, 1);
  const Tensor at_8 = run_strided(model, schedule, strides, 8);
  const auto bytes = static_cast<std::size_t>(at_1.numel()) * sizeof(float);
  ASSERT_TRUE(at_1.same_shape(at_8));
  EXPECT_EQ(std::memcmp(at_1.data(), at_8.data(), bytes), 0)
      << "thread count leaked into strided sampling bytes";
  for (const auto backend : {diffpattern::tensor::KernelBackend::kAvx2,
                             diffpattern::tensor::KernelBackend::kNeon}) {
    if (!diffpattern::tensor::kernel_backend_supported(backend)) {
      continue;
    }
    ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(backend).ok());
    const Tensor vec = run_strided(model, schedule, strides, 1);
    ASSERT_TRUE(at_1.same_shape(vec));
    EXPECT_EQ(std::memcmp(at_1.data(), vec.data(), bytes), 0)
        << "scalar vs "
        << diffpattern::tensor::kernel_backend_label(backend)
        << " strided sampling diverged";
  }
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// The narrowing schedule itself: with K = 6 and strides {1, 4}, the
// stride-4 slot participates in rounds k = 6 and k = 2 only (6 -> 2 ->
// done), so the fused batch runs [2, 1, 1, 1, 2, 1] — 8 slot-evaluations
// instead of 12. The hook feeding fill-ratio accounting must see exactly
// this sequence.
TEST(SamplingDeterminism, StridedRoundHookReportsNarrowingBatches) {
  BackendGuard guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  std::vector<std::pair<std::int64_t, std::int64_t>> rounds;
  run_strided(model, schedule, {1, 4}, 1,
              [&rounds](std::int64_t k, std::int64_t batch) {
                rounds.emplace_back(k, batch);
              });
  const std::vector<std::pair<std::int64_t, std::int64_t>> expected = {
      {6, 2}, {5, 1}, {4, 1}, {3, 1}, {2, 2}, {1, 1}};
  EXPECT_EQ(rounds, expected);
  std::int64_t evals = 0;
  for (const auto& [k, batch] : rounds) {
    evals += batch;
  }
  EXPECT_EQ(evals, 8) << "expected 8 slot-evaluations, not 12";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Golden digests for the strided walks themselves, pinned under scalar
// dispatch and 1 thread like kGoldenDigest above: coarse schedules are part
// of the byte-determinism contract, so their bytes get the same cross-PR
// drift tripwire as the full schedule.
TEST(SamplingDeterminism, StridedGoldenDigestsPinnedUnderScalarDispatch) {
  BackendGuard guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const std::uint64_t stride2 =
      digest(run_strided(model, schedule, {2, 2, 2}, 1));
  const std::uint64_t stride4 =
      digest(run_strided(model, schedule, {4, 4, 4}, 1));
  constexpr std::uint64_t kGoldenStride2 = 0x65e920d3f743caaULL;
  constexpr std::uint64_t kGoldenStride4 = 0xe86fe1f4f5d925daULL;
  EXPECT_EQ(stride2, kGoldenStride2)
      << "stride-2 bytes drifted from the pinned golden digest";
  EXPECT_EQ(stride4, kGoldenStride4)
      << "stride-4 bytes drifted from the pinned golden digest";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// The inference memory plan (activation arena + time-embedding cache) is a
// pure allocation strategy: it must never reach the bytes. Both sides of
// the kill switch have to land on the SAME pinned golden digest — if the
// arena-on digest moved, the plan perturbed floating-point results; if the
// arena-off digest moved, the fast-path restructuring did.
TEST(SamplingDeterminism, ArenaOnAndOffPinnedToSameGoldenDigest) {
  BackendGuard backend_guard;
  ArenaGuard arena_guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  constexpr std::uint64_t kGoldenDigest = 0x7373f45c5b440cb3ULL;
  diffpattern::tensor::set_activation_arena_enabled(true);
  EXPECT_EQ(digest(run_sample_streams(model, schedule, 1)), kGoldenDigest)
      << "arena-on bytes drifted from the pinned golden digest";
  diffpattern::tensor::set_activation_arena_enabled(false);
  EXPECT_EQ(digest(run_sample_streams(model, schedule, 1)), kGoldenDigest)
      << "arena-off bytes drifted from the pinned golden digest";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Arena on vs off byte identity across kernel backends and thread counts:
// the recycled buffers must be invisible no matter which kernels write
// into them or how many pool workers share the round.
TEST(SamplingDeterminism, ArenaByteIdenticalAcrossBackendsAndThreads) {
  BackendGuard backend_guard;
  ArenaGuard arena_guard;
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  diffpattern::tensor::set_activation_arena_enabled(false);
  const std::uint64_t reference =
      digest(run_sample_streams(model, schedule, 1));
  diffpattern::tensor::set_activation_arena_enabled(true);
  for (const auto backend : {diffpattern::tensor::KernelBackend::kScalar,
                             diffpattern::tensor::KernelBackend::kAvx2,
                             diffpattern::tensor::KernelBackend::kNeon}) {
    if (!diffpattern::tensor::kernel_backend_supported(backend)) {
      continue;
    }
    ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(backend).ok());
    for (const std::int64_t threads : {1, 8}) {
      EXPECT_EQ(digest(run_sample_streams(model, schedule, threads)),
                reference)
          << "arena-on sampling diverged from arena-off under "
          << diffpattern::tensor::kernel_backend_label(backend) << " with "
          << threads << " thread(s)";
    }
  }
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}

// Mixed-stride fused batches narrow mid-job, so rounds lease differently
// shaped plans back to back (batch 3, then 2, then 1...). The plan churn
// must not perturb any slot: arena-on fused bytes must equal arena-off.
TEST(SamplingDeterminism, ArenaByteIdenticalOnMixedStrideFusedBatches) {
  BackendGuard backend_guard;
  ArenaGuard arena_guard;
  ASSERT_TRUE(diffpattern::tensor::set_kernel_backend(
                  diffpattern::tensor::KernelBackend::kScalar)
                  .ok());
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const std::vector<std::int64_t> strides = {1, 2, 4};
  diffpattern::tensor::set_activation_arena_enabled(false);
  const Tensor reference = run_strided(model, schedule, strides, 1);
  diffpattern::tensor::set_activation_arena_enabled(true);
  const Tensor with_arena = run_strided(model, schedule, strides, 1);
  ASSERT_TRUE(reference.same_shape(with_arena));
  EXPECT_EQ(std::memcmp(reference.data(), with_arena.data(),
                        static_cast<std::size_t>(reference.numel()) *
                            sizeof(float)),
            0)
      << "activation arena changed mixed-stride fused sampling bytes";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}
