// Multi-thread sampling determinism: diffusion::sample_streams must emit
// byte-identical topologies for the same per-slot RNG streams no matter how
// many threads the compute pool runs — the guarantee that lets the service
// scale the reverse-diffusion hot path across cores without perturbing any
// request's output.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/compute_pool.h"
#include "common/rng.h"
#include "diffusion/diffusion.h"

namespace dd = diffpattern::diffusion;
namespace dc = diffpattern::common;
namespace du = diffpattern::unet;
using diffpattern::tensor::Tensor;

namespace {

du::UNetConfig micro_config() {
  du::UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  // Attention on the coarse level so the softmax/bmm kernels are on the
  // path whose thread-invariance is being asserted.
  cfg.attention_levels = {1};
  cfg.dropout = 0.0F;
  return cfg;
}

Tensor run_sample_streams(du::UNet& model, const dd::BinarySchedule& schedule,
                          std::int64_t threads) {
  EXPECT_TRUE(dc::set_global_compute_threads(threads).ok());
  // Fresh streams per run: the comparison is across thread counts, so every
  // run must consume identical randomness.
  std::vector<dc::Rng> streams;
  streams.reserve(3);
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    streams.emplace_back(dc::derive_seed(424242, /*stream=*/7, slot));
  }
  std::vector<dc::Rng*> ptrs;
  for (auto& s : streams) {
    ptrs.push_back(&s);
  }
  return dd::sample_streams(model, schedule, /*height=*/8, /*width=*/8,
                            dd::SamplerConfig{}, ptrs);
}

}  // namespace

TEST(SamplingDeterminism, SampleStreamsByteIdenticalAcrossThreadCounts) {
  du::UNet model(micro_config(), /*seed=*/91);
  dd::BinarySchedule schedule(dd::ScheduleConfig{.steps = 6});
  const Tensor at_1 = run_sample_streams(model, schedule, 1);
  const Tensor at_2 = run_sample_streams(model, schedule, 2);
  const Tensor at_8 = run_sample_streams(model, schedule, 8);
  ASSERT_TRUE(at_1.same_shape(at_2));
  ASSERT_TRUE(at_1.same_shape(at_8));
  const auto bytes = static_cast<std::size_t>(at_1.numel()) * sizeof(float);
  EXPECT_EQ(std::memcmp(at_1.data(), at_2.data(), bytes), 0)
      << "1-thread vs 2-thread sampling diverged";
  EXPECT_EQ(std::memcmp(at_1.data(), at_8.data(), bytes), 0)
      << "1-thread vs 8-thread sampling diverged";
  EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
}
