// Shared fixtures for the PatternService test suites: the "mini" model
// configuration every service test registers (small enough that untrained
// sampling stays fast) and byte-level pattern equality. Single-sourced so
// the two suites can never drift on what the mini model means.
#pragma once

#include <vector>

#include "layout/squish.h"
#include "service/pattern_service.h"

namespace diffpattern::service::test {

inline ModelConfig mini_model_config() {
  ModelConfig cfg;
  cfg.grid_side = 16;
  cfg.channels = 4;
  cfg.schedule = {.steps = 6, .beta_start = 0.01, .beta_end = 0.5};
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  cfg.attention_levels = {};
  cfg.dropout = 0.0F;
  return cfg;
}

inline bool same_patterns(const std::vector<layout::SquishPattern>& a,
                          const std::vector<layout::SquishPattern>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].topology == b[i].topology && a[i].dx == b[i].dx &&
          a[i].dy == b[i].dy)) {
      return false;
    }
  }
  return true;
}

}  // namespace diffpattern::service::test
