#include <gtest/gtest.h>

#include <cmath>

#include "layout/squish.h"
#include "metrics/metrics.h"

namespace dm = diffpattern::metrics;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;

namespace {

dl::SquishPattern pattern_from(const dg::BinaryGrid& grid) {
  dl::SquishPattern p;
  p.topology = grid;
  p.dx.assign(static_cast<std::size_t>(grid.cols()), 10);
  p.dy.assign(static_cast<std::size_t>(grid.rows()), 10);
  return p;
}

}  // namespace

TEST(Complexity, CountsScanLinesMinusOne) {
  // Distinct rows/columns: a 3x4 canonical grid -> (3, 2).
  dg::BinaryGrid g(3, 4);
  g.set(0, 0, 1);
  g.set(1, 1, 1);
  g.set(2, 2, 1);
  g.set(0, 3, 1);
  const auto c = dm::pattern_complexity(pattern_from(g));
  EXPECT_EQ(c.cx, 3);
  EXPECT_EQ(c.cy, 2);
}

TEST(Complexity, PaddingDoesNotInflateComplexity) {
  dg::BinaryGrid g(2, 2);
  g.set(0, 0, 1);
  auto base = pattern_from(g);
  const auto c0 = dm::pattern_complexity(base);
  auto padded = dl::pad_to(base, 8, 8);
  const auto c1 = dm::pattern_complexity(padded);
  EXPECT_EQ(c0, c1);
}

TEST(Complexity, TopologyComplexityMatchesPatternComplexity) {
  dg::BinaryGrid g(4, 4);
  g.set(1, 1, 1);
  g.set(2, 1, 1);
  EXPECT_EQ(dm::topology_complexity(g),
            dm::pattern_complexity(pattern_from(g)));
}

TEST(Diversity, UniformBeatsConcentrated) {
  std::vector<dm::Complexity> uniform;
  std::vector<dm::Complexity> concentrated;
  for (int i = 0; i < 16; ++i) {
    uniform.push_back({i, i});
    concentrated.push_back({1, 1});
  }
  EXPECT_NEAR(dm::diversity_entropy(uniform), 4.0, 1e-9);  // log2(16)
  EXPECT_NEAR(dm::diversity_entropy(concentrated), 0.0, 1e-9);
}

TEST(Diversity, MatchesHandComputedEntropy) {
  // Distribution {A: 1/2, B: 1/4, C: 1/4} -> H = 1.5 bits.
  std::vector<dm::Complexity> cs = {{0, 0}, {0, 0}, {1, 0}, {2, 0}};
  EXPECT_NEAR(dm::diversity_entropy(cs), 1.5, 1e-9);
}

TEST(Diversity, EmptyLibraryIsZero) {
  EXPECT_EQ(dm::diversity_entropy({}), 0.0);
}

TEST(Histogram, CountsAndProbabilities) {
  dm::ComplexityHistogram h(7, 7);
  h.add({3, 4});
  h.add({3, 4});
  h.add({0, 0});
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(3, 4), 2);
  EXPECT_NEAR(h.probability(3, 4), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
  dm::ComplexityHistogram h(3, 3);
  h.add({100, -5});
  EXPECT_EQ(h.count(3, 0), 1);
}

TEST(Histogram, IntersectionBounds) {
  dm::ComplexityHistogram a(7, 7);
  dm::ComplexityHistogram b(7, 7);
  for (int i = 0; i < 8; ++i) {
    a.add({i, i});
    b.add({i, i});
  }
  EXPECT_NEAR(a.intersection(b), 1.0, 1e-12);
  dm::ComplexityHistogram c(7, 7);
  for (int i = 0; i < 8; ++i) {
    c.add({7 - i, i});  // Anti-diagonal: overlaps only at the center... no,
  }
  // Diagonal vs anti-diagonal share bins (3,3)... Actually (i,i) vs (7-i,i)
  // coincide only where i == 7-i, impossible for integers with 8 bins ->
  // wait, i=3.5. No overlap.
  EXPECT_NEAR(a.intersection(c), 0.0, 1e-12);
}

TEST(Histogram, CsvAndAsciiRender) {
  dm::ComplexityHistogram h(3, 3);
  h.add({1, 2});
  const auto csv = h.to_csv();
  EXPECT_NE(csv.find("cy\\cx"), std::string::npos);
  EXPECT_NE(csv.find('1'), std::string::npos);
  const auto ascii = h.to_ascii(4);
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 4);
}
