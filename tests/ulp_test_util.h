// ULP-distance and kernel-backend helpers shared by the kernel
// equivalence suites.
//
// The dispatched SIMD kernels accumulate with fused multiply-adds (one
// rounding per step) while the retained tensor::reference kernels round the
// multiply and the add separately, so the two agree only within a small
// number of ULPs — these helpers make that bound assertable per element.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/float_compare.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace diffpattern::testutil {

/// Restores the ambient kernel dispatch when a test that forces a backend
/// ends, so test order never matters.
class BackendGuard {
 public:
  BackendGuard() : previous_(tensor::kernel_backend()) {}
  ~BackendGuard() {
    EXPECT_TRUE(tensor::set_kernel_backend(previous_).ok());
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  tensor::KernelBackend previous_;
};

using common::float_order_key;
using common::ulp_distance;

/// Largest per-element ULP distance between two same-shaped tensors.
inline std::int64_t max_ulp_distance(const tensor::Tensor& a,
                                     const tensor::Tensor& b) {
  std::int64_t worst = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, ulp_distance(a[i], b[i]));
  }
  return worst;
}

/// Asserts every element of `got` is within `max_ulp` ULPs of `want`, OR
/// within the absolute tolerance `atol`. The absolute escape matters for
/// accumulations that cancel towards zero: there the two rounding schemes
/// legitimately land a fixed absolute distance apart, which is a huge
/// relative (ULP) distance on a tiny result but no less correct.
inline ::testing::AssertionResult ulp_close(const tensor::Tensor& got,
                                            const tensor::Tensor& want,
                                            std::int64_t max_ulp,
                                            float atol = 0.0F) {
  if (!got.same_shape(want)) {
    return ::testing::AssertionFailure()
           << "shape mismatch " << got.shape_string() << " vs "
           << want.shape_string();
  }
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const auto d = ulp_distance(got[i], want[i]);
    if (d > max_ulp && std::abs(got[i] - want[i]) > atol) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << got[i] << " vs " << want[i]
             << " differ by " << d << " ULPs (bound " << max_ulp
             << ", atol " << atol << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace diffpattern::testutil
