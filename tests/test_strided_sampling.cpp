// Reduced-step sampling as a service knob: SamplingSpec validation at
// admission, the steps -> stride resolution, net-eval accounting in stats
// and service counters, stride degradation under overload, and the
// serving-path fusion guarantee — requests with different strides sharing
// one service produce the same bytes they produce alone. The mini model's
// schedule has K = 6 steps, so stride 2 runs 3 evaluations per topology
// and stride 4 runs 2.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/pattern_service.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace ds = diffpattern::service;
namespace dc = diffpattern::common;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

constexpr std::int64_t kMiniSteps = 6;  // mini_model_config().schedule.steps

class StridedSamplingTest : public ::testing::Test {
 protected:
  StridedSamplingTest() : model_(mini_model_config().unet_config(), 3) {}

  std::unique_ptr<ds::PatternService> make_service(
      ds::FlowControlConfig flow = permissive_flow()) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = 16;
    config.flow = flow;
    auto service = std::make_unique<ds::PatternService>(config);
    EXPECT_TRUE(service->models()
                    .register_model("a", mini_model_config(),
                                    model_.registry(), {})
                    .ok());
    return service;
  }

  static ds::FlowControlConfig permissive_flow() {
    ds::FlowControlConfig flow;
    flow.max_queue_depth = 64;
    flow.shed_queue_depth = 64;
    flow.shed_fill_ratio = 0.0;
    return flow;
  }

  diffpattern::unet::UNet model_;
};

// ------------------------------------------------- resolve + validation

TEST(SamplingSpecResolve, MapsKnobsToStrides) {
  // Unset -> full schedule.
  EXPECT_EQ(*ds::resolve_sampling_stride({}, kMiniSteps), 1);
  // Direct stride passes through.
  EXPECT_EQ(*ds::resolve_sampling_stride({.stride = 3}, kMiniSteps), 3);
  // steps target -> coarsest stride running >= that many evaluations.
  EXPECT_EQ(*ds::resolve_sampling_stride({.steps = 6}, kMiniSteps), 1);
  EXPECT_EQ(*ds::resolve_sampling_stride({.steps = 3}, kMiniSteps), 2);
  EXPECT_EQ(*ds::resolve_sampling_stride({.steps = 1}, kMiniSteps), 6);
  // steps = 4: stride 1 (6 evals) is the coarsest running >= 4 — floor
  // division, never an undershoot.
  EXPECT_EQ(*ds::resolve_sampling_stride({.steps = 4}, kMiniSteps), 1);
}

TEST(SamplingSpecResolve, RejectsMalformedSpecs) {
  EXPECT_EQ(ds::resolve_sampling_stride({.steps = -1}, kMiniSteps)
                .status()
                .code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(ds::resolve_sampling_stride({.stride = -2}, kMiniSteps)
                .status()
                .code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(ds::resolve_sampling_stride({.steps = 2, .stride = 2},
                                        kMiniSteps)
                .status()
                .code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(ds::resolve_sampling_stride({.stride = kMiniSteps + 1},
                                        kMiniSteps)
                .status()
                .code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(ds::resolve_sampling_stride({.steps = kMiniSteps + 1},
                                        kMiniSteps)
                .status()
                .code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(StridedSamplingTest, MalformedKnobAnswersInvalidArgumentAtAdmission) {
  auto service = make_service();
  ds::GenerateRequest request{.model = "a", .count = 1, .seed = 1};
  request.sampling.stride = -1;
  EXPECT_EQ(service->validate(request).code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(service->generate(request).status().code(),
            dc::StatusCode::kInvalidArgument);

  request.sampling = {.steps = 3, .stride = 2};  // Mutually exclusive.
  EXPECT_EQ(service->generate(request).status().code(),
            dc::StatusCode::kInvalidArgument);

  request.sampling = {.stride = kMiniSteps + 1};  // Jumps past the walk.
  EXPECT_EQ(service->generate(request).status().code(),
            dc::StatusCode::kInvalidArgument);

  // The sampling-only surface shares the validation.
  ds::SampleTopologiesRequest topo{.model = "a", .count = 1, .seed = 1};
  topo.sampling.steps = -3;
  EXPECT_EQ(service->sample_topologies(topo).status().code(),
            dc::StatusCode::kInvalidArgument);
}

// ------------------------------------------------- stats + counters

TEST_F(StridedSamplingTest, StrideCutsNetEvalsAndIsReportedInStats) {
  auto service = make_service();
  ds::GenerateRequest request{.model = "a", .count = 2, .seed = 7};
  request.sampling.stride = 2;
  const auto result = service->generate(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->stats.sampling_stride, 2);
  EXPECT_EQ(result->stats.steps_run, 3);  // ceil(6 / 2).
  EXPECT_EQ(result->stats.net_evals, 6);  // 2 topologies * 3 steps.
  EXPECT_FALSE(result->stats.degraded_steps);

  // Service counters carry the fleet view: every executed slot-evaluation
  // lands in net_evals, every skipped one in steps_skipped, and the two
  // sum to slots * K.
  const auto counters = service->counters();
  EXPECT_EQ(counters.net_evals, 6);
  EXPECT_EQ(counters.steps_skipped, 6);  // 2 topologies * (6 - 3).
  EXPECT_EQ(counters.requests_degraded_steps, 0);
}

TEST_F(StridedSamplingTest, StepsTargetResolvesThroughTheServicePath) {
  auto service = make_service();
  ds::GenerateRequest request{.model = "a", .count = 2, .seed = 7};
  request.sampling.steps = 3;  // -> stride 2 on the K = 6 schedule.
  const auto by_steps = service->generate(request);
  ASSERT_TRUE(by_steps.ok()) << by_steps.status().to_string();
  EXPECT_EQ(by_steps->stats.sampling_stride, 2);
  EXPECT_EQ(by_steps->stats.steps_run, 3);

  // The steps form is pure sugar for its resolved stride: same bytes.
  ds::GenerateRequest direct{.model = "a", .count = 2, .seed = 7};
  direct.sampling.stride = 2;
  const auto by_stride = make_service()->generate(direct);
  ASSERT_TRUE(by_stride.ok());
  EXPECT_TRUE(same_patterns(by_steps->patterns, by_stride->patterns));
}

TEST_F(StridedSamplingTest, SampleTopologiesCarriesTheKnob) {
  auto service = make_service();
  ds::SampleTopologiesRequest request{.model = "a", .count = 3, .seed = 9};
  request.sampling.stride = 4;
  const auto result = service->sample_topologies(request);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->topologies.size(), 3U);
  EXPECT_EQ(result->stats.sampling_stride, 4);
  EXPECT_EQ(result->stats.steps_run, 2);  // ceil(6 / 4).
  EXPECT_EQ(result->stats.net_evals, 6);
}

// ------------------------------------------------- fusion invariance

TEST_F(StridedSamplingTest, MixedStrideRequestsMatchTheirSoloRuns) {
  // Solo references, one unloaded service each.
  const std::vector<std::int64_t> strides = {1, 2, 4};
  std::vector<std::vector<diffpattern::layout::SquishPattern>> references;
  for (std::size_t i = 0; i < strides.size(); ++i) {
    ds::GenerateRequest request{.model = "a", .count = 4,
                                .seed = 100 + static_cast<std::uint64_t>(i)};
    request.sampling.stride = strides[i];
    const auto solo = make_service()->generate(request);
    ASSERT_TRUE(solo.ok()) << solo.status().to_string();
    references.push_back(solo->patterns);
  }

  // The same three requests race on ONE service whose fused budget fits
  // them all, so sampling rounds mix strides (coarse slots drop out of
  // rounds their subsequence skips). However the scheduler interleaves
  // them, each request's bytes must match its solo run.
  auto service = make_service();
  std::vector<dc::Result<ds::GenerateResult>> results(
      strides.size(), dc::Result<ds::GenerateResult>(
                          dc::Status::Unavailable("unrun")));
  {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < strides.size(); ++i) {
      clients.emplace_back([&, i] {
        ds::GenerateRequest request{
            .model = "a", .count = 4,
            .seed = 100 + static_cast<std::uint64_t>(i)};
        request.sampling.stride = strides[i];
        results[i] = service->generate(request);
      });
    }
    for (auto& client : clients) {
      client.join();
    }
  }
  for (std::size_t i = 0; i < strides.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().to_string();
    EXPECT_EQ(results[i]->stats.sampling_stride, strides[i]);
    EXPECT_TRUE(same_patterns(references[i], results[i]->patterns))
        << "stride " << strides[i]
        << " request changed bytes when mixed with other strides";
  }
}

// ------------------------------------------------- stride degradation

TEST(AdmissionControl, SoftBandCoarsensStrideBeforeShrinkingCount) {
  dc::CounterBlock counters;
  ds::FlowControlConfig flow;
  flow.max_queue_depth = 4;
  flow.shed_queue_depth = 2;
  flow.shed_fill_ratio = 0.0;
  flow.degrade_stride = 4;
  ds::AdmissionController admission(flow, 8, counters);
  ASSERT_TRUE(admission.admit("m", 8, false).status.ok());
  ASSERT_TRUE(admission.admit("m", 8, false).status.ok());

  // Soft band, degradable, still sampling finer than degrade_stride:
  // keep the full count, coarsen the schedule instead.
  const auto coarsened = admission.admit("m", 8, true, /*stride=*/1);
  ASSERT_TRUE(coarsened.status.ok());
  EXPECT_EQ(coarsened.admitted_count, 8);  // Topology count untouched.
  EXPECT_EQ(coarsened.admitted_stride, 4);
  EXPECT_TRUE(coarsened.degraded_steps);
  EXPECT_FALSE(coarsened.degraded);

  // Already as coarse as the policy would make it: fall back to the
  // count-shrink degrade.
  const auto shrunk = admission.admit("m", 8, true, /*stride=*/4);
  ASSERT_TRUE(shrunk.status.ok());
  EXPECT_EQ(shrunk.admitted_count, 4);
  EXPECT_TRUE(shrunk.degraded);
  EXPECT_FALSE(shrunk.degraded_steps);
  EXPECT_EQ(shrunk.admitted_stride, 4);  // Its own stride, not coarsened.

  EXPECT_EQ(counters.snapshot(8).requests_degraded_steps, 1);
  EXPECT_EQ(counters.snapshot(8).requests_degraded, 1);
}

TEST_F(StridedSamplingTest, OverloadCoarsensStrideKeepingFullCount) {
  // Reference: an UNLOADED run of the same request at the degrade stride —
  // what the degraded request must reproduce byte for byte.
  ds::GenerateRequest reference_request{.model = "a", .count = 4,
                                        .seed = 55};
  reference_request.sampling.stride = 4;
  const auto reference = make_service()->generate(reference_request);
  ASSERT_TRUE(reference.ok());

  ds::FlowControlConfig flow;
  flow.max_queue_depth = 4;
  flow.shed_queue_depth = 1;
  flow.shed_fill_ratio = 0.0;
  flow.retry_after_ms = 10;
  flow.degrade_stride = 4;
  ds::ServiceConfig config;
  config.legalize_workers = 2;
  config.max_fused_batch = 1;  // ~8 rounds: holds the shard busy.
  config.flow = flow;
  auto service = std::make_unique<ds::PatternService>(config);
  ASSERT_TRUE(service->models()
                  .register_model("a", mini_model_config(),
                                  model_.registry(), {})
                  .ok());

  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 56};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  while (service->counters().admission_pending < 1) {
    std::this_thread::yield();
  }

  ds::GenerateRequest flexible{.model = "a", .count = 4, .seed = 55};
  flexible.allow_degrade = true;
  const auto degraded = service->generate(flexible);
  holder.join();
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_TRUE(degraded->stats.degraded_steps);
  EXPECT_FALSE(degraded->stats.degraded);
  EXPECT_EQ(degraded->stats.topologies_admitted, 4);  // Full count kept.
  EXPECT_EQ(degraded->stats.sampling_stride, 4);
  EXPECT_EQ(degraded->stats.steps_run, 2);
  // Coarsened under load == the same request explicitly asking for the
  // coarse schedule on an idle service: degradation changes the schedule,
  // never the sampling semantics.
  EXPECT_TRUE(same_patterns(reference->patterns, degraded->patterns));
  EXPECT_GE(service->counters().requests_degraded_steps, 1);
}

}  // namespace
