// Behavioural tests for autograd mechanics, module construction,
// checkpointing, and op forward values.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/checkpoint.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "tensor/tensor_ops.h"

namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;
using diffpattern::tensor::Tensor;
using nn::Var;

TEST(Autograd, BackwardRequiresScalar) {
  Var x(Tensor({2, 2}, 1.0F), true);
  Var y = nn::scale(x, 2.0F);
  EXPECT_THROW(y.backward(), std::invalid_argument);
}

TEST(Autograd, NoGradPathSkipsGraph) {
  Var x(Tensor({2}, 1.0F), /*requires_grad=*/false);
  Var y = nn::scale(x, 3.0F);
  EXPECT_FALSE(y.requires_grad());
}

TEST(Autograd, GradAccumulatesAcrossBackwards) {
  Var x(Tensor({1}, 2.0F), true);
  Var loss = nn::sum_all(nn::mul(x, x));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0F);
  // A second backward on a fresh graph accumulates.
  Var loss2 = nn::sum_all(nn::mul(x, x));
  loss2.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0F);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0F);
}

TEST(Autograd, DetachBlocksGradient) {
  Var x(Tensor({2}, 3.0F), true);
  Var d = nn::detach(x);
  EXPECT_FALSE(d.requires_grad());
  Var y(Tensor({2}, 1.0F), true);
  Var loss = nn::sum_all(nn::mul(d, y));
  loss.backward();
  EXPECT_FLOAT_EQ(y.grad()[0], 3.0F);
}

TEST(Ops, SigmoidMatchesClosedForm) {
  Var x(Tensor::from_data({3}, {-100.0F, 0.0F, 100.0F}));
  Var s = nn::sigmoid(x);
  EXPECT_NEAR(s.value()[0], 0.0F, 1e-6F);
  EXPECT_NEAR(s.value()[1], 0.5F, 1e-6F);
  EXPECT_NEAR(s.value()[2], 1.0F, 1e-6F);
}

TEST(Ops, SoftplusStableForLargeInputs) {
  Var x(Tensor::from_data({2}, {100.0F, -100.0F}));
  Var y = nn::softplus(x);
  EXPECT_NEAR(y.value()[0], 100.0F, 1e-3F);
  EXPECT_NEAR(y.value()[1], 0.0F, 1e-3F);
}

TEST(Ops, DropoutIdentityInEval) {
  dc::Rng rng(1);
  Var x(Tensor({4, 4}, 1.0F), true);
  Var y = nn::dropout(x, 0.5F, /*training=*/false, rng);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], 1.0F);
  }
}

TEST(Ops, DropoutScalesSurvivors) {
  dc::Rng rng(2);
  Var x(Tensor({1000}, 1.0F), true);
  Var y = nn::dropout(x, 0.25F, /*training=*/true, rng);
  int zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.value()[i];
    if (v == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0F / 0.75F, 1e-5F);
    }
  }
  EXPECT_NEAR(zeros, 250, 60);
}

TEST(Ops, UpsampleValues) {
  Var x(Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4}));
  Var y = nn::upsample_nearest2(x);
  ASSERT_EQ(y.dim(2), 4);
  EXPECT_FLOAT_EQ(y.value().at({0, 0, 0, 0}), 1.0F);
  EXPECT_FLOAT_EQ(y.value().at({0, 0, 0, 1}), 1.0F);
  EXPECT_FLOAT_EQ(y.value().at({0, 0, 3, 3}), 4.0F);
}

TEST(Ops, ConcatSliceRoundTrip) {
  Var a(Tensor({1, 2, 2, 2}, 1.0F));
  Var b(Tensor({1, 3, 2, 2}, 2.0F));
  Var c = nn::concat_channels(a, b);
  ASSERT_EQ(c.dim(1), 5);
  Var back = nn::slice_channels(c, 2, 3);
  for (std::int64_t i = 0; i < back.numel(); ++i) {
    EXPECT_FLOAT_EQ(back.value()[i], 2.0F);
  }
}

TEST(Modules, RegistryRejectsDuplicates) {
  nn::ParamRegistry reg;
  reg.add("w", Tensor({2}, 0.0F));
  EXPECT_THROW(reg.add("w", Tensor({2}, 0.0F)), std::invalid_argument);
}

TEST(Modules, LinearShapes) {
  nn::ParamRegistry reg;
  dc::Rng rng(3);
  nn::Linear lin(reg, rng, "lin", 4, 6);
  EXPECT_EQ(reg.parameter_count(), 4 * 6 + 6);
  Var x(Tensor({2, 4}, 1.0F));
  Var y = lin(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 6);
}

TEST(Modules, Conv2dShapes) {
  nn::ParamRegistry reg;
  dc::Rng rng(4);
  nn::Conv2d conv(reg, rng, "conv", 3, 8, 3, /*stride=*/2, /*padding=*/1);
  Var x(Tensor({2, 3, 8, 8}, 0.5F));
  Var y = conv(x);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

TEST(Modules, GroupNormNormalizes) {
  nn::ParamRegistry reg;
  dc::Rng rng(5);
  nn::GroupNorm gn(reg, "gn", 4, 2);
  Tensor x({2, 4, 3, 3});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal(5.0, 2.0));
  }
  Var y = gn(Var(x));
  // With gamma=1, beta=0 each (n, group) slice has ~zero mean, unit var.
  const auto plane = 9;
  const auto cg = 2;
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t g = 0; g < 2; ++g) {
      double mean = 0.0, var = 0.0;
      for (std::int64_t c = 0; c < cg; ++c) {
        for (std::int64_t p = 0; p < plane; ++p) {
          const float v = y.value().at({n, g * cg + c, p / 3, p % 3});
          mean += v;
          var += v * v;
        }
      }
      const double m = cg * plane;
      mean /= m;
      var = var / m - mean * mean;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(Modules, PickGroupCountDivides) {
  EXPECT_EQ(nn::pick_group_count(32), 8);
  EXPECT_EQ(nn::pick_group_count(12), 6);
  EXPECT_EQ(nn::pick_group_count(7), 7);
  EXPECT_EQ(nn::pick_group_count(1), 1);
}

TEST(Optim, AdamReducesQuadraticLoss) {
  // Minimize ||x - target||^2; Adam should converge close to the target.
  nn::ParamRegistry reg;
  Var x = reg.add("x", Tensor({4}, 0.0F));
  Tensor target = Tensor::from_data({4}, {1.0F, -2.0F, 0.5F, 3.0F});
  nn::AdamConfig cfg;
  cfg.learning_rate = 0.05F;
  cfg.grad_clip_norm = 0.0F;
  nn::Adam opt(reg.params(), cfg);
  for (int it = 0; it < 400; ++it) {
    opt.zero_grad();
    Var diff = nn::add_const(x, diffpattern::tensor::scale(target, -1.0F));
    Var loss = nn::sum_all(nn::mul(diff, diff));
    loss.backward();
    opt.step();
  }
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.value()[i], target[i], 0.05F);
  }
}

TEST(Optim, GradClipBoundsStep) {
  nn::ParamRegistry reg;
  Var x = reg.add("x", Tensor({1}, 0.0F));
  nn::AdamConfig cfg;
  cfg.grad_clip_norm = 1.0F;
  nn::Adam opt(reg.params(), cfg);
  opt.zero_grad();
  Var loss = nn::sum_all(nn::scale(x, 1e6F));
  loss.backward();
  const double norm = opt.step();
  EXPECT_NEAR(norm, 1e6, 1e2);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "dp_test_ckpt.bin";
  dc::Rng rng(6);
  nn::ParamRegistry reg1;
  nn::Linear lin1(reg1, rng, "lin", 3, 2);
  nn::save_checkpoint(reg1, path);
  EXPECT_TRUE(nn::is_checkpoint_file(path));

  dc::Rng rng2(99);  // Different init values.
  nn::ParamRegistry reg2;
  nn::Linear lin2(reg2, rng2, "lin", 3, 2);
  nn::load_checkpoint(reg2, path);
  for (std::size_t p = 0; p < reg1.size(); ++p) {
    const Tensor& a = reg1.params()[p].value();
    const Tensor& b = reg2.params()[p].value();
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      EXPECT_FLOAT_EQ(a[i], b[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedArchitecture) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "dp_test_ckpt2.bin";
  dc::Rng rng(7);
  nn::ParamRegistry reg1;
  nn::Linear lin1(reg1, rng, "lin", 3, 2);
  nn::save_checkpoint(reg1, path);

  nn::ParamRegistry reg2;
  nn::Linear lin2(reg2, rng, "other", 3, 2);
  EXPECT_THROW(nn::load_checkpoint(reg2, path), std::invalid_argument);

  nn::ParamRegistry reg3;
  nn::Linear lin3(reg3, rng, "lin", 4, 2);
  EXPECT_THROW(nn::load_checkpoint(reg3, path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  nn::ParamRegistry reg;
  reg.add("x", Tensor({1}, 0.0F));
  EXPECT_THROW(nn::load_checkpoint(reg, "/nonexistent/path.bin"),
               std::runtime_error);
  EXPECT_FALSE(nn::is_checkpoint_file("/nonexistent/path.bin"));
}
