#include <gtest/gtest.h>

#include "baselines/autoencoder.h"
#include "baselines/layoutransformer.h"
#include "baselines/legalgan.h"
#include "common/rng.h"
#include "datagen/datagen.h"
#include "drc/checker.h"

namespace db = diffpattern::baselines;
namespace dgen = diffpattern::datagen;
namespace dc = diffpattern::common;
namespace dg = diffpattern::geometry;
namespace dl = diffpattern::layout;

namespace {

const dgen::Dataset& shared_dataset() {
  static const dgen::Dataset dataset = [] {
    dgen::DatagenConfig cfg;
    cfg.min_shapes = 2;
    cfg.max_shapes = 4;
    dc::Rng rng(77);
    return dgen::build_dataset(cfg, 12, 16, 4, 0.0, rng);
  }();
  return dataset;
}

dl::DeepSquishConfig fold_config() {
  dl::DeepSquishConfig fold;
  fold.channels = 4;
  return fold;
}

}  // namespace

TEST(Cae, TrainsAndGeneratesBinaryTopologies) {
  db::AutoencoderConfig cfg;
  cfg.variational = false;
  db::ConvAutoencoder cae(cfg, fold_config(), 8, 1);
  dc::Rng rng(2);
  EXPECT_THROW(cae.generate(1, rng), std::invalid_argument);  // Untrained.
  cae.train(shared_dataset(), 15, rng);
  const auto batch = cae.generate(4, rng);
  EXPECT_EQ(batch.topologies.size(), 4U);
  EXPECT_EQ(batch.invalid_count, 0);
  for (const auto& t : batch.topologies) {
    EXPECT_EQ(t.rows(), 16);
    EXPECT_EQ(t.cols(), 16);
  }
}

TEST(Cae, ReconstructionImprovesWithTraining) {
  db::AutoencoderConfig cfg;
  cfg.variational = false;
  db::ConvAutoencoder cae(cfg, fold_config(), 8, 3);
  dc::Rng rng(4);
  const auto probe =
      shared_dataset().folded_batch(shared_dataset().train_indices);
  const double before = cae.reconstruction_loss(probe);
  cae.train(shared_dataset(), 60, rng);
  const double after = cae.reconstruction_loss(probe);
  EXPECT_LT(after, before * 0.9) << before << " -> " << after;
}

TEST(Vcae, TrainsAndGeneratesFromPrior) {
  db::AutoencoderConfig cfg;
  cfg.variational = true;
  db::ConvAutoencoder vcae(cfg, fold_config(), 8, 5);
  dc::Rng rng(6);
  vcae.train(shared_dataset(), 15, rng);
  const auto batch = vcae.generate(3, rng);  // No latent fit needed.
  EXPECT_EQ(batch.topologies.size(), 3U);
  EXPECT_EQ(vcae.name(), "VCAE");
}

TEST(LegalGan, ReducesCorruptionViolations) {
  // A LegalGAN trained briefly should at least reduce the DRC violation
  // count of randomly corrupted dataset topologies (learned morphological
  // cleanup) — the paper's motivation for CAE+LegalGAN rows in Table I.
  db::LegalGanConfig cfg;
  db::LegalGan gan(cfg, fold_config(), 8, 7);
  dc::Rng rng(8);
  gan.train(shared_dataset(), 40, rng);

  const auto& dataset = shared_dataset();
  std::int64_t corrupted_cells = 0;
  std::int64_t cleaned_cells = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& clean = dataset.patterns[i].topology;
    dg::BinaryGrid corrupted = clean;
    for (std::int64_t r = 0; r < corrupted.rows(); ++r) {
      for (std::int64_t c = 0; c < corrupted.cols(); ++c) {
        if (rng.bernoulli(0.08)) {
          corrupted.set(r, c, 1 - corrupted.get_unchecked(r, c));
        }
      }
    }
    const auto repaired = gan.legalize(corrupted);
    // Hamming distance to the clean original.
    for (std::int64_t r = 0; r < clean.rows(); ++r) {
      for (std::int64_t c = 0; c < clean.cols(); ++c) {
        corrupted_cells +=
            corrupted.get_unchecked(r, c) != clean.get_unchecked(r, c);
        cleaned_cells +=
            repaired.get_unchecked(r, c) != clean.get_unchecked(r, c);
      }
    }
  }
  EXPECT_LT(cleaned_cells, corrupted_cells)
      << "LegalGAN did not move corrupted topologies toward clean ones";
}

TEST(LegalGan, BatchApplicationPreservesCounts) {
  db::LegalGanConfig cfg;
  db::LegalGan gan(cfg, fold_config(), 8, 9);
  dc::Rng rng(10);
  gan.train(shared_dataset(), 5, rng);
  db::GenerationBatch batch;
  batch.topologies = {shared_dataset().patterns[0].topology,
                      shared_dataset().patterns[1].topology};
  batch.invalid_count = 3;
  const auto out = gan.legalize_batch(batch);
  EXPECT_EQ(out.topologies.size(), 2U);
  EXPECT_EQ(out.invalid_count, 3);
}

TEST(Tokenizer, EncodeDecodeRoundTrip) {
  const auto& dataset = shared_dataset();
  db::PolygonTokenizer tokenizer(16);
  for (std::size_t i = 0; i < dataset.patterns.size(); ++i) {
    const auto& topology = dataset.patterns[i].topology;
    const auto tokens = tokenizer.encode(topology);
    EXPECT_EQ(tokens.front(), db::PolygonTokenizer::kBos);
    EXPECT_EQ(tokens.back(), db::PolygonTokenizer::kEos);
    const auto decoded = tokenizer.decode(tokens);
    ASSERT_TRUE(decoded.has_value()) << "pattern " << i;
    EXPECT_EQ(*decoded, topology) << "pattern " << i;
  }
}

TEST(Tokenizer, RejectsMalformedSequences) {
  db::PolygonTokenizer tokenizer(8);
  // Unclosed polygon: start + one east edge + EOS.
  const std::vector<std::int64_t> unclosed = {
      db::PolygonTokenizer::kBos, tokenizer.coord_token(1),
      tokenizer.coord_token(1), tokenizer.edge_token(0, 2),
      db::PolygonTokenizer::kEos};
  EXPECT_FALSE(tokenizer.decode(unclosed).has_value());
  // Out-of-bounds walk.
  const std::vector<std::int64_t> oob = {
      db::PolygonTokenizer::kBos, tokenizer.coord_token(7),
      tokenizer.coord_token(7), tokenizer.edge_token(0, 8),
      db::PolygonTokenizer::kEos};
  EXPECT_FALSE(tokenizer.decode(oob).has_value());
  // Empty sequence.
  EXPECT_FALSE(tokenizer
                   .decode({db::PolygonTokenizer::kBos,
                            db::PolygonTokenizer::kEos})
                   .has_value());
}

TEST(Tokenizer, VocabLayoutIsDisjoint) {
  db::PolygonTokenizer tokenizer(16);
  EXPECT_EQ(tokenizer.vocab_size(), 5 + 5 * 16);
  EXPECT_EQ(tokenizer.coord_token(0), 4);
  EXPECT_EQ(tokenizer.coord_token(16), 20);
  EXPECT_EQ(tokenizer.edge_token(0, 1), 21);
  EXPECT_EQ(tokenizer.edge_token(3, 16), 5 + 5 * 16 - 1);
  EXPECT_THROW(tokenizer.edge_token(0, 0), std::invalid_argument);
  EXPECT_THROW(tokenizer.coord_token(17), std::invalid_argument);
}

TEST(LayouTransformer, TrainsAndGenerates) {
  db::TransformerConfig cfg;
  cfg.d_model = 32;
  cfg.layers = 1;
  cfg.max_len = 120;
  db::LayouTransformer model(cfg, 16, 11);
  dc::Rng rng(12);
  model.train(shared_dataset(), 8, rng);
  const auto batch = model.generate(3, rng);
  EXPECT_EQ(static_cast<std::int64_t>(batch.topologies.size()) +
                batch.invalid_count,
            3);
  for (const auto& t : batch.topologies) {
    EXPECT_EQ(t.rows(), 16);
    EXPECT_GT(t.popcount(), 0);
  }
}
