// Flow-control tests: admission windows, load shedding with retry hints,
// degraded admission, deadlines (queued and mid-sampling), priority
// scheduling, and bounded stream backpressure. The throughline is the
// project invariant: flow control decides WHETHER/WHEN/HOW MANY slots
// run, never what they sample — every admitted slot's bytes must match
// an unloaded sequential run.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/pattern_service.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace ds = diffpattern::service;
namespace dc = diffpattern::common;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

/// Spins (1 ms steps) until `pred` holds; false on timeout.
bool wait_for(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ----------------------------------------------- AdmissionController unit

ds::FlowControlConfig depth_only_flow(std::int64_t max_depth,
                                      std::int64_t shed_depth) {
  ds::FlowControlConfig flow;
  flow.max_queue_depth = max_depth;
  flow.shed_queue_depth = shed_depth;
  flow.shed_fill_ratio = 0.0;  // Depth-driven only: fully deterministic.
  flow.retry_after_ms = 10;
  return flow;
}

TEST(AdmissionControl, AdmitsBelowThresholdsAndShedsAbove) {
  dc::CounterBlock counters;
  ds::AdmissionController admission(depth_only_flow(4, 2), 8, counters);

  // Depth 0 and 1 admit untouched.
  for (int i = 0; i < 2; ++i) {
    const auto d = admission.admit("m", 8, false);
    ASSERT_TRUE(d.status.ok()) << d.status.to_string();
    EXPECT_EQ(d.admitted_count, 8);
    EXPECT_FALSE(d.degraded);
  }
  EXPECT_EQ(admission.pending("m"), 2);

  // Soft threshold: shed with a structured retry hint.
  const auto shed = admission.admit("m", 8, false);
  EXPECT_EQ(shed.status.code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(shed.status.has_retry_after());
  EXPECT_EQ(admission.pending("m"), 2);  // A shed takes no window slot.

  // Other shards are independent.
  EXPECT_TRUE(admission.admit("other", 4, false).status.ok());
  EXPECT_EQ(admission.pending("other"), 1);

  // release() reopens the window.
  admission.release("m");
  EXPECT_EQ(admission.pending("m"), 1);
  EXPECT_TRUE(admission.admit("m", 8, false).status.ok());

  const auto snapshot = counters.snapshot(8);
  EXPECT_EQ(snapshot.admission_pending, 3);  // 2 on "m" + 1 on "other".
  EXPECT_EQ(snapshot.admission_pending_peak, 3);
  EXPECT_EQ(snapshot.requests_shed, 1);
}

TEST(AdmissionControl, DegradesInsteadOfSheddingWhenAllowed) {
  dc::CounterBlock counters;
  ds::AdmissionController admission(depth_only_flow(4, 2), 8, counters);
  ASSERT_TRUE(admission.admit("m", 8, false).status.ok());
  ASSERT_TRUE(admission.admit("m", 8, false).status.ok());

  // In the soft band a degradable request is admitted with count / 2.
  const auto degraded = admission.admit("m", 9, true);
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.admitted_count, 4);  // 9 / degrade_divisor(2).
  EXPECT_EQ(admission.pending("m"), 3);

  // A single-topology request cannot shrink: shed even with allow_degrade.
  const auto single = admission.admit("m", 1, true);
  EXPECT_EQ(single.status.code(), dc::StatusCode::kUnavailable);

  // The hard cap answers RESOURCE_EXHAUSTED regardless of allow_degrade.
  ASSERT_TRUE(admission.admit("m", 8, true).status.ok());  // Depth -> 4.
  const auto hard = admission.admit("m", 8, true);
  EXPECT_EQ(hard.status.code(), dc::StatusCode::kResourceExhausted);
  EXPECT_TRUE(hard.status.has_retry_after());
  EXPECT_EQ(counters.snapshot(8).requests_degraded, 2);
}

TEST(AdmissionControl, RetryHintScalesWithBacklog) {
  dc::CounterBlock counters;
  ds::AdmissionController admission(depth_only_flow(16, 2), 8, counters);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  }
  const auto at_threshold = admission.admit("m", 1, false);
  // Deeper backlog (degraded admissions still deepen the window) => a
  // longer structured back-off.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(admission.admit("m", 4, true).status.ok());
  }
  const auto deep = admission.admit("m", 1, false);
  EXPECT_EQ(at_threshold.status.code(), dc::StatusCode::kUnavailable);
  EXPECT_EQ(deep.status.code(), dc::StatusCode::kUnavailable);
  EXPECT_GT(deep.status.retry_after_ms(),
            at_threshold.status.retry_after_ms());
}

TEST(AdmissionControl, FillRatioTriggersEarlyShedding) {
  dc::CounterBlock counters;
  ds::FlowControlConfig flow = depth_only_flow(8, 4);
  flow.shed_fill_ratio = 0.9;
  ds::AdmissionController admission(flow, 4, counters);

  // No rounds observed yet: the fill signal stays quiet, depth rules.
  ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  EXPECT_EQ(admission.pending("m"), 3);
  for (int i = 0; i < 3; ++i) {
    admission.release("m");
  }

  // Saturated rounds (fill ratio 1.0 against budget 4): soft shedding now
  // starts at half the threshold (depth >= 2).
  counters.record_round(4);
  ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  const auto early = admission.admit("m", 1, false);
  EXPECT_EQ(early.status.code(), dc::StatusCode::kUnavailable);

  // The signal is windowed, not a lifetime mean: once the NEXT rounds run
  // sparse (1 of 4 slots), the saturated past stops shedding — the same
  // depth is admitted again.
  counters.record_round(1);
  const auto after_sparse = admission.admit("m", 1, false);
  EXPECT_TRUE(after_sparse.status.ok()) << after_sparse.status.to_string();
}

TEST(AdmissionControl, NormalizesDegenerateConfig) {
  dc::CounterBlock counters;
  ds::FlowControlConfig flow;
  flow.max_queue_depth = 0;    // -> 1.
  flow.shed_queue_depth = 99;  // -> clamped to max_queue_depth.
  flow.retry_after_ms = -5;    // -> 1.
  flow.degrade_divisor = 0;    // -> 2.
  ds::AdmissionController admission(flow, 4, counters);
  EXPECT_EQ(admission.config().max_queue_depth, 1);
  EXPECT_EQ(admission.config().shed_queue_depth, 1);
  EXPECT_EQ(admission.config().retry_after_ms, 1);
  EXPECT_EQ(admission.config().degrade_divisor, 2);
  ASSERT_TRUE(admission.admit("m", 1, false).status.ok());
  EXPECT_EQ(admission.admit("m", 1, false).status.code(),
            dc::StatusCode::kResourceExhausted);
}

// ------------------------------------------------- service integration

/// Service factory over two mini models with a configurable fused budget
/// and flow policy (tight budgets force multi-round jobs, which the
/// overload and deadline tests use to hold the shard busy).
class ServiceFlowTest : public ::testing::Test {
 protected:
  ServiceFlowTest()
      : model_a_(mini_model_config().unet_config(), /*seed=*/3),
        model_b_(mini_model_config().unet_config(), /*seed=*/4) {}

  std::unique_ptr<ds::PatternService> make_service(
      std::int64_t max_fused_batch, const ds::FlowControlConfig& flow) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = max_fused_batch;
    config.flow = flow;
    auto service = std::make_unique<ds::PatternService>(config);
    EXPECT_TRUE(service->models()
                    .register_model("a", mini_model_config(),
                                    model_a_.registry(), {})
                    .ok());
    EXPECT_TRUE(service->models()
                    .register_model("b", mini_model_config(),
                                    model_b_.registry(), {})
                    .ok());
    return service;
  }

  /// Permissive flow: thresholds far above what any test queues, fill
  /// signal off — for tests about deadlines/priority/backpressure only.
  static ds::FlowControlConfig open_flow() {
    return depth_only_flow(64, 64);
  }

  diffpattern::unet::UNet model_a_;
  diffpattern::unet::UNet model_b_;
};

TEST_F(ServiceFlowTest, NegativeDeadlineIsInvalidArgument) {
  auto service = make_service(16, open_flow());
  ds::GenerateRequest request{.model = "a", .count = 1, .seed = 1};
  request.deadline_ms = -7;
  EXPECT_EQ(service->validate(request).code(),
            dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(service->generate(request).status().code(),
            dc::StatusCode::kInvalidArgument);
}

TEST_F(ServiceFlowTest, ShedsWithRetryHintAtSoftThreshold) {
  // shed threshold 1: anything arriving while one request is in flight on
  // the shard is shed. Budget 1 keeps the first request busy for 8 rounds.
  auto service = make_service(1, depth_only_flow(4, 1));
  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 11};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  const ds::GenerateRequest late{.model = "a", .count = 1, .seed = 12};
  const auto shed = service->generate(late);
  EXPECT_EQ(shed.status().code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(shed.status().has_retry_after());

  // The other model's shard has its own window: not shed.
  const ds::GenerateRequest other{.model = "b", .count = 1, .seed = 13};
  EXPECT_TRUE(service->generate(other).ok());

  holder.join();
  const auto counters = service->counters();
  EXPECT_GE(counters.requests_shed, 1);
  EXPECT_GE(counters.rejects(dc::StatusCode::kUnavailable), 1);
  EXPECT_EQ(counters.admission_pending, 0);
  // Window reopened: the identical request is admitted now — and sheds
  // never perturbed the admitted requests' bytes.
  const auto retry = service->generate(late);
  ASSERT_TRUE(retry.ok()) << retry.status().to_string();
}

TEST_F(ServiceFlowTest, HardCapAnswersResourceExhausted) {
  auto service = make_service(1, depth_only_flow(1, 1));
  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 21};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  ds::GenerateRequest late{.model = "a", .count = 4, .seed = 22};
  late.allow_degrade = true;  // Degrade cannot dodge the hard cap.
  const auto exhausted = service->generate(late);
  EXPECT_EQ(exhausted.status().code(), dc::StatusCode::kResourceExhausted);
  EXPECT_TRUE(exhausted.status().has_retry_after());
  holder.join();
  EXPECT_GE(service->counters().rejects(dc::StatusCode::kResourceExhausted),
            1);
}

TEST_F(ServiceFlowTest, DegradedAdmissionRunsByteIdenticalPrefix) {
  // Reference: what an unloaded run of the SHRUNKEN request produces.
  auto reference_service = make_service(16, open_flow());
  const ds::GenerateRequest shrunk{.model = "a", .count = 3, .seed = 31};
  const auto reference = reference_service->generate(shrunk);
  ASSERT_TRUE(reference.ok());

  auto service = make_service(1, depth_only_flow(4, 1));
  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 32};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  ds::GenerateRequest flexible{.model = "a", .count = 6, .seed = 31};
  flexible.allow_degrade = true;
  const auto degraded = service->generate(flexible);
  holder.join();
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_TRUE(degraded->stats.degraded);
  EXPECT_EQ(degraded->stats.topologies_requested, 6);
  EXPECT_EQ(degraded->stats.topologies_admitted, 3);
  // Degradation = the byte-identical prefix of the full request: slots
  // [0, 3) with the same seed, identical to the unloaded count=3 run.
  EXPECT_TRUE(same_patterns(reference->patterns, degraded->patterns));
  EXPECT_GE(service->counters().requests_degraded, 1);
}

TEST_F(ServiceFlowTest, DeadlineExpiresWhileQueued) {
  auto service = make_service(1, open_flow());
  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 41};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  // Queued behind ~8 rounds of `busy` with a 1 ms budget: the scheduler
  // must cancel it at a round formation before it ever occupies slots.
  ds::GenerateRequest urgent{.model = "a", .count = 2, .seed = 42};
  urgent.deadline_ms = 1;
  const auto expired = service->generate(urgent);
  EXPECT_EQ(expired.status().code(), dc::StatusCode::kDeadlineExceeded);
  holder.join();
  const auto counters = service->counters();
  EXPECT_GE(counters.deadlines_expired, 1);
  EXPECT_GE(counters.rejects(dc::StatusCode::kDeadlineExceeded), 1);
  EXPECT_EQ(counters.admission_pending, 0);  // Window slot released.

  // A deadline-free retry of the same request reproduces the reference
  // bytes (expiry cancelled cleanly, nothing leaked into RNG streams).
  urgent.deadline_ms = 0;
  const auto retry = service->generate(urgent);
  ASSERT_TRUE(retry.ok());
  auto reference_service = make_service(16, open_flow());
  const auto reference = reference_service->generate(
      ds::GenerateRequest{.model = "a", .count = 2, .seed = 42});
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(same_patterns(reference->patterns, retry->patterns));
}

TEST_F(ServiceFlowTest, DeadlineExpiresMidSamplingAfterPartialDelivery) {
  // Budget 1 turns count=256 into ~256 rounds — far beyond the 50 ms
  // budget — so the job starts sampling, streams early slots, then gets
  // cancelled between rounds with DEADLINE_EXCEEDED.
  auto service = make_service(1, open_flow());
  ds::GenerateRequest request{.model = "a", .count = 256, .seed = 51};
  request.deadline_ms = 50;
  std::int64_t deliveries = 0;
  const auto result = service->generate_stream(
      request, [&deliveries](const ds::StreamedPattern&) { ++deliveries; });
  EXPECT_EQ(result.status().code(), dc::StatusCode::kDeadlineExceeded);
  EXPECT_GE(deliveries, 1);  // It really was sampling when it expired.
  const auto counters = service->counters();
  EXPECT_GE(counters.deadlines_expired, 1);
  EXPECT_EQ(counters.admission_pending, 0);
  // The shard survives an expiry mid-queue: next request is clean.
  EXPECT_TRUE(service
                  ->generate(ds::GenerateRequest{.model = "a", .count = 1,
                                                 .seed = 52})
                  .ok());
}

TEST_F(ServiceFlowTest, PriorityOrdersRoundsWithoutPerturbingBytes) {
  // Solo references on an unloaded service.
  auto reference_service = make_service(16, open_flow());
  const ds::GenerateRequest hi_req{.model = "a", .count = 2, .seed = 61,
                                   .priority = 5};
  const ds::GenerateRequest lo_req{.model = "a", .count = 2, .seed = 62,
                                   .priority = 0};
  const auto hi_reference = reference_service->generate(
      ds::GenerateRequest{.model = "a", .count = 2, .seed = 61});
  const auto lo_reference = reference_service->generate(
      ds::GenerateRequest{.model = "a", .count = 2, .seed = 62});
  ASSERT_TRUE(hi_reference.ok());
  ASSERT_TRUE(lo_reference.ok());

  // Contended shard: a long priority-0 job holds the queue while lo (0)
  // and then hi (5) arrive. The priority-ordered queue must finish hi
  // first even though lo enqueued earlier.
  auto service = make_service(1, open_flow());
  const ds::GenerateRequest busy{.model = "a", .count = 12, .seed = 63};
  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  const auto record = [&](const char* name) {
    const std::lock_guard<std::mutex> lock(order_mutex);
    completion_order.emplace_back(name);
  };
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  dc::Result<ds::GenerateResult> lo_result(dc::Status::Unavailable("unrun"));
  dc::Result<ds::GenerateResult> hi_result(dc::Status::Unavailable("unrun"));
  std::thread lo_client([&] {
    lo_result = service->generate(lo_req);
    record("lo");
  });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 2; }));
  std::thread hi_client([&] {
    hi_result = service->generate(hi_req);
    record("hi");
  });
  lo_client.join();
  hi_client.join();
  holder.join();

  ASSERT_TRUE(lo_result.ok()) << lo_result.status().to_string();
  ASSERT_TRUE(hi_result.ok()) << hi_result.status().to_string();
  ASSERT_EQ(completion_order.size(), 2U);
  EXPECT_EQ(completion_order.front(), "hi")
      << "priority 5 finished after priority 0";
  // Reordering must be invisible in the bytes of every request.
  EXPECT_TRUE(same_patterns(hi_reference->patterns, hi_result->patterns));
  EXPECT_TRUE(same_patterns(lo_reference->patterns, lo_result->patterns));
}

TEST_F(ServiceFlowTest, PushStreamShedCarriesSameRetryHintAsBlocking) {
  // A shed is a shed on every API shape: the push-stream path must reject
  // with the same structured retry hint the blocking generate() returns —
  // and deliver nothing. (The distributed plane forwards this hint over
  // the wire; see test_dist_router.cpp.)
  auto service = make_service(1, depth_only_flow(4, 1));
  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 81};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  const ds::GenerateRequest late{.model = "a", .count = 1, .seed = 82};
  const auto blocking_shed = service->generate(late);
  ASSERT_EQ(blocking_shed.status().code(), dc::StatusCode::kUnavailable);

  std::int64_t deliveries = 0;
  const auto stream_shed = service->generate_stream(
      late, [&deliveries](const ds::StreamedPattern&) { ++deliveries; });
  EXPECT_EQ(stream_shed.status().code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(stream_shed.status().has_retry_after());
  EXPECT_EQ(stream_shed.status().retry_after_ms(),
            blocking_shed.status().retry_after_ms());
  EXPECT_EQ(deliveries, 0);
  holder.join();
}

TEST_F(ServiceFlowTest, PullStreamShedCarriesRetryHint) {
  auto service = make_service(1, depth_only_flow(4, 1));
  const ds::GenerateRequest busy{.model = "a", .count = 8, .seed = 83};
  std::thread holder([&] { ASSERT_TRUE(service->generate(busy).ok()); });
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().admission_pending >= 1; }));

  auto handle = service->generate_stream(
      ds::GenerateRequest{.model = "a", .count = 1, .seed = 84});
  EXPECT_FALSE(handle.next().has_value());  // Shed: nothing to pull.
  const auto shed = handle.finish();
  EXPECT_EQ(shed.status().code(), dc::StatusCode::kUnavailable);
  EXPECT_TRUE(shed.status().has_retry_after());
  EXPECT_GE(shed.status().retry_after_ms(), 1);
  holder.join();
}

TEST_F(ServiceFlowTest, BoundedStreamBufferPausesThenDrainsIdentical) {
  ds::FlowControlConfig flow = open_flow();
  flow.stream_buffer_limit = 2;
  auto service = make_service(16, flow);
  const ds::GenerateRequest request{.model = "a", .count = 8, .seed = 71};
  const auto reference = service->generate(request);
  ASSERT_TRUE(reference.ok());

  auto handle = service->generate_stream(request);
  // A stalled consumer: the producer must hit the high-water mark and
  // pause the fan-out instead of buffering all 8 deliveries.
  ASSERT_TRUE(wait_for(
      [&] { return service->counters().stream_pauses >= 1; }));

  // Resume: draining yields every slot, byte-identical to generate().
  std::vector<ds::StreamedPattern> slots;
  while (auto delivery = handle.next()) {
    slots.push_back(std::move(*delivery));
  }
  ASSERT_EQ(slots.size(), 8U);
  const auto stats = handle.finish();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_TRUE(same_patterns(reference->patterns,
                            ds::assemble_stream_patterns(std::move(slots))));
  EXPECT_GE(service->counters().stream_pauses, 1);
}

}  // namespace
