// End-to-end training smoke tests: small networks trained with Adam must fit
// simple synthetic tasks. These validate that forward, backward, and the
// optimizer compose correctly (beyond per-op gradcheck).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;
using diffpattern::tensor::Tensor;
using nn::Var;

TEST(Training, MlpFitsXor) {
  dc::Rng rng(123);
  nn::ParamRegistry reg;
  nn::Linear l1(reg, rng, "l1", 2, 16);
  nn::Linear l2(reg, rng, "l2", 16, 1);

  Tensor x = Tensor::from_data({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor t = Tensor::from_data({4, 1}, {0, 1, 1, 0});

  nn::AdamConfig cfg;
  cfg.learning_rate = 0.02F;
  cfg.grad_clip_norm = 0.0F;
  nn::Adam opt(reg.params(), cfg);

  double final_loss = 1e9;
  for (int it = 0; it < 600; ++it) {
    opt.zero_grad();
    Var h = nn::tanh_act(l1(Var(x)));
    Var logits = l2(h);
    // BCE with logits: softplus(z) - t*z, averaged.
    Var bce = nn::sub(nn::softplus(logits), nn::mul_const(logits, t));
    Var loss = nn::mean_all(bce);
    loss.backward();
    opt.step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.1);
}

TEST(Training, ConvNetFitsBinaryImageLabels) {
  // Classify 6x6 binary images: label = 1 if left half is brighter.
  dc::Rng rng(7);
  nn::ParamRegistry reg;
  nn::Conv2d conv1(reg, rng, "c1", 1, 4, 3, 1, 1);
  nn::Conv2d conv2(reg, rng, "c2", 4, 4, 3, 2, 1);
  nn::Linear head(reg, rng, "head", 4 * 3 * 3, 1);

  const int n = 32;
  Tensor x({n, 1, 6, 6});
  Tensor t({n, 1});
  for (int i = 0; i < n; ++i) {
    const bool left = rng.bernoulli(0.5);
    t[i] = left ? 1.0F : 0.0F;
    for (int r = 0; r < 6; ++r) {
      for (int c = 0; c < 6; ++c) {
        const bool bright = left ? (c < 3) : (c >= 3);
        x.at({i, 0, r, c}) =
            bright ? static_cast<float>(rng.uniform(0.6, 1.0))
                   : static_cast<float>(rng.uniform(0.0, 0.4));
      }
    }
  }

  nn::AdamConfig cfg;
  cfg.learning_rate = 0.01F;
  nn::Adam opt(reg.params(), cfg);
  double final_loss = 1e9;
  for (int it = 0; it < 120; ++it) {
    opt.zero_grad();
    Var h = nn::relu(conv1(Var(x)));
    h = nn::relu(conv2(h));
    h = nn::reshape(h, {n, 4 * 3 * 3});
    Var logits = head(h);
    Var bce = nn::sub(nn::softplus(logits), nn::mul_const(logits, t));
    Var loss = nn::mean_all(bce);
    loss.backward();
    opt.step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.12);
}

TEST(Training, TinyAttentionFitsCopyTask) {
  // One-layer attention over 4 tokens must learn to route information:
  // output position 0 should predict the embedding at the position indexed
  // by the first token (a soft pointer task, trivially learnable).
  dc::Rng rng(21);
  nn::ParamRegistry reg;
  const std::int64_t d = 8, t = 4;
  nn::Linear wq(reg, rng, "wq", d, d);
  nn::Linear wk(reg, rng, "wk", d, d);
  nn::Linear wv(reg, rng, "wv", d, d);
  nn::Linear out(reg, rng, "out", d, 2);

  const int n = 16;
  Tensor x({n, t, d});
  Tensor target({n, 2});
  for (int i = 0; i < n; ++i) {
    const bool cls = rng.bernoulli(0.5);
    target.at({i, 0}) = cls ? 1.0F : 0.0F;
    target.at({i, 1}) = cls ? 0.0F : 1.0F;
    for (int tt = 0; tt < t; ++tt) {
      for (int dd = 0; dd < d; ++dd) {
        x.at({i, tt, dd}) = static_cast<float>(rng.normal(0.0, 0.3));
      }
    }
    // Plant the class signal at token 2.
    x.at({i, 2, 0}) = cls ? 2.0F : -2.0F;
  }

  nn::AdamConfig cfg;
  cfg.learning_rate = 0.01F;
  nn::Adam opt(reg.params(), cfg);
  double final_loss = 1e9;
  for (int it = 0; it < 200; ++it) {
    opt.zero_grad();
    Var xv(x);
    Var flat = nn::reshape(xv, {n * t, d});
    Var q = nn::reshape(wq(flat), {n, t, d});
    Var k = nn::reshape(wk(flat), {n, t, d});
    Var v = nn::reshape(wv(flat), {n, t, d});
    Var scores = nn::scale(nn::bmm(q, nn::permute(k, {0, 2, 1})),
                           1.0F / std::sqrt(static_cast<float>(d)));
    Var attn = nn::softmax_last(scores);
    Var mixed = nn::bmm(attn, v);  // [n, t, d]
    // Pool over tokens (mean) then classify.
    Var pooled = nn::scale(
        nn::reshape(
            nn::bmm(Var(Tensor({n, 1, t}, 1.0F / t)), mixed),
            {n, d}),
        1.0F);
    Var logits = out(pooled);
    Var logp = nn::log_clamped(nn::softmax_last(logits), 1e-9F);
    Var loss = nn::scale(nn::mean_all(nn::mul_const(logp, target)),
                         -static_cast<float>(2));
    loss.backward();
    opt.step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.2);
}
