// Parameterized numerical gradient checks over operator configuration
// sweeps (convolution geometry, GroupNorm grouping, attention sizes).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <tuple>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"

namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;
using diffpattern::tensor::Shape;
using diffpattern::tensor::Tensor;
using nn::Var;

namespace {

Tensor random_tensor(dc::Rng& rng, Shape shape) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

void grad_check(const std::function<Var(const std::vector<Var>&)>& fn,
                std::vector<Tensor> inputs, double eps = 1e-3,
                double tol = 3e-2) {
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (auto& t : inputs) {
    vars.emplace_back(t, true);
  }
  Var loss = fn(vars);
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();
  for (std::size_t vi = 0; vi < vars.size(); ++vi) {
    const Tensor analytic = vars[vi].grad();
    // Spot-check a strided subset to keep the sweep fast.
    const auto stride =
        std::max<std::int64_t>(1, inputs[vi].numel() / 24);
    for (std::int64_t i = 0; i < inputs[vi].numel(); i += stride) {
      const float saved = inputs[vi][i];
      inputs[vi][i] = saved + static_cast<float>(eps);
      std::vector<Var> vp;
      for (const auto& t : inputs) vp.emplace_back(t, false);
      const double lp = fn(vp).value()[0];
      inputs[vi][i] = saved - static_cast<float>(eps);
      std::vector<Var> vm;
      for (const auto& t : inputs) vm.emplace_back(t, false);
      const double lm = fn(vm).value()[0];
      inputs[vi][i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double a = analytic[i];
      const double denom = std::max({std::abs(a), std::abs(numeric), 1.0});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "input " << vi << " element " << i;
    }
  }
}

}  // namespace

// (kernel, stride, padding, in_channels, out_channels, H, W)
using ConvCase =
    std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t, std::int64_t>;

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, GradientsMatchNumerics) {
  const auto [k, stride, pad, cin, cout, h, w] = GetParam();
  dc::Rng rng(k * 100 + stride * 10 + pad);
  // Output shape must be valid.
  const auto oh = (h + 2 * pad - k) / stride + 1;
  const auto ow = (w + 2 * pad - k) / stride + 1;
  ASSERT_GT(oh, 0);
  ASSERT_GT(ow, 0);
  Tensor weight_mask = random_tensor(rng, {2, cout, oh, ow});
  grad_check(
      [&, stride = stride, pad = pad](const std::vector<Var>& v) {
        Var y = nn::conv2d(v[0], v[1], v[2], stride, pad);
        return nn::sum_all(nn::mul_const(y, weight_mask));
      },
      {random_tensor(rng, {2, cin, h, w}),
       random_tensor(rng, {cout, cin, k, k}), random_tensor(rng, {cout})});
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 0, 1, 1, 3, 3},   // Pointwise.
                      ConvCase{3, 1, 1, 2, 3, 4, 4},   // Same-size 3x3.
                      ConvCase{3, 2, 1, 2, 2, 6, 6},   // Strided downsample.
                      ConvCase{5, 1, 2, 1, 2, 5, 5},   // 5x5 kernel.
                      ConvCase{3, 1, 0, 3, 1, 5, 4},   // Valid (no pad).
                      ConvCase{2, 2, 0, 1, 4, 4, 4},   // Even kernel.
                      ConvCase{3, 3, 1, 2, 2, 7, 7})); // Stride 3.

// (channels, groups)
using GroupNormCase = std::tuple<std::int64_t, std::int64_t>;

class GroupNormGrouping : public ::testing::TestWithParam<GroupNormCase> {};

TEST_P(GroupNormGrouping, GradientsMatchNumerics) {
  const auto [channels, groups] = GetParam();
  dc::Rng rng(channels * 10 + groups);
  Tensor weight_mask = random_tensor(rng, {2, channels, 3, 2});
  grad_check(
      [&, groups = groups](const std::vector<Var>& v) {
        Var y = nn::group_norm(v[0], v[1], v[2], groups);
        return nn::sum_all(nn::mul_const(y, weight_mask));
      },
      {random_tensor(rng, {2, channels, 3, 2}),
       random_tensor(rng, {channels}), random_tensor(rng, {channels})});
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupNormGrouping,
                         ::testing::Values(GroupNormCase{1, 1},
                                           GroupNormCase{4, 1},
                                           GroupNormCase{4, 2},
                                           GroupNormCase{4, 4},
                                           GroupNormCase{6, 3},
                                           GroupNormCase{8, 8}));

// (batch, tokens, dim)
using AttnCase = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class AttentionSizes : public ::testing::TestWithParam<AttnCase> {};

TEST_P(AttentionSizes, CompositeAttentionGradients) {
  const auto [b, t, d] = GetParam();
  dc::Rng rng(b * 100 + t * 10 + d);
  Tensor weight_mask = random_tensor(rng, {b, t, d});
  grad_check(
      [&, d = d](const std::vector<Var>& v) {
        Var scores = nn::scale(nn::bmm(v[0], nn::permute(v[1], {0, 2, 1})),
                               1.0F / std::sqrt(static_cast<float>(d)));
        Var out = nn::bmm(nn::softmax_last(scores), v[2]);
        return nn::sum_all(nn::mul_const(out, weight_mask));
      },
      {random_tensor(rng, {b, t, d}), random_tensor(rng, {b, t, d}),
       random_tensor(rng, {b, t, d})});
}

INSTANTIATE_TEST_SUITE_P(Sweep, AttentionSizes,
                         ::testing::Values(AttnCase{1, 2, 2},
                                           AttnCase{1, 4, 3},
                                           AttnCase{2, 3, 4},
                                           AttnCase{3, 5, 2}));
