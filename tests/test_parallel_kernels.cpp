// Parallel compute backend tests: ComputePool semantics, thread-count
// resolution (0 is INVALID_ARGUMENT, auto falls back sanely), and the
// blocked/parallel kernels' determinism contract — bitwise-identical output
// at every pool size, and agreement with the retained naive references
// within a tight ULP bound (the dispatched kernels accumulate with fused
// multiply-adds, the references with separate mul/add roundings; see
// tensor/simd.h and tests/test_simd_kernels.cpp for the backend-parity
// half of the contract).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/compute_pool.h"
#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"
#include "service/worker_pool.h"
#include "tensor/tensor_ops.h"
#include "ulp_test_util.h"

namespace dc = diffpattern::common;
namespace dt = diffpattern::tensor;
namespace dn = diffpattern::nn;
using dt::Tensor;

namespace {

/// Restores the ambient pool size when a test that resizes it finishes, so
/// test order never matters.
class ThreadsGuard {
 public:
  ThreadsGuard() = default;
  ~ThreadsGuard() {
    EXPECT_TRUE(dc::set_global_compute_threads(-1).ok());
  }
};

Tensor random_tensor(dt::Shape shape, dc::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    return ::testing::AssertionFailure()
           << "shape mismatch " << a.shape_string() << " vs "
           << b.shape_string();
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << "tensors differ bitwise";
  }
  return ::testing::AssertionSuccess();
}

const std::int64_t kPoolSizes[] = {1, 2, 8};

/// Reference-agreement bound for the fused-vs-split rounding drift (see
/// tests/test_simd_kernels.cpp, which owns the tighter per-kernel checks).
constexpr std::int64_t kUlpBound = 128;
/// Absolute escape for accumulations cancelling towards zero (huge ULP
/// distance on a tiny result, same absolute drift).
constexpr float kUlpAtol = 1e-5F;

}  // namespace

TEST(ComputePool, ResolveRejectsZeroWithInvalidArgument) {
  const auto resolved = dc::resolve_thread_count(0);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), dc::StatusCode::kInvalidArgument);
}

TEST(ComputePool, ResolveTakesPositiveVerbatimAndAutoFallsBack) {
  const auto explicit_n = dc::resolve_thread_count(5);
  ASSERT_TRUE(explicit_n.ok());
  EXPECT_EQ(*explicit_n, 5);
  const auto auto_n = dc::resolve_thread_count(-1);
  ASSERT_TRUE(auto_n.ok());
  EXPECT_GE(*auto_n, 1);  // >= 1 even when hardware_concurrency() is 0.
  EXPECT_GE(dc::hardware_thread_count(), 1);
}

TEST(ComputePool, ResolveRejectsAbsurdCountsBeforeSpawningThreads) {
  const auto resolved = dc::resolve_thread_count(dc::kMaxComputeThreads + 1);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), dc::StatusCode::kInvalidArgument);
  const auto at_limit = dc::resolve_thread_count(dc::kMaxComputeThreads);
  ASSERT_TRUE(at_limit.ok());
  EXPECT_EQ(*at_limit, dc::kMaxComputeThreads);
}

TEST(ComputePool, SetGlobalThreadsRejectsZero) {
  const auto status = dc::set_global_compute_threads(0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), dc::StatusCode::kInvalidArgument);
  EXPECT_GE(dc::global_compute_threads(), 1);  // Pool untouched and usable.
}

TEST(ComputePool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const auto threads : kPoolSizes) {
    dc::ComputePool pool(threads);
    constexpr std::int64_t kN = 10'007;  // Prime: uneven chunking.
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(0, kN, /*grain=*/16,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          hits[static_cast<std::size_t>(i)]++;
                        }
                      });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
    }
  }
}

TEST(ComputePool, NestedParallelForRunsInlineWithoutDeadlock) {
  dc::ComputePool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      pool.parallel_for(0, 100, 1, [&](std::int64_t ib, std::int64_t ie) {
        total += ie - ib;
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ComputePool, EmptyRangeIsANoOp) {
  dc::ComputePool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ServiceWorkerPool, DefaultSizeIsAtLeastOne) {
  EXPECT_GE(diffpattern::service::WorkerPool::default_size(), 1);
}

TEST(ParallelKernels, MatmulFamilyBitwiseEqualAcrossPoolSizes) {
  ThreadsGuard guard;
  dc::Rng rng(11);
  // Odd sizes defeat any chunking alignment; include zeros so the sparse
  // skip path is exercised identically.
  Tensor a = random_tensor({65, 47}, rng);
  Tensor b = random_tensor({47, 83}, rng);
  for (std::int64_t i = 0; i < a.numel(); i += 7) {
    a[i] = 0.0F;
  }
  Tensor baseline;
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    const Tensor out = dt::matmul(a, b);
    if (baseline.empty()) {
      baseline = out;
    } else {
      EXPECT_TRUE(bitwise_equal(out, baseline)) << threads;
    }
  }
  EXPECT_TRUE(diffpattern::testutil::ulp_close(
      baseline, dt::reference::matmul(a, b), kUlpBound, kUlpAtol));
}

TEST(ParallelKernels, TransposeKernelsBitwiseEqualAcrossPoolSizes) {
  ThreadsGuard guard;
  dc::Rng rng(13);
  const Tensor a = random_tensor({65, 47}, rng);    // [M,K]
  const Tensor b = random_tensor({65, 83}, rng);    // [M,N]
  const Tensor c = random_tensor({29, 47}, rng);    // [K2,N2] for mtb
  const Tensor d = random_tensor({31, 47}, rng);    // [M2,N2]
  Tensor mta_base;
  Tensor mtb_base;
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    const Tensor mta = dt::matmul_transpose_a(a, b);
    const Tensor mtb = dt::matmul_transpose_b(d, c);
    if (mta_base.empty()) {
      mta_base = mta;
      mtb_base = mtb;
    } else {
      EXPECT_TRUE(bitwise_equal(mta, mta_base)) << threads;
      EXPECT_TRUE(bitwise_equal(mtb, mtb_base)) << threads;
    }
  }
  EXPECT_TRUE(diffpattern::testutil::ulp_close(
      mta_base, dt::reference::matmul_transpose_a(a, b), kUlpBound,
      kUlpAtol));
  EXPECT_TRUE(diffpattern::testutil::ulp_close(
      mtb_base, dt::reference::matmul_transpose_b(d, c), kUlpBound,
      kUlpAtol));
}

TEST(ParallelKernels, AccumulateMatchesReferenceOnWarmOutput) {
  ThreadsGuard guard;
  dc::Rng rng(17);
  const Tensor a = random_tensor({33, 21}, rng);
  const Tensor b = random_tensor({21, 55}, rng);
  const Tensor warm = random_tensor({33, 55}, rng);
  Tensor ref = warm;
  dt::reference::matmul_accumulate(a, b, ref);
  Tensor baseline;
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    Tensor out = warm;
    dt::matmul_accumulate(a, b, out);
    if (baseline.empty()) {
      baseline = out;
    } else {
      EXPECT_TRUE(bitwise_equal(out, baseline)) << threads;
    }
  }
  EXPECT_TRUE(diffpattern::testutil::ulp_close(baseline, ref, kUlpBound,
                                               kUlpAtol));
}

TEST(ParallelKernels, SoftmaxRowsBitwiseEqualAcrossPoolSizes) {
  ThreadsGuard guard;
  dc::Rng rng(19);
  const Tensor logits = random_tensor({129, 37}, rng);
  const Tensor ref = dt::reference::softmax_rows(logits);
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    EXPECT_TRUE(bitwise_equal(dt::softmax_rows(logits), ref)) << threads;
  }
}

TEST(ParallelKernels, Im2colBatchMatchesPerSampleBlocks) {
  ThreadsGuard guard;
  dc::Rng rng(23);
  dt::Conv2dGeometry geom;
  geom.in_channels = 3;
  geom.in_h = 9;
  geom.in_w = 7;
  geom.kernel_h = 3;
  geom.kernel_w = 3;
  geom.stride = 2;
  geom.padding = 1;
  const std::int64_t batch = 5;
  const Tensor x = random_tensor({batch, 3, 9, 7}, rng);
  const auto n_out = geom.out_h() * geom.out_w();
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    const Tensor cols = dt::im2col_batch(x, geom);
    ASSERT_EQ(cols.dim(0), geom.patch_size());
    ASSERT_EQ(cols.dim(1), batch * n_out);
    for (std::int64_t n = 0; n < batch; ++n) {
      Tensor image({3, 9, 7});
      std::copy(x.data() + n * image.numel(),
                x.data() + (n + 1) * image.numel(), image.data());
      const Tensor single = dt::im2col(image, geom);
      for (std::int64_t r = 0; r < geom.patch_size(); ++r) {
        for (std::int64_t p = 0; p < n_out; ++p) {
          ASSERT_EQ(cols[r * batch * n_out + n * n_out + p],
                    single[r * n_out + p])
              << "thread=" << threads << " n=" << n;
        }
      }
    }
    // Round trip: col2im_batch equals per-sample col2im.
    const Tensor folded = dt::col2im_batch(cols, geom, batch);
    for (std::int64_t n = 0; n < batch; ++n) {
      Tensor block({geom.patch_size(), n_out});
      for (std::int64_t r = 0; r < geom.patch_size(); ++r) {
        std::copy(cols.data() + r * batch * n_out + n * n_out,
                  cols.data() + r * batch * n_out + (n + 1) * n_out,
                  block.data() + r * n_out);
      }
      const Tensor single = dt::col2im(block, geom);
      for (std::int64_t i = 0; i < single.numel(); ++i) {
        ASSERT_EQ(folded[n * single.numel() + i], single[i]);
      }
    }
  }
}

TEST(ParallelKernels, Conv2dForwardBitwiseEqualAcrossPoolSizesAndModes) {
  ThreadsGuard guard;
  dc::Rng rng(29);
  const Tensor x = random_tensor({4, 3, 8, 8}, rng);
  const Tensor w = random_tensor({5, 3, 3, 3}, rng);
  const Tensor b = random_tensor({5}, rng);
  Tensor baseline;
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    // Training-mode graph path.
    const Tensor train_out =
        dn::conv2d(dn::Var(x, true), dn::Var(w, true), dn::Var(b, true), 1, 1)
            .value();
    // Inference path (scratch-buffer reuse); run twice so a stale scratch
    // from the previous pool size would be caught.
    Tensor infer_out;
    {
      dn::NoGradGuard no_grad;
      infer_out =
          dn::conv2d(dn::Var(x), dn::Var(w), dn::Var(b), 1, 1).value();
      const Tensor again =
          dn::conv2d(dn::Var(x), dn::Var(w), dn::Var(b), 1, 1).value();
      EXPECT_TRUE(bitwise_equal(infer_out, again));
    }
    EXPECT_TRUE(bitwise_equal(train_out, infer_out)) << threads;
    if (baseline.empty()) {
      baseline = train_out;
    } else {
      EXPECT_TRUE(bitwise_equal(train_out, baseline)) << threads;
    }
  }
}

TEST(ParallelKernels, Conv2dGradientsBitwiseEqualAcrossPoolSizes) {
  ThreadsGuard guard;
  dc::Rng rng(31);
  const Tensor x = random_tensor({3, 2, 6, 6}, rng);
  const Tensor w = random_tensor({4, 2, 3, 3}, rng);
  const Tensor b = random_tensor({4}, rng);
  Tensor gx_ref;
  Tensor gw_ref;
  Tensor gb_ref;
  for (const auto threads : kPoolSizes) {
    ASSERT_TRUE(dc::set_global_compute_threads(threads).ok());
    dn::Var vx(x, true);
    dn::Var vw(w, true);
    dn::Var vb(b, true);
    dn::sum_all(dn::conv2d(vx, vw, vb, 1, 1)).backward();
    if (gx_ref.empty()) {
      gx_ref = vx.grad();
      gw_ref = vw.grad();
      gb_ref = vb.grad();
    } else {
      EXPECT_TRUE(bitwise_equal(vx.grad(), gx_ref)) << threads;
      EXPECT_TRUE(bitwise_equal(vw.grad(), gw_ref)) << threads;
      EXPECT_TRUE(bitwise_equal(vb.grad(), gb_ref)) << threads;
    }
  }
}
