// Streaming delivery + sharded scheduler tests: generate_stream (push and
// pull) must deliver exactly the patterns generate() returns — byte-
// identical content with stable per-slot indices, invariant to shard
// count, round chunking, and callback timing — and the per-model shards
// must isolate traffic (an oversized job on one model cannot starve
// another model) while the ServiceCounters observe it all.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "service/pattern_service.h"
#include "service_test_util.h"
#include "unet/unet.h"

namespace ds = diffpattern::service;
namespace dc = diffpattern::common;
namespace dl = diffpattern::layout;

namespace {

using ds::test::mini_model_config;
using ds::test::same_patterns;

/// Flattens streamed slots into the index-ordered pattern vector that
/// generate() would return for the same request (also exercises the
/// public reassembly helper the CLI --stream path uses).
std::vector<dl::SquishPattern> collect_in_index_order(
    std::vector<ds::StreamedPattern> slots) {
  return ds::assemble_stream_patterns(std::move(slots));
}

/// Service with two (untrained, differently seeded) models "a" and "b".
class ServiceStreamTest : public ::testing::Test {
 protected:
  ServiceStreamTest()
      : model_a_(mini_model_config().unet_config(), /*seed=*/3),
        model_b_(mini_model_config().unet_config(), /*seed=*/4) {
    service_ = make_service(/*max_fused_batch=*/16);
  }

  std::unique_ptr<ds::PatternService> make_service(
      std::int64_t max_fused_batch) {
    ds::ServiceConfig config;
    config.legalize_workers = 2;
    config.max_fused_batch = max_fused_batch;
    auto service = std::make_unique<ds::PatternService>(config);
    EXPECT_TRUE(service->models()
                    .register_model("a", mini_model_config(),
                                    model_a_.registry(), {})
                    .ok());
    EXPECT_TRUE(service->models()
                    .register_model("b", mini_model_config(),
                                    model_b_.registry(), {})
                    .ok());
    return service;
  }

  diffpattern::unet::UNet model_a_;
  diffpattern::unet::UNet model_b_;
  std::unique_ptr<ds::PatternService> service_;
};

}  // namespace

// ------------------------------------------------------------- streaming

TEST_F(ServiceStreamTest, PushStreamMatchesGenerate) {
  const ds::GenerateRequest request{.model = "a", .count = 6,
                                    .geometries_per_topology = 2,
                                    .seed = 77};
  const auto reference = service_->generate(request);
  ASSERT_TRUE(reference.ok()) << reference.status().to_string();

  std::vector<ds::StreamedPattern> slots;
  const auto stats = service_->generate_stream(
      request,
      [&slots](const ds::StreamedPattern& p) { slots.push_back(p); });
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();

  // Exactly one delivery per topology slot, each with a stable index.
  ASSERT_EQ(slots.size(), 6U);
  std::set<std::int64_t> indices;
  for (const auto& slot : slots) {
    EXPECT_GE(slot.index, 0);
    EXPECT_LT(slot.index, 6);
    EXPECT_TRUE(indices.insert(slot.index).second)
        << "slot " << slot.index << " delivered twice";
    EXPECT_EQ(slot.legal, !slot.patterns.empty());
  }
  // The delivered set reassembles to generate()'s byte-identical output.
  EXPECT_TRUE(same_patterns(reference->patterns,
                            collect_in_index_order(std::move(slots))));
  EXPECT_EQ(stats->prefilter_rejected, reference->stats.prefilter_rejected);
  EXPECT_EQ(stats->solver_rejected, reference->stats.solver_rejected);
  EXPECT_EQ(stats->topologies_requested,
            reference->stats.topologies_requested);
}

TEST_F(ServiceStreamTest, PullHandleDeliversAllSlots) {
  const ds::GenerateRequest request{.model = "b", .count = 5, .seed = 9};
  const auto reference = service_->generate(request);
  ASSERT_TRUE(reference.ok());

  auto handle = service_->generate_stream(request);
  std::vector<ds::StreamedPattern> slots;
  while (auto delivery = handle.next()) {
    slots.push_back(std::move(*delivery));
  }
  const auto stats = handle.finish();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  ASSERT_EQ(slots.size(), 5U);
  EXPECT_TRUE(same_patterns(reference->patterns,
                            collect_in_index_order(std::move(slots))));
}

TEST_F(ServiceStreamTest, PullHandleSurvivesMoveAssignment) {
  // Regression: move-assigning over an active handle must join the old
  // stream's driver thread (not std::terminate on a joinable thread).
  auto handle = service_->generate_stream(
      ds::GenerateRequest{.model = "a", .count = 3, .seed = 11});
  handle = service_->generate_stream(
      ds::GenerateRequest{.model = "b", .count = 2, .seed = 12});
  std::int64_t deliveries = 0;
  while (handle.next()) {
    ++deliveries;
  }
  EXPECT_EQ(deliveries, 2);
  EXPECT_TRUE(handle.finish().ok());
}

TEST_F(ServiceStreamTest, StreamInvariantToShardCountAndChunking) {
  const ds::GenerateRequest request{.model = "a", .count = 5, .seed = 21};
  const auto reference = service_->generate(request);
  ASSERT_TRUE(reference.ok());

  // A tight admission budget (2 fused slots globally) forces the request
  // into several rounds while a second model's shard competes for budget;
  // neither may perturb content or indices.
  auto tight = make_service(/*max_fused_batch=*/2);
  const ds::GenerateRequest busy{.model = "b", .count = 4, .seed = 1};
  std::vector<ds::StreamedPattern> slots;
  dc::Result<ds::GenerateResult> other(dc::Status::Unavailable("not served"));
  std::thread competitor([&] { other = tight->generate(busy); });
  const auto stats = tight->generate_stream(
      request,
      [&slots](const ds::StreamedPattern& p) { slots.push_back(p); });
  competitor.join();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_TRUE(same_patterns(reference->patterns,
                            collect_in_index_order(std::move(slots))));

  // The competitor must byte-match its own single-model reference too.
  const auto busy_reference = service_->generate(busy);
  ASSERT_TRUE(busy_reference.ok());
  ASSERT_TRUE(other.ok()) << other.status().to_string();
  EXPECT_TRUE(same_patterns(busy_reference->patterns, other->patterns));
}

TEST_F(ServiceStreamTest, AbandonedHandleCancelsJobAndReleasesAdmission) {
  // Regression: destroying a StreamHandle mid-stream (deliveries pending)
  // must cancel the sampling job and release its admission window slot —
  // before PR 4 the destructor silently blocked until the full request
  // completed, burning rounds for a consumer that was gone.
  ds::ServiceConfig config;
  config.legalize_workers = 2;
  config.max_fused_batch = 1;  // count=64 => ~64 rounds: plenty to abandon.
  config.flow.max_queue_depth = 1;  // A leaked slot would block the retry.
  config.flow.shed_queue_depth = 1;
  config.flow.shed_fill_ratio = 0.0;
  config.flow.stream_buffer_limit = 2;
  ds::PatternService service(config);
  ASSERT_TRUE(service.models()
                  .register_model("a", mini_model_config(),
                                  model_a_.registry(), {})
                  .ok());

  const ds::GenerateRequest request{.model = "a", .count = 64, .seed = 99};
  {
    auto handle = service.generate_stream(request);
    ASSERT_TRUE(handle.next().has_value());  // The request really started.
  }  // Abandon: cancels the job, unblocks paused producers, joins.

  const auto counters = service.counters();
  EXPECT_EQ(counters.streams_abandoned, 1);
  // The destructor joins the driver, so by now the request has fully
  // unwound: the window slot is back and nothing is queued or sampling.
  EXPECT_EQ(counters.admission_pending, 0);
  EXPECT_EQ(counters.queue_depth, 0);
  // The cancelled request answered UNAVAILABLE internally (recorded even
  // though no caller was left to read it).
  EXPECT_GE(counters.rejects(dc::StatusCode::kUnavailable), 1);
  EXPECT_EQ(counters.requests_completed, 0);

  // With max_queue_depth=1 a leaked admission slot would shed this
  // follow-up on the abandoned service; a clean release admits it.
  const auto after = service.generate(
      ds::GenerateRequest{.model = "a", .count = 2, .seed = 100});
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  // And the abandonment left no trace in the bytes: the fixture's
  // untouched service produces the identical patterns for that request.
  const auto reference = service_->generate(
      ds::GenerateRequest{.model = "a", .count = 2, .seed = 100});
  ASSERT_TRUE(reference.ok()) << reference.status().to_string();
  EXPECT_TRUE(same_patterns(reference->patterns, after->patterns));
}

TEST_F(ServiceStreamTest, StreamErrorsAreTypedAndDeliverNothing) {
  ds::GenerateRequest request{.model = "a", .count = 0, .seed = 1};
  std::int64_t deliveries = 0;
  const auto stats = service_->generate_stream(
      request, [&deliveries](const ds::StreamedPattern&) { ++deliveries; });
  EXPECT_EQ(stats.status().code(), dc::StatusCode::kInvalidArgument);
  EXPECT_EQ(deliveries, 0);

  request.model = "ghost";
  request.count = 1;
  auto handle = service_->generate_stream(request);
  EXPECT_FALSE(handle.next().has_value());
  EXPECT_EQ(handle.finish().status().code(), dc::StatusCode::kNotFound);
}

TEST_F(ServiceStreamTest, ThrowingCallbackFailsRequestTyped) {
  // A consumer that throws must surface as a typed INTERNAL (and stop
  // further deliveries), never unwind into the worker pool.
  const ds::GenerateRequest request{.model = "a", .count = 3, .seed = 8};
  std::int64_t deliveries = 0;
  const auto stats = service_->generate_stream(
      request, [&deliveries](const ds::StreamedPattern&) {
        ++deliveries;
        throw std::runtime_error("consumer failed");
      });
  EXPECT_EQ(stats.status().code(), dc::StatusCode::kInternal);
  EXPECT_EQ(deliveries, 1);
  // The service stays healthy for the next request.
  EXPECT_TRUE(service_->generate(request).ok());
}

// -------------------------------------------------------------- sharding

TEST_F(ServiceStreamTest, ShardsSpawnLazilyAndTearDownOnUnregister) {
  EXPECT_EQ(service_->counters().shards_active, 0);

  const ds::SampleTopologiesRequest request{.model = "a", .count = 1,
                                            .seed = 2};
  ASSERT_TRUE(service_->sample_topologies(request).ok());
  EXPECT_EQ(service_->counters().shards_active, 1);

  const ds::SampleTopologiesRequest other{.model = "b", .count = 1,
                                          .seed = 2};
  ASSERT_TRUE(service_->sample_topologies(other).ok());
  EXPECT_EQ(service_->counters().shards_active, 2);
  EXPECT_EQ(service_->counters().shards_spawned, 2);

  ASSERT_TRUE(service_->models().unregister("a").ok());
  EXPECT_EQ(service_->counters().shards_active, 1);
  ASSERT_TRUE(service_->models().unregister("b").ok());
  EXPECT_EQ(service_->counters().shards_active, 0);
  EXPECT_EQ(service_->counters().shards_spawned, 2);
}

TEST_F(ServiceStreamTest, OversizedJobDoesNotStarveSecondModel) {
  // Sequential single-model references first.
  const ds::SampleTopologiesRequest big{.model = "a", .count = 7,
                                        .seed = 300};
  const ds::SampleTopologiesRequest small{.model = "b", .count = 3,
                                          .seed = 301};
  const auto big_reference = service_->sample_topologies(big);
  const auto small_reference = service_->sample_topologies(small);
  ASSERT_TRUE(big_reference.ok());
  ASSERT_TRUE(small_reference.ok());

  // A 2-slot admission budget makes the oversized job span >= 4 rounds on
  // model a's shard. Model b's requests run on their own shard meanwhile —
  // the requeue/chunking must be invisible in both models' bytes.
  auto tight = make_service(/*max_fused_batch=*/2);
  dc::Result<ds::SampleTopologiesResult> big_result(
      dc::Status::Unavailable("not served"));
  std::vector<dc::Result<ds::SampleTopologiesResult>> small_results(
      3, dc::Status::Unavailable("not served"));
  std::thread big_client([&] { big_result = tight->sample_topologies(big); });
  std::vector<std::thread> small_clients;
  for (int c = 0; c < 3; ++c) {
    small_clients.emplace_back([&, c] {
      small_results[static_cast<std::size_t>(c)] =
          tight->sample_topologies(small);
    });
  }
  big_client.join();
  for (auto& t : small_clients) {
    t.join();
  }

  ASSERT_TRUE(big_result.ok()) << big_result.status().to_string();
  ASSERT_EQ(big_result->topologies.size(), 7U);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(big_result->topologies[i] == big_reference->topologies[i])
        << "oversized job topology " << i << " diverged under sharding";
  }
  for (const auto& result : small_results) {
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    ASSERT_EQ(result->topologies.size(), 3U);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(result->topologies[i] == small_reference->topologies[i])
          << "second model's topology " << i << " diverged under load";
    }
  }

  const auto counters = tight->counters();
  EXPECT_EQ(counters.shards_active, 2);
  // 7 slots at <= 2 per round is at least 4 rounds for model a alone.
  EXPECT_GE(counters.rounds_executed, 4);
  EXPECT_GT(counters.denoise_steps, 0);
  EXPECT_EQ(counters.queue_depth, 0);
  EXPECT_LE(counters.max_round_slots, 2);
  EXPECT_GT(counters.fused_fill_ratio, 0.0);
  EXPECT_LE(counters.fused_fill_ratio, 1.0);
}

// -------------------------------------------------------------- counters

TEST_F(ServiceStreamTest, CountersObserveRequestsAndRejects) {
  auto counters = service_->counters();
  EXPECT_EQ(counters.requests_accepted, 0);
  EXPECT_EQ(counters.total_rejected(), 0);

  // One rejected request per interesting StatusCode.
  const ds::GenerateRequest invalid{.model = "a", .count = 0};
  EXPECT_EQ(service_->generate(invalid).status().code(),
            dc::StatusCode::kInvalidArgument);
  const ds::GenerateRequest missing{.model = "ghost", .count = 1};
  EXPECT_EQ(service_->generate(missing).status().code(),
            dc::StatusCode::kNotFound);
  counters = service_->counters();
  EXPECT_EQ(counters.rejects(dc::StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(counters.rejects(dc::StatusCode::kNotFound), 1);
  EXPECT_EQ(counters.total_rejected(), 2);
  EXPECT_EQ(counters.requests_accepted, 0);

  // One streamed request: accepted, completed, delivered, with non-zero
  // round and fill-ratio observations.
  const ds::GenerateRequest good{.model = "a", .count = 3, .seed = 5};
  std::int64_t deliveries = 0;
  ASSERT_TRUE(service_
                  ->generate_stream(good, [&deliveries](
                                              const ds::StreamedPattern&) {
                    ++deliveries;
                  })
                  .ok());
  counters = service_->counters();
  EXPECT_EQ(deliveries, 3);
  EXPECT_EQ(counters.requests_accepted, 1);
  EXPECT_EQ(counters.requests_completed, 1);
  EXPECT_EQ(counters.stream_deliveries, 3);
  EXPECT_GT(counters.rounds_executed, 0);
  EXPECT_GT(counters.denoise_steps, 0);
  EXPECT_GT(counters.fused_slots_total, 0);
  EXPECT_GT(counters.fused_fill_ratio, 0.0);
  EXPECT_LE(counters.fused_fill_ratio, 1.0);
  EXPECT_EQ(counters.queue_depth, 0);
  EXPECT_FALSE(counters.to_string().empty());
}
