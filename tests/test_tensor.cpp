#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace dt = diffpattern::tensor;
using dt::Tensor;

TEST(Tensor, ConstructsWithFill) {
  Tensor t({2, 3}, 1.5F);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(t[i], 1.5F);
  }
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, AtIsRowMajor) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0F);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 2.0F);
  EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0F);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0F);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, NegativeAxisDim) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_FLOAT_EQ(r.at({0, 1}), 1.0F);
  EXPECT_FLOAT_EQ(r.at({2, 1}), 5.0F);
}

TEST(Tensor, ReshapeInfersAxis) {
  Tensor t({4, 6});
  EXPECT_EQ(t.reshaped({2, -1}).dim(1), 12);
  EXPECT_EQ(t.reshaped({-1}).dim(0), 24);
  EXPECT_THROW(t.reshaped({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({5, -1}), std::invalid_argument);
}

TEST(Tensor, ScalarHelper) {
  Tensor s = Tensor::scalar(3.25F);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s[0], 3.25F);
}

TEST(TensorOps, MatmulKnownValues) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {5, 6, 7, 8});
  Tensor c = dt::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 19.0F);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 22.0F);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 43.0F);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 50.0F);
}

TEST(TensorOps, MatmulShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(dt::matmul(a, b), std::invalid_argument);
}

TEST(TensorOps, TransposeVariantsAgreeWithExplicitTranspose) {
  diffpattern::common::Rng rng(5);
  Tensor a({3, 4});
  Tensor b({3, 5});
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = static_cast<float>(rng.normal());
  // a^T b via matmul_transpose_a vs manual transpose.
  Tensor at({4, 3});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      at.at({j, i}) = a.at({i, j});
    }
  }
  Tensor ref = dt::matmul(at, b);
  Tensor got = dt::matmul_transpose_a(a, b);
  ASSERT_TRUE(ref.same_shape(got));
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(ref[i], got[i], 1e-5F);
  }
  // a b^T via matmul_transpose_b.
  Tensor c({6, 4});
  for (std::int64_t i = 0; i < c.numel(); ++i) c[i] = static_cast<float>(rng.normal());
  Tensor ct({4, 6});
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      ct.at({j, i}) = c.at({i, j});
    }
  }
  Tensor ref2 = dt::matmul(a, ct.reshaped({4, 6}));
  Tensor got2 = dt::matmul_transpose_b(a, c);
  ASSERT_TRUE(ref2.same_shape(got2));
  for (std::int64_t i = 0; i < ref2.numel(); ++i) {
    EXPECT_NEAR(ref2[i], got2[i], 1e-5F);
  }
}

TEST(TensorOps, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: columns equal the flattened image.
  Tensor img = Tensor::from_data({1, 2, 2}, {1, 2, 3, 4});
  dt::Conv2dGeometry geom;
  geom.in_channels = 1;
  geom.in_h = 2;
  geom.in_w = 2;
  geom.kernel_h = 1;
  geom.kernel_w = 1;
  Tensor cols = dt::im2col(img, geom);
  ASSERT_EQ(cols.dim(0), 1);
  ASSERT_EQ(cols.dim(1), 4);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(cols[i], img[i]);
  }
}

TEST(TensorOps, Im2ColPaddingZeros) {
  Tensor img = Tensor::from_data({1, 1, 1}, {7});
  dt::Conv2dGeometry geom;
  geom.in_channels = 1;
  geom.in_h = 1;
  geom.in_w = 1;
  geom.kernel_h = 3;
  geom.kernel_w = 3;
  geom.padding = 1;
  Tensor cols = dt::im2col(img, geom);
  ASSERT_EQ(cols.dim(0), 9);
  ASSERT_EQ(cols.dim(1), 1);
  // Only the center tap sees the pixel.
  for (std::int64_t r = 0; r < 9; ++r) {
    EXPECT_FLOAT_EQ(cols[r], r == 4 ? 7.0F : 0.0F);
  }
}

TEST(TensorOps, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // used by the convolution backward pass.
  diffpattern::common::Rng rng(17);
  dt::Conv2dGeometry geom;
  geom.in_channels = 2;
  geom.in_h = 5;
  geom.in_w = 4;
  geom.kernel_h = 3;
  geom.kernel_w = 3;
  geom.stride = 2;
  geom.padding = 1;
  Tensor x({2, 5, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.normal());
  Tensor y({geom.patch_size(), geom.out_h() * geom.out_w()});
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = static_cast<float>(rng.normal());
  Tensor cx = dt::im2col(x, geom);
  Tensor iy = dt::col2im(y, geom);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cx.numel(); ++i) lhs += static_cast<double>(cx[i]) * y[i];
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * iy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Tensor logits = Tensor::from_data({2, 3}, {1, 2, 3, -1, 0, 1000});
  Tensor p = dt::softmax_rows(logits);
  for (std::int64_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) {
      s += p.at({r, c});
      EXPECT_GE(p.at({r, c}), 0.0F);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(p.at({1, 2}), 1.0F, 1e-5F);
}

TEST(TensorOps, ElementwiseHelpers) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {4, 5, 6});
  Tensor s = dt::add(a, b);
  Tensor m = dt::mul(a, b);
  EXPECT_FLOAT_EQ(s[2], 9.0F);
  EXPECT_FLOAT_EQ(m[1], 10.0F);
  EXPECT_FLOAT_EQ(dt::scale(a, 2.0F)[0], 2.0F);
  EXPECT_DOUBLE_EQ(dt::sum(a), 6.0);
  EXPECT_FLOAT_EQ(dt::max_value(b), 6.0F);
}
