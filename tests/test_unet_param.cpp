// Parameterized U-Net architecture sweep: every configuration the library
// claims to support must build, produce the right output shape, and route
// gradients into every parameter.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "nn/ops.h"
#include "unet/unet.h"

namespace du = diffpattern::unet;
namespace nn = diffpattern::nn;
namespace dc = diffpattern::common;
using diffpattern::tensor::Tensor;

namespace {

struct UNetCase {
  std::vector<std::int64_t> channel_mult;
  std::int64_t num_res_blocks;
  std::set<std::int64_t> attention_levels;
  std::int64_t in_channels;
  std::int64_t spatial;
};

Tensor random_binary(dc::Rng& rng, diffpattern::tensor::Shape shape) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = rng.bernoulli(0.5) ? 1.0F : 0.0F;
  }
  return t;
}

}  // namespace

class UNetArchSweep : public ::testing::TestWithParam<UNetCase> {};

TEST_P(UNetArchSweep, ForwardShapeAndFullGradientCoverage) {
  const auto& param = GetParam();
  du::UNetConfig cfg;
  cfg.in_channels = param.in_channels;
  cfg.out_channels = 2 * param.in_channels;
  cfg.model_channels = 8;
  cfg.channel_mult = param.channel_mult;
  cfg.num_res_blocks = param.num_res_blocks;
  cfg.attention_levels = param.attention_levels;
  cfg.dropout = 0.0F;
  du::UNet model(cfg, 1);
  dc::Rng rng(2);
  Tensor x = random_binary(rng, {2, param.in_channels, param.spatial,
                                 param.spatial});
  auto y = model.forward(x, {1, 5}, /*training=*/true, rng);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 2 * param.in_channels);
  EXPECT_EQ(y.dim(2), param.spatial);
  EXPECT_EQ(y.dim(3), param.spatial);

  for (auto p : model.registry().params()) {
    p.zero_grad();
  }
  nn::sum_all(nn::mul(y, y)).backward();
  std::size_t touched = 0;
  for (const auto& p : model.registry().params()) {
    const auto& g = p.grad();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      if (g[i] != 0.0F) {
        ++touched;
        break;
      }
    }
  }
  EXPECT_EQ(touched, model.registry().size())
      << "some parameters receive no gradient";
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, UNetArchSweep,
    ::testing::Values(
        UNetCase{{1}, 1, {}, 1, 8},            // Single level, no attention.
        UNetCase{{1, 2}, 1, {}, 4, 8},         // Two levels.
        UNetCase{{1, 2}, 2, {1}, 4, 8},        // Paper-style attention @L1.
        UNetCase{{1, 2, 2}, 1, {1}, 4, 8},     // Three levels.
        UNetCase{{1, 2, 2}, 1, {0, 1, 2}, 1, 8},  // Attention everywhere.
        UNetCase{{2, 4}, 2, {}, 2, 4}));       // Wide multipliers, tiny map.

TEST(PipelineEma, TrainsAndSamplesWithEmaWeights) {
  diffpattern::core::PipelineConfig cfg;
  cfg.dataset_tiles = 12;
  cfg.grid_side = 16;
  cfg.channels = 4;
  cfg.schedule.steps = 6;
  cfg.model_channels = 8;
  cfg.channel_mult = {1, 2};
  cfg.num_res_blocks = 1;
  cfg.attention_levels = {};
  cfg.dropout = 0.0F;
  cfg.train_iterations = 8;
  cfg.batch_size = 4;
  cfg.seed = 3;
  cfg.use_ema = true;
  cfg.ema_decay = 0.9;
  diffpattern::core::Pipeline pipeline(cfg);
  pipeline.train();
  const auto topologies = pipeline.sample_topologies(2);
  EXPECT_EQ(topologies.size(), 2U);
  // Sampling must leave the raw training weights restored: a second train()
  // call would otherwise throw inside Ema::update.
  EXPECT_NO_THROW(pipeline.train());
}
