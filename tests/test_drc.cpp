#include <gtest/gtest.h>

#include "drc/checker.h"
#include "drc/rules.h"
#include "layout/squish.h"

namespace dd = diffpattern::drc;
namespace dl = diffpattern::layout;
namespace dg = diffpattern::geometry;
using dg::Rect;
using dl::Layout;

namespace {

dd::DesignRules simple_rules() {
  dd::DesignRules r;
  r.space_min = 20;
  r.width_min = 20;
  r.area_min = 400;
  r.area_max = 4000;
  return r;
}

Layout tile(std::vector<Rect> rects) {
  Layout l;
  l.width = 200;
  l.height = 200;
  l.rects = std::move(rects);
  return l;
}

}  // namespace

TEST(Drc, CleanLayoutPasses) {
  // One 40x40 square: width 40 >= 20, area 1600 in [400, 4000].
  auto report = dd::check_layout(tile({Rect{50, 50, 90, 90}}), simple_rules());
  EXPECT_TRUE(report.clean()) << report.violations.front().description();
}

TEST(Drc, NarrowShapeViolatesWidth) {
  // 10 nm tall bar: vertical runs measure 10 < 20.
  auto report =
      dd::check_layout(tile({Rect{50, 50, 150, 60}}), simple_rules());
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.count(dd::ViolationKind::width), 0);
  EXPECT_EQ(report.count(dd::ViolationKind::space), 0);
}

TEST(Drc, CloseShapesViolateSpace) {
  // Two 40x40 squares 10 nm apart horizontally.
  auto report = dd::check_layout(
      tile({Rect{20, 50, 60, 90}, Rect{70, 50, 110, 90}}), simple_rules());
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.count(dd::ViolationKind::space), 0);
  EXPECT_EQ(report.count(dd::ViolationKind::width), 0);
}

TEST(Drc, NotchSpacingIsChecked) {
  // U-shape whose notch is 10 nm wide: the shape faces itself.
  auto report = dd::check_layout(
      tile({Rect{20, 20, 100, 40}, Rect{20, 40, 40, 100},
            Rect{50, 40, 100, 100}}),
      simple_rules());
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.count(dd::ViolationKind::space), 0);
}

TEST(Drc, EdgeGapsAreNotSpaceViolations) {
  // A shape near the tile border: the border gap is unconstrained.
  auto report = dd::check_layout(tile({Rect{5, 5, 45, 45}}), simple_rules());
  EXPECT_TRUE(report.clean());
}

TEST(Drc, TinyPolygonViolatesAreaMin) {
  // 20x19 polygon: area 380 < 400 but width_y 19 < 20 as well; use 20x20
  // shifted to area 400 exactly => clean, then 399 => dirty.
  auto clean = dd::check_layout(tile({Rect{50, 50, 70, 70}}), simple_rules());
  EXPECT_TRUE(clean.clean());
  auto rules = simple_rules();
  rules.area_min = 401;
  auto dirty = dd::check_layout(tile({Rect{50, 50, 70, 70}}), rules);
  EXPECT_FALSE(dirty.clean());
  EXPECT_EQ(dirty.count(dd::ViolationKind::area_min), 1);
}

TEST(Drc, HugePolygonViolatesAreaMax) {
  auto report =
      dd::check_layout(tile({Rect{10, 10, 110, 110}}), simple_rules());
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.count(dd::ViolationKind::area_max), 1);
  EXPECT_EQ(report.violations.front().measured, 10000);
}

TEST(Drc, AreaMaxUnboundedWhenZero) {
  auto rules = simple_rules();
  rules.area_max = 0;
  auto report = dd::check_layout(tile({Rect{10, 10, 110, 110}}), rules);
  EXPECT_TRUE(report.clean());
}

TEST(Drc, DiagonalContactFlagged) {
  // Two squares meeting exactly at a corner.
  auto report = dd::check_layout(
      tile({Rect{20, 20, 60, 60}, Rect{60, 60, 100, 100}}), simple_rules());
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.count(dd::ViolationKind::corner_contact), 0);
}

TEST(Drc, EuclideanCornerSpaceOnlyWithFlag) {
  // Two squares separated 10 nm in x and 10 nm in y: Euclidean gap ~14.1 nm
  // < 20 nm. Axis runs never see this gap (no shared rows/columns with both
  // flanks), so the base rules pass but the extension flags it.
  const auto rects = {Rect{20, 20, 60, 60}, Rect{70, 70, 110, 110}};
  auto base = dd::check_layout(tile(rects), simple_rules());
  EXPECT_TRUE(base.clean());

  auto rules = simple_rules();
  rules.euclidean_corner_space = true;
  auto extended = dd::check_layout(tile(rects), rules);
  EXPECT_FALSE(extended.clean());
  EXPECT_EQ(extended.count(dd::ViolationKind::corner_space), 1);
  EXPECT_EQ(extended.violations.front().measured, 14);  // floor(14.14)
}

TEST(Drc, EuclideanCornerSpacePassesWhenFarApart) {
  auto rules = simple_rules();
  rules.euclidean_corner_space = true;
  auto report = dd::check_layout(
      tile({Rect{20, 20, 60, 60}, Rect{80, 80, 120, 120}}), rules);
  EXPECT_TRUE(report.clean());  // Gap = sqrt(20^2+20^2) = 28.3 >= 20.
}

TEST(Drc, MultipleViolationKindsReportedTogether) {
  auto report = dd::check_layout(
      tile({Rect{20, 20, 30, 190},    // 10 nm wide wire -> width
            Rect{35, 20, 45, 190}}),  // 5 nm gap -> space (and width)
      simple_rules());
  EXPECT_GT(report.count(dd::ViolationKind::width), 0);
  EXPECT_GT(report.count(dd::ViolationKind::space), 0);
}

TEST(Drc, ViolationDescriptionIsInformative) {
  auto report =
      dd::check_layout(tile({Rect{50, 50, 150, 60}}), simple_rules());
  ASSERT_FALSE(report.clean());
  const std::string desc = report.violations.front().description();
  EXPECT_NE(desc.find("width"), std::string::npos);
  EXPECT_NE(desc.find("10"), std::string::npos);
  EXPECT_NE(desc.find("20"), std::string::npos);
}

TEST(Drc, StandardRulePresetsDiffer) {
  const auto standard = dd::standard_rules();
  const auto spacey = dd::larger_space_rules();
  const auto small_area = dd::smaller_area_rules();
  EXPECT_GT(spacey.space_min, standard.space_min);
  EXPECT_LT(small_area.area_max, standard.area_max);
  EXPECT_EQ(spacey.width_min, standard.width_min);
}

TEST(Drc, CheckPatternAgreesWithCheckLayout) {
  Layout l = tile({Rect{20, 50, 60, 90}, Rect{70, 50, 110, 90}});
  auto via_layout = dd::check_layout(l, simple_rules());
  auto via_pattern =
      dd::check_pattern(dl::extract_squish(l), simple_rules());
  EXPECT_EQ(via_layout.violations.size(), via_pattern.violations.size());
}
