// SlotBudget tests: weighted fair division of the fused sampling budget.
// The properties under test — work conservation (a sole tenant takes the
// whole capacity), weighted caps under contention (a hot model cannot crowd
// a cold one below its share), the at-least-one-slot floor, and clean
// shutdown (every waiter wakes with a zero grant).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "service/slot_budget.h"

namespace ds = diffpattern::service;

namespace {

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(SlotBudget, SoleTenantTakesFullCapacity) {
  ds::SlotBudget budget(8);
  budget.set_weight("hot", 3.0);
  // Work conservation: no other shard holds or waits, so the share cap
  // stays disengaged regardless of weights.
  EXPECT_EQ(budget.acquire("hot", 16), 8);
  EXPECT_EQ(budget.in_use("hot"), 8);
  budget.release("hot", 8);
  EXPECT_EQ(budget.in_use("hot"), 0);
}

TEST(SlotBudget, WantedIsClampedAndPartialGrantsAdd) {
  ds::SlotBudget budget(4);
  EXPECT_EQ(budget.acquire("m", 0), 1);   // wanted < 1 clamps to 1.
  EXPECT_EQ(budget.acquire("m", -5), 1);
  EXPECT_EQ(budget.acquire("m", 99), 2);  // The remaining free slots.
  EXPECT_EQ(budget.in_use("m"), 4);
  budget.release("m", 4);
}

TEST(SlotBudget, WeightedShareCapsHotShardUnderContention) {
  // Capacity 8, weights hot:cold = 3:1 -> shares 6:2 under contention.
  ds::SlotBudget budget(8);
  budget.set_weight("hot", 3.0);
  budget.set_weight("cold", 1.0);

  // Uncontended, hot grabs everything.
  ASSERT_EQ(budget.acquire("hot", 8), 8);

  // Cold arrives and must block (no free slots).
  std::int64_t cold_granted = -1;
  std::thread cold([&] { cold_granted = budget.acquire("cold", 2); });
  ASSERT_TRUE(wait_for([&] { return budget.waiting() == 1; }));

  // Hot returns its slots. However the wakeup interleaves, the outcome is
  // fixed: cold's share admits its full ask of 2, and hot — now contended —
  // is capped at floor(8 * 3/4) = 6.
  budget.release("hot", 8);
  ASSERT_TRUE(wait_for([&] { return cold_granted >= 0; }));
  cold.join();
  EXPECT_EQ(cold_granted, 2);

  const std::int64_t hot_again = budget.acquire("hot", 8);
  EXPECT_EQ(hot_again, 6);
  EXPECT_EQ(budget.in_use("hot"), 6);
  EXPECT_EQ(budget.in_use("cold"), 2);

  // And a further hot ask cannot exceed the share while cold holds slots:
  // it would block, so verify via the observable invariant instead — the
  // budget is exactly full at the weighted split.
  budget.release("hot", 6);
  budget.release("cold", 2);
}

TEST(SlotBudget, ShareFloorKeepsTinyWeightsLive) {
  // A 0.01 weight against a 100 weight computes a fractional share that
  // floors to 0 — the >= 1 floor must still admit one slot, so no weight
  // assignment can starve a shard out of progress entirely.
  ds::SlotBudget budget(4);
  budget.set_weight("giant", 100.0);
  budget.set_weight("tiny", 0.01);
  ASSERT_EQ(budget.acquire("giant", 3), 3);
  EXPECT_EQ(budget.acquire("tiny", 4), 1);
  budget.release("giant", 3);
  budget.release("tiny", 1);
}

TEST(SlotBudget, NonPositiveWeightFallsBackToOne) {
  ds::SlotBudget budget(8);
  budget.set_weight("a", -2.0);  // Treated as 1.0.
  budget.set_weight("b", 1.0);
  ASSERT_EQ(budget.acquire("b", 4), 4);
  // Equal effective weights -> a's contended share is 4, not the single
  // floor slot a literally-negative weight would compute.
  EXPECT_EQ(budget.acquire("a", 8), 4);
  budget.release("a", 4);
  budget.release("b", 4);
}

TEST(SlotBudget, ContentionEndsWhenPeerLeaves) {
  // Once the cold shard fully releases and stops waiting, the hot shard is
  // a sole tenant again and may take the whole capacity.
  ds::SlotBudget budget(8);
  budget.set_weight("hot", 3.0);
  ASSERT_EQ(budget.acquire("cold", 2), 2);
  ASSERT_EQ(budget.acquire("hot", 8), 6);  // Contended share.
  budget.release("hot", 6);
  budget.release("cold", 2);
  EXPECT_EQ(budget.acquire("hot", 8), 8);  // Uncontended again.
  budget.release("hot", 8);
}

TEST(SlotBudget, ShutdownWakesWaitersWithZeroGrant) {
  ds::SlotBudget budget(2);
  ASSERT_EQ(budget.acquire("m", 2), 2);
  std::int64_t blocked_grant = -1;
  std::thread waiter([&] { blocked_grant = budget.acquire("m", 1); });
  ASSERT_TRUE(wait_for([&] { return budget.waiting() == 1; }));
  budget.shutdown();
  waiter.join();
  EXPECT_EQ(blocked_grant, 0);
  // Subsequent acquires return 0 immediately.
  EXPECT_EQ(budget.acquire("other", 4), 0);
}

TEST(SlotBudget, CapacityClampsToAtLeastOne) {
  ds::SlotBudget budget(0);
  EXPECT_EQ(budget.capacity(), 1);
  EXPECT_EQ(budget.acquire("m", 5), 1);
  budget.release("m", 1);
}

}  // namespace
