// diffpattern_cli — command-line driver for the DiffPattern pipeline.
//
//   diffpattern_cli train    --out model.ckpt [--iters N] [--tiles N] [--seed S]
//   diffpattern_cli generate --model model.ckpt --out library.bin
//                            [--count N] [--geometries N] [--rules normal|space|area]
//                            [--stream] [--stats]
//   diffpattern_cli evaluate --library library.bin [--rules normal|space|area]
//   diffpattern_cli render   --library library.bin --out-dir DIR [--limit N]
//   diffpattern_cli serve-demo [--workers N] [--requests N] [--count N]
//                              [--seed S] [--stats-json]
//                              [--connect ADDR[,ADDR...] | --directory FILE]
//                              [--pool N] [--auth-key KEY]
//   diffpattern_cli serve    --listen tcp:HOST:PORT|unix:/path [--name S]
//                            [--io-timeout-ms N] [--max-connections N]
//                            [--auth-key KEY] [--announce ADDR] [--stats-json]
//
// All subcommands share one scaled pipeline configuration; `train` writes a
// checkpoint that `generate` reloads, and `generate` emits a pattern
// library that `evaluate`/`render` consume. Every subcommand accepts
// `--threads N` to size the tensor compute pool (default: the
// DIFFPATTERN_THREADS env var, else hardware concurrency). `generate
// --stream` prints every pattern (index + legality) the moment it clears
// legalization; `--stats` dumps the service counters after the run and
// `--stats-json` emits the same snapshot as machine-readable JSON.
// `serve-demo` spins up an in-process multi-worker serving plane (wire
// protocol + replica router) and proves cross-replica byte identity. Exit
// code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/compute_pool.h"
#include "core/pipeline.h"
#include "dist/discovery.h"
#include "dist/router.h"
#include "dist/socket_transport.h"
#include "dist/transport.h"
#include "dist/worker_node.h"
#include "tensor/arena.h"
#include "tensor/simd.h"
#include "drc/checker.h"
#include "io/gds.h"
#include "io/io.h"
#include "nn/checkpoint.h"
#include "unet/unet.h"

namespace dp = diffpattern;

namespace {

/// Malformed command line (vs runtime failure): caught in main, exits 1.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) {
      return fallback;
    }
    const std::string& text = it->second;
    std::int64_t value = 0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      throw UsageError("invalid integer for --" + key + ": '" + text + "'");
    }
    return value;
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

int usage() {
  std::cout <<
      "diffpattern_cli — DiffPattern layout pattern generation\n\n"
      "  train    --out model.ckpt [--iters N] [--tiles N] [--seed S]\n"
      "  generate --model model.ckpt --out library.bin [--count N]\n"
      "           [--geometries N] [--rules normal|space|area] [--seed S]\n"
      "           [--stream] [--stats] [--priority N] [--deadline-ms N]\n"
      "           [--max-queue-depth N] [--steps N | --stride N]\n"
      "  evaluate --library library.bin [--rules normal|space|area]\n"
      "  render   --library library.bin --out-dir DIR [--limit N]\n"
      "  export-gds --library library.bin --out patterns.gds [--layer N]\n"
      "  serve-demo [--workers N] [--requests N] [--count N] [--seed S]\n"
      "             [--stats-json] [--connect ADDR[,ADDR...] | --directory F]\n"
      "             [--call-timeout-ms N] [--connect-timeout-ms N]\n"
      "             [--pool N] [--auth-key KEY]\n"
      "  serve    --listen tcp:HOST:PORT|unix:/path [--name S]\n"
      "           [--io-timeout-ms N] [--max-connections N] [--auth-key KEY]\n"
      "           [--announce ADDR] [--stats-json]\n\n"
      "Every subcommand accepts --threads N to size the compute pool used\n"
      "by the numeric kernels (default: DIFFPATTERN_THREADS env, else all\n"
      "hardware threads) and --kernel-backend scalar|avx2|neon|auto to pin\n"
      "the SIMD dispatch (default: DIFFPATTERN_KERNEL_BACKEND env, else the\n"
      "best backend this CPU supports; unsupported ISAs are a usage error).\n"
      "--arena on|off toggles the inference memory plan (activation arena +\n"
      "time-embedding cache; default: DIFFPATTERN_ARENA env, else on).\n"
      "Results are identical for every thread count, backend, and arena\n"
      "setting.\n"
      "generate --stream prints each pattern (index + legality) as it is\n"
      "delivered; --stats dumps the service counters after the run and\n"
      "--stats-json emits the same snapshot as one JSON object.\n"
      "serve-demo runs an in-process multi-worker serving plane (replica\n"
      "router + wire protocol over loopback), checks that every replica\n"
      "answers the reference request with byte-identical patterns, and with\n"
      "--stats-json dumps router/worker counters as JSON. With --connect it\n"
      "routes over real sockets instead: each ADDR is a running `serve`\n"
      "worker, and byte identity is checked against a local golden model.\n"
      "--directory F discovers the workers from file F ('MODEL ADDRESS' per\n"
      "line) through the router's runtime-discovery seam instead; --pool N\n"
      "sizes each replica's connection pool and --auth-key KEY enables\n"
      "pre-shared-key frame authentication (must match the servers').\n"
      "Addresses accept tcp:HOST:PORT (hostname, IPv4, or [v6]) and\n"
      "unix:/path.\n"
      "serve runs one worker as a listening process (demo model, fixed\n"
      "weights); SIGINT/SIGTERM stops accepting, drains in-flight requests,\n"
      "then exits 0 (with a final counter dump under --stats-json).\n"
      "serve --max-connections caps concurrent connections (0 = unlimited),\n"
      "--auth-key KEY requires authenticated frames from every peer, and\n"
      "--announce ADDR self-registers the worker with a registry at ADDR.\n"
      "--priority ranks the request against concurrent service traffic,\n"
      "--deadline-ms bounds its latency (DEADLINE_EXCEEDED past it), and\n"
      "--max-queue-depth caps the service's per-model admission window\n"
      "(overload answers UNAVAILABLE/RESOURCE_EXHAUSTED + retry hint).\n"
      "generate --steps N targets N reverse-diffusion steps per topology\n"
      "(--stride N sets the step subsequence directly; mutually exclusive,\n"
      "both bounded by the schedule) — fewer steps trade sample quality\n"
      "for proportionally fewer U-Net evaluations.\n";
  return 1;
}

/// Applies --threads to the process-wide compute pool before any kernel
/// runs. 0 is rejected (a zero-thread pool cannot make progress).
void apply_thread_option(const Args& args) {
  if (!args.has("threads")) {
    return;
  }
  const auto requested = args.get_int("threads", -1);
  const auto status = dp::common::set_global_compute_threads(requested);
  if (!status.ok()) {
    throw UsageError("--threads: " + status.message());
  }
}

/// Applies --kernel-backend to the process-wide SIMD dispatch before any
/// kernel runs. Unknown names and ISAs this host cannot execute are usage
/// errors, mirroring the --threads 0 contract.
void apply_kernel_backend_option(const Args& args) {
  if (!args.has("kernel-backend")) {
    return;
  }
  const auto status =
      dp::tensor::set_kernel_backend_name(args.get("kernel-backend", ""));
  if (!status.ok()) {
    throw UsageError("--kernel-backend: " + status.message());
  }
}

/// Applies --arena to the process-wide inference memory plan (activation
/// arena + time-embedding cache). Only "on" and "off" are accepted; output
/// bytes do not depend on the setting.
void apply_arena_option(const Args& args) {
  if (!args.has("arena")) {
    return;
  }
  const auto mode = args.get("arena", "");
  if (mode == "on") {
    dp::tensor::set_activation_arena_enabled(true);
  } else if (mode == "off") {
    dp::tensor::set_activation_arena_enabled(false);
  } else {
    throw UsageError("--arena: expected \"on\" or \"off\", got \"" + mode +
                     "\"");
  }
}

dp::core::PipelineConfig cli_config(const Args& args) {
  dp::core::PipelineConfig cfg;
  cfg.datagen.quantum = 64;
  cfg.datagen.min_shapes = 4;
  cfg.datagen.max_shapes = 9;
  cfg.datagen.extend_probability = 0.5;
  cfg.dataset_tiles = args.get_int("tiles", 96);
  cfg.grid_side = 16;
  cfg.channels = 4;
  cfg.schedule.steps = 40;
  cfg.model_channels = 16;
  cfg.train_iterations = args.get_int("iters", 900);
  cfg.batch_size = 8;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  if (args.has("max-queue-depth")) {
    const auto depth = args.get_int("max-queue-depth", 0);
    if (depth < 1) {
      throw UsageError("--max-queue-depth must be >= 1, got " +
                       std::to_string(depth));
    }
    // One knob, coherent policy: the soft shed threshold follows the hard
    // cap (the service clamps shed_queue_depth into [1, max_queue_depth]).
    cfg.flow.max_queue_depth = depth;
  }
  return cfg;
}

dp::drc::DesignRules rules_by_name(const std::string& name) {
  if (name == "space") {
    return dp::drc::larger_space_rules();
  }
  if (name == "area") {
    return dp::drc::smaller_area_rules();
  }
  if (name == "normal") {
    return dp::drc::standard_rules();
  }
  throw std::invalid_argument("unknown rule deck: " + name +
                              " (expected normal|space|area)");
}

int cmd_train(const Args& args) {
  if (!args.has("out")) {
    std::cerr << "train: --out is required\n";
    return 1;
  }
  auto cfg = cli_config(args);
  dp::core::Pipeline pipeline(cfg);
  std::cout << "training for " << cfg.train_iterations << " iterations on "
            << cfg.dataset_tiles << " synthetic tiles...\n";
  pipeline.train([](std::int64_t it, const dp::diffusion::LossBreakdown& l) {
    if ((it + 1) % 100 == 0) {
      std::cout << "  iter " << (it + 1) << "  loss " << l.total << "\n";
    }
  });
  pipeline.save_model(args.get("out", ""));
  std::cout << "checkpoint written to " << args.get("out", "") << "\n";
  return 0;
}

int cmd_generate(const Args& args) {
  if (!args.has("model") || !args.has("out")) {
    std::cerr << "generate: --model and --out are required\n";
    return 1;
  }
  // Parse + validate every option (usage errors) before touching the
  // filesystem or paying for pipeline construction.
  auto cfg = cli_config(args);
  dp::service::GenerateRequest request;
  request.model = dp::core::Pipeline::kServiceModel;
  request.count = args.get_int("count", 64);
  request.geometries_per_topology = args.get_int("geometries", 1);
  request.rule_set = args.get("rules", "normal");
  request.seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  const auto priority = args.get_int("priority", 0);
  if (priority < std::numeric_limits<std::int32_t>::min() ||
      priority > std::numeric_limits<std::int32_t>::max()) {
    throw UsageError("--priority out of range: " + std::to_string(priority));
  }
  request.priority = static_cast<std::int32_t>(priority);
  request.deadline_ms = args.get_int("deadline-ms", 0);
  if (request.deadline_ms < 0) {
    throw UsageError("--deadline-ms must be >= 0, got " +
                     std::to_string(request.deadline_ms));
  }
  if (args.has("steps") && args.has("stride")) {
    throw UsageError(
        "--steps and --stride are mutually exclusive (set at most one)");
  }
  if (args.has("steps")) {
    const auto steps = args.get_int("steps", 0);
    if (steps < 1) {
      throw UsageError("--steps must be >= 1, got " + std::to_string(steps));
    }
    if (steps > cfg.schedule.steps) {
      throw UsageError("--steps " + std::to_string(steps) +
                       " exceeds the schedule (" +
                       std::to_string(cfg.schedule.steps) + " steps)");
    }
    request.sampling.steps = steps;
  }
  if (args.has("stride")) {
    const auto stride = args.get_int("stride", 0);
    if (stride < 1) {
      throw UsageError("--stride must be >= 1, got " +
                       std::to_string(stride));
    }
    if (stride > cfg.schedule.steps) {
      throw UsageError("--stride " + std::to_string(stride) +
                       " exceeds the schedule (" +
                       std::to_string(cfg.schedule.steps) + " steps)");
    }
    request.sampling.stride = stride;
  }
  const auto checkpoint = args.get("model", "");
  if (!dp::nn::is_checkpoint_file(checkpoint)) {
    std::cerr << "generate: '" << checkpoint
              << "' is missing or not a checkpoint\n";
    return 1;
  }
  // The pipeline bootstraps the dataset (for the Solving-E delta library)
  // and registers the checkpoint with its PatternService; generation itself
  // is one typed request whose errors come back as Status codes.
  dp::core::Pipeline pipeline(cfg);
  pipeline.load_model(checkpoint);
  std::cout << "generating " << request.count << " topologies (x"
            << request.geometries_per_topology << " geometries, rules '"
            << request.rule_set << "', seed " << request.seed << ")"
            << (args.has("stream") ? ", streaming" : "") << "...\n";
  auto& service = pipeline.service();
  dp::service::GenerateResult result;
  if (args.has("stream")) {
    // Streamed delivery: print each topology the moment it clears (or is
    // rejected by) legalization, collecting everything for the library
    // write below. Delivery order varies with scheduling; the collected
    // set (and the library bytes, written in index order) do not.
    std::vector<dp::service::StreamedPattern> slots;
    auto stats = service.generate_stream(
        request, [&slots](const dp::service::StreamedPattern& pattern) {
          std::cout << "  pattern " << pattern.index << ": "
                    << (pattern.legal
                            ? "legal (" +
                                  std::to_string(pattern.patterns.size()) +
                                  " geometr" +
                                  (pattern.patterns.size() == 1 ? "y)"
                                                                : "ies)")
                        : pattern.prefiltered ? "pre-filtered"
                                              : "unsolvable")
                    << "\n";
          slots.push_back(pattern);
        });
    if (!stats.ok()) {
      std::cerr << "generate: " << stats.status().to_string() << "\n";
      return stats.status().code() == dp::common::StatusCode::kInternal ? 2
                                                                        : 1;
    }
    result.stats = std::move(stats).value();
    result.patterns = dp::service::assemble_stream_patterns(std::move(slots));
  } else {
    auto generated = service.generate(request);
    if (!generated.ok()) {
      std::cerr << "generate: " << generated.status().to_string() << "\n";
      return generated.status().code() == dp::common::StatusCode::kInternal
                 ? 2
                 : 1;
    }
    result = std::move(generated).value();
  }
  if (result.stats.degraded) {
    std::cout << "note: admitted in degraded mode — "
              << result.stats.topologies_admitted << " of "
              << result.stats.topologies_requested
              << " topologies ran (service overloaded)\n";
  }
  if (result.stats.degraded_steps) {
    std::cout << "note: admitted with a coarsened sampling stride "
              << result.stats.sampling_stride
              << " (service overloaded; full count kept)\n";
  }
  if (result.stats.sampling_stride > 1) {
    std::cout << "sampling stride " << result.stats.sampling_stride << ": "
              << result.stats.steps_run << " of " << cfg.schedule.steps
              << " reverse steps per topology (" << result.stats.net_evals
              << " net evals)\n";
  }
  std::cout << "emitted " << result.patterns.size() << " legal patterns ("
            << result.stats.prefilter_rejected << " pre-filtered, "
            << result.stats.solver_rejected << " unsolvable)\n";
  dp::io::save_pattern_library(args.get("out", ""), result.patterns);
  std::cout << "library written to " << args.get("out", "") << "\n";
  if (args.has("stats")) {
    std::cout << service.counters().to_string();
  }
  if (args.has("stats-json")) {
    std::cout << service.counters().to_json() << "\n";
  }
  return 0;
}

int cmd_evaluate(const Args& args) {
  if (!args.has("library")) {
    std::cerr << "evaluate: --library is required\n";
    return 1;
  }
  const auto patterns =
      dp::io::load_pattern_library(args.get("library", ""));
  const auto rules = rules_by_name(args.get("rules", "normal"));
  const auto eval = dp::core::evaluate_patterns(patterns, rules);
  std::cout << "patterns:        " << eval.total_patterns << "\n"
            << "legal:           " << eval.legal_patterns << " ("
            << eval.legality_ratio() * 100.0 << "%)\n"
            << "diversity:       " << eval.diversity << " bits\n"
            << "legal diversity: " << eval.legal_diversity << " bits\n";
  return 0;
}

int cmd_render(const Args& args) {
  if (!args.has("library") || !args.has("out-dir")) {
    std::cerr << "render: --library and --out-dir are required\n";
    return 1;
  }
  const auto patterns =
      dp::io::load_pattern_library(args.get("library", ""));
  const auto dir = dp::io::ensure_directory(args.get("out-dir", ""));
  const auto limit =
      std::min<std::int64_t>(args.get_int("limit", 16),
                             static_cast<std::int64_t>(patterns.size()));
  for (std::int64_t i = 0; i < limit; ++i) {
    dp::io::write_pattern_pgm(
        dir + "/pattern_" + std::to_string(i) + ".pgm",
        patterns[static_cast<std::size_t>(i)], 256);
  }
  std::cout << "rendered " << limit << " patterns to " << dir << "\n";
  return 0;
}

/// The demo serving model: small and untrained, built from a FIXED weights
/// seed (7) so every process constructing it — `serve` workers on separate
/// hosts, `serve-demo` replicas, the local golden — is weight-identical
/// the way checkpoint replicas would be.
dp::service::ModelConfig demo_model_config() {
  dp::service::ModelConfig model_cfg;
  model_cfg.grid_side = 16;
  model_cfg.channels = 4;
  model_cfg.schedule = {.steps = 6, .beta_start = 0.01, .beta_end = 0.5};
  model_cfg.model_channels = 8;
  model_cfg.channel_mult = {1, 2};
  model_cfg.num_res_blocks = 1;
  model_cfg.attention_levels = {};
  model_cfg.dropout = 0.0F;
  return model_cfg;
}

constexpr std::uint64_t kDemoWeightsSeed = 7;
constexpr const char* kDemoModelName = "demo";

/// Socket-client mode of serve-demo: each --connect address is a running
/// `serve` worker (or, with --directory, the worker set is discovered from
/// a 'MODEL ADDRESS' file through the router's runtime-discovery seam);
/// the router fails over between them over real sockets, and byte identity
/// is proven against a local golden built from the same demo model.
/// Returns 0 on identity, 2 otherwise.
int serve_demo_connect(const Args& args, std::int64_t requests,
                       std::int64_t count, std::uint64_t seed) {
  dp::dist::SocketTransportConfig transport_cfg;
  transport_cfg.call_timeout_ms = args.get_int("call-timeout-ms", 10000);
  transport_cfg.connect_timeout_ms = args.get_int("connect-timeout-ms", 1000);
  transport_cfg.jitter_seed = seed;
  const auto pool = args.get_int("pool", 4);
  if (pool < 1 || pool > 64) {
    throw UsageError("--pool must be in [1, 64], got " + std::to_string(pool));
  }
  transport_cfg.max_connections = pool;
  transport_cfg.auth_key = args.get("auth-key", "");
  dp::dist::SocketTransport transport(transport_cfg);
  dp::dist::RouterConfig router_cfg;
  router_cfg.seed = seed;
  dp::dist::ReplicaRouter router(router_cfg);

  std::int64_t replica_count = 0;
  if (args.has("directory")) {
    dp::dist::FileWorkerDirectory directory(args.get("directory", ""));
    const auto synced = router.sync_directory(
        directory,
        [&transport](const std::string& a) { return transport.connect(a); });
    if (!synced.ok()) {
      std::cerr << "serve-demo: --directory: " << synced.status().to_string()
                << "\n";
      return 2;
    }
    replica_count = synced->added;
    if (replica_count == 0) {
      std::cerr << "serve-demo: --directory lists no workers\n";
      return 2;
    }
  } else {
    std::vector<std::string> addresses;
    std::string list = args.get("connect", "");
    for (std::size_t start = 0; start <= list.size();) {
      const auto comma = list.find(',', start);
      const auto end = comma == std::string::npos ? list.size() : comma;
      if (end > start) {
        addresses.push_back(list.substr(start, end - start));
      }
      start = end + 1;
    }
    if (addresses.empty()) {
      throw UsageError("--connect needs at least one address");
    }
    for (const auto& address : addresses) {
      router.add_replica(kDemoModelName, transport.connect(address));
    }
    replica_count = static_cast<std::int64_t>(addresses.size());
  }

  std::cout << "serve-demo: routing over " << replica_count
            << " socket replicas, " << requests << " requests of " << count
            << " topologies...\n";
  std::int64_t ok_requests = 0;
  std::int64_t legal_patterns = 0;
  for (std::int64_t r = 0; r < requests; ++r) {
    dp::service::GenerateRequest request;
    request.model = kDemoModelName;
    request.count = count;
    request.seed = seed + static_cast<std::uint64_t>(r);
    auto result = router.generate(request);
    if (result.ok()) {
      ++ok_requests;
      legal_patterns += static_cast<std::int64_t>(result->patterns.size());
    } else {
      std::cerr << "  request " << r << ": " << result.status().to_string()
                << "\n";
    }
  }

  // Byte identity vs a local golden: the workers serve the same fixed
  // demo model, so routed bytes must equal a direct local generate.
  auto model_cfg = demo_model_config();
  const dp::unet::UNet weights(model_cfg.unet_config(), kDemoWeightsSeed);
  dp::dist::WorkerNode golden_node("local-golden");
  const auto registered = golden_node.service().models().register_model(
      kDemoModelName, model_cfg, weights.registry(), {});
  if (!registered.ok()) {
    std::cerr << "serve-demo: " << registered.to_string() << "\n";
    return 2;
  }
  dp::service::GenerateRequest reference;
  reference.model = kDemoModelName;
  reference.count = count;
  reference.seed = seed;
  auto golden = golden_node.service().generate(reference);
  auto routed = router.generate(reference);
  bool identical = golden.ok() && routed.ok();
  if (identical) {
    const auto& a = golden->patterns;
    const auto& b = routed->patterns;
    identical = a.size() == b.size();
    for (std::size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].topology == b[i].topology && a[i].dx == b[i].dx &&
                  a[i].dy == b[i].dy;
    }
  } else if (!routed.ok()) {
    std::cerr << "serve-demo: reference request failed: "
              << routed.status().to_string() << "\n";
  }
  std::cout << "routed " << ok_requests << "/" << requests
            << " requests OK (" << legal_patterns << " legal patterns)\n"
            << "socket-vs-golden byte identity: "
            << (identical ? "PASS" : "FAIL") << "\n";
  if (args.has("stats-json")) {
    std::cout << "{\"router\":" + router.counters().to_json() + "}\n";
  }
  return identical ? 0 : 2;
}

/// In-process distributed-serving demo: N WorkerNodes behind a loopback
/// transport, each serving an identically seeded (untrained) mini model,
/// fronted by a load-aware ReplicaRouter. Drives a batch of requests
/// through the router, then proves the determinism contract by asking
/// every replica directly for the same (model, seed) request and
/// byte-comparing the answers. --stats-json dumps router + per-worker
/// counters as one JSON object. With --connect, routes to running `serve`
/// processes over sockets instead (see serve_demo_connect).
int cmd_serve_demo(const Args& args) {
  const auto worker_count = args.get_int("workers", 3);
  if (worker_count < 1 || worker_count > 64) {
    throw UsageError("--workers must be in [1, 64], got " +
                     std::to_string(worker_count));
  }
  const auto requests = args.get_int("requests", 8);
  if (requests < 0) {
    throw UsageError("--requests must be >= 0");
  }
  const auto count = args.get_int("count", 4);
  if (count < 1) {
    throw UsageError("--count must be >= 1");
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2023));
  if (args.has("connect") || args.has("directory")) {
    return serve_demo_connect(args, requests, count, seed);
  }

  auto model_cfg = demo_model_config();
  const dp::unet::UNet weights(model_cfg.unet_config(), kDemoWeightsSeed);

  dp::dist::LoopbackTransport transport;
  std::vector<std::unique_ptr<dp::dist::WorkerNode>> workers;
  dp::dist::RouterConfig router_cfg;
  router_cfg.seed = seed;
  dp::dist::ReplicaRouter router(router_cfg);
  const std::string model_name = "demo";
  for (std::int64_t w = 0; w < worker_count; ++w) {
    dp::service::ServiceConfig svc;
    svc.legalize_workers = 2;
    svc.max_fused_batch = 8;
    auto node = std::make_unique<dp::dist::WorkerNode>(
        "worker-" + std::to_string(w), transport, svc);
    const auto registered = node->service().models().register_model(
        model_name, model_cfg, weights.registry(), {});
    if (!registered.ok()) {
      std::cerr << "serve-demo: " << registered.to_string() << "\n";
      return 2;
    }
    router.add_replica(model_name, transport.connect(node->name()));
    workers.push_back(std::move(node));
  }

  std::cout << "serve-demo: " << worker_count << " workers, " << requests
            << " routed requests of " << count << " topologies...\n";
  std::int64_t ok_requests = 0;
  std::int64_t legal_patterns = 0;
  for (std::int64_t r = 0; r < requests; ++r) {
    dp::service::GenerateRequest request;
    request.model = model_name;
    request.count = count;
    request.seed = seed + static_cast<std::uint64_t>(r);
    auto result = router.generate(request);
    if (result.ok()) {
      ++ok_requests;
      legal_patterns += static_cast<std::int64_t>(result->patterns.size());
    } else {
      std::cerr << "  request " << r << ": "
                << result.status().to_string() << "\n";
    }
  }

  // Determinism across replicas: every worker must answer the reference
  // request with byte-identical patterns.
  dp::service::GenerateRequest reference;
  reference.model = model_name;
  reference.count = count;
  reference.seed = seed;
  std::vector<dp::layout::SquishPattern> golden;
  bool identical = true;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    auto result = workers[w]->service().generate(reference);
    if (!result.ok()) {
      std::cerr << "serve-demo: replica check failed on worker " << w << ": "
                << result.status().to_string() << "\n";
      return 2;
    }
    if (w == 0) {
      golden = std::move(result).value().patterns;
      continue;
    }
    const auto& mine = result->patterns;
    bool same = mine.size() == golden.size();
    for (std::size_t i = 0; same && i < mine.size(); ++i) {
      same = mine[i].topology == golden[i].topology &&
             mine[i].dx == golden[i].dx && mine[i].dy == golden[i].dy;
    }
    identical = identical && same;
  }
  std::cout << "routed " << ok_requests << "/" << requests
            << " requests OK (" << legal_patterns << " legal patterns)\n"
            << "cross-replica byte identity: "
            << (identical ? "PASS" : "FAIL") << "\n";

  if (args.has("stats-json")) {
    std::string json = "{\"router\":" + router.counters().to_json();
    json += ",\"workers\":[";
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (w > 0) {
        json += ",";
      }
      json += "{\"name\":\"" + workers[w]->name() + "\"";
      json += ",\"wire\":" + workers[w]->wire_counters().to_json();
      json += ",\"service\":" + workers[w]->service().counters().to_json();
      json += "}";
    }
    json += "]}";
    std::cout << json << "\n";
  }
  return identical ? 0 : 2;
}

/// Set by the SIGINT/SIGTERM handler; cmd_serve's wait loop polls it.
std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) {
  g_serve_stop.store(true, std::memory_order_relaxed);
}

/// Long-running worker process: one WorkerNode serving the demo model on a
/// real listening socket. SIGINT/SIGTERM triggers a graceful drain — the
/// listener closes, in-flight requests complete and answer, then the
/// process exits 0, dumping final counters under --stats-json.
int cmd_serve(const Args& args) {
  const std::string listen = args.get("listen", "");
  if (listen.empty()) {
    throw UsageError(
        "serve: --listen tcp:HOST:PORT or unix:/path is required");
  }
  const std::string name = args.get("name", "worker-0");
  const auto io_timeout = args.get_int("io-timeout-ms", 10000);
  if (io_timeout < 1) {
    throw UsageError("--io-timeout-ms must be >= 1");
  }
  const auto max_connections = args.get_int("max-connections", 256);
  if (max_connections < 0) {
    throw UsageError("--max-connections must be >= 0 (0 = unlimited)");
  }

  auto model_cfg = demo_model_config();
  const dp::unet::UNet weights(model_cfg.unet_config(), kDemoWeightsSeed);
  dp::service::ServiceConfig svc;
  svc.legalize_workers = 2;
  svc.max_fused_batch = 8;
  dp::dist::WorkerNode node(name, svc);
  const auto registered = node.service().models().register_model(
      kDemoModelName, model_cfg, weights.registry(), {});
  if (!registered.ok()) {
    std::cerr << "serve: " << registered.to_string() << "\n";
    return 2;
  }

  dp::dist::SocketServerConfig server_cfg;
  server_cfg.io_timeout_ms = io_timeout;
  server_cfg.max_connections = max_connections;
  server_cfg.auth_key = args.get("auth-key", "");
  dp::dist::SocketServer server(server_cfg);
  const auto started = server.start(
      listen, [&node](const dp::dist::Bytes& request) {
        return node.handle(request);
      });
  if (!started.ok()) {
    std::cerr << "serve: " << started.to_string() << "\n";
    return 2;
  }
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::cout << "serving model '" << kDemoModelName << "' as '" << name
            << "' on " << server.bound_address()
            << " (SIGINT/SIGTERM to drain and exit)" << std::endl;
  if (args.has("announce")) {
    // Best-effort self-registration: tell the registry at --announce ADDR
    // that this worker serves its models at the bound address. A failed
    // announce is logged but does not stop serving — the registry may come
    // up later and the worker is still directly dialable.
    dp::dist::SocketTransportConfig announce_cfg;
    announce_cfg.call_timeout_ms = 2000;
    announce_cfg.auth_key = server_cfg.auth_key;
    dp::dist::SocketTransport announce_transport(announce_cfg);
    auto registry = announce_transport.connect(args.get("announce", ""));
    const auto ack =
        registry->call(node.announce_frame(server.bound_address()));
    if (ack.ok()) {
      const auto status = dp::dist::decode_status(ack.value());
      if (status.ok() && status->status.ok()) {
        std::cout << "serve: announced to " << args.get("announce", "")
                  << std::endl;
      } else {
        std::cerr << "serve: registry rejected announce: "
                  << (status.ok() ? status->status.to_string()
                                  : status.status().to_string())
                  << std::endl;
      }
    } else {
      std::cerr << "serve: announce failed: " << ack.status().to_string()
                << std::endl;
    }
  }
  while (!g_serve_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "serve: draining in-flight requests..." << std::endl;
  server.shutdown();
  if (args.has("stats-json")) {
    std::string json = "{\"server\":" + server.counters().to_json();
    json += ",\"wire\":" + node.wire_counters().to_json();
    json += ",\"service\":" + node.service().counters().to_json();
    json += "}";
    std::cout << json << std::endl;
  }
  std::cout << "serve: drained, exiting" << std::endl;
  return 0;
}

int cmd_export_gds(const Args& args) {
  if (!args.has("library") || !args.has("out")) {
    std::cerr << "export-gds: --library and --out are required\n";
    return 1;
  }
  const auto patterns =
      dp::io::load_pattern_library(args.get("library", ""));
  dp::io::write_pattern_library_gds(
      args.get("out", ""), patterns,
      static_cast<std::int16_t>(args.get_int("layer", 1)));
  std::cout << "wrote " << patterns.size() << " structures to "
            << args.get("out", "") << " (GDSII, 1 nm database unit)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  Args args;
  args.command = argv[1];
  // Options are --key value pairs; a --key followed by another option (or
  // the end of the line) is a boolean flag, e.g. --stream / --stats.
  for (int i = 2; i < argc;) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::cerr << "expected --option [value] arguments, got '" << key
                << "'\n";
      return 1;
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key.substr(2)] = argv[i + 1];
      i += 2;
    } else {
      args.options[key.substr(2)] = "";
      i += 1;
    }
  }
  try {
    apply_thread_option(args);
    apply_kernel_backend_option(args);
    apply_arena_option(args);
    if (args.command == "train") {
      return cmd_train(args);
    }
    if (args.command == "generate") {
      return cmd_generate(args);
    }
    if (args.command == "evaluate") {
      return cmd_evaluate(args);
    }
    if (args.command == "render") {
      return cmd_render(args);
    }
    if (args.command == "export-gds") {
      return cmd_export_gds(args);
    }
    if (args.command == "serve-demo") {
      return cmd_serve_demo(args);
    }
    if (args.command == "serve") {
      return cmd_serve(args);
    }
    return usage();
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
