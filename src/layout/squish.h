// Squish pattern representation (paper Sec. II-B, Gennari & Lai [10]).
//
// A Layout (set of axis-aligned rectangles, union semantics) is losslessly
// encoded as a binary topology matrix plus two geometric vectors delta_x,
// delta_y: scan lines walk along every polygon edge, splitting the tile into
// a non-uniform grid whose cells are uniformly shape or space.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/grid.h"
#include "geometry/types.h"

namespace diffpattern::layout {

using geometry::BinaryGrid;
using geometry::Coord;
using geometry::Rect;

/// A layout tile: axis-aligned rectangles within [0,width) x [0,height).
/// Overlapping/abutting rectangles merge into one polygon (union semantics).
struct Layout {
  Coord width = 0;
  Coord height = 0;
  std::vector<Rect> rects;
};

/// Lossless squish encoding of a layout tile.
struct SquishPattern {
  BinaryGrid topology;
  std::vector<Coord> dx;  // Column widths (size == topology.cols()).
  std::vector<Coord> dy;  // Row heights (size == topology.rows()).

  Coord width() const;
  Coord height() const;

  /// Validates the representation invariants (positive deltas, matching
  /// dimensions); throws on violation.
  void validate() const;
};

/// Extracts the squish pattern of `layout` using scan lines at every
/// rectangle edge (plus the tile borders).
SquishPattern extract_squish(const Layout& layout);

/// Restores a layout from a squish pattern. Each row of 1-runs becomes a
/// rectangle; vertically abutting equal spans are merged.
Layout restore_layout(const SquishPattern& pattern);

/// Canonical (minimal) form: merges adjacent identical rows/columns, summing
/// their deltas. Two squish patterns describe the same layout iff their
/// canonical forms are equal.
SquishPattern canonicalize(const SquishPattern& pattern);

/// Pads a squish pattern to exactly `rows` x `cols` by repeatedly splitting
/// the largest delta (duplicating the corresponding topology row/column).
/// This is the fixed-side-length extension of [14]: the described layout is
/// unchanged. Throws if the pattern is already larger than the target or if
/// no delta is wide enough to split.
SquishPattern pad_to(const SquishPattern& pattern, std::int64_t rows,
                     std::int64_t cols);

/// True iff the two patterns describe the same geometry.
bool same_layout(const SquishPattern& a, const SquishPattern& b);

}  // namespace diffpattern::layout
