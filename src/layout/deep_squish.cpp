#include "layout/deep_squish.h"

#include <cmath>

#include "common/contracts.h"

namespace diffpattern::layout {

using geometry::BinaryGrid;
using tensor::Tensor;

std::int64_t DeepSquishConfig::patch_side() const {
  const auto side =
      static_cast<std::int64_t>(std::llround(std::sqrt(
          static_cast<double>(channels))));
  DP_REQUIRE(side * side == channels,
             "DeepSquishConfig: channels must be a perfect square, got " +
                 std::to_string(channels));
  return side;
}

Tensor fold_topology(const BinaryGrid& grid, const DeepSquishConfig& config) {
  const auto p = config.patch_side();
  DP_REQUIRE(grid.rows() % p == 0 && grid.cols() % p == 0,
             "fold_topology: grid side not divisible by patch side");
  DP_REQUIRE(grid.rows() == grid.cols(),
             "fold_topology: topology matrix must be square");
  const auto m_rows = grid.rows() / p;
  const auto m_cols = grid.cols() / p;
  Tensor out({config.channels, m_rows, m_cols});
  for (std::int64_t c = 0; c < config.channels; ++c) {
    const auto pr = c / p;
    const auto pc = c % p;
    for (std::int64_t i = 0; i < m_rows; ++i) {
      for (std::int64_t j = 0; j < m_cols; ++j) {
        out.at({c, i, j}) = static_cast<float>(
            grid.get_unchecked(i * p + pr, j * p + pc));
      }
    }
  }
  return out;
}

BinaryGrid unfold_topology(const Tensor& folded,
                           const DeepSquishConfig& config) {
  DP_REQUIRE(folded.rank() == 3, "unfold_topology: expected [C,M,M]");
  DP_REQUIRE(folded.dim(0) == config.channels,
             "unfold_topology: channel mismatch");
  const auto p = config.patch_side();
  const auto m_rows = folded.dim(1);
  const auto m_cols = folded.dim(2);
  BinaryGrid grid(m_rows * p, m_cols * p);
  for (std::int64_t c = 0; c < config.channels; ++c) {
    const auto pr = c / p;
    const auto pc = c % p;
    for (std::int64_t i = 0; i < m_rows; ++i) {
      for (std::int64_t j = 0; j < m_cols; ++j) {
        const float v = folded.at({c, i, j});
        DP_REQUIRE(v == 0.0F || v == 1.0F,
                   "unfold_topology: tensor entries must be binary");
        grid.set(i * p + pr, j * p + pc, v != 0.0F ? 1 : 0);
      }
    }
  }
  return grid;
}

Tensor fold_batch(const std::vector<BinaryGrid>& grids,
                  const DeepSquishConfig& config) {
  DP_REQUIRE(!grids.empty(), "fold_batch: empty batch");
  Tensor first = fold_topology(grids.front(), config);
  const auto c = first.dim(0);
  const auto h = first.dim(1);
  const auto w = first.dim(2);
  Tensor out({static_cast<std::int64_t>(grids.size()), c, h, w});
  std::copy(first.data(), first.data() + first.numel(), out.data());
  for (std::size_t i = 1; i < grids.size(); ++i) {
    Tensor folded = fold_topology(grids[i], config);
    DP_REQUIRE(folded.dim(1) == h && folded.dim(2) == w,
               "fold_batch: inconsistent grid sizes in batch");
    std::copy(folded.data(), folded.data() + folded.numel(),
              out.data() + static_cast<std::int64_t>(i) * folded.numel());
  }
  return out;
}

Tensor naive_concat_encode(const BinaryGrid& grid,
                           const DeepSquishConfig& config) {
  const auto p = config.patch_side();
  DP_REQUIRE(config.channels <= 24,
             "naive_concat_encode: state space 2^C overflows beyond C=24");
  DP_REQUIRE(grid.rows() % p == 0 && grid.cols() % p == 0,
             "naive_concat_encode: grid side not divisible by patch side");
  const auto m_rows = grid.rows() / p;
  const auto m_cols = grid.cols() / p;
  Tensor out({m_rows, m_cols});
  for (std::int64_t i = 0; i < m_rows; ++i) {
    for (std::int64_t j = 0; j < m_cols; ++j) {
      std::int64_t state = 0;
      for (std::int64_t c = 0; c < config.channels; ++c) {
        const auto bit = grid.get_unchecked(i * p + c / p, j * p + c % p);
        state |= static_cast<std::int64_t>(bit) << c;
      }
      out.at({i, j}) = static_cast<float>(state);
    }
  }
  return out;
}

BinaryGrid naive_concat_decode(const Tensor& states,
                               const DeepSquishConfig& config) {
  DP_REQUIRE(states.rank() == 2, "naive_concat_decode: expected [M,M]");
  const auto p = config.patch_side();
  const auto m_rows = states.dim(0);
  const auto m_cols = states.dim(1);
  BinaryGrid grid(m_rows * p, m_cols * p);
  for (std::int64_t i = 0; i < m_rows; ++i) {
    for (std::int64_t j = 0; j < m_cols; ++j) {
      const auto state = static_cast<std::int64_t>(states.at({i, j}));
      DP_REQUIRE(state >= 0 && state < (std::int64_t{1} << config.channels),
                 "naive_concat_decode: state out of range");
      for (std::int64_t c = 0; c < config.channels; ++c) {
        grid.set(i * p + c / p, j * p + c % p,
                 static_cast<std::uint8_t>((state >> c) & 1));
      }
    }
  }
  return grid;
}

}  // namespace diffpattern::layout
