#include "layout/squish.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace diffpattern::layout {

Coord SquishPattern::width() const {
  return std::accumulate(dx.begin(), dx.end(), Coord{0});
}

Coord SquishPattern::height() const {
  return std::accumulate(dy.begin(), dy.end(), Coord{0});
}

void SquishPattern::validate() const {
  DP_REQUIRE(static_cast<std::int64_t>(dx.size()) == topology.cols(),
             "SquishPattern: dx size must equal topology columns");
  DP_REQUIRE(static_cast<std::int64_t>(dy.size()) == topology.rows(),
             "SquishPattern: dy size must equal topology rows");
  for (const auto d : dx) {
    DP_REQUIRE(d > 0, "SquishPattern: dx entries must be positive");
  }
  for (const auto d : dy) {
    DP_REQUIRE(d > 0, "SquishPattern: dy entries must be positive");
  }
}

SquishPattern extract_squish(const Layout& layout) {
  DP_REQUIRE(layout.width > 0 && layout.height > 0,
             "extract_squish: empty tile");
  std::vector<Coord> xs = {0, layout.width};
  std::vector<Coord> ys = {0, layout.height};
  for (const auto& r : layout.rects) {
    DP_REQUIRE(r.valid(), "extract_squish: degenerate rectangle");
    DP_REQUIRE(r.x0 >= 0 && r.y0 >= 0 && r.x1 <= layout.width &&
                   r.y1 <= layout.height,
               "extract_squish: rectangle outside tile");
    xs.push_back(r.x0);
    xs.push_back(r.x1);
    ys.push_back(r.y0);
    ys.push_back(r.y1);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const auto cols = static_cast<std::int64_t>(xs.size()) - 1;
  const auto rows = static_cast<std::int64_t>(ys.size()) - 1;
  SquishPattern pattern;
  pattern.topology = BinaryGrid(rows, cols);
  pattern.dx.resize(static_cast<std::size_t>(cols));
  pattern.dy.resize(static_cast<std::size_t>(rows));
  for (std::int64_t c = 0; c < cols; ++c) {
    pattern.dx[static_cast<std::size_t>(c)] =
        xs[static_cast<std::size_t>(c + 1)] - xs[static_cast<std::size_t>(c)];
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    pattern.dy[static_cast<std::size_t>(r)] =
        ys[static_cast<std::size_t>(r + 1)] - ys[static_cast<std::size_t>(r)];
  }

  // Scan-line grid edges align with every rectangle edge, so each cell is
  // uniformly covered or empty; testing the cell's lower-left sample point
  // against each rectangle suffices.
  for (const auto& rect : layout.rects) {
    const auto c0 = std::lower_bound(xs.begin(), xs.end(), rect.x0) -
                    xs.begin();
    const auto c1 = std::lower_bound(xs.begin(), xs.end(), rect.x1) -
                    xs.begin();
    const auto r0 = std::lower_bound(ys.begin(), ys.end(), rect.y0) -
                    ys.begin();
    const auto r1 = std::lower_bound(ys.begin(), ys.end(), rect.y1) -
                    ys.begin();
    for (auto r = r0; r < r1; ++r) {
      for (auto c = c0; c < c1; ++c) {
        pattern.topology.set(r, c, 1);
      }
    }
  }
  pattern.validate();
  return pattern;
}

Layout restore_layout(const SquishPattern& pattern) {
  pattern.validate();
  Layout layout;
  layout.width = pattern.width();
  layout.height = pattern.height();

  // Prefix sums of the deltas give cell borders in nm.
  std::vector<Coord> xs(pattern.dx.size() + 1, 0);
  for (std::size_t i = 0; i < pattern.dx.size(); ++i) {
    xs[i + 1] = xs[i] + pattern.dx[i];
  }
  std::vector<Coord> ys(pattern.dy.size() + 1, 0);
  for (std::size_t i = 0; i < pattern.dy.size(); ++i) {
    ys[i + 1] = ys[i] + pattern.dy[i];
  }

  // Row strips of consecutive 1-cells, merged vertically when the spans of
  // adjacent rows coincide.
  struct Strip {
    std::int64_t c0;
    std::int64_t c1;  // exclusive
    std::int64_t r0;
    std::int64_t r1;  // exclusive
  };
  std::vector<Strip> open;
  const auto rows = pattern.topology.rows();
  const auto cols = pattern.topology.cols();
  for (std::int64_t r = 0; r <= rows; ++r) {
    std::vector<Strip> current;
    if (r < rows) {
      std::int64_t c = 0;
      while (c < cols) {
        if (pattern.topology.get_unchecked(r, c) == 0) {
          ++c;
          continue;
        }
        std::int64_t c0 = c;
        while (c < cols && pattern.topology.get_unchecked(r, c) == 1) {
          ++c;
        }
        current.push_back({c0, c, r, r + 1});
      }
    }
    // Merge with open strips that have identical spans; flush the rest.
    std::vector<Strip> next_open;
    for (auto& strip : current) {
      bool merged = false;
      for (auto& prev : open) {
        if (prev.c0 == strip.c0 && prev.c1 == strip.c1 && prev.r1 == r) {
          strip.r0 = prev.r0;
          prev.r1 = -1;  // Consumed.
          merged = true;
          break;
        }
      }
      (void)merged;
      next_open.push_back(strip);
    }
    for (const auto& prev : open) {
      if (prev.r1 >= 0) {
        layout.rects.push_back(Rect{xs[static_cast<std::size_t>(prev.c0)],
                                    ys[static_cast<std::size_t>(prev.r0)],
                                    xs[static_cast<std::size_t>(prev.c1)],
                                    ys[static_cast<std::size_t>(prev.r1)]});
      }
    }
    open = std::move(next_open);
  }
  return layout;
}

SquishPattern canonicalize(const SquishPattern& pattern) {
  pattern.validate();
  const auto rows = pattern.topology.rows();
  const auto cols = pattern.topology.cols();

  // Identify runs of identical columns, then rows.
  std::vector<std::int64_t> col_rep;  // representative index per kept column
  std::vector<Coord> new_dx;
  for (std::int64_t c = 0; c < cols; ++c) {
    bool same_as_prev = !col_rep.empty();
    if (same_as_prev) {
      const auto prev = col_rep.back();
      for (std::int64_t r = 0; r < rows; ++r) {
        if (pattern.topology.get_unchecked(r, c) !=
            pattern.topology.get_unchecked(r, prev)) {
          same_as_prev = false;
          break;
        }
      }
    }
    if (same_as_prev) {
      new_dx.back() += pattern.dx[static_cast<std::size_t>(c)];
    } else {
      col_rep.push_back(c);
      new_dx.push_back(pattern.dx[static_cast<std::size_t>(c)]);
    }
  }

  std::vector<std::int64_t> row_rep;
  std::vector<Coord> new_dy;
  for (std::int64_t r = 0; r < rows; ++r) {
    bool same_as_prev = !row_rep.empty();
    if (same_as_prev) {
      const auto prev = row_rep.back();
      for (std::int64_t c = 0; c < cols; ++c) {
        if (pattern.topology.get_unchecked(r, c) !=
            pattern.topology.get_unchecked(prev, c)) {
          same_as_prev = false;
          break;
        }
      }
    }
    if (same_as_prev) {
      new_dy.back() += pattern.dy[static_cast<std::size_t>(r)];
    } else {
      row_rep.push_back(r);
      new_dy.push_back(pattern.dy[static_cast<std::size_t>(r)]);
    }
  }

  SquishPattern out;
  out.topology = BinaryGrid(static_cast<std::int64_t>(row_rep.size()),
                            static_cast<std::int64_t>(col_rep.size()));
  for (std::size_t r = 0; r < row_rep.size(); ++r) {
    for (std::size_t c = 0; c < col_rep.size(); ++c) {
      out.topology.set(static_cast<std::int64_t>(r),
                       static_cast<std::int64_t>(c),
                       pattern.topology.get_unchecked(row_rep[r], col_rep[c]));
    }
  }
  out.dx = std::move(new_dx);
  out.dy = std::move(new_dy);
  return out;
}

namespace {

/// Splits the largest delta in `deltas` in half (floor/ceil), duplicating
/// the corresponding topology line via `duplicate(index)`.
template <typename DuplicateFn>
void split_largest(std::vector<Coord>& deltas, DuplicateFn duplicate) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    if (deltas[i] > deltas[best]) {
      best = i;
    }
  }
  DP_REQUIRE(deltas[best] >= 2,
             "pad_to: no delta wide enough to split (all at 1 nm)");
  const Coord lo = deltas[best] / 2;
  const Coord hi = deltas[best] - lo;
  deltas[best] = lo;
  deltas.insert(deltas.begin() + static_cast<std::ptrdiff_t>(best) + 1, hi);
  duplicate(static_cast<std::int64_t>(best));
}

BinaryGrid duplicate_column(const BinaryGrid& grid, std::int64_t col) {
  BinaryGrid out(grid.rows(), grid.cols() + 1);
  for (std::int64_t r = 0; r < grid.rows(); ++r) {
    for (std::int64_t c = 0; c < grid.cols(); ++c) {
      out.set(r, c <= col ? c : c + 1, grid.get_unchecked(r, c));
    }
    out.set(r, col + 1, grid.get_unchecked(r, col));
  }
  return out;
}

BinaryGrid duplicate_row(const BinaryGrid& grid, std::int64_t row) {
  BinaryGrid out(grid.rows() + 1, grid.cols());
  for (std::int64_t r = 0; r < grid.rows(); ++r) {
    for (std::int64_t c = 0; c < grid.cols(); ++c) {
      out.set(r <= row ? r : r + 1, c, grid.get_unchecked(r, c));
    }
  }
  for (std::int64_t c = 0; c < grid.cols(); ++c) {
    out.set(row + 1, c, grid.get_unchecked(row, c));
  }
  return out;
}

}  // namespace

SquishPattern pad_to(const SquishPattern& pattern, std::int64_t rows,
                     std::int64_t cols) {
  pattern.validate();
  DP_REQUIRE(pattern.topology.rows() <= rows && pattern.topology.cols() <= cols,
             "pad_to: pattern exceeds the target size");
  SquishPattern out = pattern;
  while (out.topology.cols() < cols) {
    split_largest(out.dx, [&](std::int64_t c) {
      out.topology = duplicate_column(out.topology, c);
    });
  }
  while (out.topology.rows() < rows) {
    split_largest(out.dy, [&](std::int64_t r) {
      out.topology = duplicate_row(out.topology, r);
    });
  }
  out.validate();
  return out;
}

bool same_layout(const SquishPattern& a, const SquishPattern& b) {
  const SquishPattern ca = canonicalize(a);
  const SquishPattern cb = canonicalize(b);
  return ca.topology == cb.topology && ca.dx == cb.dx && ca.dy == cb.dy;
}

}  // namespace diffpattern::layout
