// Deep Squish Pattern representation (paper Sec. III-B).
//
// Folds a (sqrt(C)*M) x (sqrt(C)*M) binary topology matrix into a C x M x M
// binary tensor by moving each sqrt(C) x sqrt(C) patch into the channel
// dimension (space-to-depth). Every channel carries equal weight — unlike
// the "naive concatenating" alternative that packs a patch into one integer
// in [0, 2^C), giving bit i a weight of 2^i and an exponentially growing
// state space (the paper's Fig. 5 argument; benchmarked in
// bench_fig5_deepsquish).
#pragma once

#include <cstdint>

#include "geometry/grid.h"
#include "tensor/tensor.h"

namespace diffpattern::layout {

/// Channel count C must be a perfect square (patch side sqrt(C)); the grid
/// side must be divisible by sqrt(C).
struct DeepSquishConfig {
  std::int64_t channels = 4;

  std::int64_t patch_side() const;
};

/// Folds a topology matrix into a [C, M, M] float tensor with entries in
/// {0, 1}. Channel c holds patch cell (c / p, c % p) with p = patch_side.
tensor::Tensor fold_topology(const geometry::BinaryGrid& grid,
                             const DeepSquishConfig& config);

/// Inverse of fold_topology.
geometry::BinaryGrid unfold_topology(const tensor::Tensor& folded,
                                     const DeepSquishConfig& config);

/// Folds a batch of identical-size grids into an [N, C, M, M] tensor.
tensor::Tensor fold_batch(const std::vector<geometry::BinaryGrid>& grids,
                          const DeepSquishConfig& config);

/// "Naive concatenating" encoding from the paper's Fig. 5: packs each
/// sqrt(C) x sqrt(C) patch into one integer state in [0, 2^C). Returned as
/// an [M, M] tensor of state indices (stored in float for convenience).
/// Provided for the representation ablation only.
tensor::Tensor naive_concat_encode(const geometry::BinaryGrid& grid,
                                   const DeepSquishConfig& config);
geometry::BinaryGrid naive_concat_decode(const tensor::Tensor& states,
                                         const DeepSquishConfig& config);

}  // namespace diffpattern::layout
