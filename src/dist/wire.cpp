#include "dist/wire.h"

#include <bit>
#include <cstddef>
#include <utility>

namespace diffpattern::dist {
namespace {

using common::Result;
using common::Status;

// -- little-endian writer (explicit byte shifts: deterministic on any
//    host endianness) --

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_i64(Bytes& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(Bytes& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(Bytes& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bool(Bytes& out, bool v) { put_u8(out, v ? 1 : 0); }

void put_string(Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// -- bounds-checked reader --

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  bool read_u8(std::uint8_t& out) {
    if (remaining() < 1) {
      return false;
    }
    out = data_[pos_++];
    return true;
  }
  bool read_u16(std::uint16_t& out) {
    if (remaining() < 2) {
      return false;
    }
    out = static_cast<std::uint16_t>(data_[pos_] |
                                     (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }
  bool read_u32(std::uint32_t& out) {
    if (remaining() < 4) {
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool read_u64(std::uint64_t& out) {
    if (remaining() < 8) {
      return false;
    }
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool read_i64(std::int64_t& out) {
    std::uint64_t raw = 0;
    if (!read_u64(raw)) {
      return false;
    }
    out = static_cast<std::int64_t>(raw);
    return true;
  }
  bool read_i32(std::int32_t& out) {
    std::uint32_t raw = 0;
    if (!read_u32(raw)) {
      return false;
    }
    out = static_cast<std::int32_t>(raw);
    return true;
  }
  bool read_f64(double& out) {
    std::uint64_t raw = 0;
    if (!read_u64(raw)) {
      return false;
    }
    out = std::bit_cast<double>(raw);
    return true;
  }
  bool read_bool(bool& out) {
    std::uint8_t raw = 0;
    if (!read_u8(raw)) {
      return false;
    }
    out = raw != 0;
    return true;
  }
  /// Length-prefixed string: the length is checked against the remaining
  /// bytes BEFORE any allocation, so a hostile prefix cannot drive a
  /// multi-gigabyte reserve. Returns an error status on failure.
  Status read_string(std::string& out, std::size_t max_bytes,
                     const char* what) {
    std::uint32_t len = 0;
    if (!read_u32(len)) {
      return Status::DataLoss(std::string("truncated ") + what + " length");
    }
    if (len > max_bytes) {
      return Status::InvalidArgument(std::string(what) + " exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    if (len > remaining()) {
      return Status::DataLoss(std::string("truncated ") + what + " body");
    }
    out.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::Ok();
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// -- frame header --

void put_header(Bytes& out, MessageType type) {
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, 0);  // payload length, patched by seal_frame.
}

void seal_frame(Bytes& out) {
  const auto payload = static_cast<std::uint32_t>(out.size() -
                                                  kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<std::uint8_t>((payload >> (8 * i)) & 0xFF);
  }
}

bool known_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MessageType::kGenerateRequest) &&
         raw <= static_cast<std::uint16_t>(MessageType::kWorkerAnnounce);
}

/// Validates one frame header at `frame[offset]`. On success fills `type`
/// and `payload_len`.
Status check_header(const Bytes& frame, std::size_t offset, MessageType& type,
                    std::size_t& payload_len) {
  if (frame.size() - offset < kFrameHeaderBytes) {
    return Status::DataLoss("frame shorter than header");
  }
  Reader reader(frame.data() + offset, frame.size() - offset);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t raw_type = 0;
  std::uint32_t len = 0;
  (void)reader.read_u32(magic);
  (void)reader.read_u16(version);
  (void)reader.read_u16(raw_type);
  (void)reader.read_u32(len);
  if (magic != kWireMagic) {
    return Status::DataLoss("bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  if (!known_type(raw_type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw_type));
  }
  if (len > frame.size() - offset - kFrameHeaderBytes) {
    return Status::DataLoss("payload length exceeds buffer");
  }
  type = static_cast<MessageType>(raw_type);
  payload_len = len;
  return Status::Ok();
}

/// Validates the single frame `frame` is exactly one message of `want` and
/// returns a reader positioned at its payload.
Result<Reader> open_frame(const Bytes& frame, MessageType want) {
  MessageType type{};
  std::size_t payload_len = 0;
  if (Status s = check_header(frame, 0, type, payload_len); !s.ok()) {
    return s;
  }
  if (type != want) {
    return Status::InvalidArgument(
        "wrong frame type " +
        std::to_string(static_cast<std::uint16_t>(type)) + ", want " +
        std::to_string(static_cast<std::uint16_t>(want)));
  }
  if (kFrameHeaderBytes + payload_len != frame.size()) {
    return Status::DataLoss("trailing bytes after frame payload");
  }
  return Reader(frame.data() + kFrameHeaderBytes, payload_len);
}

// -- squish pattern --

void put_pattern(Bytes& out, const layout::SquishPattern& p) {
  put_u32(out, static_cast<std::uint32_t>(p.topology.rows()));
  put_u32(out, static_cast<std::uint32_t>(p.topology.cols()));
  out.insert(out.end(), p.topology.cells().begin(), p.topology.cells().end());
  for (const geometry::Coord c : p.dx) {
    put_i64(out, c);
  }
  for (const geometry::Coord c : p.dy) {
    put_i64(out, c);
  }
}

Status read_pattern(Reader& reader, layout::SquishPattern& out) {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  if (!reader.read_u32(rows) || !reader.read_u32(cols)) {
    return Status::DataLoss("truncated pattern dimensions");
  }
  const std::uint64_t cells = std::uint64_t{rows} * cols;
  // Cells (1 byte each) plus deltas (8 bytes each) must fit in what is
  // actually left — checked before any allocation.
  const std::uint64_t need = cells + 8ULL * (std::uint64_t{rows} + cols);
  if (need > reader.remaining()) {
    return Status::DataLoss("pattern dimensions exceed buffer");
  }
  geometry::BinaryGrid grid(static_cast<std::int64_t>(rows),
                            static_cast<std::int64_t>(cols));
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      std::uint8_t cell = 0;
      (void)reader.read_u8(cell);  // Covered by the `need` check above.
      if (cell > 1) {
        return Status::DataLoss("topology cell is not 0/1");
      }
      grid.set(static_cast<std::int64_t>(r), static_cast<std::int64_t>(c),
               cell);
    }
  }
  out.topology = std::move(grid);
  out.dx.assign(cols, 0);
  for (std::uint32_t c = 0; c < cols; ++c) {
    (void)reader.read_i64(out.dx[c]);
  }
  out.dy.assign(rows, 0);
  for (std::uint32_t r = 0; r < rows; ++r) {
    (void)reader.read_i64(out.dy[r]);
  }
  return Status::Ok();
}

void put_patterns(Bytes& out,
                  const std::vector<layout::SquishPattern>& patterns) {
  put_u32(out, static_cast<std::uint32_t>(patterns.size()));
  for (const auto& p : patterns) {
    put_pattern(out, p);
  }
}

Status read_patterns(Reader& reader,
                     std::vector<layout::SquishPattern>& out) {
  std::uint32_t count = 0;
  if (!reader.read_u32(count)) {
    return Status::DataLoss("truncated pattern count");
  }
  // Every pattern needs at least its 8-byte dimension header.
  if (std::uint64_t{count} * 8 > reader.remaining()) {
    return Status::DataLoss("pattern count exceeds buffer");
  }
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    layout::SquishPattern p;
    if (Status s = read_pattern(reader, p); !s.ok()) {
      return s;
    }
    out.push_back(std::move(p));
  }
  return Status::Ok();
}

// -- status / stats payloads (shared by several frames) --

void put_status(Bytes& out, const Status& status) {
  put_u16(out, static_cast<std::uint16_t>(status.code()));
  put_string(out, status.message());
  put_i64(out, status.retry_after_ms());
}

Status read_status(Reader& reader, Status& out) {
  std::uint16_t raw_code = 0;
  if (!reader.read_u16(raw_code)) {
    return Status::DataLoss("truncated status code");
  }
  if (raw_code >= common::kStatusCodeCount) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(raw_code));
  }
  std::string message;
  if (Status s = reader.read_string(message, kMaxMessageBytes,
                                    "status message");
      !s.ok()) {
    return s;
  }
  std::int64_t retry_after = 0;
  if (!reader.read_i64(retry_after)) {
    return Status::DataLoss("truncated status retry hint");
  }
  out = Status(static_cast<common::StatusCode>(raw_code), std::move(message))
            .with_retry_after(retry_after);
  return Status::Ok();
}

void put_stats(Bytes& out, const service::GenerateStats& stats) {
  put_i64(out, stats.topologies_requested);
  put_i64(out, stats.topologies_admitted);
  put_bool(out, stats.degraded);
  put_i64(out, stats.prefilter_rejected);
  put_i64(out, stats.solver_rejected);
  put_i64(out, stats.solver_rounds);
  put_f64(out, stats.sampling_seconds);
  put_f64(out, stats.solving_seconds);
  put_i64(out, stats.fused_batch_slots);
  put_i64(out, stats.sampling_stride);
  put_i64(out, stats.steps_run);
  put_i64(out, stats.net_evals);
  put_bool(out, stats.degraded_steps);
}

Status read_stats(Reader& reader, service::GenerateStats& out) {
  if (!reader.read_i64(out.topologies_requested) ||
      !reader.read_i64(out.topologies_admitted) ||
      !reader.read_bool(out.degraded) ||
      !reader.read_i64(out.prefilter_rejected) ||
      !reader.read_i64(out.solver_rejected) ||
      !reader.read_i64(out.solver_rounds) ||
      !reader.read_f64(out.sampling_seconds) ||
      !reader.read_f64(out.solving_seconds) ||
      !reader.read_i64(out.fused_batch_slots) ||
      !reader.read_i64(out.sampling_stride) ||
      !reader.read_i64(out.steps_run) || !reader.read_i64(out.net_evals) ||
      !reader.read_bool(out.degraded_steps)) {
    return Status::DataLoss("truncated generate stats");
  }
  return Status::Ok();
}

Status require_exhausted(const Reader& reader) {
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes inside frame payload");
  }
  return Status::Ok();
}

}  // namespace

WorkerHealth health_from_counters(const std::string& worker,
                                  std::uint64_t seq,
                                  const common::ServiceCounters& counters) {
  WorkerHealth health;
  health.worker = worker;
  health.seq = seq;
  health.admission_pending = counters.admission_pending;
  health.queue_depth_peak = counters.queue_depth_peak;
  health.fused_fill_ratio = counters.fused_fill_ratio;
  health.requests_shed = counters.requests_shed;
  health.requests_accepted = counters.requests_accepted;
  health.requests_completed = counters.requests_completed;
  health.arena_bytes_reserved = counters.arena_bytes_reserved;
  health.plan_cache_hits = counters.plan_cache_hits;
  health.plan_cache_misses = counters.plan_cache_misses;
  health.embedding_cache_hits = counters.embedding_cache_hits;
  return health;
}

Bytes encode_generate_request(const service::GenerateRequest& request,
                              MessageType type) {
  Bytes out;
  put_header(out, type);
  put_string(out, request.model);
  put_i64(out, request.count);
  put_i64(out, request.geometries_per_topology);
  put_string(out, request.rule_set);
  put_u64(out, request.seed);
  put_i32(out, request.priority);
  put_i64(out, request.deadline_ms);
  put_bool(out, request.allow_degrade);
  put_i64(out, request.sampling.steps);
  put_i64(out, request.sampling.stride);
  seal_frame(out);
  return out;
}

Bytes encode_generate_result(const service::GenerateResult& result) {
  Bytes out;
  put_header(out, MessageType::kGenerateResult);
  put_patterns(out, result.patterns);
  put_stats(out, result.stats);
  seal_frame(out);
  return out;
}

Bytes encode_streamed_pattern(const service::StreamedPattern& slot) {
  Bytes out;
  put_header(out, MessageType::kStreamedPattern);
  put_i64(out, slot.index);
  put_bool(out, slot.legal);
  put_bool(out, slot.prefiltered);
  put_patterns(out, slot.patterns);
  seal_frame(out);
  return out;
}

Bytes encode_status(const common::Status& status) {
  Bytes out;
  put_header(out, MessageType::kStatus);
  put_status(out, status);
  seal_frame(out);
  return out;
}

Bytes encode_worker_health(const WorkerHealth& health) {
  Bytes out;
  put_header(out, MessageType::kWorkerHealth);
  put_string(out, health.worker);
  put_u64(out, health.seq);
  put_i64(out, health.admission_pending);
  put_i64(out, health.queue_depth_peak);
  put_f64(out, health.fused_fill_ratio);
  put_i64(out, health.requests_shed);
  put_i64(out, health.requests_accepted);
  put_i64(out, health.requests_completed);
  put_i64(out, health.arena_bytes_reserved);
  put_i64(out, health.plan_cache_hits);
  put_i64(out, health.plan_cache_misses);
  put_i64(out, health.embedding_cache_hits);
  seal_frame(out);
  return out;
}

Bytes encode_health_probe() {
  Bytes out;
  put_header(out, MessageType::kHealthProbe);
  seal_frame(out);
  return out;
}

Bytes encode_stream_end(const common::Status& status,
                        const service::GenerateStats& stats) {
  Bytes out;
  put_header(out, MessageType::kStreamEnd);
  put_status(out, status);
  put_stats(out, stats);
  seal_frame(out);
  return out;
}

Bytes encode_worker_announce(const WorkerAnnounce& announce) {
  Bytes out;
  put_header(out, MessageType::kWorkerAnnounce);
  put_string(out, announce.worker);
  put_string(out, announce.address);
  put_u32(out, static_cast<std::uint32_t>(announce.models.size()));
  for (const std::string& model : announce.models) {
    put_string(out, model);
  }
  seal_frame(out);
  return out;
}

common::Result<MessageType> peek_type(const Bytes& frame) {
  MessageType type{};
  std::size_t payload_len = 0;
  if (Status s = check_header(frame, 0, type, payload_len); !s.ok()) {
    return s;
  }
  return type;
}

common::Result<std::vector<Bytes>> split_frames(const Bytes& buffer) {
  std::vector<Bytes> frames;
  std::size_t offset = 0;
  while (offset < buffer.size()) {
    MessageType type{};
    std::size_t payload_len = 0;
    if (Status s = check_header(buffer, offset, type, payload_len); !s.ok()) {
      return s;
    }
    const std::size_t frame_bytes = kFrameHeaderBytes + payload_len;
    frames.emplace_back(buffer.begin() + static_cast<std::ptrdiff_t>(offset),
                        buffer.begin() +
                            static_cast<std::ptrdiff_t>(offset + frame_bytes));
    offset += frame_bytes;
  }
  return frames;
}

common::Result<service::GenerateRequest> decode_generate_request(
    const Bytes& frame) {
  // Blocking and streaming requests share one payload shape; accept either
  // tag so the worker can peek first and dispatch.
  auto opened = open_frame(frame, MessageType::kGenerateRequest);
  if (!opened.ok()) {
    auto streamed = open_frame(frame, MessageType::kGenerateStreamRequest);
    if (!streamed.ok()) {
      return opened.status();
    }
    opened = std::move(streamed);
  }
  Reader reader = std::move(opened).value();
  service::GenerateRequest request;
  if (Status s = reader.read_string(request.model, kMaxNameBytes,
                                    "model name");
      !s.ok()) {
    return s;
  }
  if (!reader.read_i64(request.count) ||
      !reader.read_i64(request.geometries_per_topology)) {
    return Status::DataLoss("truncated request counts");
  }
  if (Status s = reader.read_string(request.rule_set, kMaxNameBytes,
                                    "rule set name");
      !s.ok()) {
    return s;
  }
  if (!reader.read_u64(request.seed) || !reader.read_i32(request.priority) ||
      !reader.read_i64(request.deadline_ms) ||
      !reader.read_bool(request.allow_degrade) ||
      !reader.read_i64(request.sampling.steps) ||
      !reader.read_i64(request.sampling.stride)) {
    return Status::DataLoss("truncated request tail");
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return request;
}

common::Result<service::GenerateResult> decode_generate_result(
    const Bytes& frame) {
  auto opened = open_frame(frame, MessageType::kGenerateResult);
  if (!opened.ok()) {
    return opened.status();
  }
  Reader reader = std::move(opened).value();
  service::GenerateResult result;
  if (Status s = read_patterns(reader, result.patterns); !s.ok()) {
    return s;
  }
  if (Status s = read_stats(reader, result.stats); !s.ok()) {
    return s;
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return result;
}

common::Result<service::StreamedPattern> decode_streamed_pattern(
    const Bytes& frame) {
  auto opened = open_frame(frame, MessageType::kStreamedPattern);
  if (!opened.ok()) {
    return opened.status();
  }
  Reader reader = std::move(opened).value();
  service::StreamedPattern slot;
  if (!reader.read_i64(slot.index) || !reader.read_bool(slot.legal) ||
      !reader.read_bool(slot.prefiltered)) {
    return Status::DataLoss("truncated stream slot header");
  }
  if (Status s = read_patterns(reader, slot.patterns); !s.ok()) {
    return s;
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return slot;
}

common::Result<StatusFrame> decode_status(const Bytes& frame) {
  auto opened = open_frame(frame, MessageType::kStatus);
  if (!opened.ok()) {
    return opened.status();
  }
  Reader reader = std::move(opened).value();
  StatusFrame decoded;
  if (Status s = read_status(reader, decoded.status); !s.ok()) {
    return s;
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return decoded;
}

common::Result<WorkerHealth> decode_worker_health(const Bytes& frame) {
  auto opened = open_frame(frame, MessageType::kWorkerHealth);
  if (!opened.ok()) {
    return opened.status();
  }
  Reader reader = std::move(opened).value();
  WorkerHealth health;
  if (Status s = reader.read_string(health.worker, kMaxNameBytes,
                                    "worker name");
      !s.ok()) {
    return s;
  }
  if (!reader.read_u64(health.seq) ||
      !reader.read_i64(health.admission_pending) ||
      !reader.read_i64(health.queue_depth_peak) ||
      !reader.read_f64(health.fused_fill_ratio) ||
      !reader.read_i64(health.requests_shed) ||
      !reader.read_i64(health.requests_accepted) ||
      !reader.read_i64(health.requests_completed) ||
      !reader.read_i64(health.arena_bytes_reserved) ||
      !reader.read_i64(health.plan_cache_hits) ||
      !reader.read_i64(health.plan_cache_misses) ||
      !reader.read_i64(health.embedding_cache_hits)) {
    return Status::DataLoss("truncated worker health");
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return health;
}

common::Result<StreamEnd> decode_stream_end(const Bytes& frame) {
  auto opened = open_frame(frame, MessageType::kStreamEnd);
  if (!opened.ok()) {
    return opened.status();
  }
  Reader reader = std::move(opened).value();
  StreamEnd end;
  if (Status s = read_status(reader, end.status); !s.ok()) {
    return s;
  }
  if (Status s = read_stats(reader, end.stats); !s.ok()) {
    return s;
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return end;
}

common::Result<WorkerAnnounce> decode_worker_announce(const Bytes& frame) {
  auto opened = open_frame(frame, MessageType::kWorkerAnnounce);
  if (!opened.ok()) {
    return opened.status();
  }
  Reader reader = std::move(opened).value();
  WorkerAnnounce announce;
  if (Status s = reader.read_string(announce.worker, kMaxNameBytes,
                                    "worker name");
      !s.ok()) {
    return s;
  }
  if (Status s = reader.read_string(announce.address, kMaxNameBytes,
                                    "worker address");
      !s.ok()) {
    return s;
  }
  std::uint32_t model_count = 0;
  if (!reader.read_u32(model_count)) {
    return Status::DataLoss("truncated announce model count");
  }
  if (model_count > kMaxAnnounceModels) {
    return Status::InvalidArgument("announce model count " +
                                   std::to_string(model_count) +
                                   " exceeds " +
                                   std::to_string(kMaxAnnounceModels));
  }
  announce.models.reserve(model_count);
  for (std::uint32_t i = 0; i < model_count; ++i) {
    std::string model;
    if (Status s = reader.read_string(model, kMaxNameBytes, "model name");
        !s.ok()) {
      return s;
    }
    announce.models.push_back(std::move(model));
  }
  if (Status s = require_exhausted(reader); !s.ok()) {
    return s;
  }
  return announce;
}

}  // namespace diffpattern::dist
