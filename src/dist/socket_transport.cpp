#include "dist/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

namespace diffpattern::dist {

using common::Result;
using common::Status;

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Polls `fd` for `events` until `deadline_ms` (steady clock). Returns
/// +1 ready, 0 deadline expired, -1 hard poll error.
int poll_until(int fd, short events, std::int64_t deadline_ms) {
  for (;;) {
    const std::int64_t remaining = deadline_ms - steady_now_ms();
    if (remaining <= 0) {
      return 0;
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1,
                          static_cast<int>(std::min<std::int64_t>(
                              remaining, 100)));
    if (rc > 0) {
      return 1;
    }
    if (rc < 0 && errno != EINTR) {
      return -1;
    }
    // rc == 0: tick — re-check the deadline and poll again.
  }
}

/// Non-blocking connect with a deadline; returns a connected blocking fd
/// or a typed status.
Result<int> dial(const SocketAddress& address, std::int64_t timeout_ms) {
  int fd = -1;
  sockaddr_storage storage {};
  socklen_t addr_len = 0;
  if (address.kind == SocketAddress::Kind::kTcp) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable("socket(): " + std::string(strerror(errno)));
    }
    auto* in = reinterpret_cast<sockaddr_in*>(&storage);
    in->sin_family = AF_INET;
    in->sin_port = htons(address.port);
    const std::string host =
        address.host == "localhost" ? "127.0.0.1" : address.host;
    if (::inet_pton(AF_INET, host.c_str(), &in->sin_addr) != 1) {
      close_fd(fd);
      return Status::InvalidArgument("not a numeric IPv4 host: '" +
                                     address.host + "'");
    }
    addr_len = sizeof(sockaddr_in);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable("socket(): " + std::string(strerror(errno)));
    }
    auto* un = reinterpret_cast<sockaddr_un*>(&storage);
    un->sun_family = AF_UNIX;
    std::snprintf(un->sun_path, sizeof(un->sun_path), "%s",
                  address.path.c_str());
    addr_len = sizeof(sockaddr_un);
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), addr_len);
  if (rc != 0 && errno == EINPROGRESS) {
    if (poll_until(fd, POLLOUT, deadline) != 1) {
      close_fd(fd);
      return Status::Unavailable("connect to " + address.to_string() +
                                 " timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("connect to " + address.to_string() +
                               " failed: " + reason);
  }
  ::fcntl(fd, F_SETFL, flags);  // Back to blocking; I/O is poll-gated.
  return fd;
}

/// Writes the whole buffer before `deadline_ms`. DEADLINE_EXCEEDED on
/// expiry, UNAVAILABLE on a torn pipe.
Status write_all(int fd, const Bytes& buffer, std::int64_t deadline_ms) {
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    const int ready = poll_until(fd, POLLOUT, deadline_ms);
    if (ready == 0) {
      return Status::DeadlineExceeded("write deadline expired");
    }
    if (ready < 0) {
      return Status::Unavailable("poll(): " + std::string(strerror(errno)));
    }
    const ssize_t n = ::send(fd, buffer.data() + sent, buffer.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable("send(): " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

/// Reads one complete outer frame into `assembler` before `deadline_ms`.
/// Recv sizes are bounded by want() so the reader never consumes bytes of
/// a following frame.
Status read_frame(int fd, FrameAssembler& assembler,
                  std::int64_t deadline_ms) {
  std::uint8_t chunk[16384];
  while (!assembler.complete()) {
    const int ready = poll_until(fd, POLLIN, deadline_ms);
    if (ready == 0) {
      return Status::DeadlineExceeded("read deadline expired");
    }
    if (ready < 0) {
      return Status::Unavailable("poll(): " + std::string(strerror(errno)));
    }
    const std::size_t cap = std::min(sizeof(chunk), assembler.want());
    const ssize_t n = ::recv(fd, chunk, cap, 0);
    if (n == 0) {
      return assembler.want() == kSocketFrameHeaderBytes &&
                     !assembler.complete()
                 ? Status::Unavailable("peer closed before responding")
                 : Status::DataLoss("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable("recv(): " + std::string(strerror(errno)));
    }
    if (Status s = assembler.feed(chunk, static_cast<std::size_t>(n));
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

Bytes frame_payload(const Bytes& payload) {
  Bytes out;
  out.reserve(kSocketFrameHeaderBytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((len >> shift) & 0xFF));
  }
  const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((checksum >> shift) & 0xFF));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameAssembler::FrameAssembler(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

std::size_t FrameAssembler::want() const {
  if (complete_) {
    return 0;
  }
  if (header_filled_ < kSocketFrameHeaderBytes) {
    return kSocketFrameHeaderBytes - header_filled_;
  }
  return expected_ - body_.size();
}

common::Status FrameAssembler::feed(const std::uint8_t* data,
                                    std::size_t size) {
  std::size_t pos = 0;
  while (pos < size) {
    if (complete_) {
      return Status::DataLoss("bytes past the end of a complete frame");
    }
    if (header_filled_ < kSocketFrameHeaderBytes) {
      const std::size_t take = std::min(
          size - pos, kSocketFrameHeaderBytes - header_filled_);
      std::memcpy(header_ + header_filled_, data + pos, take);
      header_filled_ += take;
      pos += take;
      if (header_filled_ < kSocketFrameHeaderBytes) {
        continue;
      }
      // Header complete: validate the length BEFORE any body allocation.
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= std::uint32_t{header_[i]} << (8 * i);
      }
      if (len > max_frame_bytes_) {
        return Status::DataLoss("frame length " + std::to_string(len) +
                                " exceeds the " +
                                std::to_string(max_frame_bytes_) +
                                "-byte bound");
      }
      checksum_ = 0;
      for (int i = 0; i < 8; ++i) {
        checksum_ |= std::uint64_t{header_[4 + i]} << (8 * i);
      }
      expected_ = len;
      body_.clear();
      body_.reserve(expected_);
      if (expected_ == 0) {
        if (checksum_ != fnv1a64(nullptr, 0)) {
          return Status::DataLoss("frame checksum mismatch");
        }
        complete_ = true;
      }
      continue;
    }
    const std::size_t take = std::min(size - pos, expected_ - body_.size());
    body_.insert(body_.end(), data + pos, data + pos + take);
    pos += take;
    if (body_.size() == expected_) {
      if (fnv1a64(body_.data(), body_.size()) != checksum_) {
        return Status::DataLoss("frame checksum mismatch");
      }
      complete_ = true;
    }
  }
  return Status::Ok();
}

Bytes FrameAssembler::take() {
  Bytes out = std::move(body_);
  body_ = Bytes{};
  header_filled_ = 0;
  expected_ = 0;
  checksum_ = 0;
  complete_ = false;
  return out;
}

std::string SocketAddress::to_string() const {
  if (kind == Kind::kTcp) {
    return "tcp:" + host + ":" + std::to_string(port);
  }
  return "unix:" + path;
}

common::Result<SocketAddress> parse_socket_address(const std::string& spec) {
  SocketAddress out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = SocketAddress::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + spec +
                                     "'");
    }
    // sun_path is a fixed buffer; reject paths that would truncate.
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     out.path + "'");
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = SocketAddress::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return Status::InvalidArgument("expected tcp:HOST:PORT, got '" + spec +
                                     "'");
    }
    out.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    std::int64_t port = 0;
    for (const char c : port_text) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad port in '" + spec + "'");
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("port out of range in '" + spec +
                                       "'");
      }
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
  }
  return Status::InvalidArgument(
      "unknown socket address scheme in '" + spec +
      "' (expected tcp:HOST:PORT or unix:/path)");
}

// ---------------------------------------------------------------- channel

namespace {

class SocketChannel : public Channel {
 public:
  SocketChannel(std::string spec, SocketTransportConfig config)
      : spec_(std::move(spec)), config_(config) {
    auto parsed = parse_socket_address(spec_);
    if (parsed.ok()) {
      address_ = std::move(parsed).value();
      parsed_ok_ = true;
    } else {
      parse_error_ = parsed.status();
    }
    jitter_state_ = config_.jitter_seed ^
                    fnv1a64(reinterpret_cast<const std::uint8_t*>(
                                spec_.data()),
                            spec_.size());
  }

  ~SocketChannel() override {
    std::lock_guard<std::mutex> lock(mutex_);
    close_fd(fd_);
  }

  common::Result<Bytes> call(const Bytes& request) override {
    // One exchange at a time per channel: the connection is a strict
    // request/response pipe, so concurrent callers serialize here (the
    // router spreads load across replicas, not across one connection).
    std::lock_guard<std::mutex> lock(mutex_);
    if (!parsed_ok_) {
      return parse_error_;
    }
    const std::int64_t deadline = steady_now_ms() + config_.call_timeout_ms;
    if (fd_ < 0) {
      if (Status s = reconnect_locked(); !s.ok()) {
        return s;
      }
    }
    Status io = exchange_locked(request, deadline);
    if (io.ok()) {
      return std::move(response_);
    }
    // Any I/O failure poisons the connection: close it and let the next
    // call reconnect lazily. A fresh connection that failed mid-exchange
    // (the peer died between our connect and its reply) is not retried
    // here — the router owns retry policy.
    close_fd(fd_);
    if (io.code() == common::StatusCode::kDeadlineExceeded) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    return io;
  }

  const std::string& endpoint() const override { return spec_; }

  // Lock-free: stats() must never wait behind a blocking call() (the
  // router snapshots counters while traffic is in flight).
  ChannelStats stats() const override {
    ChannelStats out;
    out.connects = connects_.load(std::memory_order_relaxed);
    out.reconnects = out.connects > 0 ? out.connects - 1 : 0;
    out.timeouts = timeouts_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  Status reconnect_locked() {
    const std::int64_t now = steady_now_ms();
    if (now < next_attempt_ms_) {
      // Fail fast inside the backoff window — no syscall, and the
      // remaining wait travels as a structured retry hint.
      return Status::Unavailable("reconnect to " + spec_ +
                                 " backing off")
          .with_retry_after(next_attempt_ms_ - now);
    }
    auto dialed = dial(address_, config_.connect_timeout_ms);
    if (!dialed.ok()) {
      // Capped exponential backoff with deterministic jitter: delay =
      // min(max, base << failures) + U[0, delay/4).
      const std::int64_t shift =
          std::min<std::int64_t>(consecutive_connect_failures_, 20);
      std::int64_t delay = config_.backoff_base_ms;
      if (shift < 63 && (delay << shift) > 0) {
        delay = std::min(config_.backoff_max_ms, delay << shift);
      } else {
        delay = config_.backoff_max_ms;
      }
      if (delay > 4) {
        delay += static_cast<std::int64_t>(splitmix64(jitter_state_) %
                                           static_cast<std::uint64_t>(
                                               delay / 4));
      }
      delay = std::min(delay, config_.backoff_max_ms);
      next_attempt_ms_ = now + delay;
      consecutive_connect_failures_++;
      return dialed.status();
    }
    fd_ = dialed.value();
    consecutive_connect_failures_ = 0;
    next_attempt_ms_ = 0;
    connects_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  Status exchange_locked(const Bytes& request, std::int64_t deadline) {
    if (request.size() > config_.max_frame_bytes) {
      return Status::InvalidArgument(
          "request of " + std::to_string(request.size()) +
          " bytes exceeds the frame bound");
    }
    if (Status s = write_all(fd_, frame_payload(request), deadline);
        !s.ok()) {
      return s;
    }
    FrameAssembler assembler(config_.max_frame_bytes);
    if (Status s = read_frame(fd_, assembler, deadline); !s.ok()) {
      return s;
    }
    response_ = assembler.take();
    return Status::Ok();
  }

  std::string spec_;
  SocketTransportConfig config_;
  SocketAddress address_;
  bool parsed_ok_ = false;
  Status parse_error_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  Bytes response_;
  std::int64_t consecutive_connect_failures_ = 0;
  std::int64_t next_attempt_ms_ = 0;
  std::uint64_t jitter_state_ = 0;
  std::atomic<std::int64_t> connects_{0};
  std::atomic<std::int64_t> timeouts_{0};
};

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(config) {}

std::shared_ptr<Channel> SocketTransport::connect(const std::string& address) {
  return std::make_shared<SocketChannel>(address, config_);
}

// ----------------------------------------------------------------- server

std::string SocketServerCounters::to_json() const {
  std::string out = "{";
  out += "\"connections\":" + std::to_string(connections);
  out += ",\"requests\":" + std::to_string(requests);
  out += ",\"read_errors\":" + std::to_string(read_errors);
  out += "}";
  return out;
}

struct SocketServer::Impl {
  SocketServerConfig config;
  WireHandler handler;
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
  std::string unix_path;  // Unlinked on shutdown.

  std::mutex mutex;
  std::vector<std::thread> connections;
  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> requests{0};
  std::atomic<std::int64_t> read_errors{0};

  /// One connection: sequential framed request/response exchanges. On
  /// shutdown, an exchange already in progress (a partially read request
  /// or a running handler) completes and its response is written; an idle
  /// connection closes at the next 100 ms poll tick.
  void serve_connection(int fd) {
    FrameAssembler assembler(config.max_frame_bytes);
    std::uint8_t chunk[16384];
    bool mid_frame = false;
    std::int64_t frame_deadline = 0;
    for (;;) {
      if (stopping.load(std::memory_order_relaxed) && !mid_frame) {
        break;  // Graceful: never abandon a request already arriving.
      }
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0 && errno != EINTR) {
        break;
      }
      if (rc <= 0) {
        if (mid_frame && steady_now_ms() > frame_deadline) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
          break;  // Stalled mid-frame: disconnect the peer.
        }
        continue;
      }
      const std::size_t cap = std::min(sizeof(chunk), assembler.want());
      const ssize_t n = ::recv(fd, chunk, cap, 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
          continue;
        }
        if (n < 0 || mid_frame) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
        break;  // Peer closed (cleanly between frames, or torn).
      }
      if (!mid_frame) {
        mid_frame = true;
        frame_deadline = steady_now_ms() + config.io_timeout_ms;
      }
      if (Status s = assembler.feed(chunk, static_cast<std::size_t>(n));
          !s.ok()) {
        // Hostile length / checksum mismatch: the peer is feeding us
        // garbage; drop the connection (the client decodes the close as
        // a typed failure on its side).
        read_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (!assembler.complete()) {
        continue;
      }
      const Bytes request = assembler.take();
      mid_frame = false;
      requests.fetch_add(1, std::memory_order_relaxed);
      const Bytes response = handler(request);
      const std::int64_t write_deadline =
          steady_now_ms() + config.io_timeout_ms;
      if (!write_all(fd, frame_payload(response), write_deadline).ok()) {
        break;
      }
      if (stopping.load(std::memory_order_relaxed)) {
        break;  // Drained: last response written, close now.
      }
    }
    ::close(fd);
  }
};

SocketServer::SocketServer(SocketServerConfig config)
    : config_(config), impl_(std::make_shared<Impl>()) {
  impl_->config = config_;
}

SocketServer::~SocketServer() { shutdown(); }

common::Status SocketServer::start(const std::string& address,
                                   WireHandler handler) {
  if (impl_->listen_fd >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  auto parsed = parse_socket_address(address);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const SocketAddress& addr = parsed.value();
  int fd = -1;
  if (addr.kind == SocketAddress::Kind::kTcp) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable("socket(): " + std::string(strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in in {};
    in.sin_family = AF_INET;
    in.sin_port = htons(addr.port);
    const std::string host =
        addr.host == "localhost" ? "127.0.0.1" : addr.host;
    if (::inet_pton(AF_INET, host.c_str(), &in.sin_addr) != 1) {
      close_fd(fd);
      return Status::InvalidArgument("not a numeric IPv4 host: '" +
                                     addr.host + "'");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&in), sizeof(in)) != 0) {
      const std::string reason = strerror(errno);
      close_fd(fd);
      return Status::Unavailable("bind " + addr.to_string() + ": " + reason);
    }
    sockaddr_in bound {};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
    bound_address_ =
        "tcp:" + host + ":" + std::to_string(ntohs(bound.sin_port));
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable("socket(): " + std::string(strerror(errno)));
    }
    ::unlink(addr.path.c_str());  // Stale socket file from a dead server.
    sockaddr_un un {};
    un.sun_family = AF_UNIX;
    std::snprintf(un.sun_path, sizeof(un.sun_path), "%s", addr.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&un), sizeof(un)) != 0) {
      const std::string reason = strerror(errno);
      close_fd(fd);
      return Status::Unavailable("bind " + addr.to_string() + ": " + reason);
    }
    impl_->unix_path = addr.path;
    bound_address_ = addr.to_string();
  }
  if (::listen(fd, 64) != 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("listen " + addr.to_string() + ": " + reason);
  }
  impl_->handler = std::move(handler);
  impl_->listen_fd = fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

void SocketServer::accept_loop() {
  auto impl = impl_;
  while (!impl->stopping.load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = impl->listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (rc <= 0) {
      continue;
    }
    const int conn = ::accept(impl->listen_fd, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    impl->accepted.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->connections.emplace_back(
        [impl, conn] { impl->serve_connection(conn); });
  }
}

void SocketServer::shutdown() {
  if (!impl_ || impl_->listen_fd < 0) {
    return;
  }
  impl_->stopping.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  close_fd(impl_->listen_fd);
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    connections.swap(impl_->connections);
  }
  for (auto& thread : connections) {
    thread.join();  // Drain: in-flight requests answer before closing.
  }
  if (!impl_->unix_path.empty()) {
    ::unlink(impl_->unix_path.c_str());
  }
}

SocketServerCounters SocketServer::counters() const {
  SocketServerCounters out;
  out.connections = impl_->accepted.load(std::memory_order_relaxed);
  out.requests = impl_->requests.load(std::memory_order_relaxed);
  out.read_errors = impl_->read_errors.load(std::memory_order_relaxed);
  return out;
}

}  // namespace diffpattern::dist
