#include "dist/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace diffpattern::dist {

using common::Result;
using common::Status;

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Polls `fd` for `events` until `deadline_ms` (steady clock). Returns
/// +1 ready, 0 deadline expired, -1 hard poll error.
int poll_until(int fd, short events, std::int64_t deadline_ms) {
  for (;;) {
    const std::int64_t remaining = deadline_ms - steady_now_ms();
    if (remaining <= 0) {
      return 0;
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1,
                          static_cast<int>(std::min<std::int64_t>(
                              remaining, 100)));
    if (rc > 0) {
      return 1;
    }
    if (rc < 0 && errno != EINTR) {
      return -1;
    }
    // rc == 0: tick — re-check the deadline and poll again.
  }
}

/// One getaddrinfo record, storage-owned so the list outlives the call.
struct ResolvedTcpAddr {
  sockaddr_storage storage {};
  socklen_t len = 0;
  int family = 0;
};

/// Resolves HOST:PORT through getaddrinfo (hostnames, IPv4 and IPv6
/// literals alike). An unresolvable name is the caller's mistake:
/// INVALID_ARGUMENT carrying gai_strerror detail.
Result<std::vector<ResolvedTcpAddr>> resolve_tcp(const std::string& host,
                                                 std::uint16_t port,
                                                 bool passive) {
  addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  const std::string service = std::to_string(port);
  addrinfo* records = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &records);
  if (rc != 0) {
    const std::string reason =
        rc == EAI_SYSTEM ? strerror(errno) : gai_strerror(rc);
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "': " + reason);
  }
  std::vector<ResolvedTcpAddr> out;
  for (const addrinfo* it = records; it != nullptr; it = it->ai_next) {
    if (it->ai_addrlen > sizeof(sockaddr_storage)) {
      continue;
    }
    ResolvedTcpAddr addr;
    std::memcpy(&addr.storage, it->ai_addr, it->ai_addrlen);
    addr.len = it->ai_addrlen;
    addr.family = it->ai_family;
    out.push_back(addr);
  }
  ::freeaddrinfo(records);
  if (out.empty()) {
    return Status::InvalidArgument("host '" + host +
                                   "' resolved to no usable address");
  }
  return out;
}

/// "tcp:host:port" (IPv6 hosts bracketed) for the address a socket is
/// actually bound to.
std::string format_bound_tcp(int fd) {
  sockaddr_storage bound {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return "tcp:?:0";
  }
  char host[INET6_ADDRSTRLEN] = {};
  if (bound.ss_family == AF_INET6) {
    const auto* in6 = reinterpret_cast<const sockaddr_in6*>(&bound);
    ::inet_ntop(AF_INET6, &in6->sin6_addr, host, sizeof(host));
    return "tcp:[" + std::string(host) + "]:" +
           std::to_string(ntohs(in6->sin6_port));
  }
  const auto* in4 = reinterpret_cast<const sockaddr_in*>(&bound);
  ::inet_ntop(AF_INET, &in4->sin_addr, host, sizeof(host));
  return "tcp:" + std::string(host) + ":" +
         std::to_string(ntohs(in4->sin_port));
}

/// Non-blocking connect on an already-created socket with a deadline;
/// returns the connected blocking fd or a typed UNAVAILABLE. Owns `fd` —
/// it is closed on every failure path.
Result<int> finish_connect(int fd, const sockaddr* sa, socklen_t sa_len,
                           const std::string& where,
                           std::int64_t timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("fcntl(F_GETFL) before connect to " + where +
                               ": " + reason);
  }
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("fcntl(F_SETFL) before connect to " + where +
                               ": " + reason);
  }
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  int rc = ::connect(fd, sa, sa_len);
  if (rc != 0 && errno == EINPROGRESS) {
    if (poll_until(fd, POLLOUT, deadline) != 1) {
      close_fd(fd);
      return Status::Unavailable("connect to " + where + " timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      const std::string reason = strerror(errno);
      close_fd(fd);
      return Status::Unavailable("getsockopt(SO_ERROR) after connect to " +
                                 where + ": " + reason);
    }
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("connect to " + where + " failed: " + reason);
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {  // Blocking again; I/O poll-gated.
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("fcntl(F_SETFL) after connect to " + where +
                               ": " + reason);
  }
  return fd;
}

/// Dials `address`: Unix path directly; TCP through the resolver, walking
/// every record — each under its own `timeout_ms` attempt deadline —
/// before surfacing the last typed failure.
Result<int> dial(const SocketAddress& address, std::int64_t timeout_ms) {
  if (address.kind == SocketAddress::Kind::kUnix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable("socket(): " + std::string(strerror(errno)));
    }
    sockaddr_un un {};
    un.sun_family = AF_UNIX;
    std::snprintf(un.sun_path, sizeof(un.sun_path), "%s",
                  address.path.c_str());
    return finish_connect(fd, reinterpret_cast<sockaddr*>(&un), sizeof(un),
                          address.to_string(), timeout_ms);
  }
  auto resolved = resolve_tcp(address.host, address.port, /*passive=*/false);
  if (!resolved.ok()) {
    return resolved.status();
  }
  Status last = Status::Unavailable("no usable address record for " +
                                    address.to_string());
  for (const ResolvedTcpAddr& record : resolved.value()) {
    int fd = ::socket(record.family, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Status::Unavailable("socket(): " +
                                 std::string(strerror(errno)));
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connected = finish_connect(
        fd, reinterpret_cast<const sockaddr*>(&record.storage), record.len,
        address.to_string(), timeout_ms);
    if (connected.ok()) {
      return connected;
    }
    last = connected.status();
  }
  return last;
}

/// Writes the whole buffer before `deadline_ms`. DEADLINE_EXCEEDED on
/// expiry, UNAVAILABLE on a torn pipe.
Status write_all(int fd, const Bytes& buffer, std::int64_t deadline_ms) {
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    const int ready = poll_until(fd, POLLOUT, deadline_ms);
    if (ready == 0) {
      return Status::DeadlineExceeded("write deadline expired");
    }
    if (ready < 0) {
      return Status::Unavailable("poll(): " + std::string(strerror(errno)));
    }
    const ssize_t n = ::send(fd, buffer.data() + sent, buffer.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable("send(): " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

/// Reads one complete outer frame into `assembler` before `deadline_ms`.
/// Recv sizes are bounded by want() so the reader never consumes bytes of
/// a following frame.
Status read_frame(int fd, FrameAssembler& assembler,
                  std::int64_t deadline_ms) {
  std::uint8_t chunk[16384];
  while (!assembler.complete()) {
    const int ready = poll_until(fd, POLLIN, deadline_ms);
    if (ready == 0) {
      return Status::DeadlineExceeded("read deadline expired");
    }
    if (ready < 0) {
      return Status::Unavailable("poll(): " + std::string(strerror(errno)));
    }
    const std::size_t cap = std::min(sizeof(chunk), assembler.want());
    const ssize_t n = ::recv(fd, chunk, cap, 0);
    if (n == 0) {
      return assembler.empty()
                 ? Status::Unavailable("peer closed before responding")
                 : Status::DataLoss("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable("recv(): " + std::string(strerror(errno)));
    }
    if (Status s = assembler.feed(chunk, static_cast<std::size_t>(n));
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

std::uint64_t fnv1a64_seeded(std::uint64_t seed, const std::uint8_t* data,
                             std::size_t size) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  return fnv1a64_seeded(0xCBF29CE484222325ULL, data, size);
}

std::uint64_t socket_frame_tag(const std::string& key,
                               const std::uint8_t* header12,
                               const std::uint8_t* payload,
                               std::size_t payload_size) {
  const auto* key_bytes = reinterpret_cast<const std::uint8_t*>(key.data());
  std::uint64_t hash = fnv1a64(key_bytes, key.size());
  hash = fnv1a64_seeded(hash, header12, kSocketFrameHeaderBytes);
  hash = fnv1a64_seeded(hash, payload, payload_size);
  hash = fnv1a64_seeded(hash, key_bytes, key.size());
  return hash;
}

Bytes frame_payload(const Bytes& payload, const std::string& auth_key) {
  const bool authed = !auth_key.empty();
  Bytes out;
  out.reserve((authed ? kSocketAuthFrameHeaderBytes
                      : kSocketFrameHeaderBytes) +
              payload.size());
  std::uint32_t word = static_cast<std::uint32_t>(payload.size());
  if (authed) {
    word |= kSocketFrameAuthFlag;
  }
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((word >> shift) & 0xFF));
  }
  const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((checksum >> shift) & 0xFF));
  }
  if (authed) {
    const std::uint64_t tag = socket_frame_tag(
        auth_key, out.data(), payload.data(), payload.size());
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<std::uint8_t>((tag >> shift) & 0xFF));
    }
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameAssembler::FrameAssembler(std::size_t max_frame_bytes,
                               std::string auth_key)
    : max_frame_bytes_(max_frame_bytes), auth_key_(std::move(auth_key)) {}

std::size_t FrameAssembler::want() const {
  if (complete_) {
    return 0;
  }
  // The 4-byte length word is its own stage: the auth-mode and length
  // checks run on it before any more header is read.
  if (header_filled_ < 4) {
    return 4 - header_filled_;
  }
  if (header_filled_ < header_size()) {
    return header_size() - header_filled_;
  }
  return expected_ - body_.size();
}

common::Status FrameAssembler::feed(const std::uint8_t* data,
                                    std::size_t size) {
  std::size_t pos = 0;
  while (pos < size) {
    if (complete_) {
      return Status::DataLoss("bytes past the end of a complete frame");
    }
    const std::size_t header_bytes = header_size();
    if (header_filled_ < header_bytes) {
      const std::size_t stage_end = header_filled_ < 4 ? 4 : header_bytes;
      const std::size_t take =
          std::min(size - pos, stage_end - header_filled_);
      std::memcpy(header_ + header_filled_, data + pos, take);
      header_filled_ += take;
      pos += take;
      if (header_filled_ == 4 && stage_end == 4) {
        // Length word complete: auth-mode and length checks BEFORE any
        // body allocation (and before trusting 8 more header bytes).
        std::uint32_t word = 0;
        for (int i = 0; i < 4; ++i) {
          word |= std::uint32_t{header_[i]} << (8 * i);
        }
        const bool peer_authed = (word & kSocketFrameAuthFlag) != 0;
        if (peer_authed && auth_key_.empty()) {
          return Status::PermissionDenied(
              "peer sent an authenticated frame to a plaintext endpoint");
        }
        if (!peer_authed && !auth_key_.empty()) {
          return Status::PermissionDenied(
              "peer frame is missing the authentication tag");
        }
        const std::uint32_t len = word & ~kSocketFrameAuthFlag;
        if (len > max_frame_bytes_) {
          return Status::DataLoss("frame length " + std::to_string(len) +
                                  " exceeds the " +
                                  std::to_string(max_frame_bytes_) +
                                  "-byte bound");
        }
        expected_ = len;
        continue;
      }
      if (header_filled_ < header_bytes) {
        continue;
      }
      checksum_ = 0;
      for (int i = 0; i < 8; ++i) {
        checksum_ |= std::uint64_t{header_[4 + i]} << (8 * i);
      }
      if (!auth_key_.empty()) {
        tag_ = 0;
        for (int i = 0; i < 8; ++i) {
          tag_ |= std::uint64_t{header_[12 + i]} << (8 * i);
        }
      }
      body_.clear();
      body_.reserve(expected_);
      if (expected_ == 0) {
        if (Status s = [&] {
              // Checksum first: corruption stays DATA_LOSS, never an
              // auth failure.
              if (checksum_ != fnv1a64(nullptr, 0)) {
                return Status::DataLoss("frame checksum mismatch");
              }
              if (!auth_key_.empty() &&
                  socket_frame_tag(auth_key_, header_, nullptr, 0) != tag_) {
                return Status::PermissionDenied(
                    "frame authentication tag mismatch");
              }
              return Status::Ok();
            }();
            !s.ok()) {
          return s;
        }
        complete_ = true;
      }
      continue;
    }
    const std::size_t take = std::min(size - pos, expected_ - body_.size());
    body_.insert(body_.end(), data + pos, data + pos + take);
    pos += take;
    if (body_.size() == expected_) {
      if (fnv1a64(body_.data(), body_.size()) != checksum_) {
        return Status::DataLoss("frame checksum mismatch");
      }
      if (!auth_key_.empty() &&
          socket_frame_tag(auth_key_, header_, body_.data(),
                           body_.size()) != tag_) {
        return Status::PermissionDenied("frame authentication tag mismatch");
      }
      complete_ = true;
    }
  }
  return Status::Ok();
}

Bytes FrameAssembler::take() {
  Bytes out = std::move(body_);
  body_ = Bytes{};
  header_filled_ = 0;
  expected_ = 0;
  checksum_ = 0;
  tag_ = 0;
  complete_ = false;
  return out;
}

std::string SocketAddress::to_string() const {
  if (kind == Kind::kTcp) {
    if (host.find(':') != std::string::npos) {
      return "tcp:[" + host + "]:" + std::to_string(port);
    }
    return "tcp:" + host + ":" + std::to_string(port);
  }
  return "unix:" + path;
}

common::Result<SocketAddress> parse_socket_address(const std::string& spec) {
  SocketAddress out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = SocketAddress::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + spec +
                                     "'");
    }
    // sun_path is a fixed buffer; reject paths that would truncate.
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     out.path + "'");
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = SocketAddress::Kind::kTcp;
    const std::string rest = spec.substr(4);
    std::string port_text;
    if (!rest.empty() && rest[0] == '[') {
      // Bracketed IPv6 literal: tcp:[::1]:PORT.
      const auto close = rest.find(']');
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated '[' in '" + spec + "'");
      }
      out.host = rest.substr(1, close - 1);
      if (out.host.empty()) {
        return Status::InvalidArgument("empty IPv6 host in '" + spec + "'");
      }
      if (close + 1 >= rest.size() || rest[close + 1] != ':' ||
          close + 2 >= rest.size()) {
        return Status::InvalidArgument("expected tcp:[V6]:PORT, got '" +
                                       spec + "'");
      }
      port_text = rest.substr(close + 2);
    } else {
      const auto colon = rest.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= rest.size()) {
        return Status::InvalidArgument("expected tcp:HOST:PORT, got '" +
                                       spec + "'");
      }
      out.host = rest.substr(0, colon);
      port_text = rest.substr(colon + 1);
    }
    std::int64_t port = 0;
    for (const char c : port_text) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad port in '" + spec + "'");
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("port out of range in '" + spec +
                                       "'");
      }
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
  }
  return Status::InvalidArgument(
      "unknown socket address scheme in '" + spec +
      "' (expected tcp:HOST:PORT or unix:/path)");
}

common::Result<ListenSocket> bind_and_listen(const SocketAddress& address,
                                             int backlog) {
  ListenSocket out;
  if (address.kind == SocketAddress::Kind::kTcp) {
    auto resolved = resolve_tcp(address.host, address.port, /*passive=*/true);
    if (!resolved.ok()) {
      return resolved.status();
    }
    Status last = Status::Unavailable("no usable address record for " +
                                      address.to_string());
    for (const ResolvedTcpAddr& record : resolved.value()) {
      int fd = ::socket(record.family, SOCK_STREAM, 0);
      if (fd < 0) {
        last = Status::Unavailable("socket(): " +
                                   std::string(strerror(errno)));
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (record.family == AF_INET6) {
        // Keep the v6 listener v6-only so the bound address we report is
        // exactly the family a client will reach it on.
        ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &one, sizeof(one));
      }
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&record.storage),
                 record.len) != 0) {
        last = Status::Unavailable("bind " + address.to_string() + ": " +
                                   strerror(errno));
        close_fd(fd);
        continue;
      }
      if (::listen(fd, backlog) != 0) {
        last = Status::Unavailable("listen " + address.to_string() + ": " +
                                   strerror(errno));
        close_fd(fd);
        continue;
      }
      out.fd = fd;
      out.bound_address = format_bound_tcp(fd);
      return out;
    }
    return last;
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable("socket(): " + std::string(strerror(errno)));
  }
  ::unlink(address.path.c_str());  // Stale socket file from a dead server.
  sockaddr_un un {};
  un.sun_family = AF_UNIX;
  std::snprintf(un.sun_path, sizeof(un.sun_path), "%s",
                address.path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&un), sizeof(un)) != 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("bind " + address.to_string() + ": " +
                               reason);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string reason = strerror(errno);
    close_fd(fd);
    return Status::Unavailable("listen " + address.to_string() + ": " +
                               reason);
  }
  out.fd = fd;
  out.unix_path = address.path;
  out.bound_address = address.to_string();
  return out;
}

// ---------------------------------------------------------------- channel

namespace {

class SocketChannel : public Channel {
 public:
  SocketChannel(std::string spec, SocketTransportConfig config)
      : spec_(std::move(spec)), config_(config) {
    if (config_.max_connections == 0) {
      config_.max_connections = 1;
    }
    pool_.resize(config_.max_connections);
    auto parsed = parse_socket_address(spec_);
    if (parsed.ok()) {
      address_ = std::move(parsed).value();
      parsed_ok_ = true;
    } else {
      parse_error_ = parsed.status();
    }
    jitter_state_ = config_.jitter_seed ^
                    fnv1a64(reinterpret_cast<const std::uint8_t*>(
                                spec_.data()),
                            spec_.size());
  }

  ~SocketChannel() override {
    std::lock_guard<std::mutex> lock(mutex_);
    for (PooledConn& conn : pool_) {
      close_fd(conn.fd);
    }
  }

  common::Result<Bytes> call(const Bytes& request) override {
    if (!parsed_ok_) {
      return parse_error_;
    }
    if (request.size() > config_.max_frame_bytes) {
      return Status::InvalidArgument(
          "request of " + std::to_string(request.size()) +
          " bytes exceeds the frame bound");
    }
    const std::int64_t deadline = steady_now_ms() + config_.call_timeout_ms;

    // Lease a pooled connection: an idle open one first, else a free slot
    // to dial lazily, else wait (bounded by the call deadline) for a
    // concurrent caller to return one. Backoff state is per-endpoint —
    // inside the window every caller fails fast with the retry hint.
    int slot = -1;
    bool need_dial = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        reap_idle_locked();
        slot = find_slot_locked(/*open=*/true);
        if (slot >= 0) {
          break;
        }
        slot = find_slot_locked(/*open=*/false);
        if (slot >= 0) {
          const std::int64_t now = steady_now_ms();
          if (now < next_attempt_ms_) {
            // Fail fast inside the backoff window — no syscall, and the
            // remaining wait travels as a structured retry hint.
            return Status::Unavailable("reconnect to " + spec_ +
                                       " backing off")
                .with_retry_after(next_attempt_ms_ - now);
          }
          need_dial = true;
          break;
        }
        const std::int64_t remaining = deadline - steady_now_ms();
        if (remaining <= 0) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          return Status::DeadlineExceeded(
              "call deadline expired waiting for a pooled connection to " +
              spec_);
        }
        lease_freed_.wait_for(lock, std::chrono::milliseconds(remaining));
      }
      pool_[slot].leased = true;
    }

    if (need_dial) {
      auto dialed = dial(address_, config_.connect_timeout_ms);
      std::lock_guard<std::mutex> lock(mutex_);
      if (!dialed.ok()) {
        // Capped exponential backoff with deterministic jitter: delay =
        // min(max, base << failures) + U[0, delay/4).
        const std::int64_t shift =
            std::min<std::int64_t>(consecutive_connect_failures_, 20);
        std::int64_t delay = config_.backoff_base_ms;
        if (shift < 63 && (delay << shift) > 0) {
          delay = std::min(config_.backoff_max_ms, delay << shift);
        } else {
          delay = config_.backoff_max_ms;
        }
        if (delay > 4) {
          delay += static_cast<std::int64_t>(splitmix64(jitter_state_) %
                                             static_cast<std::uint64_t>(
                                                 delay / 4));
        }
        delay = std::min(delay, config_.backoff_max_ms);
        next_attempt_ms_ = steady_now_ms() + delay;
        consecutive_connect_failures_++;
        release_locked(slot);
        return dialed.status();
      }
      pool_[slot].fd = dialed.value();
      pool_[slot].last_used_ms = steady_now_ms();
      consecutive_connect_failures_ = 0;
      next_attempt_ms_ = 0;
      connects_.fetch_add(1, std::memory_order_relaxed);
      open_count_++;
      if (open_count_ > pool_peak_.load(std::memory_order_relaxed)) {
        pool_peak_.store(open_count_, std::memory_order_relaxed);
      }
    }

    // The exchange runs outside the channel lock: concurrent callers on
    // different leases overlap on the wire. The fd is private to this
    // lease until release.
    Bytes response;
    const Status io = exchange(pool_[slot].fd, request, deadline, response);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (io.ok()) {
        pool_[slot].last_used_ms = steady_now_ms();
      } else {
        // Any I/O failure poisons the connection: close it and let a
        // later call re-dial lazily. A fresh connection that failed
        // mid-exchange (the peer died between our connect and its reply)
        // is not retried here — the router owns retry policy.
        close_fd(pool_[slot].fd);
        open_count_--;
        if (io.code() == common::StatusCode::kDeadlineExceeded) {
          timeouts_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      release_locked(slot);
    }
    if (!io.ok()) {
      return io;
    }
    return response;
  }

  const std::string& endpoint() const override { return spec_; }

  // Lock-free: stats() must never wait behind a blocking call() (the
  // router snapshots counters while traffic is in flight).
  ChannelStats stats() const override {
    ChannelStats out;
    out.connects = connects_.load(std::memory_order_relaxed);
    out.pool_peak = pool_peak_.load(std::memory_order_relaxed);
    // The first dial of each pool slot grows the pool; dials beyond the
    // peak replaced a torn connection.
    out.reconnects =
        out.connects > out.pool_peak ? out.connects - out.pool_peak : 0;
    out.timeouts = timeouts_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  struct PooledConn {
    int fd = -1;
    std::int64_t last_used_ms = 0;
    bool leased = false;
  };

  int find_slot_locked(bool open) const {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (!pool_[i].leased && (pool_[i].fd >= 0) == open) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void release_locked(int slot) {
    pool_[slot].leased = false;
    lease_freed_.notify_one();
  }

  void reap_idle_locked() {
    if (config_.idle_timeout_ms <= 0) {
      return;
    }
    const std::int64_t now = steady_now_ms();
    for (PooledConn& conn : pool_) {
      if (!conn.leased && conn.fd >= 0 &&
          now - conn.last_used_ms >= config_.idle_timeout_ms) {
        close_fd(conn.fd);
        open_count_--;
      }
    }
  }

  Status exchange(int fd, const Bytes& request, std::int64_t deadline,
                  Bytes& response) {
    if (Status s = write_all(fd, frame_payload(request, config_.auth_key),
                             deadline);
        !s.ok()) {
      return s;
    }
    FrameAssembler assembler(config_.max_frame_bytes, config_.auth_key);
    if (Status s = read_frame(fd, assembler, deadline); !s.ok()) {
      return s;
    }
    response = assembler.take();
    return Status::Ok();
  }

  std::string spec_;
  SocketTransportConfig config_;
  SocketAddress address_;
  bool parsed_ok_ = false;
  Status parse_error_;

  mutable std::mutex mutex_;
  std::condition_variable lease_freed_;
  std::vector<PooledConn> pool_;
  std::int64_t open_count_ = 0;
  std::int64_t consecutive_connect_failures_ = 0;
  std::int64_t next_attempt_ms_ = 0;
  std::uint64_t jitter_state_ = 0;
  std::atomic<std::int64_t> connects_{0};
  std::atomic<std::int64_t> pool_peak_{0};
  std::atomic<std::int64_t> timeouts_{0};
};

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(config) {}

std::shared_ptr<Channel> SocketTransport::connect(const std::string& address) {
  return std::make_shared<SocketChannel>(address, config_);
}

// ----------------------------------------------------------------- server

std::string SocketServerCounters::to_json() const {
  std::string out = "{";
  out += "\"connections\":" + std::to_string(connections);
  out += ",\"connections_shed\":" + std::to_string(connections_shed);
  out += ",\"requests\":" + std::to_string(requests);
  out += ",\"read_errors\":" + std::to_string(read_errors);
  out += ",\"auth_failures\":" + std::to_string(auth_failures);
  out += "}";
  return out;
}

struct SocketServer::Impl {
  SocketServerConfig config;
  WireHandler handler;
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
  std::string unix_path;  // Unlinked on shutdown.

  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, std::thread> connections;
  std::vector<std::uint64_t> finished;  // Ids whose serve loop returned.
  std::uint64_t next_connection_id = 0;
  std::atomic<std::int64_t> active{0};
  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> requests{0};
  std::atomic<std::int64_t> read_errors{0};
  std::atomic<std::int64_t> auth_failures{0};

  /// Joins every connection thread that announced completion. Called with
  /// `mutex` held. A finishing thread pushes its id under the mutex as its
  /// last locked action, so any id visible here belongs to a thread that
  /// is past its serve loop — join() returns ~immediately.
  void reap_finished_locked() {
    for (const std::uint64_t id : finished) {
      auto it = connections.find(id);
      if (it == connections.end()) {
        continue;
      }
      it->second.join();
      connections.erase(it);
    }
    finished.clear();
  }

  /// One connection: sequential framed request/response exchanges. On
  /// shutdown, an exchange already in progress (a partially read request
  /// or a running handler) completes and its response is written; an idle
  /// connection closes at the next 100 ms poll tick.
  void serve_connection(int fd) {
    FrameAssembler assembler(config.max_frame_bytes, config.auth_key);
    std::uint8_t chunk[16384];
    bool mid_frame = false;
    std::int64_t frame_deadline = 0;
    for (;;) {
      if (stopping.load(std::memory_order_relaxed) && !mid_frame) {
        break;  // Graceful: never abandon a request already arriving.
      }
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0 && errno != EINTR) {
        break;
      }
      if (rc <= 0) {
        if (mid_frame && steady_now_ms() > frame_deadline) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
          break;  // Stalled mid-frame: disconnect the peer.
        }
        continue;
      }
      const std::size_t cap = std::min(sizeof(chunk), assembler.want());
      const ssize_t n = ::recv(fd, chunk, cap, 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
          continue;
        }
        if (n < 0 || mid_frame) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
        break;  // Peer closed (cleanly between frames, or torn).
      }
      if (!mid_frame) {
        mid_frame = true;
        frame_deadline = steady_now_ms() + config.io_timeout_ms;
      }
      if (Status s = assembler.feed(chunk, static_cast<std::size_t>(n));
          !s.ok()) {
        if (s.code() == common::StatusCode::kPermissionDenied) {
          // Auth failed at the trust boundary: answer a typed status —
          // the peer's payload was never decoded — then disconnect.
          auth_failures.fetch_add(1, std::memory_order_relaxed);
          const Bytes denial =
              encode_status(Status::PermissionDenied(s.message()));
          write_all(fd, frame_payload(denial, config.auth_key),
                    steady_now_ms() + config.io_timeout_ms);
        } else {
          // Hostile length / checksum mismatch: the peer is feeding us
          // garbage; drop the connection (the client decodes the close
          // as a typed failure on its side).
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      if (!assembler.complete()) {
        continue;
      }
      const Bytes request = assembler.take();
      mid_frame = false;
      requests.fetch_add(1, std::memory_order_relaxed);
      const Bytes response = handler(request);
      const std::int64_t write_deadline =
          steady_now_ms() + config.io_timeout_ms;
      if (!write_all(fd, frame_payload(response, config.auth_key),
                     write_deadline)
               .ok()) {
        break;
      }
      if (stopping.load(std::memory_order_relaxed)) {
        break;  // Drained: last response written, close now.
      }
    }
    ::close(fd);
  }
};

SocketServer::SocketServer(SocketServerConfig config)
    : config_(config), impl_(std::make_shared<Impl>()) {
  impl_->config = config_;
}

SocketServer::~SocketServer() { shutdown(); }

common::Status SocketServer::start(const std::string& address,
                                   WireHandler handler) {
  if (impl_->listen_fd >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  auto parsed = parse_socket_address(address);
  if (!parsed.ok()) {
    return parsed.status();
  }
  auto listener = bind_and_listen(parsed.value());
  if (!listener.ok()) {
    return listener.status();
  }
  bound_address_ = listener.value().bound_address;
  impl_->unix_path = listener.value().unix_path;
  impl_->handler = std::move(handler);
  impl_->listen_fd = listener.value().fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

void SocketServer::accept_loop() {
  auto impl = impl_;
  while (!impl->stopping.load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = impl->listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (rc <= 0) {
      continue;
    }
    int conn = ::accept(impl->listen_fd, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    const std::size_t cap = impl->config.max_connections;
    if (cap > 0 &&
        impl->active.load(std::memory_order_relaxed) >=
            static_cast<std::int64_t>(cap)) {
      // Accept-side shed: over the cap the connection is closed before a
      // thread or frame buffer exists for it — a flood can never exhaust
      // fds/threads ahead of admission control.
      impl->shed.fetch_add(1, std::memory_order_relaxed);
      close_fd(conn);
      continue;
    }
    impl->accepted.fetch_add(1, std::memory_order_relaxed);
    impl->active.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->reap_finished_locked();  // Bound live handles by concurrency.
    const std::uint64_t id = impl->next_connection_id++;
    impl->connections.emplace(id, std::thread([impl, conn, id] {
      impl->serve_connection(conn);
      impl->active.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> finish_lock(impl->mutex);
      impl->finished.push_back(id);
    }));
  }
}

void SocketServer::shutdown() {
  if (!impl_ || impl_->listen_fd < 0) {
    return;
  }
  impl_->stopping.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  close_fd(impl_->listen_fd);
  std::unordered_map<std::uint64_t, std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    connections.swap(impl_->connections);
    impl_->finished.clear();
  }
  for (auto& [id, thread] : connections) {
    (void)id;
    thread.join();  // Drain: in-flight requests answer before closing.
  }
  if (!impl_->unix_path.empty()) {
    ::unlink(impl_->unix_path.c_str());
  }
}

SocketServerCounters SocketServer::counters() const {
  SocketServerCounters out;
  out.connections = impl_->accepted.load(std::memory_order_relaxed);
  out.connections_shed = impl_->shed.load(std::memory_order_relaxed);
  out.requests = impl_->requests.load(std::memory_order_relaxed);
  out.read_errors = impl_->read_errors.load(std::memory_order_relaxed);
  out.auth_failures = impl_->auth_failures.load(std::memory_order_relaxed);
  return out;
}

std::size_t SocketServer::live_connection_threads() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->connections.size();
}

}  // namespace diffpattern::dist
