// ReplicaRouter: load-aware placement over worker replicas.
//
// The router keeps a replica table per model and forwards generate /
// generate_stream requests over the wire to one replica, chosen by
// power-of-two-choices over the workers' reported health (admission depth +
// fused fill ratio) plus the router's own in-flight count. It honors
// workers' retry_after hints: a shedding replica is put on a capped,
// escalating cooldown and traffic redirects to its peers. Transport or
// decode failures (and failed health probes — a replica that stops
// reporting) mark a replica down until a later probe revives it.
//
// The router never alters payload bytes — it forwards the encoded request
// verbatim and returns the decoded response — so the service's byte
// determinism contract extends across replicas: the same (model, seed)
// request yields identical bytes no matter which replica serves it or how
// many failovers happened on the way.
//
// Runtime discovery: sync_directory() reconciles the replica set against a
// WorkerDirectory snapshot (file, registry, or static list — see
// dist/discovery.h) so replicas join and leave a live router without a
// restart. Replica objects are never freed — a replica that leaves the
// directory is *retired* (kept allocated, excluded from routing and
// probing) and revived in place if the directory lists it again — so the
// raw replica pointers refresh_health() holds across its unlocked probes
// stay valid forever.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "service/request.h"

namespace diffpattern::dist {

class WorkerDirectory;  // dist/discovery.h

struct RouterConfig {
  enum class Policy {
    kLoadAware,   ///< Power-of-two-choices over reported load.
    kRoundRobin,  ///< Load-blind baseline (the bench's control arm).
  };
  Policy policy = Policy::kLoadAware;
  /// Seed of the router's replica-sampling RNG (placement only — output
  /// bytes never depend on it).
  std::uint64_t seed = 0;
  /// Probe every replica's health once per this many routed requests
  /// (also the revival path for down replicas). <= 0 disables periodic
  /// probing; refresh_health() probes on demand.
  std::int64_t health_refresh_every = 16;
  /// Cooldown applied to a shedding replica when its status carries no
  /// retry_after hint.
  std::int64_t base_backoff_ms = 5;
  /// Hard cap on any single cooldown, hinted or escalated.
  std::int64_t max_backoff_ms = 250;
};

struct RouterCounters {
  std::int64_t requests = 0;        ///< route() calls (generate + stream).
  std::int64_t redirects = 0;       ///< Sheds answered by trying a peer.
  std::int64_t failovers = 0;       ///< Replicas marked down mid-request.
  std::int64_t sheds_returned = 0;  ///< Requests shed by every replica.
  std::int64_t health_probes = 0;
  std::int64_t health_failures = 0;
  // Per-fault-class breakdown of failovers (failovers == transport_timeouts
  // + transport_errors + decode_failures — the chaos suite asserts it):
  std::int64_t transport_timeouts = 0;  ///< Calls lost to DEADLINE_EXCEEDED.
  std::int64_t transport_errors = 0;    ///< UNAVAILABLE & other call faults.
  std::int64_t decode_failures = 0;     ///< DATA_LOSS or unintelligible reply.
  /// Reconnects summed from every replica channel's ChannelStats at
  /// snapshot time (socket channels report recoveries; loopback is 0).
  std::int64_t reconnects = 0;
  // Runtime discovery (sync_directory):
  std::int64_t directory_adds = 0;      ///< Replicas added or revived.
  std::int64_t directory_removes = 0;   ///< Replicas retired.
  std::int64_t directory_sync_failures = 0;  ///< Unreadable snapshots.

  /// Single-line JSON object ({"requests":N,...}).
  std::string to_json() const;
};

class ReplicaRouter {
 public:
  explicit ReplicaRouter(RouterConfig config = RouterConfig{});
  ~ReplicaRouter();  // Out-of-line: ModelTable is incomplete here.
  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  /// Adds a replica channel for `model`. Thread-safe; replicas may be
  /// added while traffic flows.
  void add_replica(const std::string& model,
                   std::shared_ptr<Channel> channel);

  /// Number of replicas currently routable (not down, not cooling) for
  /// `model`.
  std::int64_t healthy_replicas(const std::string& model) const;

  /// Blocking generate through the best replica, with shed-redirect and
  /// down-failover. NOT_FOUND when no replica is registered for the model;
  /// when every replica sheds, the last shed status (retry hint intact) is
  /// returned so the client can back off.
  common::Result<service::GenerateResult> generate(
      const service::GenerateRequest& request);

  /// Streaming generate: deliveries of the winning replica are replayed to
  /// `callback` in arrival order. A replica that sheds the stream before
  /// delivering anything is redirected like a blocking shed.
  common::Result<service::GenerateStats> generate_stream(
      const service::GenerateRequest& request,
      const service::StreamCallback& callback);

  /// Probes every replica of every model now: a successful probe updates
  /// health and revives a down replica, a failed one marks it down.
  void refresh_health();

  /// Dials the channel for a directory-discovered endpoint address
  /// (typically [&t](const std::string& a) { return t.connect(a); }).
  using ChannelFactory =
      std::function<std::shared_ptr<Channel>(const std::string& address)>;

  struct DirectorySyncStats {
    std::int64_t added = 0;    ///< Replicas added or revived this sync.
    std::int64_t retired = 0;  ///< Replicas retired this sync.
  };

  /// Reconciles the replica set against `directory.snapshot()`: endpoints
  /// new to a model are dialed through `connect` and added, replicas whose
  /// (model, endpoint) pair vanished from the snapshot are retired, and
  /// retired replicas that reappear are revived in place. A snapshot error
  /// is returned (and counted) with the current set untouched — a flaky
  /// directory source never drains a healthy router. Thread-safe; may run
  /// while traffic flows.
  common::Result<DirectorySyncStats> sync_directory(
      WorkerDirectory& directory, const ChannelFactory& connect);

  RouterCounters counters() const;

 private:
  struct Replica;
  struct ModelTable;

  /// Routed send with shed/failover policy; returns the winning replica's
  /// raw response buffer.
  common::Result<Bytes> route(const std::string& model, const Bytes& frame,
                              bool allow_retry);
  Replica* pick_replica(ModelTable& table, std::int64_t now_ms,
                        const std::vector<Replica*>& tried);
  std::uint64_t next_random();
  static std::int64_t now_ms();

  RouterConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ModelTable>> tables_;
  std::uint64_t rng_state_;
  std::int64_t routed_since_probe_ = 0;
  RouterCounters counters_;
};

}  // namespace diffpattern::dist
