// Versioned binary wire protocol for the distributed serving plane.
//
// Every message travels as one frame: a fixed 12-byte header (magic,
// version, message type, payload length) followed by a little-endian
// payload. Encoding is deterministic — the same value always produces the
// same bytes — so byte-compare tests can prove cross-replica identity, and
// endian-fixed so a future socket transport works across hosts. Decoding
// never throws and never reads out of bounds: structural corruption
// (truncation, bad magic, impossible counts) comes back as DATA_LOSS,
// semantic problems (unsupported version, wrong frame type, over-long
// names) as INVALID_ARGUMENT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "service/request.h"

namespace diffpattern::dist {

using Bytes = std::vector<std::uint8_t>;

/// Frame discriminator carried in every header. Values are wire-stable:
/// never renumber, only append.
enum class MessageType : std::uint16_t {
  kGenerateRequest = 1,        ///< Client -> worker: blocking generate.
  kGenerateResult = 2,         ///< Worker -> client: patterns + stats.
  kStreamedPattern = 3,        ///< Worker -> client: one stream delivery.
  kStatus = 4,                 ///< Worker -> client: bare (error) status.
  kWorkerHealth = 5,           ///< Worker -> router: load snapshot.
  kHealthProbe = 6,            ///< Router -> worker: request a snapshot.
  kGenerateStreamRequest = 7,  ///< Client -> worker: streaming generate.
  kStreamEnd = 8,              ///< Worker -> client: stream terminator.
  kWorkerAnnounce = 9,         ///< Worker -> registry: self-announce.
};

inline constexpr std::uint32_t kWireMagic = 0x44505731;  // "DPW1"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Decoder hard limits (fuzz-safety: a hostile length prefix can never
/// drive a large allocation past what the buffer could actually hold).
inline constexpr std::size_t kMaxNameBytes = 256;      ///< model / rule set
inline constexpr std::size_t kMaxMessageBytes = 4096;  ///< status message

/// Load snapshot a worker publishes to the router, derived from its
/// service's counters. `seq` increases with every snapshot so routers can
/// detect a worker that stopped reporting (stale health).
struct WorkerHealth {
  std::string worker;  ///< Worker endpoint name.
  std::uint64_t seq = 0;
  std::int64_t admission_pending = 0;  ///< In-flight admitted requests.
  std::int64_t queue_depth_peak = 0;
  double fused_fill_ratio = 0.0;
  std::int64_t requests_shed = 0;
  std::int64_t requests_accepted = 0;
  std::int64_t requests_completed = 0;
  // Inference memory-plan health (see tensor/arena.h): lets the router's
  // operator surface distinguish a replica running warm plans from one
  // still recording (or running with the arena killed).
  std::int64_t arena_bytes_reserved = 0;
  std::int64_t plan_cache_hits = 0;
  std::int64_t plan_cache_misses = 0;
  std::int64_t embedding_cache_hits = 0;
};

/// Builds a health snapshot from a counters snapshot.
WorkerHealth health_from_counters(const std::string& worker,
                                  std::uint64_t seq,
                                  const common::ServiceCounters& counters);

/// Decoder hard limit on models per announce frame.
inline constexpr std::size_t kMaxAnnounceModels = 1024;

/// A worker's self-announce to a registry (runtime discovery): "I am
/// `worker`, dialable at `address`, serving `models`". The registry acks
/// with a kStatus frame. `address` must be a spec the announcing worker is
/// reachable at from the router's vantage point.
struct WorkerAnnounce {
  std::string worker;                ///< Display name (diagnostics).
  std::string address;               ///< Dialable endpoint spec.
  std::vector<std::string> models;   ///< Model names served.
};

/// Terminal frame of a streaming response: the request's final status
/// (including any retry_after hint on a shed) plus its stats.
struct StreamEnd {
  common::Status status;
  service::GenerateStats stats;
};

/// A decoded Status frame. Wrapped in a struct because Result<Status>
/// would make the payload and the decode error the same type.
struct StatusFrame {
  common::Status status;
};

// -- encoders (total: any in-memory value encodes; determinism is the
//    contract, validation happens on decode) --
Bytes encode_generate_request(const service::GenerateRequest& request,
                              MessageType type = MessageType::kGenerateRequest);
Bytes encode_generate_result(const service::GenerateResult& result);
Bytes encode_streamed_pattern(const service::StreamedPattern& slot);
Bytes encode_status(const common::Status& status);
Bytes encode_worker_health(const WorkerHealth& health);
Bytes encode_health_probe();
Bytes encode_stream_end(const common::Status& status,
                        const service::GenerateStats& stats);
Bytes encode_worker_announce(const WorkerAnnounce& announce);

// -- decoders --
/// Validates the header of the frame starting at `frame[0]` and returns its
/// message type. DATA_LOSS on truncation/bad magic, INVALID_ARGUMENT on an
/// unsupported version or unknown type.
common::Result<MessageType> peek_type(const Bytes& frame);

/// Splits a buffer holding one or more concatenated frames (the shape of a
/// streaming response) into individual frames. Each header is validated;
/// trailing garbage is DATA_LOSS.
common::Result<std::vector<Bytes>> split_frames(const Bytes& buffer);

common::Result<service::GenerateRequest> decode_generate_request(
    const Bytes& frame);
common::Result<service::GenerateResult> decode_generate_result(
    const Bytes& frame);
common::Result<service::StreamedPattern> decode_streamed_pattern(
    const Bytes& frame);
common::Result<StatusFrame> decode_status(const Bytes& frame);
common::Result<WorkerHealth> decode_worker_health(const Bytes& frame);
common::Result<StreamEnd> decode_stream_end(const Bytes& frame);
common::Result<WorkerAnnounce> decode_worker_announce(const Bytes& frame);

}  // namespace diffpattern::dist
