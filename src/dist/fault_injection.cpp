#include "dist/fault_injection.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

namespace diffpattern::dist {

using common::Status;

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform draw in [0, 1) from the shared fate stream.
double draw_unit(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Blocking best-effort write of `count` bytes starting at `data`.
bool send_exact(int fd, const std::uint8_t* data, std::size_t count) {
  std::size_t sent = 0;
  while (sent < count) {
    const ssize_t n = ::send(fd, data + sent, count - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

enum class Fate { kNone, kRefuse, kReset, kCorrupt, kTruncate, kStall };

Fate draw_fate(const FaultConfig& config, std::uint64_t& rng) {
  double u = draw_unit(rng);
  const double fates[] = {
      config.refuse_probability, config.reset_probability,
      config.corrupt_probability, config.truncate_probability,
      config.stall_probability};
  const Fate names[] = {Fate::kRefuse, Fate::kReset, Fate::kCorrupt,
                        Fate::kTruncate, Fate::kStall};
  for (int i = 0; i < 5; ++i) {
    if (u < fates[i]) {
      return names[i];
    }
    u -= fates[i];
  }
  return Fate::kNone;
}

}  // namespace

std::string FaultCounters::to_json() const {
  std::string out = "{";
  out += "\"connections\":" + std::to_string(connections);
  out += ",\"relayed\":" + std::to_string(relayed);
  out += ",\"refused\":" + std::to_string(refused);
  out += ",\"resets\":" + std::to_string(resets);
  out += ",\"corrupted\":" + std::to_string(corrupted);
  out += ",\"truncated\":" + std::to_string(truncated);
  out += ",\"stalled\":" + std::to_string(stalled);
  out += ",\"partitioned\":" + std::to_string(partitioned);
  out += "}";
  return out;
}

struct FaultInjector::Impl {
  std::atomic<bool> stopping{false};
  std::atomic<bool> partitioned{false};
  int listen_fd = -1;
  std::string unix_path;
  std::string upstream;

  std::mutex mutex;  // Guards config, rng, live_fds, threads.
  FaultConfig config;
  std::uint64_t rng = 0;
  std::vector<int> live_fds;
  std::vector<std::thread> threads;

  FaultCounters tallies;  // Guarded by mutex.

  void track(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    live_fds.push_back(fd);
  }

  void untrack(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    live_fds.erase(std::remove(live_fds.begin(), live_fds.end(), fd),
                   live_fds.end());
  }

  void count(std::int64_t FaultCounters::* field) {
    std::lock_guard<std::mutex> lock(mutex);
    tallies.*field += 1;
  }

  /// Interruptible sleep: wakes early on shutdown or partition.
  void sleep_ms(std::int64_t total_ms) {
    const std::int64_t deadline = steady_now_ms() + total_ms;
    while (steady_now_ms() < deadline &&
           !stopping.load(std::memory_order_relaxed) &&
           !partitioned.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::int64_t>(20, deadline - steady_now_ms())));
    }
  }

  /// Reads one full request frame from the client. Returns false when the
  /// peer closed, stalled past the io deadline, fed garbage, or the proxy
  /// is shutting down / partitioned.
  bool read_request(int fd, FrameAssembler& assembler, Bytes* out) {
    std::uint8_t chunk[16384];
    bool mid_frame = false;
    std::int64_t frame_deadline = 0;
    while (!assembler.complete()) {
      if (stopping.load(std::memory_order_relaxed) ||
          partitioned.load(std::memory_order_relaxed)) {
        return false;
      }
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0 && errno != EINTR) {
        return false;
      }
      if (rc <= 0) {
        if (mid_frame && steady_now_ms() > frame_deadline) {
          return false;
        }
        continue;
      }
      const std::size_t cap = std::min(sizeof(chunk), assembler.want());
      const ssize_t n = ::recv(fd, chunk, cap, 0);
      if (n == 0) {
        return false;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return false;
      }
      if (!mid_frame) {
        mid_frame = true;
        frame_deadline = steady_now_ms() + 10000;
      }
      if (!assembler.feed(chunk, static_cast<std::size_t>(n)).ok()) {
        return false;
      }
    }
    *out = assembler.take();
    return true;
  }

  void serve_connection(int fd) {
    Fate fate = Fate::kNone;
    FaultConfig snapshot;
    {
      std::lock_guard<std::mutex> lock(mutex);
      tallies.connections += 1;
      snapshot = config;
      fate = draw_fate(snapshot, rng);
    }
    if (partitioned.load(std::memory_order_relaxed)) {
      count(&FaultCounters::partitioned);
      ::close(fd);
      return;
    }
    if (fate == Fate::kRefuse) {
      // Accept-then-slam: the client observes a reset/closed connection
      // before it can write, the moral equivalent of ECONNREFUSED.
      count(&FaultCounters::refused);
      ::close(fd);
      return;
    }

    track(fd);
    // Upstream leg reuses the real transport — dial failures and torn
    // upstream reads surface as failed relays (client sees a dropped
    // connection, a typed UNAVAILABLE on its side).
    SocketTransportConfig upstream_config;
    upstream_config.call_timeout_ms = snapshot.upstream_timeout_ms;
    upstream_config.connect_timeout_ms = snapshot.upstream_timeout_ms;
    SocketTransport upstream_transport(upstream_config);
    auto channel = upstream_transport.connect(upstream);

    FrameAssembler assembler;
    for (;;) {
      Bytes request;
      if (!read_request(fd, assembler, &request)) {
        break;
      }
      if (partitioned.load(std::memory_order_relaxed)) {
        count(&FaultCounters::partitioned);
        break;
      }
      if (fate == Fate::kReset) {
        // Request consumed, connection torn before any response byte.
        count(&FaultCounters::resets);
        break;
      }
      if (fate == Fate::kStall) {
        // Withhold the response until the client's read deadline trips
        // (bounded so a deadline-less client cannot pin the thread).
        count(&FaultCounters::stalled);
        sleep_ms(snapshot.stall_max_ms);
        break;
      }
      if (snapshot.latency_ms > 0) {
        sleep_ms(snapshot.latency_ms);
        if (stopping.load(std::memory_order_relaxed) ||
            partitioned.load(std::memory_order_relaxed)) {
          break;
        }
      }
      auto response = channel->call(request);
      if (!response.ok()) {
        break;  // Upstream gone: drop the client too.
      }
      Bytes framed = frame_payload(response.value());
      if (fate == Fate::kCorrupt && framed.size() > kSocketFrameHeaderBytes) {
        // Flip one payload byte AFTER the checksum was computed — exactly
        // the in-flight corruption the outer frame exists to catch.
        const std::size_t victim =
            kSocketFrameHeaderBytes +
            (framed.size() - kSocketFrameHeaderBytes) / 2;
        framed[victim] ^= 0x20;
        count(&FaultCounters::corrupted);
        send_exact(fd, framed.data(), framed.size());
        break;
      }
      if (fate == Fate::kTruncate) {
        // Torn write: half the frame, then the connection vanishes.
        count(&FaultCounters::truncated);
        send_exact(fd, framed.data(), framed.size() / 2);
        break;
      }
      if (!send_exact(fd, framed.data(), framed.size())) {
        break;
      }
      count(&FaultCounters::relayed);
    }
    untrack(fd);
    ::close(fd);
  }
};

FaultInjector::FaultInjector(FaultConfig config)
    : impl_(std::make_shared<Impl>()) {
  impl_->config = config;
  impl_->rng = config.seed;
}

FaultInjector::~FaultInjector() { shutdown(); }

common::Status FaultInjector::start(const std::string& listen_address,
                                    const std::string& upstream_address) {
  if (impl_->listen_fd >= 0) {
    return Status::FailedPrecondition("injector already started");
  }
  if (auto upstream = parse_socket_address(upstream_address);
      !upstream.ok()) {
    return upstream.status();
  }
  auto parsed = parse_socket_address(listen_address);
  if (!parsed.ok()) {
    return parsed.status();
  }
  // Shares the transport's getaddrinfo-backed listener, so the proxy
  // speaks the same resolver grammar (hostnames, bracketed IPv6) as the
  // endpoints it sits between.
  auto listener = bind_and_listen(parsed.value());
  if (!listener.ok()) {
    return listener.status();
  }
  address_ = listener.value().bound_address;
  impl_->unix_path = listener.value().unix_path;
  impl_->upstream = upstream_address;
  impl_->listen_fd = listener.value().fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

void FaultInjector::accept_loop() {
  auto impl = impl_;
  while (!impl->stopping.load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = impl->listen_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (rc <= 0) {
      continue;
    }
    const int conn = ::accept(impl->listen_fd, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->threads.emplace_back(
        [impl, conn] { impl->serve_connection(conn); });
  }
}

void FaultInjector::set_partitioned(bool partitioned) {
  impl_->partitioned.store(partitioned, std::memory_order_relaxed);
  if (partitioned) {
    // Kill live connections so in-flight exchanges tear immediately
    // rather than completing through a "partitioned" link.
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const int fd : impl_->live_fds) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
}

void FaultInjector::set_config(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->config = config;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->tallies;
}

void FaultInjector::shutdown() {
  if (!impl_ || impl_->listen_fd < 0) {
    return;
  }
  impl_->stopping.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  ::close(impl_->listen_fd);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    threads.swap(impl_->threads);
    for (const int fd : impl_->live_fds) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (!impl_->unix_path.empty()) {
    ::unlink(impl_->unix_path.c_str());
  }
}

}  // namespace diffpattern::dist
