#include "dist/worker_node.h"

#include <utility>

namespace diffpattern::dist {

std::string WorkerWireCounters::to_json() const {
  std::string out = "{";
  out += "\"calls\":" + std::to_string(calls);
  out += ",\"generate_calls\":" + std::to_string(generate_calls);
  out += ",\"stream_calls\":" + std::to_string(stream_calls);
  out += ",\"health_probes\":" + std::to_string(health_probes);
  out += ",\"decode_errors\":" + std::to_string(decode_errors);
  out += "}";
  return out;
}

WorkerNode::WorkerNode(std::string name, LoopbackTransport& transport,
                       service::ServiceConfig config)
    : name_(std::move(name)), transport_(&transport), service_(config) {
  transport_->register_endpoint(
      name_, [this](const Bytes& request) { return handle(request); });
}

WorkerNode::WorkerNode(std::string name, service::ServiceConfig config)
    : name_(std::move(name)), transport_(nullptr), service_(config) {}

WorkerNode::~WorkerNode() {
  if (transport_ != nullptr) {
    transport_->unregister_endpoint(name_);
  }
}

WorkerHealth WorkerNode::health_snapshot() {
  const std::uint64_t seq =
      health_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return health_from_counters(name_, seq, service_.counters());
}

WorkerAnnounce WorkerNode::announce(const std::string& address) {
  WorkerAnnounce out;
  out.worker = name_;
  out.address = address;
  out.models = service_.models().names();
  return out;
}

Bytes WorkerNode::announce_frame(const std::string& address) {
  return encode_worker_announce(announce(address));
}

WorkerWireCounters WorkerNode::wire_counters() const {
  WorkerWireCounters out;
  out.calls = calls_.load(std::memory_order_relaxed);
  out.generate_calls = generate_calls_.load(std::memory_order_relaxed);
  out.stream_calls = stream_calls_.load(std::memory_order_relaxed);
  out.health_probes = health_probes_.load(std::memory_order_relaxed);
  out.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return out;
}

Bytes WorkerNode::handle(const Bytes& request) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  const auto type = peek_type(request);
  if (!type.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_status(type.status());
  }
  switch (type.value()) {
    case MessageType::kGenerateRequest:
      return handle_generate(request);
    case MessageType::kGenerateStreamRequest:
      return handle_stream(request);
    case MessageType::kHealthProbe:
      health_probes_.fetch_add(1, std::memory_order_relaxed);
      return encode_worker_health(health_snapshot());
    default:
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return encode_status(common::Status::InvalidArgument(
          "worker cannot serve message type " +
          std::to_string(static_cast<std::uint16_t>(type.value()))));
  }
}

Bytes WorkerNode::handle_generate(const Bytes& frame) {
  auto request = decode_generate_request(frame);
  if (!request.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_status(request.status());
  }
  generate_calls_.fetch_add(1, std::memory_order_relaxed);
  auto result = service_.generate(request.value());
  if (!result.ok()) {
    // Rejections (including sheds carrying retry_after hints) travel as a
    // bare Status frame; the hint survives the wire round trip.
    return encode_status(result.status());
  }
  return encode_generate_result(result.value());
}

Bytes WorkerNode::handle_stream(const Bytes& frame) {
  auto request = decode_generate_request(frame);
  if (!request.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_status(request.status());
  }
  stream_calls_.fetch_add(1, std::memory_order_relaxed);
  // The loopback transport answers with one buffer, so the stream frames
  // are concatenated in delivery order; the terminating StreamEnd carries
  // the final status — including the retry_after hint when admission shed
  // the stream — so streaming clients back off identically to blocking
  // ones.
  Bytes out;
  auto stats = service_.generate_stream(
      request.value(), [&out](const service::StreamedPattern& slot) {
        const Bytes encoded = encode_streamed_pattern(slot);
        out.insert(out.end(), encoded.begin(), encoded.end());
      });
  const Bytes end =
      stats.ok() ? encode_stream_end(common::Status::Ok(), stats.value())
                 : encode_stream_end(stats.status(), service::GenerateStats{});
  out.insert(out.end(), end.begin(), end.end());
  return out;
}

}  // namespace diffpattern::dist
