#include "dist/discovery.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace diffpattern::dist {

using common::Result;
using common::Status;

StaticWorkerDirectory::StaticWorkerDirectory(
    std::vector<WorkerEndpoint> endpoints)
    : endpoints_(std::move(endpoints)) {}

Result<std::vector<WorkerEndpoint>> StaticWorkerDirectory::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_;
}

void StaticWorkerDirectory::set_endpoints(
    std::vector<WorkerEndpoint> endpoints) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_ = std::move(endpoints);
}

void StaticWorkerDirectory::add_endpoint(WorkerEndpoint endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_.push_back(std::move(endpoint));
}

void StaticWorkerDirectory::remove_address(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkerEndpoint> kept;
  kept.reserve(endpoints_.size());
  for (WorkerEndpoint& endpoint : endpoints_) {
    if (endpoint.address != address) {
      kept.push_back(std::move(endpoint));
    }
  }
  endpoints_ = std::move(kept);
}

Result<std::vector<WorkerEndpoint>> parse_worker_directory(
    const std::string& text) {
  std::vector<WorkerEndpoint> out;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string model;
    std::string address;
    std::string extra;
    if (!(fields >> model)) {
      continue;  // Blank or comment-only line.
    }
    if (!(fields >> address) || (fields >> extra)) {
      return Status::InvalidArgument(
          "worker directory line " + std::to_string(line_number) +
          ": expected 'MODEL ADDRESS', got '" + line + "'");
    }
    out.push_back(WorkerEndpoint{std::move(model), std::move(address)});
  }
  return out;
}

FileWorkerDirectory::FileWorkerDirectory(std::string path)
    : path_(std::move(path)) {}

Result<std::vector<WorkerEndpoint>> FileWorkerDirectory::snapshot() {
  std::ifstream file(path_, std::ios::binary);
  if (!file) {
    return Status::NotFound("worker directory file '" + path_ +
                            "' is unreadable");
  }
  std::ostringstream text;
  text << file.rdbuf();
  auto parsed = parse_worker_directory(text.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument("worker directory file '" + path_ +
                                   "': " + parsed.status().message());
  }
  return parsed;
}

Result<std::vector<WorkerEndpoint>> WorkerRegistry::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkerEndpoint> out;
  for (const auto& [address, announce] : workers_) {
    for (const std::string& model : announce.models) {
      out.push_back(WorkerEndpoint{model, address});
    }
  }
  return out;
}

common::Status WorkerRegistry::apply_announce(
    const WorkerAnnounce& announce) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (announce.address.empty()) {
    counters_.announce_rejects++;
    return Status::InvalidArgument("worker announce carries no address");
  }
  if (announce.models.empty()) {
    counters_.announce_rejects++;
    return Status::InvalidArgument("worker announce '" + announce.worker +
                                   "' carries no models");
  }
  workers_[announce.address] = announce;
  counters_.announces++;
  return Status::Ok();
}

void WorkerRegistry::remove_address(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (workers_.erase(address) > 0) {
    counters_.removes++;
  }
}

WireHandler WorkerRegistry::handler() {
  return [this](const Bytes& request) -> Bytes {
    auto announce = decode_worker_announce(request);
    if (!announce.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      counters_.announce_rejects++;
      return encode_status(announce.status());
    }
    return encode_status(apply_announce(announce.value()));
  };
}

WorkerRegistryCounters WorkerRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace diffpattern::dist
