// WorkerNode: one serving replica behind the wire protocol.
//
// A WorkerNode owns a PatternService and registers itself as a transport
// endpoint. Incoming frames are decoded, dispatched to the service, and the
// answer is re-encoded — generate requests answer with a GenerateResult (or
// a bare Status on rejection, retry hints intact), streaming requests with
// a concatenation of StreamedPattern frames terminated by a StreamEnd frame
// carrying the final status + stats, and health probes with a WorkerHealth
// snapshot derived from the service counters. Decode failures are answered
// with the typed decode Status — a corrupt frame can never crash a worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "dist/transport.h"
#include "dist/wire.h"
#include "service/pattern_service.h"

namespace diffpattern::dist {

/// Wire-level counters for one worker (distinct from the service's own
/// ServiceCounters: these count frames, not requests inside the service).
struct WorkerWireCounters {
  std::int64_t calls = 0;           ///< Frames dispatched (any type).
  std::int64_t generate_calls = 0;  ///< Blocking generate frames served.
  std::int64_t stream_calls = 0;    ///< Streaming generate frames served.
  std::int64_t health_probes = 0;   ///< Health snapshots answered.
  std::int64_t decode_errors = 0;   ///< Frames rejected at decode.

  /// Single-line JSON object ({"calls":N,...}).
  std::string to_json() const;
};

class WorkerNode {
 public:
  /// Registers endpoint `name` on `transport`. The transport must outlive
  /// the node (the node unregisters itself on destruction). Models are
  /// registered by the caller through service().models().
  WorkerNode(std::string name, LoopbackTransport& transport,
             service::ServiceConfig config = service::ServiceConfig{});
  /// Transport-free node: nothing is registered anywhere — the owner wires
  /// handle() up itself (a SocketServer in the CLI's `serve` mode).
  explicit WorkerNode(std::string name,
                      service::ServiceConfig config = service::ServiceConfig{});
  ~WorkerNode();
  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  const std::string& name() const { return name_; }
  service::PatternService& service() { return service_; }

  /// Current health snapshot (also what a kHealthProbe frame answers);
  /// every call bumps the snapshot sequence number.
  WorkerHealth health_snapshot();

  /// Self-announce for runtime discovery: this worker's name, the
  /// `address` it is dialable at, and every model currently registered.
  /// Sent (as announce_frame) to a WorkerRegistry when the worker comes
  /// up; the registry acks with a kStatus frame.
  WorkerAnnounce announce(const std::string& address);
  Bytes announce_frame(const std::string& address);

  WorkerWireCounters wire_counters() const;

  /// Serves one request buffer; exposed publicly so wire-level tests can
  /// bypass the transport. Never throws.
  Bytes handle(const Bytes& request);

 private:
  Bytes handle_generate(const Bytes& frame);
  Bytes handle_stream(const Bytes& frame);

  std::string name_;
  LoopbackTransport* transport_;  ///< Null for transport-free nodes.
  service::PatternService service_;
  std::atomic<std::uint64_t> health_seq_{0};
  std::atomic<std::int64_t> calls_{0};
  std::atomic<std::int64_t> generate_calls_{0};
  std::atomic<std::int64_t> stream_calls_{0};
  std::atomic<std::int64_t> health_probes_{0};
  std::atomic<std::int64_t> decode_errors_{0};
};

}  // namespace diffpattern::dist
