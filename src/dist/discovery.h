// Runtime worker discovery: the WorkerDirectory seam the ReplicaRouter
// consults to learn which replicas exist NOW, so a fleet can grow and
// shrink under a live router without restart.
//
// A directory is just "snapshot() -> desired (model, address) pairs";
// where those pairs come from is the implementation's business:
//   StaticWorkerDirectory  a fixed in-memory list (the --connect flags of
//                          a CLI invocation), swappable for tests;
//   FileWorkerDirectory    a "model address" text file re-read on every
//                          snapshot — edit the file, re-sync the router,
//                          no process restart (periodic re-read);
//   WorkerRegistry         fed by kWorkerAnnounce wire frames — a worker
//                          dials the registry on startup and announces
//                          itself (self-announce on connect). handler()
//                          plugs straight into a SocketServer.
// The router's sync_directory() diffs a snapshot against its replica set:
// new pairs are added through a caller-supplied channel factory, vanished
// pairs are retired (kept allocated — the router never frees a Replica —
// but excluded from routing until the directory lists them again).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "dist/wire.h"

namespace diffpattern::dist {

/// One desired replica: `model` served at dialable `address`.
struct WorkerEndpoint {
  std::string model;
  std::string address;

  friend bool operator==(const WorkerEndpoint& a, const WorkerEndpoint& b) {
    return a.model == b.model && a.address == b.address;
  }
};

/// The discovery seam: who should be serving right now. Implementations
/// must be safe to snapshot from any thread.
class WorkerDirectory {
 public:
  virtual ~WorkerDirectory() = default;
  /// Current desired replica set. A typed error (NOT_FOUND, DATA_LOSS,
  /// INVALID_ARGUMENT...) means "source unreadable" — the router keeps
  /// its current set rather than draining on a flaky source.
  virtual common::Result<std::vector<WorkerEndpoint>> snapshot() = 0;
};

/// Fixed list, swappable under a lock — the degenerate directory that
/// makes static configuration and runtime discovery the same code path.
class StaticWorkerDirectory : public WorkerDirectory {
 public:
  StaticWorkerDirectory() = default;
  explicit StaticWorkerDirectory(std::vector<WorkerEndpoint> endpoints);

  common::Result<std::vector<WorkerEndpoint>> snapshot() override;

  /// Replaces the whole desired set (takes effect at the next snapshot).
  void set_endpoints(std::vector<WorkerEndpoint> endpoints);
  /// Appends one endpoint (a replica joining).
  void add_endpoint(WorkerEndpoint endpoint);
  /// Drops every endpoint with this address (a replica leaving).
  void remove_address(const std::string& address);

 private:
  std::mutex mutex_;
  std::vector<WorkerEndpoint> endpoints_;
};

/// Parses the worker-directory text format: one "MODEL ADDRESS" pair per
/// line, '#' starts a comment, blank lines ignored. INVALID_ARGUMENT
/// (with the 1-based line number) on anything else.
common::Result<std::vector<WorkerEndpoint>> parse_worker_directory(
    const std::string& text);

/// Re-reads `path` on every snapshot — the periodic-re-read flavor of
/// refresh. NOT_FOUND when the file is unreadable, INVALID_ARGUMENT on a
/// malformed line (both leave a syncing router's current set untouched).
class FileWorkerDirectory : public WorkerDirectory {
 public:
  explicit FileWorkerDirectory(std::string path);

  common::Result<std::vector<WorkerEndpoint>> snapshot() override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct WorkerRegistryCounters {
  std::int64_t announces = 0;        ///< Accepted announce frames.
  std::int64_t announce_rejects = 0; ///< Malformed/invalid announces.
  std::int64_t removes = 0;          ///< Workers removed.
};

/// Registry fed by worker self-announce frames (MessageType::kWorkerAnnounce)
/// — the push flavor of refresh. A re-announce from the same address
/// replaces that worker's model list; remove_address() handles departures
/// (e.g. an operator draining a host).
class WorkerRegistry : public WorkerDirectory {
 public:
  common::Result<std::vector<WorkerEndpoint>> snapshot() override;

  /// Applies one decoded announce. INVALID_ARGUMENT when the announce
  /// carries no address or no models.
  common::Status apply_announce(const WorkerAnnounce& announce);

  /// Drops every model registered by `address`.
  void remove_address(const std::string& address);

  /// WireHandler for a SocketServer: decodes kWorkerAnnounce frames,
  /// applies them, answers a kStatus frame (OK or the typed rejection).
  WireHandler handler();

  WorkerRegistryCounters counters() const;

 private:
  mutable std::mutex mutex_;
  // address -> (worker name, models); map keeps snapshots deterministic.
  std::map<std::string, WorkerAnnounce> workers_;
  WorkerRegistryCounters counters_;
};

}  // namespace diffpattern::dist
