// Socket transport: the dist::Channel seam over real TCP / Unix-domain
// sockets.
//
// The wire bytes (dist/wire.h frames) cross the socket wrapped in one
// outer frame per call: a 12-byte header — u32 payload length (LE) + u64
// FNV-1a checksum of the payload — followed by the payload itself. The
// checksum is what turns in-flight byte corruption into a typed DATA_LOSS
// instead of a silently wrong answer; the length bound is what keeps a
// hostile peer from driving an allocation (lengths above the configured
// cap answer DATA_LOSS before any buffer grows, mirroring wire.cpp's
// decoder limits).
//
// Authenticated mode (optional, pre-shared key): the top bit of the
// length word marks the frame as authenticated and an 8-byte keyed tag —
// FNV-1a composed over (key, length+checksum header, payload, key) —
// follows the checksum. A peer whose mode disagrees is detected the
// moment the 4-byte length word completes (missing/unexpected tag), and a
// wrong key the moment the body completes (tag mismatch); both answer a
// typed PERMISSION_DENIED before any wire-level decode. The unkeyed
// checksum is verified first, so in-flight corruption still reads as
// DATA_LOSS, never as an auth failure.
//
// Addressing goes through getaddrinfo: hostnames, IPv4 literals and
// bracketed IPv6 literals ("tcp:[::1]:7070") all resolve, and a dial
// walks every resolved record (each under the per-attempt connect
// deadline) before giving up. Unresolvable names answer a typed
// INVALID_ARGUMENT.
//
// Division of labor (per ROADMAP): timeouts and reconnect policy live
// HERE — every call carries explicit connect/read/write deadlines, and a
// torn connection reconnects lazily under capped exponential backoff with
// deterministic jitter. Each channel keeps a small pool of connections
// (`max_connections`) so concurrent callers overlap on the wire instead
// of serializing behind one fd; backoff state stays per-endpoint.
// Down-marking, cooldowns, and failover stay in the ReplicaRouter, which
// only sees this transport's typed statuses:
//   UNAVAILABLE        connect refused/reset, peer closed before answering,
//                      or a reconnect attempt still inside its backoff
//                      window (retry_after_ms carries the remaining wait);
//   DEADLINE_EXCEEDED  the call deadline expired (stalled peer, or no
//                      pooled connection freed up in time);
//   DATA_LOSS          torn mid-frame read, checksum mismatch, or a frame
//                      above the size bound;
//   PERMISSION_DENIED  the peer's frame failed authentication (wrong key,
//                      or one side framing plaintext at an authed peer).
// No call ever hangs past its deadline and no failure surfaces untyped.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "dist/wire.h"

namespace diffpattern::dist {

/// Outer framing: [u32 payload length][u64 FNV-1a of payload][payload].
inline constexpr std::size_t kSocketFrameHeaderBytes = 12;
/// Authenticated framing inserts an 8-byte keyed tag after the checksum.
inline constexpr std::size_t kSocketAuthTagBytes = 8;
inline constexpr std::size_t kSocketAuthFrameHeaderBytes =
    kSocketFrameHeaderBytes + kSocketAuthTagBytes;
/// Top bit of the length word: set iff the frame carries an auth tag.
/// Frame lengths are bounded far below 2^31, so the bit is never payload
/// length.
inline constexpr std::uint32_t kSocketFrameAuthFlag = 0x80000000U;
/// Default per-message size bound (requests and responses). Generous for
/// pattern payloads, small enough that a hostile length can never matter.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64ULL << 20;

/// FNV-1a 64-bit over a byte range (the outer-frame checksum).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/// Keyed tag of authenticated framing: FNV-1a composed over
/// (key, 12-byte length+checksum header, payload, key). HMAC-style
/// key-envelope composition — the key mixes in both before and after the
/// message so neither prefix nor suffix extension reproduces the tag.
std::uint64_t socket_frame_tag(const std::string& key,
                               const std::uint8_t* header12,
                               const std::uint8_t* payload,
                               std::size_t payload_size);

/// Wraps one wire-level message in the outer socket frame. A non-empty
/// `auth_key` produces the authenticated layout (flag bit + keyed tag).
Bytes frame_payload(const Bytes& payload, const std::string& auth_key = "");

/// Incremental reassembly of one outer frame from arbitrarily torn reads.
/// feed() accepts any split of the byte stream (the every-prefix sweep in
/// tests/test_socket_transport.cpp drives every boundary); a hostile
/// length is rejected the moment the 4-byte length word completes —
/// before any body allocation — an auth-mode mismatch at the same moment,
/// and a checksum/tag mismatch the moment the body does. Once
/// complete(), take() yields the payload and resets the assembler for the
/// next frame.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                          std::string auth_key = "");

  /// Consumes `size` bytes of stream. DATA_LOSS on a hostile length or a
  /// checksum mismatch; PERMISSION_DENIED on an auth-mode mismatch or a
  /// keyed-tag mismatch. Feeding more bytes than want() (i.e. past the
  /// end of the current frame) is a protocol violation and also
  /// DATA_LOSS.
  common::Status feed(const std::uint8_t* data, std::size_t size);

  /// True once a full, checksum-verified (and, in auth mode, tag-verified)
  /// frame is buffered.
  bool complete() const { return complete_; }
  /// True while no byte of the next frame has arrived yet (readers use
  /// this to tell a clean close between frames from a torn mid-frame one).
  bool empty() const { return header_filled_ == 0 && !complete_; }
  /// Bytes still needed to finish the current parse stage (readers bound
  /// their recv() with this so they never consume the start of the next
  /// frame).
  std::size_t want() const;
  /// Returns the completed payload and resets for the next frame.
  Bytes take();

 private:
  std::size_t header_size() const {
    return auth_key_.empty() ? kSocketFrameHeaderBytes
                             : kSocketAuthFrameHeaderBytes;
  }

  std::size_t max_frame_bytes_;
  std::string auth_key_;
  std::uint8_t header_[kSocketAuthFrameHeaderBytes] = {};
  std::size_t header_filled_ = 0;
  std::size_t expected_ = 0;
  std::uint64_t checksum_ = 0;
  std::uint64_t tag_ = 0;
  Bytes body_;
  bool complete_ = false;
};

/// Parsed endpoint address. Accepted specs:
///   "tcp:HOST:PORT"    hostname or IPv4 literal + port
///   "tcp:[V6]:PORT"    bracketed IPv6 literal + port (e.g. tcp:[::1]:7070)
///   "unix:/path"       Unix-domain socket path
/// Hostnames resolve through getaddrinfo at dial/bind time; an
/// unresolvable name is a typed INVALID_ARGUMENT there, not here.
struct SocketAddress {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kUnix;
  std::string host;         ///< TCP only (no brackets, even for IPv6).
  std::uint16_t port = 0;   ///< TCP only.
  std::string path;         ///< Unix only.
  std::string to_string() const;  ///< IPv6 hosts re-bracketed.
};

/// INVALID_ARGUMENT on malformed specs (unknown scheme, bad port,
/// unterminated bracket, overlong Unix path).
common::Result<SocketAddress> parse_socket_address(const std::string& spec);

/// A bound, listening socket plus the address it actually landed on
/// ("tcp:host:port" with the real port when asked for port 0). Shared by
/// SocketServer and the chaos FaultInjector so both speak the same
/// resolver grammar.
struct ListenSocket {
  int fd = -1;
  std::string bound_address;
  std::string unix_path;  ///< Non-empty for unix sockets; unlink on close.
};

/// Resolves (getaddrinfo, passive), binds and listens. INVALID_ARGUMENT
/// when the host does not resolve, UNAVAILABLE when bind/listen fails.
common::Result<ListenSocket> bind_and_listen(const SocketAddress& address,
                                             int backlog = 64);

struct SocketTransportConfig {
  /// Per-attempt connect deadline — each resolved address record gets its
  /// own attempt under this deadline before the dial falls back to the
  /// next record.
  std::int64_t connect_timeout_ms = 1000;
  /// Whole-call deadline: lease (or connect) + write + read must finish
  /// inside it; expiry answers DEADLINE_EXCEEDED and drops the connection.
  std::int64_t call_timeout_ms = 10000;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Connection pool per endpoint: up to this many concurrent exchanges
  /// overlap on separate connections; extra callers wait (bounded by the
  /// call deadline) for a lease. 1 reproduces the old strictly-serialized
  /// behavior.
  std::size_t max_connections = 4;
  /// Pooled connections idle longer than this are closed at the next
  /// lease (0 disables idle reaping).
  std::int64_t idle_timeout_ms = 30000;
  /// Reconnect backoff after a failed connect: base << consecutive
  /// failures, capped, plus deterministic jitter in [0, delay/4).
  std::int64_t backoff_base_ms = 10;
  std::int64_t backoff_max_ms = 2000;
  /// Seed of the jitter RNG (mixed with the endpoint address so channels
  /// to different endpoints never share a jitter stream).
  std::uint64_t jitter_seed = 0;
  /// Pre-shared key for authenticated framing; empty = plaintext frames.
  /// Must match the server's key byte-for-byte.
  std::string auth_key;
};

/// Channel factory over real sockets. connect() is lazy — sockets are
/// dialed on first use, pooled per endpoint, and re-dialed (under
/// backoff) whenever a connection drops — matching how a router is
/// configured before its workers come up.
class SocketTransport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});

  /// Returns a channel to `address` ("tcp:HOST:PORT", "tcp:[V6]:PORT" or
  /// "unix:/path"). Malformed addresses still return a channel; its calls
  /// fail with the parse error so the router's failover machinery sees a
  /// typed status.
  std::shared_ptr<Channel> connect(const std::string& address);

 private:
  SocketTransportConfig config_;
};

struct SocketServerConfig {
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deadline for finishing a partially received request frame and for
  /// writing a response; a peer that stalls mid-frame is disconnected.
  std::int64_t io_timeout_ms = 10000;
  /// Accept-side cap on concurrently served connections; a connection
  /// accepted past the cap is closed immediately (counted as shed) so a
  /// flood can never exhaust fds/threads before admission control sees a
  /// request. 0 = unlimited.
  std::size_t max_connections = 256;
  /// Pre-shared key for authenticated framing; empty = plaintext. A peer
  /// whose frames fail authentication is answered with a typed
  /// PERMISSION_DENIED status frame and disconnected — its payload is
  /// never decoded.
  std::string auth_key;
};

struct SocketServerCounters {
  std::int64_t connections = 0;        ///< Accepted + admitted connections.
  std::int64_t connections_shed = 0;   ///< Closed at accept (cap exceeded).
  std::int64_t requests = 0;           ///< Handler invocations.
  std::int64_t read_errors = 0;        ///< Connections dropped on bad input.
  std::int64_t auth_failures = 0;      ///< Frames failing the keyed tag.

  /// Single-line JSON object ({"connections":N,...}).
  std::string to_json() const;
};

/// Listening side of the transport: accepts connections on a TCP or Unix
/// socket and serves length-delimited request/response exchanges through a
/// WireHandler (one thread per connection; connections are reused for any
/// number of sequential calls). Finished connection threads are reaped as
/// the accept loop runs, so a long-lived server's live handle count stays
/// bounded by its concurrency, not its history. shutdown() is graceful:
/// the listener closes first, idle connections drop, and in-flight
/// requests run to completion — their responses are written before the
/// connection closes.
class SocketServer {
 public:
  explicit SocketServer(SocketServerConfig config = {});
  ~SocketServer();  // Implies shutdown().
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens on `address` and starts accepting. INVALID_ARGUMENT
  /// on a malformed address or unresolvable host, UNAVAILABLE when the
  /// bind/listen fails.
  common::Status start(const std::string& address, WireHandler handler);

  /// Resolved address actually bound ("tcp:host:port" with the real port
  /// when started with port 0, the Unix path otherwise). Empty before
  /// start().
  const std::string& bound_address() const { return bound_address_; }

  /// Stops accepting, drains in-flight requests, joins every connection
  /// thread. Idempotent.
  void shutdown();

  SocketServerCounters counters() const;

  /// Connection threads currently tracked (serving or awaiting reap).
  /// The reaping regression asserts this stays bounded while thousands of
  /// short-lived connections come and go.
  std::size_t live_connection_threads() const;

 private:
  struct Impl;
  void accept_loop();

  SocketServerConfig config_;
  std::string bound_address_;
  std::shared_ptr<Impl> impl_;
  std::thread accept_thread_;
};

}  // namespace diffpattern::dist
