// Socket transport: the dist::Channel seam over real TCP / Unix-domain
// sockets.
//
// The wire bytes (dist/wire.h frames) cross the socket wrapped in one
// outer frame per call: a 12-byte header — u32 payload length (LE) + u64
// FNV-1a checksum of the payload — followed by the payload itself. The
// checksum is what turns in-flight byte corruption into a typed DATA_LOSS
// instead of a silently wrong answer; the length bound is what keeps a
// hostile peer from driving an allocation (lengths above the configured
// cap answer DATA_LOSS before any buffer grows, mirroring wire.cpp's
// decoder limits).
//
// Division of labor (per ROADMAP): timeouts and reconnect policy live
// HERE — every call carries explicit connect/read/write deadlines, and a
// torn connection reconnects lazily under capped exponential backoff with
// deterministic jitter. Down-marking, cooldowns, and failover stay in the
// ReplicaRouter, which only sees this transport's typed statuses:
//   UNAVAILABLE        connect refused/reset, peer closed before answering,
//                      or a reconnect attempt still inside its backoff
//                      window (retry_after_ms carries the remaining wait);
//   DEADLINE_EXCEEDED  the call deadline expired (stalled peer);
//   DATA_LOSS          torn mid-frame read, checksum mismatch, or a frame
//                      above the size bound.
// No call ever hangs past its deadline and no failure surfaces untyped.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "dist/wire.h"

namespace diffpattern::dist {

/// Outer framing: [u32 payload length][u64 FNV-1a of payload][payload].
inline constexpr std::size_t kSocketFrameHeaderBytes = 12;
/// Default per-message size bound (requests and responses). Generous for
/// pattern payloads, small enough that a hostile length can never matter.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64ULL << 20;

/// FNV-1a 64-bit over a byte range (the outer-frame checksum).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/// Wraps one wire-level message in the outer socket frame.
Bytes frame_payload(const Bytes& payload);

/// Incremental reassembly of one outer frame from arbitrarily torn reads.
/// feed() accepts any split of the byte stream (the every-prefix sweep in
/// tests/test_socket_transport.cpp drives every boundary); a hostile
/// length is rejected the moment the 12-byte header completes — before
/// any body allocation — and a checksum mismatch the moment the body
/// does. Once complete(), take() yields the payload and resets the
/// assembler for the next frame.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Consumes `size` bytes of stream. DATA_LOSS on a hostile length or a
  /// checksum mismatch. Feeding more bytes than want() (i.e. past the end
  /// of the current frame) is a protocol violation and also DATA_LOSS.
  common::Status feed(const std::uint8_t* data, std::size_t size);

  /// True once a full, checksum-verified frame is buffered.
  bool complete() const { return complete_; }
  /// Bytes still needed to finish the current frame (readers bound their
  /// recv() with this so they never consume the start of the next frame).
  std::size_t want() const;
  /// Returns the completed payload and resets for the next frame.
  Bytes take();

 private:
  std::size_t max_frame_bytes_;
  std::uint8_t header_[kSocketFrameHeaderBytes] = {};
  std::size_t header_filled_ = 0;
  std::size_t expected_ = 0;
  std::uint64_t checksum_ = 0;
  Bytes body_;
  bool complete_ = false;
};

/// Parsed endpoint address. Accepted specs:
///   "tcp:HOST:PORT"  numeric IPv4 (or "localhost") + port
///   "unix:/path"     Unix-domain socket path
struct SocketAddress {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kUnix;
  std::string host;         ///< TCP only.
  std::uint16_t port = 0;   ///< TCP only.
  std::string path;         ///< Unix only.
  std::string to_string() const;
};

/// INVALID_ARGUMENT on malformed specs (unknown scheme, bad port, overlong
/// Unix path).
common::Result<SocketAddress> parse_socket_address(const std::string& spec);

struct SocketTransportConfig {
  std::int64_t connect_timeout_ms = 1000;
  /// Whole-call deadline: connect (if needed) + write + read must finish
  /// inside it; expiry answers DEADLINE_EXCEEDED and drops the connection.
  std::int64_t call_timeout_ms = 10000;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Reconnect backoff after a failed connect: base << consecutive
  /// failures, capped, plus deterministic jitter in [0, delay/4).
  std::int64_t backoff_base_ms = 10;
  std::int64_t backoff_max_ms = 2000;
  /// Seed of the jitter RNG (mixed with the endpoint address so channels
  /// to different endpoints never share a jitter stream).
  std::uint64_t jitter_seed = 0;
};

/// Channel factory over real sockets. connect() is lazy — the socket is
/// dialed on the first call(), and re-dialed (under backoff) whenever the
/// connection drops — matching how a router is configured before its
/// workers come up.
class SocketTransport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});

  /// Returns a channel to `address` ("tcp:HOST:PORT" or "unix:/path").
  /// Malformed addresses still return a channel; its calls fail with the
  /// parse error so the router's failover machinery sees a typed status.
  std::shared_ptr<Channel> connect(const std::string& address);

 private:
  SocketTransportConfig config_;
};

struct SocketServerConfig {
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Deadline for finishing a partially received request frame and for
  /// writing a response; a peer that stalls mid-frame is disconnected.
  std::int64_t io_timeout_ms = 10000;
};

struct SocketServerCounters {
  std::int64_t connections = 0;   ///< Accepted connections.
  std::int64_t requests = 0;      ///< Handler invocations.
  std::int64_t read_errors = 0;   ///< Connections dropped on bad input.

  /// Single-line JSON object ({"connections":N,...}).
  std::string to_json() const;
};

/// Listening side of the transport: accepts connections on a TCP or Unix
/// socket and serves length-delimited request/response exchanges through a
/// WireHandler (one thread per connection; connections are reused for any
/// number of sequential calls). shutdown() is graceful: the listener
/// closes first, idle connections drop, and in-flight requests run to
/// completion — their responses are written before the connection closes.
class SocketServer {
 public:
  explicit SocketServer(SocketServerConfig config = {});
  ~SocketServer();  // Implies shutdown().
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens on `address` and starts accepting. INVALID_ARGUMENT
  /// on a malformed address, UNAVAILABLE when the bind/listen fails.
  common::Status start(const std::string& address, WireHandler handler);

  /// Resolved address actually bound ("tcp:host:port" with the real port
  /// when started with port 0, the Unix path otherwise). Empty before
  /// start().
  const std::string& bound_address() const { return bound_address_; }

  /// Stops accepting, drains in-flight requests, joins every connection
  /// thread. Idempotent.
  void shutdown();

  SocketServerCounters counters() const;

 private:
  struct Impl;
  void accept_loop();

  SocketServerConfig config_;
  std::string bound_address_;
  std::shared_ptr<Impl> impl_;
  std::thread accept_thread_;
};

}  // namespace diffpattern::dist
