#include "dist/transport.h"

#include <chrono>
#include <deque>
#include <exception>
#include <thread>
#include <utility>

namespace diffpattern::dist {

/// Shared endpoint table. Channels hold a shared_ptr to it so they outlive
/// the transport safely (calls after transport destruction fail cleanly).
struct LoopbackTransport::Registry {
  struct Endpoint {
    WireHandler handler;
    bool reachable = true;
    std::int64_t latency_ms = 0;
    std::deque<common::Status> pending_failures;
  };

  std::mutex mutex;
  std::map<std::string, Endpoint> endpoints;
};

namespace {

class LoopbackChannel : public Channel {
 public:
  LoopbackChannel(std::shared_ptr<LoopbackTransport::Registry> registry,
                  std::string endpoint)
      : registry_(std::move(registry)), endpoint_(std::move(endpoint)) {}

  common::Result<Bytes> call(const Bytes& request) override {
    WireHandler handler;
    std::int64_t latency_ms = 0;
    {
      std::lock_guard<std::mutex> lock(registry_->mutex);
      auto it = registry_->endpoints.find(endpoint_);
      if (it == registry_->endpoints.end()) {
        return common::Status::Unavailable("endpoint '" + endpoint_ +
                                           "' is not registered");
      }
      if (!it->second.reachable) {
        return common::Status::Unavailable("endpoint '" + endpoint_ +
                                           "' is unreachable");
      }
      if (!it->second.pending_failures.empty()) {
        common::Status injected =
            std::move(it->second.pending_failures.front());
        it->second.pending_failures.pop_front();
        return injected;
      }
      latency_ms = it->second.latency_ms;
      handler = it->second.handler;  // Copy: invoked outside the lock.
    }
    if (latency_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(latency_ms));
    }
    try {
      return handler(request);
    } catch (const std::exception& e) {
      return common::Status::Internal(std::string("handler for '") +
                                      endpoint_ + "' threw: " + e.what());
    } catch (...) {
      return common::Status::Internal("handler for '" + endpoint_ +
                                      "' threw a non-exception");
    }
  }

  const std::string& endpoint() const override { return endpoint_; }

 private:
  std::shared_ptr<LoopbackTransport::Registry> registry_;
  std::string endpoint_;
};

}  // namespace

LoopbackTransport::LoopbackTransport()
    : registry_(std::make_shared<Registry>()) {}

LoopbackTransport::~LoopbackTransport() = default;

void LoopbackTransport::register_endpoint(const std::string& name,
                                          WireHandler handler) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  registry_->endpoints[name] = Registry::Endpoint{std::move(handler), true};
}

void LoopbackTransport::unregister_endpoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  registry_->endpoints.erase(name);
}

void LoopbackTransport::set_endpoint_reachable(const std::string& name,
                                               bool reachable) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  auto it = registry_->endpoints.find(name);
  if (it != registry_->endpoints.end()) {
    it->second.reachable = reachable;
  }
}

void LoopbackTransport::set_endpoint_latency(const std::string& name,
                                             std::int64_t delay_ms) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  auto it = registry_->endpoints.find(name);
  if (it != registry_->endpoints.end()) {
    it->second.latency_ms = delay_ms > 0 ? delay_ms : 0;
  }
}

void LoopbackTransport::inject_call_failure(const std::string& name,
                                            common::Status status) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  auto it = registry_->endpoints.find(name);
  if (it != registry_->endpoints.end()) {
    it->second.pending_failures.push_back(std::move(status));
  }
}

std::shared_ptr<Channel> LoopbackTransport::connect(const std::string& name) {
  return std::make_shared<LoopbackChannel>(registry_, name);
}

}  // namespace diffpattern::dist
