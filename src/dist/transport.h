// Transport abstraction between routers/clients and worker nodes.
//
// A Channel is one client's connection to one worker endpoint: call() sends
// a request buffer and blocks for the response buffer. The only built-in
// implementation is the in-process LoopbackTransport — a name -> handler
// registry that lets tests and benches run a multi-worker topology inside
// one binary — but the Channel seam is exactly where a socket transport
// slots in later: the wire bytes crossing it are already endian-fixed and
// versioned.
//
// Failure semantics mirror a real network: calling a channel whose endpoint
// was unregistered (worker shut down) or marked unreachable (partition
// injection for failover tests) returns UNAVAILABLE, not UB. A handler that
// throws is caught at the boundary and surfaces as INTERNAL.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/wire.h"

namespace diffpattern::dist {

/// Serves one request buffer; the returned buffer may hold one frame or a
/// concatenation of frames (streaming responses).
using WireHandler = std::function<Bytes(const Bytes& request)>;

/// Connection-level statistics a channel exposes to its owner (the router
/// folds these into RouterCounters so transport behavior is visible in one
/// snapshot). In-process channels have nothing to reconnect and report
/// zeros.
struct ChannelStats {
  std::int64_t connects = 0;    ///< Successful connection establishments.
  std::int64_t reconnects = 0;  ///< Connects beyond pool growth (recoveries).
  std::int64_t timeouts = 0;    ///< Calls that tripped a deadline.
  std::int64_t pool_peak = 0;   ///< High-water of concurrently open
                                ///< connections (pooled transports; 0 or 1
                                ///< for single-connection channels).
};

/// One client connection to one endpoint. Thread-safe: call() may be issued
/// from any thread.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual common::Result<Bytes> call(const Bytes& request) = 0;
  /// Endpoint name this channel targets (stable; used in router logs).
  virtual const std::string& endpoint() const = 0;
  /// Connection statistics; default is all-zero (in-process transports).
  virtual ChannelStats stats() const { return {}; }
};

/// In-process transport: a registry of named endpoints. Channels obtained
/// via connect() stay valid after the transport mutates — a call through a
/// channel whose endpoint has vanished fails with UNAVAILABLE (the moral
/// equivalent of a connection refused).
class LoopbackTransport {
 public:
  LoopbackTransport();
  ~LoopbackTransport();

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  /// Registers (or replaces) an endpoint. The handler is invoked on the
  /// caller's thread.
  void register_endpoint(const std::string& name, WireHandler handler);
  /// Removes an endpoint; existing channels to it start failing.
  void unregister_endpoint(const std::string& name);
  /// Partition injection: an unreachable endpoint stays registered but all
  /// calls to it fail with UNAVAILABLE until re-enabled.
  void set_endpoint_reachable(const std::string& name, bool reachable);
  /// Latency injection: every call to `name` sleeps this long before the
  /// handler runs (0 disables). Gives loopback tests the socket
  /// transport's added-latency fault class without sockets.
  void set_endpoint_latency(const std::string& name, std::int64_t delay_ms);
  /// One-shot call failure: the next call to `name` returns `status`
  /// instead of reaching the handler (injections queue in FIFO order).
  /// Mirrors a socket-level timeout/reset so loopback suites can reuse the
  /// chaos assertions.
  void inject_call_failure(const std::string& name, common::Status status);

  /// Returns a channel to `name`. Connecting to a not-yet-registered
  /// endpoint is allowed (calls fail until it registers), matching how a
  /// router can be configured before its workers come up.
  std::shared_ptr<Channel> connect(const std::string& name);

  /// Opaque shared endpoint table (public so the channel implementation in
  /// transport.cpp can hold it; the definition never leaves that file).
  struct Registry;

 private:
  std::shared_ptr<Registry> registry_;
};

}  // namespace diffpattern::dist
