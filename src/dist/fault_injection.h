// Fault-injection proxy for the socket transport.
//
// A FaultInjector sits between a client channel and a real worker socket:
// it listens on its own address, relays framed request/response exchanges
// to an upstream server, and — under a seeded RNG so every chaos run is
// reproducible — injects the network's failure modes one layer below
// where the transport can see them:
//
//   latency     every request is delayed before relaying upstream;
//   refuse      the connection is closed the moment it is accepted
//               (client sees UNAVAILABLE and enters backoff);
//   reset       the request is read, then the connection is torn down
//               before any response byte (UNAVAILABLE);
//   corrupt     one byte of the response payload is flipped in flight —
//               the outer-frame checksum must catch it (DATA_LOSS);
//   truncate    only a prefix of the response frame is relayed before the
//               connection closes (torn read, DATA_LOSS);
//   stall       the response is withheld until the client's read deadline
//               trips (DEADLINE_EXCEEDED);
//   partition   set_partitioned(true) kills every live connection and
//               makes new ones die instantly until lifted.
//
// Each accepted connection draws its fate ONCE from the RNG stream. The
// transport reconnects per failure, so a probability of 1.0 for a fault
// class makes every retry hit it, and mixed probabilities give a
// deterministic storm for a fixed seed and connection order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "dist/socket_transport.h"

namespace diffpattern::dist {

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Added latency per relayed request, before it reaches the upstream.
  std::int64_t latency_ms = 0;
  /// Per-connection fate probabilities (evaluated in this order; the
  /// remainder of the unit interval is a faithful relay).
  double refuse_probability = 0.0;
  double reset_probability = 0.0;
  double corrupt_probability = 0.0;
  double truncate_probability = 0.0;
  double stall_probability = 0.0;
  /// Upper bound on how long a stalled connection is held open (the
  /// client's read deadline should trip long before this).
  std::int64_t stall_max_ms = 60000;
  /// Deadline for the proxy's own upstream calls.
  std::int64_t upstream_timeout_ms = 10000;
};

struct FaultCounters {
  std::int64_t connections = 0;  ///< Accepted (including faulted) conns.
  std::int64_t relayed = 0;      ///< Requests relayed faithfully.
  std::int64_t refused = 0;
  std::int64_t resets = 0;
  std::int64_t corrupted = 0;
  std::int64_t truncated = 0;
  std::int64_t stalled = 0;
  std::int64_t partitioned = 0;  ///< Connections killed by a partition.

  /// Single-line JSON object.
  std::string to_json() const;
};

/// TCP/Unix-socket proxy injecting the faults above. start() binds the
/// listen address (TCP port 0 resolves to a real port, readable via
/// address()) and relays to `upstream_address`. Thread-per-connection;
/// shutdown() (implied by the destructor) stops accepting, unblocks any
/// stalled connection, and joins every thread.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config = {});
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  common::Status start(const std::string& listen_address,
                       const std::string& upstream_address);

  /// Resolved listen address clients should dial. Empty before start().
  const std::string& address() const { return address_; }

  /// Partition control: while partitioned, live connections are killed
  /// and new ones close immediately after accept. Lifting the partition
  /// restores faithful relaying (subject to the configured fates).
  void set_partitioned(bool partitioned);

  /// Replaces the fault configuration; applies to connections accepted
  /// after the call (the RNG stream continues, it is not reseeded).
  void set_config(const FaultConfig& config);

  FaultCounters counters() const;

  void shutdown();

 private:
  struct Impl;
  void accept_loop();

  std::string address_;
  std::shared_ptr<Impl> impl_;
  std::thread accept_thread_;
};

}  // namespace diffpattern::dist
