#include "dist/router.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "dist/discovery.h"

namespace diffpattern::dist {

using common::Result;
using common::Status;

namespace {

bool is_shed(const Status& status) {
  return status.code() == common::StatusCode::kUnavailable ||
         status.code() == common::StatusCode::kResourceExhausted;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string RouterCounters::to_json() const {
  std::string out = "{";
  out += "\"requests\":" + std::to_string(requests);
  out += ",\"redirects\":" + std::to_string(redirects);
  out += ",\"failovers\":" + std::to_string(failovers);
  out += ",\"sheds_returned\":" + std::to_string(sheds_returned);
  out += ",\"health_probes\":" + std::to_string(health_probes);
  out += ",\"health_failures\":" + std::to_string(health_failures);
  out += ",\"transport_timeouts\":" + std::to_string(transport_timeouts);
  out += ",\"transport_errors\":" + std::to_string(transport_errors);
  out += ",\"decode_failures\":" + std::to_string(decode_failures);
  out += ",\"reconnects\":" + std::to_string(reconnects);
  out += ",\"directory_adds\":" + std::to_string(directory_adds);
  out += ",\"directory_removes\":" + std::to_string(directory_removes);
  out += ",\"directory_sync_failures\":" +
         std::to_string(directory_sync_failures);
  out += "}";
  return out;
}

struct ReplicaRouter::Replica {
  std::shared_ptr<Channel> channel;
  WorkerHealth health;
  bool has_health = false;
  bool down = false;
  /// Left the directory: excluded from routing and probing, but never
  /// freed — refresh_health() holds raw Replica pointers across unlocked
  /// probes. A directory re-listing revives the object in place.
  bool retired = false;
  std::int64_t cooldown_until_ms = 0;
  std::int64_t consecutive_sheds = 0;
  std::int64_t inflight = 0;

  /// Lower is better: reported admission depth + the router's own
  /// in-flight count toward this replica + the fused fill ratio as a
  /// fractional tiebreaker. A replica with no health report yet scores by
  /// in-flight only (optimistic — the first probe corrects it).
  double score() const {
    double s = static_cast<double>(inflight);
    if (has_health) {
      s += static_cast<double>(health.admission_pending) +
           health.fused_fill_ratio;
    }
    return s;
  }
};

struct ReplicaRouter::ModelTable {
  std::vector<std::unique_ptr<Replica>> replicas;
  std::size_t rr_next = 0;
};

ReplicaRouter::~ReplicaRouter() = default;

ReplicaRouter::ReplicaRouter(RouterConfig config)
    : config_(config), rng_state_(config.seed ^ 0xD1B54A32D192ED03ULL) {
  config_.base_backoff_ms = std::max<std::int64_t>(1, config_.base_backoff_ms);
  config_.max_backoff_ms =
      std::max(config_.base_backoff_ms, config_.max_backoff_ms);
}

std::int64_t ReplicaRouter::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t ReplicaRouter::next_random() { return splitmix64(rng_state_); }

void ReplicaRouter::add_replica(const std::string& model,
                                std::shared_ptr<Channel> channel) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& table = tables_[model];
  if (!table) {
    table = std::make_unique<ModelTable>();
  }
  auto replica = std::make_unique<Replica>();
  replica->channel = std::move(channel);
  table->replicas.push_back(std::move(replica));
}

std::int64_t ReplicaRouter::healthy_replicas(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(model);
  if (it == tables_.end()) {
    return 0;
  }
  const std::int64_t now = now_ms();
  std::int64_t healthy = 0;
  for (const auto& replica : it->second->replicas) {
    if (!replica->retired && !replica->down &&
        replica->cooldown_until_ms <= now) {
      ++healthy;
    }
  }
  return healthy;
}

void ReplicaRouter::refresh_health() {
  // Snapshot the replica set under the lock, probe outside it (a probe is
  // a transport call and must not serialize routing), then apply results.
  // Replica objects are never removed, so the raw pointers stay valid.
  std::vector<std::pair<Replica*, std::shared_ptr<Channel>>> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [model, table] : tables_) {
      for (auto& replica : table->replicas) {
        if (replica->retired) {
          continue;  // Left the directory; don't probe it back to life.
        }
        targets.emplace_back(replica.get(), replica->channel);
      }
    }
  }
  const Bytes probe = encode_health_probe();
  for (auto& [replica, channel] : targets) {
    auto response = channel->call(probe);
    Result<WorkerHealth> health =
        response.ok() ? decode_worker_health(response.value())
                      : Result<WorkerHealth>(response.status());
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.health_probes++;
    if (health.ok()) {
      replica->health = health.value();
      replica->has_health = true;
      replica->down = false;  // A reachable, decoding replica is revived.
    } else {
      replica->down = true;  // Stopped reporting health -> out of rotation.
      counters_.health_failures++;
    }
  }
}

ReplicaRouter::Replica* ReplicaRouter::pick_replica(
    ModelTable& table, std::int64_t now, const std::vector<Replica*>& tried) {
  std::vector<std::size_t> eligible;
  eligible.reserve(table.replicas.size());
  for (std::size_t i = 0; i < table.replicas.size(); ++i) {
    Replica* r = table.replicas[i].get();
    if (r->retired || r->down || r->cooldown_until_ms > now) {
      continue;
    }
    if (std::find(tried.begin(), tried.end(), r) != tried.end()) {
      continue;
    }
    eligible.push_back(i);
  }
  if (eligible.empty()) {
    return nullptr;
  }
  if (config_.policy == RouterConfig::Policy::kRoundRobin) {
    // First eligible replica at or after the rotating cursor.
    for (std::size_t step = 0; step < table.replicas.size(); ++step) {
      const std::size_t idx = (table.rr_next + step) % table.replicas.size();
      if (std::find(eligible.begin(), eligible.end(), idx) !=
          eligible.end()) {
        table.rr_next = idx + 1;
        return table.replicas[idx].get();
      }
    }
    return table.replicas[eligible.front()].get();
  }
  // Power-of-two-choices: sample two distinct candidates, keep the one
  // with the lower load score (ties break toward the first sample).
  if (eligible.size() == 1) {
    return table.replicas[eligible.front()].get();
  }
  const std::size_t a = eligible[next_random() % eligible.size()];
  std::size_t b = a;
  while (b == a) {
    b = eligible[next_random() % eligible.size()];
  }
  Replica* ra = table.replicas[a].get();
  Replica* rb = table.replicas[b].get();
  return rb->score() < ra->score() ? rb : ra;
}

common::Result<Bytes> ReplicaRouter::route(const std::string& model,
                                           const Bytes& frame,
                                           bool allow_retry) {
  bool probe_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tables_.find(model);
    if (it == tables_.end() || it->second->replicas.empty()) {
      return Status::NotFound("no replicas registered for model '" + model +
                              "'");
    }
    counters_.requests++;
    if (config_.health_refresh_every > 0 &&
        ++routed_since_probe_ >= config_.health_refresh_every) {
      routed_since_probe_ = 0;
      probe_now = true;
    }
  }
  if (probe_now) {
    refresh_health();
  }

  std::vector<Replica*> tried;
  Status last_shed = Status::Ok();
  std::size_t replica_count = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    Replica* replica = nullptr;
    std::shared_ptr<Channel> channel;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ModelTable& table = *tables_.find(model)->second;
      replica_count = table.replicas.size();
      if (attempt < replica_count) {
        replica = pick_replica(table, now_ms(), tried);
      }
      if (replica != nullptr) {
        replica->inflight++;
        channel = replica->channel;
      }
    }
    if (replica == nullptr) {
      break;  // Every routable replica tried (or cooling / down).
    }
    tried.push_back(replica);

    auto response = channel->call(frame);  // Blocking; lock released.

    std::lock_guard<std::mutex> lock(mutex_);
    replica->inflight--;
    if (!response.ok()) {
      replica->down = true;  // Transport failure: connection-level fault.
      counters_.failovers++;
      switch (response.status().code()) {
        case common::StatusCode::kDeadlineExceeded:
          counters_.transport_timeouts++;
          break;
        case common::StatusCode::kDataLoss:
          counters_.decode_failures++;  // Torn/corrupt frame at transport.
          break;
        default:
          counters_.transport_errors++;
          break;
      }
      continue;
    }
    // Classify the response. A bare Status frame carrying a shed code (or
    // a shed-terminated empty stream) triggers redirect-with-cooldown; any
    // other well-formed response is the caller's to decode.
    const auto type = peek_type(response.value());
    if (!type.ok()) {
      replica->down = true;  // Unintelligible reply: treat as faulty.
      counters_.failovers++;
      counters_.decode_failures++;
      continue;
    }
    Status shed = Status::Ok();
    if (type.value() == MessageType::kStatus) {
      auto decoded = decode_status(response.value());
      if (!decoded.ok() || decoded.value().status.ok()) {
        // Undecodable — or nonsensical (a bare OK status is not a valid
        // generate answer): treat the replica as faulty.
        replica->down = true;
        counters_.failovers++;
        counters_.decode_failures++;
        continue;
      }
      if (!is_shed(decoded.value().status)) {
        return decoded.value().status;  // Typed caller error, verbatim.
      }
      shed = decoded.value().status;
    } else if (type.value() == MessageType::kStreamEnd) {
      // Stream shed: the worker delivered nothing and terminated with a
      // shed status — safe to replay elsewhere (zero deliveries reached
      // the client). Partial streams start with a kStreamedPattern frame
      // and are never retried.
      auto end = decode_stream_end(response.value());
      if (end.ok() && is_shed(end.value().status)) {
        shed = end.value().status;
      } else {
        return std::move(response).value();
      }
    } else {
      replica->consecutive_sheds = 0;
      return std::move(response).value();
    }

    // Shed: honor the worker's retry hint as this replica's cooldown,
    // escalating on consecutive sheds, capped at max_backoff_ms.
    std::int64_t backoff =
        shed.has_retry_after() ? shed.retry_after_ms() : config_.base_backoff_ms;
    const std::int64_t shift =
        std::min<std::int64_t>(replica->consecutive_sheds, 6);
    backoff = std::min(config_.max_backoff_ms, backoff << shift);
    replica->cooldown_until_ms = now_ms() + backoff;
    replica->consecutive_sheds++;
    last_shed = shed;
    counters_.redirects++;
    if (!allow_retry) {
      break;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!last_shed.ok()) {
    // Every replica shed: hand the client the last hinted status so it
    // backs off exactly as it would against a single overloaded worker.
    counters_.sheds_returned++;
    return last_shed;
  }
  return Status::Unavailable("all " + std::to_string(replica_count) +
                             " replicas for model '" + model +
                             "' are down or cooling");
}

common::Result<service::GenerateResult> ReplicaRouter::generate(
    const service::GenerateRequest& request) {
  const Bytes frame = encode_generate_request(request);
  auto response = route(request.model, frame, /*allow_retry=*/true);
  if (!response.ok()) {
    return response.status();
  }
  auto result = decode_generate_result(response.value());
  if (!result.ok()) {
    return result.status();
  }
  return std::move(result).value();
}

common::Result<service::GenerateStats> ReplicaRouter::generate_stream(
    const service::GenerateRequest& request,
    const service::StreamCallback& callback) {
  const Bytes frame =
      encode_generate_request(request, MessageType::kGenerateStreamRequest);
  auto response = route(request.model, frame, /*allow_retry=*/true);
  if (!response.ok()) {
    return response.status();
  }
  auto frames = split_frames(response.value());
  if (!frames.ok()) {
    return frames.status();
  }
  // Decode everything before invoking the callback: a corrupt tail must
  // not leak half a stream to the client.
  std::vector<service::StreamedPattern> slots;
  StreamEnd end;
  bool saw_end = false;
  for (const Bytes& f : frames.value()) {
    const auto type = peek_type(f);
    if (!type.ok()) {
      return type.status();
    }
    if (saw_end) {
      return Status::DataLoss("frames after stream end");
    }
    if (type.value() == MessageType::kStreamedPattern) {
      auto slot = decode_streamed_pattern(f);
      if (!slot.ok()) {
        return slot.status();
      }
      slots.push_back(std::move(slot).value());
    } else if (type.value() == MessageType::kStreamEnd) {
      auto decoded = decode_stream_end(f);
      if (!decoded.ok()) {
        return decoded.status();
      }
      end = std::move(decoded).value();
      saw_end = true;
    } else {
      return Status::InvalidArgument("unexpected frame in stream response");
    }
  }
  if (!saw_end) {
    return Status::DataLoss("stream response missing its end frame");
  }
  for (const auto& slot : slots) {
    callback(slot);
  }
  if (!end.status.ok()) {
    return end.status;
  }
  return end.stats;
}

common::Result<ReplicaRouter::DirectorySyncStats>
ReplicaRouter::sync_directory(WorkerDirectory& directory,
                              const ChannelFactory& connect) {
  auto snapshot = directory.snapshot();
  if (!snapshot.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.directory_sync_failures++;
    return snapshot.status();
  }
  const std::vector<WorkerEndpoint>& desired = snapshot.value();
  const auto listed = [&desired](const std::string& model,
                                 const std::string& address) {
    for (const WorkerEndpoint& endpoint : desired) {
      if (endpoint.model == model && endpoint.address == address) {
        return true;
      }
    }
    return false;
  };

  DirectorySyncStats stats;
  // Pass 1 (locked): retire vanished replicas, revive re-listed ones, and
  // collect the endpoints that need a fresh channel.
  std::vector<WorkerEndpoint> to_add;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [model, table] : tables_) {
      for (auto& replica : table->replicas) {
        const bool wanted = listed(model, replica->channel->endpoint());
        if (!wanted && !replica->retired) {
          replica->retired = true;
          counters_.directory_removes++;
          stats.retired++;
        } else if (wanted && replica->retired) {
          // Revive in place: same channel, clean slate for health/backoff.
          replica->retired = false;
          replica->down = false;
          replica->cooldown_until_ms = 0;
          replica->consecutive_sheds = 0;
          counters_.directory_adds++;
          stats.added++;
        }
      }
    }
    for (const WorkerEndpoint& endpoint : desired) {
      bool present = false;
      auto it = tables_.find(endpoint.model);
      if (it != tables_.end()) {
        for (const auto& replica : it->second->replicas) {
          if (replica->channel->endpoint() == endpoint.address) {
            present = true;
            break;
          }
        }
      }
      if (!present) {
        to_add.push_back(endpoint);
      }
    }
  }
  // Pass 2 (unlocked): dial the new endpoints — the factory may do real
  // work — then insert under the lock, re-checking presence so two
  // concurrent syncs never double-add.
  for (const WorkerEndpoint& endpoint : to_add) {
    std::shared_ptr<Channel> channel = connect(endpoint.address);
    if (!channel) {
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto& table = tables_[endpoint.model];
    if (!table) {
      table = std::make_unique<ModelTable>();
    }
    bool present = false;
    for (const auto& replica : table->replicas) {
      if (replica->channel->endpoint() == endpoint.address) {
        present = true;
        break;
      }
    }
    if (present) {
      continue;
    }
    auto replica = std::make_unique<Replica>();
    replica->channel = std::move(channel);
    table->replicas.push_back(std::move(replica));
    counters_.directory_adds++;
    stats.added++;
  }
  return stats;
}

RouterCounters ReplicaRouter::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RouterCounters out = counters_;
  // Reconnects belong to the transport layer; fold each channel's stats in
  // at snapshot time so the counter needs no write path in route().
  for (const auto& [model, table] : tables_) {
    for (const auto& replica : table->replicas) {
      out.reconnects += replica->channel->stats().reconnects;
    }
  }
  return out;
}

}  // namespace diffpattern::dist
