#include "io/gds.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/contracts.h"
#include "geometry/components.h"

namespace diffpattern::io {

namespace {

// Record types (subset).
constexpr std::uint8_t kHeader = 0x00;
constexpr std::uint8_t kBgnLib = 0x01;
constexpr std::uint8_t kLibName = 0x02;
constexpr std::uint8_t kUnits = 0x03;
constexpr std::uint8_t kEndLib = 0x04;
constexpr std::uint8_t kBgnStr = 0x05;
constexpr std::uint8_t kStrName = 0x06;
constexpr std::uint8_t kEndStr = 0x07;
constexpr std::uint8_t kBoundary = 0x08;
constexpr std::uint8_t kLayer = 0x0D;
constexpr std::uint8_t kDatatype = 0x0E;
constexpr std::uint8_t kXy = 0x10;
constexpr std::uint8_t kEndEl = 0x11;

// Data types.
constexpr std::uint8_t kNoData = 0x00;
constexpr std::uint8_t kInt16 = 0x02;
constexpr std::uint8_t kInt32 = 0x03;
constexpr std::uint8_t kReal8 = 0x05;
constexpr std::uint8_t kAscii = 0x06;

class RecordWriter {
 public:
  explicit RecordWriter(std::ofstream& out) : out_(out) {}

  void record(std::uint8_t type, std::uint8_t data_type,
              const std::vector<std::uint8_t>& payload) {
    const auto length = static_cast<std::uint16_t>(payload.size() + 4);
    DP_REQUIRE(payload.size() + 4 <= 0xFFFF, "gds: record too long");
    put_u16(length);
    out_.put(static_cast<char>(type));
    out_.put(static_cast<char>(data_type));
    out_.write(reinterpret_cast<const char*>(payload.data()),
               static_cast<std::streamsize>(payload.size()));
  }

  static void append_i16(std::vector<std::uint8_t>& payload,
                         std::int16_t value) {
    payload.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
    payload.push_back(static_cast<std::uint8_t>(value & 0xFF));
  }

  static void append_i32(std::vector<std::uint8_t>& payload,
                         std::int32_t value) {
    const auto u = static_cast<std::uint32_t>(value);
    payload.push_back(static_cast<std::uint8_t>((u >> 24) & 0xFF));
    payload.push_back(static_cast<std::uint8_t>((u >> 16) & 0xFF));
    payload.push_back(static_cast<std::uint8_t>((u >> 8) & 0xFF));
    payload.push_back(static_cast<std::uint8_t>(u & 0xFF));
  }

  static void append_u64(std::vector<std::uint8_t>& payload,
                         std::uint64_t value) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      payload.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
    }
  }

  static std::vector<std::uint8_t> ascii_payload(const std::string& text) {
    std::vector<std::uint8_t> payload(text.begin(), text.end());
    if (payload.size() % 2 != 0) {
      payload.push_back(0);  // GDS strings are padded to even length.
    }
    return payload;
  }

 private:
  void put_u16(std::uint16_t value) {
    out_.put(static_cast<char>((value >> 8) & 0xFF));
    out_.put(static_cast<char>(value & 0xFF));
  }

  std::ofstream& out_;
};

struct RawRecord {
  std::uint8_t type = 0;
  std::uint8_t data_type = 0;
  std::vector<std::uint8_t> payload;
};

class RecordReader {
 public:
  explicit RecordReader(std::ifstream& in) : in_(in) {}

  bool next(RawRecord& record) {
    const int hi = in_.get();
    if (hi == EOF) {
      return false;
    }
    const int lo = in_.get();
    const int type = in_.get();
    const int data_type = in_.get();
    if (lo == EOF || type == EOF || data_type == EOF) {
      throw std::runtime_error("gds: truncated record header");
    }
    const auto length = static_cast<std::size_t>((hi << 8) | lo);
    if (length < 4) {
      throw std::runtime_error("gds: invalid record length");
    }
    record.type = static_cast<std::uint8_t>(type);
    record.data_type = static_cast<std::uint8_t>(data_type);
    record.payload.resize(length - 4);
    in_.read(reinterpret_cast<char*>(record.payload.data()),
             static_cast<std::streamsize>(record.payload.size()));
    if (!in_ && !record.payload.empty()) {
      throw std::runtime_error("gds: truncated record payload");
    }
    return true;
  }

 private:
  std::ifstream& in_;
};

std::int16_t read_i16(const std::vector<std::uint8_t>& payload,
                      std::size_t offset) {
  DP_REQUIRE(offset + 2 <= payload.size(), "gds: short i16 payload");
  return static_cast<std::int16_t>((payload[offset] << 8) |
                                   payload[offset + 1]);
}

std::int32_t read_i32(const std::vector<std::uint8_t>& payload,
                      std::size_t offset) {
  DP_REQUIRE(offset + 4 <= payload.size(), "gds: short i32 payload");
  return static_cast<std::int32_t>(
      (static_cast<std::uint32_t>(payload[offset]) << 24) |
      (static_cast<std::uint32_t>(payload[offset + 1]) << 16) |
      (static_cast<std::uint32_t>(payload[offset + 2]) << 8) |
      static_cast<std::uint32_t>(payload[offset + 3]));
}

std::string read_ascii(const std::vector<std::uint8_t>& payload) {
  std::string text(payload.begin(), payload.end());
  while (!text.empty() && text.back() == '\0') {
    text.pop_back();
  }
  return text;
}

std::vector<std::uint8_t> timestamp_payload() {
  // Twelve i16 fields (creation + modification date); fixed for
  // reproducible output.
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 12; ++i) {
    RecordWriter::append_i16(payload, 0);
  }
  return payload;
}

}  // namespace

std::uint64_t encode_gds_real(double value) {
  if (value == 0.0) {
    return 0;
  }
  std::uint64_t sign = 0;
  if (value < 0.0) {
    sign = 1;
    value = -value;
  }
  // Normalize mantissa into [1/16, 1) with base-16 exponent.
  int exponent = 64;
  while (value >= 1.0) {
    value /= 16.0;
    ++exponent;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exponent;
  }
  DP_REQUIRE(exponent >= 0 && exponent <= 127, "gds real: exponent overflow");
  const auto mantissa = static_cast<std::uint64_t>(
      std::llround(value * 72057594037927936.0));  // value * 2^56
  return (sign << 63) | (static_cast<std::uint64_t>(exponent) << 56) |
         (mantissa & 0x00FFFFFFFFFFFFFFULL);
}

double decode_gds_real(std::uint64_t bits) {
  if (bits == 0) {
    return 0.0;
  }
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const double mantissa =
      static_cast<double>(bits & 0x00FFFFFFFFFFFFFFULL) /
      72057594037927936.0;  // / 2^56
  const double value = mantissa * std::pow(16.0, exponent);
  return negative ? -value : value;
}

void write_gds(const std::string& path, const GdsLibrary& library) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_gds: cannot open " + path);
  }
  RecordWriter writer(out);
  {
    std::vector<std::uint8_t> payload;
    RecordWriter::append_i16(payload, 600);  // Stream version 6.
    writer.record(kHeader, kInt16, payload);
  }
  writer.record(kBgnLib, kInt16, timestamp_payload());
  writer.record(kLibName, kAscii, RecordWriter::ascii_payload(library.name));
  {
    // Database unit = 1 nm: 1e-3 user units (um), 1e-9 meters.
    std::vector<std::uint8_t> payload;
    RecordWriter::append_u64(payload, encode_gds_real(1e-3));
    RecordWriter::append_u64(payload, encode_gds_real(1e-9));
    writer.record(kUnits, kReal8, payload);
  }
  for (const auto& structure : library.structures) {
    writer.record(kBgnStr, kInt16, timestamp_payload());
    writer.record(kStrName, kAscii,
                  RecordWriter::ascii_payload(structure.name));
    for (const auto& polygon : structure.polygons) {
      DP_REQUIRE(polygon.ring.size() >= 3, "write_gds: degenerate polygon");
      writer.record(kBoundary, kNoData, {});
      {
        std::vector<std::uint8_t> payload;
        RecordWriter::append_i16(payload, polygon.layer);
        writer.record(kLayer, kInt16, payload);
      }
      {
        std::vector<std::uint8_t> payload;
        RecordWriter::append_i16(payload, polygon.datatype);
        writer.record(kDatatype, kInt16, payload);
      }
      {
        std::vector<std::uint8_t> payload;
        for (const auto& point : polygon.ring) {
          RecordWriter::append_i32(payload,
                                   static_cast<std::int32_t>(point.x));
          RecordWriter::append_i32(payload,
                                   static_cast<std::int32_t>(point.y));
        }
        // GDSII closes the ring explicitly.
        RecordWriter::append_i32(
            payload, static_cast<std::int32_t>(polygon.ring.front().x));
        RecordWriter::append_i32(
            payload, static_cast<std::int32_t>(polygon.ring.front().y));
        writer.record(kXy, kInt32, payload);
      }
      writer.record(kEndEl, kNoData, {});
    }
    writer.record(kEndStr, kNoData, {});
  }
  writer.record(kEndLib, kNoData, {});
  if (!out) {
    throw std::runtime_error("write_gds: write failed for " + path);
  }
}

GdsLibrary read_gds(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_gds: cannot open " + path);
  }
  RecordReader reader(in);
  RawRecord record;
  GdsLibrary library;
  GdsStructure* current_structure = nullptr;
  GdsPolygon* current_polygon = nullptr;
  bool saw_header = false;
  bool ended = false;
  while (reader.next(record)) {
    switch (record.type) {
      case kHeader:
        saw_header = true;
        break;
      case kLibName:
        library.name = read_ascii(record.payload);
        break;
      case kBgnStr:
        library.structures.emplace_back();
        current_structure = &library.structures.back();
        break;
      case kStrName:
        DP_REQUIRE(current_structure != nullptr, "gds: STRNAME outside STR");
        current_structure->name = read_ascii(record.payload);
        break;
      case kBoundary:
        DP_REQUIRE(current_structure != nullptr, "gds: BOUNDARY outside STR");
        current_structure->polygons.emplace_back();
        current_polygon = &current_structure->polygons.back();
        break;
      case kLayer:
        DP_REQUIRE(current_polygon != nullptr, "gds: LAYER outside element");
        current_polygon->layer = read_i16(record.payload, 0);
        break;
      case kDatatype:
        DP_REQUIRE(current_polygon != nullptr,
                   "gds: DATATYPE outside element");
        current_polygon->datatype = read_i16(record.payload, 0);
        break;
      case kXy: {
        DP_REQUIRE(current_polygon != nullptr, "gds: XY outside element");
        DP_REQUIRE(record.payload.size() % 8 == 0, "gds: odd XY payload");
        const auto points = record.payload.size() / 8;
        DP_REQUIRE(points >= 4, "gds: XY ring too short");
        for (std::size_t i = 0; i + 1 < points; ++i) {  // Drop the closure.
          current_polygon->ring.push_back(geometry::Point{
              read_i32(record.payload, i * 8),
              read_i32(record.payload, i * 8 + 4)});
        }
        break;
      }
      case kEndEl:
        current_polygon = nullptr;
        break;
      case kEndStr:
        current_structure = nullptr;
        break;
      case kEndLib:
        ended = true;
        break;
      default:
        break;  // Ignore records this subset does not model (UNITS, BGNLIB).
    }
    if (ended) {
      break;
    }
  }
  if (!saw_header || !ended) {
    throw std::runtime_error("read_gds: missing HEADER or ENDLIB in " + path);
  }
  return library;
}

GdsStructure pattern_to_structure(const layout::SquishPattern& pattern,
                                  const std::string& name,
                                  std::int16_t layer) {
  pattern.validate();
  GdsStructure structure;
  structure.name = name;
  // nm prefix sums.
  std::vector<geometry::Coord> xs(pattern.dx.size() + 1, 0);
  for (std::size_t i = 0; i < pattern.dx.size(); ++i) {
    xs[i + 1] = xs[i] + pattern.dx[i];
  }
  std::vector<geometry::Coord> ys(pattern.dy.size() + 1, 0);
  for (std::size_t i = 0; i < pattern.dy.size(); ++i) {
    ys[i + 1] = ys[i] + pattern.dy[i];
  }
  const auto analysis = geometry::analyze_components(pattern.topology);
  for (const auto& component : analysis.components) {
    const auto grid_ring =
        geometry::trace_outer_boundary(analysis, component.id);
    GdsPolygon polygon;
    polygon.layer = layer;
    polygon.ring.reserve(grid_ring.size());
    for (const auto& vertex : grid_ring) {
      polygon.ring.push_back(geometry::Point{
          xs[static_cast<std::size_t>(vertex.x)],
          ys[static_cast<std::size_t>(vertex.y)]});
    }
    structure.polygons.push_back(std::move(polygon));
  }
  return structure;
}

void write_pattern_library_gds(
    const std::string& path,
    const std::vector<layout::SquishPattern>& patterns, std::int16_t layer) {
  GdsLibrary library;
  library.structures.reserve(patterns.size());
  char name[32];
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    std::snprintf(name, sizeof(name), "PATTERN_%04zu", i);
    library.structures.push_back(
        pattern_to_structure(patterns[i], name, layer));
  }
  write_gds(path, library);
}

}  // namespace diffpattern::io
