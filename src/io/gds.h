// Minimal GDSII stream-format writer/reader.
//
// Writes generated pattern libraries as standard GDSII so downstream tools
// (KLayout, commercial DRC) can open them directly: one structure (cell) per
// pattern, one BOUNDARY element per polygon, database unit 1 nm. The reader
// supports the subset this writer emits (enough for lossless round-trip
// verification); it is not a general-purpose GDS parser.
//
// Record framing: u16 big-endian length (header included), u8 record type,
// u8 data type, payload. Reals use the GDSII excess-64 base-16 format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/types.h"
#include "layout/squish.h"

namespace diffpattern::io {

struct GdsPolygon {
  std::int16_t layer = 1;
  std::int16_t datatype = 0;
  /// Closed rectilinear ring in nm; first vertex NOT repeated (the writer
  /// closes the loop on disk as GDSII requires).
  std::vector<geometry::Point> ring;
};

struct GdsStructure {
  std::string name;
  std::vector<GdsPolygon> polygons;
};

struct GdsLibrary {
  std::string name = "DIFFPATTERN";
  std::vector<GdsStructure> structures;
};

/// Serializes the library with 1 nm database units.
void write_gds(const std::string& path, const GdsLibrary& library);

/// Parses a file written by write_gds (same record subset). Throws
/// std::runtime_error on malformed input.
GdsLibrary read_gds(const std::string& path);

/// Converts a squish pattern into one GDS structure: polygons are the
/// 4-connected components of the topology, traced to rectilinear rings and
/// scaled by the geometric vectors.
GdsStructure pattern_to_structure(const layout::SquishPattern& pattern,
                                  const std::string& name,
                                  std::int16_t layer = 1);

/// Convenience: writes a whole pattern library ("PATTERN_0000", ...).
void write_pattern_library_gds(const std::string& path,
                               const std::vector<layout::SquishPattern>&
                                   patterns,
                               std::int16_t layer = 1);

/// GDSII 8-byte real encoding (exposed for tests).
std::uint64_t encode_gds_real(double value);
double decode_gds_real(std::uint64_t bits);

}  // namespace diffpattern::io
