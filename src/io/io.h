// Output utilities: PGM image dumps (the repository's stand-in for the
// paper's pattern figures), CSV writers, and a binary pattern-library
// format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/grid.h"
#include "layout/squish.h"

namespace diffpattern::io {

/// Writes a binary grid as an 8-bit PGM image; each cell becomes a
/// `cell_px` x `cell_px` block (shape = dark, space = light). Row 0 of the
/// grid is the bottom of the image.
void write_grid_pgm(const std::string& path, const geometry::BinaryGrid& grid,
                    std::int64_t cell_px = 8);

/// Rasterizes a squish pattern at true nm proportions into an
/// image_px x image_px PGM.
void write_pattern_pgm(const std::string& path,
                       const layout::SquishPattern& pattern,
                       std::int64_t image_px = 256);

/// Writes CSV content (caller formats rows; this handles I/O errors).
void write_text_file(const std::string& path, const std::string& content);

/// Binary pattern library: stores topology + deltas for each pattern.
void save_pattern_library(const std::string& path,
                          const std::vector<layout::SquishPattern>& patterns);
std::vector<layout::SquishPattern> load_pattern_library(
    const std::string& path);

/// Creates the directory (and parents) if missing; returns the path.
std::string ensure_directory(const std::string& path);

}  // namespace diffpattern::io
