#include "io/io.h"

#include <filesystem>
#include <fstream>

#include "common/contracts.h"

namespace diffpattern::io {

using geometry::BinaryGrid;
using layout::SquishPattern;

namespace {

constexpr std::uint8_t kShapeGray = 40;
constexpr std::uint8_t kSpaceGray = 230;

void write_pgm(const std::string& path, std::int64_t width,
               std::int64_t height, const std::vector<std::uint8_t>& pixels) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_pgm: cannot open " + path);
  }
  out << "P5\n" << width << ' ' << height << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size()));
  if (!out) {
    throw std::runtime_error("write_pgm: write failed for " + path);
  }
}

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) {
    throw std::runtime_error("pattern library: truncated file");
  }
  return v;
}

}  // namespace

void write_grid_pgm(const std::string& path, const BinaryGrid& grid,
                    std::int64_t cell_px) {
  DP_REQUIRE(cell_px >= 1, "write_grid_pgm: cell_px must be >= 1");
  const auto width = grid.cols() * cell_px;
  const auto height = grid.rows() * cell_px;
  std::vector<std::uint8_t> pixels(
      static_cast<std::size_t>(width * height), kSpaceGray);
  for (std::int64_t r = 0; r < grid.rows(); ++r) {
    for (std::int64_t c = 0; c < grid.cols(); ++c) {
      if (grid.get_unchecked(r, c) == 0) {
        continue;
      }
      // Image row 0 is the top; grid row 0 is the bottom.
      for (std::int64_t py = 0; py < cell_px; ++py) {
        const auto iy = (grid.rows() - 1 - r) * cell_px + py;
        for (std::int64_t px = 0; px < cell_px; ++px) {
          pixels[static_cast<std::size_t>(iy * width + c * cell_px + px)] =
              kShapeGray;
        }
      }
    }
  }
  write_pgm(path, width, height, pixels);
}

void write_pattern_pgm(const std::string& path, const SquishPattern& pattern,
                       std::int64_t image_px) {
  pattern.validate();
  DP_REQUIRE(image_px >= 8, "write_pattern_pgm: image too small");
  const auto tile_w = pattern.width();
  const auto tile_h = pattern.height();
  std::vector<std::uint8_t> pixels(
      static_cast<std::size_t>(image_px * image_px), kSpaceGray);
  // nm borders of cells.
  std::vector<geometry::Coord> xs(pattern.dx.size() + 1, 0);
  for (std::size_t i = 0; i < pattern.dx.size(); ++i) {
    xs[i + 1] = xs[i] + pattern.dx[i];
  }
  std::vector<geometry::Coord> ys(pattern.dy.size() + 1, 0);
  for (std::size_t i = 0; i < pattern.dy.size(); ++i) {
    ys[i + 1] = ys[i] + pattern.dy[i];
  }
  const auto to_px_x = [&](geometry::Coord nm) {
    return std::min<std::int64_t>(image_px - 1, nm * image_px / tile_w);
  };
  const auto to_px_y = [&](geometry::Coord nm) {
    return std::min<std::int64_t>(image_px - 1, nm * image_px / tile_h);
  };
  for (std::int64_t r = 0; r < pattern.topology.rows(); ++r) {
    for (std::int64_t c = 0; c < pattern.topology.cols(); ++c) {
      if (pattern.topology.get_unchecked(r, c) == 0) {
        continue;
      }
      const auto px0 = to_px_x(xs[static_cast<std::size_t>(c)]);
      const auto px1 = to_px_x(xs[static_cast<std::size_t>(c + 1)]);
      const auto py0 = to_px_y(ys[static_cast<std::size_t>(r)]);
      const auto py1 = to_px_y(ys[static_cast<std::size_t>(r + 1)]);
      for (std::int64_t y = py0; y <= py1; ++y) {
        const auto iy = image_px - 1 - y;  // Flip vertically for the image.
        for (std::int64_t x = px0; x <= px1; ++x) {
          pixels[static_cast<std::size_t>(iy * image_px + x)] = kShapeGray;
        }
      }
    }
  }
  write_pgm(path, image_px, image_px, pixels);
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_text_file: cannot open " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("write_text_file: write failed for " + path);
  }
}

void save_pattern_library(const std::string& path,
                          const std::vector<SquishPattern>& patterns) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_pattern_library: cannot open " + path);
  }
  out.write("DPLIB01\0", 8);
  write_u64(out, patterns.size());
  for (const auto& p : patterns) {
    p.validate();
    write_u64(out, static_cast<std::uint64_t>(p.topology.rows()));
    write_u64(out, static_cast<std::uint64_t>(p.topology.cols()));
    for (const auto cell : p.topology.cells()) {
      out.put(static_cast<char>(cell));
    }
    for (const auto d : p.dx) {
      write_u64(out, static_cast<std::uint64_t>(d));
    }
    for (const auto d : p.dy) {
      write_u64(out, static_cast<std::uint64_t>(d));
    }
  }
  if (!out) {
    throw std::runtime_error("save_pattern_library: write failed");
  }
}

std::vector<SquishPattern> load_pattern_library(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_pattern_library: cannot open " + path);
  }
  char magic[8];
  in.read(magic, 8);
  if (!in || std::string(magic, 7) != "DPLIB01") {
    throw std::runtime_error("load_pattern_library: bad magic");
  }
  const auto count = read_u64(in);
  std::vector<SquishPattern> patterns;
  patterns.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto rows = static_cast<std::int64_t>(read_u64(in));
    const auto cols = static_cast<std::int64_t>(read_u64(in));
    SquishPattern p;
    p.topology = BinaryGrid(rows, cols);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const int v = in.get();
        if (v < 0) {
          throw std::runtime_error("load_pattern_library: truncated");
        }
        p.topology.set(r, c, static_cast<std::uint8_t>(v));
      }
    }
    p.dx.resize(static_cast<std::size_t>(cols));
    for (auto& d : p.dx) {
      d = static_cast<geometry::Coord>(read_u64(in));
    }
    p.dy.resize(static_cast<std::size_t>(rows));
    for (auto& d : p.dy) {
      d = static_cast<geometry::Coord>(read_u64(in));
    }
    p.validate();
    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::string ensure_directory(const std::string& path) {
  std::filesystem::create_directories(path);
  return path;
}

}  // namespace diffpattern::io
