#include "unet/unet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/contracts.h"

namespace diffpattern::unet {

using nn::Var;
using tensor::Tensor;

namespace {

std::atomic<std::int64_t> g_embedding_cache_hits{0};

/// FNV-1a-style fingerprint over a tensor's raw float bytes, chained
/// through `h` (the time-MLP parameter fingerprint guarding the embedding
/// cache). Processes 8 bytes per multiply — this runs once per denoising
/// round, so it is on the inference hot path; every byte still reaches the
/// hash, so any in-place parameter mutation (EMA swap, optimizer step)
/// changes the fingerprint.
std::uint64_t fnv1a64_tensor(std::uint64_t h, const Tensor& t) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(t.data());
  const auto n = t.numel() * static_cast<std::int64_t>(sizeof(float));
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes + i, sizeof(word));
    h ^= word;
    h *= 1099511628211ULL;
  }
  for (; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

}  // namespace

std::int64_t time_embedding_cache_hits() {
  return g_embedding_cache_hits.load(std::memory_order_relaxed);
}

tensor::Tensor sinusoidal_time_embedding(const std::vector<std::int64_t>& k,
                                         std::int64_t dim) {
  DP_REQUIRE(dim >= 2 && dim % 2 == 0,
             "sinusoidal_time_embedding: dim must be even and >= 2");
  const auto n = static_cast<std::int64_t>(k.size());
  const auto half = dim / 2;
  // Frequency table hoisted out of the row loop: exp/log run once per j
  // instead of once per (i, j). The expression is evaluated identically to
  // the former inline form, so the bytes are unchanged.
  std::vector<double> freqs(static_cast<std::size_t>(half));
  for (std::int64_t j = 0; j < half; ++j) {
    freqs[static_cast<std::size_t>(j)] =
        std::exp(-std::log(10000.0) * static_cast<double>(j) /
                 static_cast<double>(std::max<std::int64_t>(half - 1, 1)));
  }
  Tensor out({n, dim});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto step = static_cast<double>(k[static_cast<std::size_t>(i)]);
    for (std::int64_t j = 0; j < half; ++j) {
      const double freq = freqs[static_cast<std::size_t>(j)];
      out.at({i, j}) = static_cast<float>(std::sin(step * freq));
      out.at({i, half + j}) = static_cast<float>(std::cos(step * freq));
    }
  }
  return out;
}

struct UNet::ResBlock {
  ResBlock(nn::ParamRegistry& reg, common::Rng& rng, const std::string& name,
           std::int64_t in_ch, std::int64_t out_ch, std::int64_t time_dim)
      : in_channels(in_ch),
        out_channels(out_ch),
        norm1(reg, name + ".norm1", in_ch, nn::pick_group_count(in_ch)),
        conv1(reg, rng, name + ".conv1", in_ch, out_ch, 3, 1, 1),
        time_proj(reg, rng, name + ".time_proj", time_dim, out_ch),
        norm2(reg, name + ".norm2", out_ch, nn::pick_group_count(out_ch)),
        conv2(reg, rng, name + ".conv2", out_ch, out_ch, 3, 1, 1) {
    if (in_ch != out_ch) {
      skip.emplace(reg, rng, name + ".skip", in_ch, out_ch, 1, 1, 0);
    }
  }

  std::int64_t in_channels;
  std::int64_t out_channels;
  nn::GroupNorm norm1;
  nn::Conv2d conv1;
  nn::Linear time_proj;
  nn::GroupNorm norm2;
  nn::Conv2d conv2;
  std::optional<nn::Conv2d> skip;
};

struct UNet::AttentionBlock {
  AttentionBlock(nn::ParamRegistry& reg, common::Rng& rng,
                 const std::string& name, std::int64_t ch)
      : channels(ch),
        norm(reg, name + ".norm", ch, nn::pick_group_count(ch)),
        qkv(reg, rng, name + ".qkv", ch, 3 * ch, 1, 1, 0),
        proj(reg, rng, name + ".proj", ch, ch, 1, 1, 0) {}

  std::int64_t channels;
  nn::GroupNorm norm;
  nn::Conv2d qkv;
  nn::Conv2d proj;
};

struct UNet::LevelBlocks {
  std::vector<ResBlock> res;
  std::vector<std::optional<AttentionBlock>> attn;  // Parallel to `res`.
  std::optional<nn::Conv2d> resample;  // Downsample (stride 2) or post-up conv.
};

// Per-model cache of post-MLP time-embedding rows, keyed by diffusion step.
// A fingerprint over the time-MLP parameters invalidates the cache whenever
// they change (optimizer steps, Ema::swap_in/swap_out), so stale rows can
// never be served.
struct UNet::TimeEmbedCache {
  std::mutex mutex;
  bool fingerprint_valid = false;
  std::uint64_t fingerprint = 0;
  std::unordered_map<std::int64_t, Tensor> rows;  // step -> [time_dim]
};

UNet::UNet(UNetConfig config, std::uint64_t seed) : config_(std::move(config)) {
  DP_REQUIRE(config_.in_channels >= 1, "UNet: in_channels must be >= 1");
  DP_REQUIRE(!config_.channel_mult.empty(), "UNet: channel_mult empty");
  DP_REQUIRE(config_.num_res_blocks >= 1, "UNet: need at least one res block");
  common::Rng rng(seed);
  const auto time_dim = config_.time_embed_dim();
  const auto mc = config_.model_channels;

  time_fc1_ = std::make_unique<nn::Linear>(registry_, rng, "time.fc1", mc,
                                           time_dim);
  time_fc2_ = std::make_unique<nn::Linear>(registry_, rng, "time.fc2",
                                           time_dim, time_dim);
  stem_ = std::make_unique<nn::Conv2d>(registry_, rng, "stem",
                                       config_.in_channels, mc, 3, 1, 1);

  // Encoder: mirror the forward pass channel bookkeeping.
  std::vector<std::int64_t> skip_channels = {mc};
  std::int64_t ch = mc;
  for (std::int64_t level = 0; level < config_.levels(); ++level) {
    LevelBlocks blocks;
    const auto out_ch =
        mc * config_.channel_mult[static_cast<std::size_t>(level)];
    const bool want_attn = config_.attention_levels.count(level) > 0;
    for (std::int64_t i = 0; i < config_.num_res_blocks; ++i) {
      const std::string name =
          "down." + std::to_string(level) + ".res" + std::to_string(i);
      blocks.res.emplace_back(registry_, rng, name, ch, out_ch, time_dim);
      if (want_attn) {
        blocks.attn.emplace_back(std::in_place, registry_, rng,
                                 name + ".attn", out_ch);
      } else {
        blocks.attn.emplace_back(std::nullopt);
      }
      ch = out_ch;
      skip_channels.push_back(ch);
    }
    if (level + 1 < config_.levels()) {
      blocks.resample.emplace(registry_, rng,
                              "down." + std::to_string(level) + ".downsample",
                              ch, ch, 3, 2, 1);
      skip_channels.push_back(ch);
    }
    down_.push_back(std::move(blocks));
  }

  mid_block1_ = std::make_unique<ResBlock>(registry_, rng, "mid.res1", ch, ch,
                                           time_dim);
  mid_attn_ = std::make_unique<AttentionBlock>(registry_, rng, "mid.attn", ch);
  mid_block2_ = std::make_unique<ResBlock>(registry_, rng, "mid.res2", ch, ch,
                                           time_dim);

  // Decoder.
  for (std::int64_t level = config_.levels() - 1; level >= 0; --level) {
    LevelBlocks blocks;
    const auto out_ch =
        mc * config_.channel_mult[static_cast<std::size_t>(level)];
    const bool want_attn = config_.attention_levels.count(level) > 0;
    for (std::int64_t i = 0; i <= config_.num_res_blocks; ++i) {
      DP_CHECK(!skip_channels.empty(), "UNet: skip stack underflow");
      const auto skip_ch = skip_channels.back();
      skip_channels.pop_back();
      const std::string name =
          "up." + std::to_string(level) + ".res" + std::to_string(i);
      blocks.res.emplace_back(registry_, rng, name, ch + skip_ch, out_ch,
                              time_dim);
      if (want_attn) {
        blocks.attn.emplace_back(std::in_place, registry_, rng,
                                 name + ".attn", out_ch);
      } else {
        blocks.attn.emplace_back(std::nullopt);
      }
      ch = out_ch;
    }
    if (level > 0) {
      blocks.resample.emplace(registry_, rng,
                              "up." + std::to_string(level) + ".upsample", ch,
                              ch, 3, 1, 1);
    }
    up_.push_back(std::move(blocks));
  }
  DP_CHECK(skip_channels.empty(), "UNet: unconsumed skip connections");

  head_norm_ = std::make_unique<nn::GroupNorm>(registry_, "head.norm", ch,
                                               nn::pick_group_count(ch));
  head_conv_ = std::make_unique<nn::Conv2d>(registry_, rng, "head.conv", ch,
                                            config_.out_channels, 3, 1, 1);

  // Constructed eagerly (not lazily on first forward) so concurrent
  // inference threads never race on member initialization.
  plan_cache_ = std::make_unique<tensor::InferencePlanCache>();
  time_cache_ = std::make_unique<TimeEmbedCache>();
}

UNet::~UNet() = default;
UNet::UNet(UNet&&) noexcept = default;
UNet& UNet::operator=(UNet&&) noexcept = default;

Tensor UNet::cached_time_embedding(const std::vector<std::int64_t>& k) {
  const auto n = static_cast<std::int64_t>(k.size());
  const auto time_dim = config_.time_embed_dim();
  Tensor out({n, time_dim});
  std::lock_guard<std::mutex> lock(time_cache_->mutex);
  std::uint64_t fp = kFnvOffset;
  fp = fnv1a64_tensor(fp, time_fc1_->weight.value());
  fp = fnv1a64_tensor(fp, time_fc1_->bias.value());
  fp = fnv1a64_tensor(fp, time_fc2_->weight.value());
  fp = fnv1a64_tensor(fp, time_fc2_->bias.value());
  if (!time_cache_->fingerprint_valid || fp != time_cache_->fingerprint) {
    time_cache_->rows.clear();
    time_cache_->fingerprint = fp;
    time_cache_->fingerprint_valid = true;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    const auto step = k[static_cast<std::size_t>(i)];
    auto it = time_cache_->rows.find(step);
    if (it == time_cache_->rows.end()) {
      // The embedding and both Linear layers are row-independent with a
      // fixed reduction order, so a batch-1 forward yields bytes identical
      // to the same row of any fused batch — the same invariant the
      // narrowing batcher already relies on.
      nn::NoGradGuard guard;
      Var row(sinusoidal_time_embedding({step}, config_.model_channels));
      row = (*time_fc2_)(nn::silu((*time_fc1_)(row)));
      it = time_cache_->rows.emplace(step, row.value()).first;
    } else {
      g_embedding_cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    const float* src = it->second.data();
    std::copy(src, src + time_dim, out.data() + i * time_dim);
  }
  return out;
}

Var UNet::apply_res_block(const ResBlock& block, Var h, const Var& time_emb,
                          bool training, common::Rng& rng) const {
  Var residual = h;
  h = block.conv1(nn::silu(block.norm1(h)));
  // Inject the time embedding as a per-channel bias.
  Var t = block.time_proj(nn::silu(time_emb));  // [N, out_ch]
  h = nn::add_spatial_broadcast(h, t);
  h = nn::silu(block.norm2(h));
  h = nn::dropout(h, config_.dropout, training, rng);
  h = block.conv2(h);
  if (block.skip.has_value()) {
    residual = (*block.skip)(residual);
  }
  return nn::add(h, residual);
}

Var UNet::apply_attention(const AttentionBlock& block, Var h) const {
  const auto n = h.dim(0);
  const auto c = block.channels;
  const auto height = h.dim(2);
  const auto width = h.dim(3);
  const auto tokens = height * width;
  Var normed = block.norm(h);
  Var qkv = block.qkv(normed);  // [N, 3C, H, W]
  Var q = nn::reshape(nn::slice_channels(qkv, 0, c), {n, c, tokens});
  Var k = nn::reshape(nn::slice_channels(qkv, c, c), {n, c, tokens});
  Var v = nn::reshape(nn::slice_channels(qkv, 2 * c, c), {n, c, tokens});
  // scores[b, i, j] = <q[:, i], k[:, j]> / sqrt(C)
  Var scores = nn::scale(nn::bmm(nn::permute(q, {0, 2, 1}), k),
                         1.0F / std::sqrt(static_cast<float>(c)));
  Var attn = nn::softmax_last(scores);  // [N, T, T], rows sum to 1.
  // out[:, i] = sum_j attn[i, j] * v[:, j]  ->  [N, C, T]
  Var mixed = nn::bmm(v, nn::permute(attn, {0, 2, 1}));
  Var out = block.proj(nn::reshape(mixed, {n, c, height, width}));
  return nn::add(out, h);
}

Var UNet::forward(const Tensor& x, const std::vector<std::int64_t>& k,
                  bool training, common::Rng& rng) {
  DP_REQUIRE(x.rank() == 4, "UNet::forward: x must be [N,C,H,W]");
  DP_REQUIRE(x.dim(1) == config_.in_channels,
             "UNet::forward: channel count mismatch");
  DP_REQUIRE(static_cast<std::int64_t>(k.size()) == x.dim(0),
             "UNet::forward: need one diffusion step per sample");
  const auto min_side = x.dim(2) >> (config_.levels() - 1);
  DP_REQUIRE(min_side >= 1 && (x.dim(2) % (std::int64_t{1} << (config_.levels() - 1))) == 0,
             "UNet::forward: spatial size incompatible with level count");

  Var time_emb;
  if (!training && nn::NoGradGuard::active() &&
      tensor::activation_arena_enabled()) {
    time_emb = Var(cached_time_embedding(k));
  } else {
    time_emb = Var(sinusoidal_time_embedding(k, config_.model_channels));
    time_emb = (*time_fc2_)(nn::silu((*time_fc1_)(time_emb)));
  }

  Var h = (*stem_)(Var(x));
  std::vector<Var> skips = {h};
  for (std::size_t level = 0; level < down_.size(); ++level) {
    const auto& blocks = down_[level];
    for (std::size_t i = 0; i < blocks.res.size(); ++i) {
      h = apply_res_block(blocks.res[i], h, time_emb, training, rng);
      if (blocks.attn[i].has_value()) {
        h = apply_attention(*blocks.attn[i], h);
      }
      skips.push_back(h);
    }
    if (blocks.resample.has_value()) {
      h = (*blocks.resample)(h);
      skips.push_back(h);
    }
  }

  h = apply_res_block(*mid_block1_, h, time_emb, training, rng);
  h = apply_attention(*mid_attn_, h);
  h = apply_res_block(*mid_block2_, h, time_emb, training, rng);

  for (const auto& blocks : up_) {
    for (std::size_t i = 0; i < blocks.res.size(); ++i) {
      DP_CHECK(!skips.empty(), "UNet::forward: skip stack underflow");
      Var skip = skips.back();
      skips.pop_back();
      h = apply_res_block(blocks.res[i], nn::concat_channels(h, skip),
                          time_emb, training, rng);
      if (blocks.attn[i].has_value()) {
        h = apply_attention(*blocks.attn[i], h);
      }
    }
    if (blocks.resample.has_value()) {
      h = (*blocks.resample)(nn::upsample_nearest2(h));
    }
  }
  DP_CHECK(skips.empty(), "UNet::forward: unconsumed skips");

  return (*head_conv_)(nn::silu((*head_norm_)(h)));
}

Var logit_difference(const Var& logits, std::int64_t in_channels) {
  DP_REQUIRE(logits.dim(1) == 2 * in_channels,
             "logit_difference: expected 2 logits per input channel");
  Var l0 = nn::slice_channels(logits, 0, in_channels);
  Var l1 = nn::slice_channels(logits, in_channels, in_channels);
  return nn::sub(l1, l0);
}

Var logits_to_prob1(const Var& logits, std::int64_t in_channels) {
  return nn::sigmoid(logit_difference(logits, in_channels));
}

}  // namespace diffpattern::unet
