// Residual U-Net backbone for the discrete diffusion model.
//
// Faithful to the paper's configuration (Sec. IV-A): per-resolution channel
// multipliers, two convolutional residual blocks per level, self-attention
// blocks at chosen resolution levels, and the diffusion time step injected
// into every residual block through a sinusoidal position embedding followed
// by a two-layer MLP. The paper's full config is
//   UNetConfig{.in_channels = 16, .model_channels = 128,
//              .channel_mult = {1, 2, 2, 2}, .num_res_blocks = 2,
//              .attention_levels = {1}}
// (resolutions 32/16/8/4 with attention at 16x16); the CPU experiments in
// bench/ use smaller instantiations of the same code.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "nn/modules.h"
#include "tensor/arena.h"

namespace diffpattern::unet {

struct UNetConfig {
  std::int64_t in_channels = 4;
  /// Output channels; 2 * in_channels for binary-state logits: channels
  /// [0, C) hold state-0 logits and [C, 2C) state-1 logits (see
  /// logits_to_prob1 / logit_difference).
  std::int64_t out_channels = 8;
  std::int64_t model_channels = 32;
  std::vector<std::int64_t> channel_mult = {1, 2};
  std::int64_t num_res_blocks = 2;
  /// Levels (0 = full resolution) that get a self-attention block.
  std::set<std::int64_t> attention_levels = {1};
  float dropout = 0.1F;

  std::int64_t time_embed_dim() const { return model_channels * 4; }
  std::int64_t levels() const {
    return static_cast<std::int64_t>(channel_mult.size());
  }
};

/// Sinusoidal position embedding of diffusion steps: [N, dim] constant.
tensor::Tensor sinusoidal_time_embedding(const std::vector<std::int64_t>& k,
                                         std::int64_t dim);

/// Process-wide count of time-embedding rows served from a model's post-MLP
/// cache instead of recomputed (monotone total, relaxed atomics). Surfaced
/// as ServiceCounters::embedding_cache_hits.
std::int64_t time_embedding_cache_hits();

class UNet {
 public:
  UNet(UNetConfig config, std::uint64_t seed);
  ~UNet();  // Out of line: members use types private to the .cpp.
  UNet(UNet&&) noexcept;
  UNet& operator=(UNet&&) noexcept;

  /// x: [N, in_channels, H, W] with H == W divisible by 2^(levels-1).
  /// k: per-sample diffusion step (size N). Returns [N, out_channels, H, W].
  nn::Var forward(const tensor::Tensor& x, const std::vector<std::int64_t>& k,
                  bool training, common::Rng& rng);

  nn::ParamRegistry& registry() { return registry_; }
  const nn::ParamRegistry& registry() const { return registry_; }
  const UNetConfig& config() const { return config_; }

  /// Per-model activation-plan cache, leased by the diffusion round loops
  /// (one plan per batch shape; see tensor/arena.h).
  tensor::InferencePlanCache& plan_cache() { return *plan_cache_; }

 private:
  struct ResBlock;
  struct AttentionBlock;
  struct LevelBlocks;
  struct TimeEmbedCache;

  /// Inference-only: assembles the post-MLP time embedding [N, time_dim] by
  /// row-copying per-step cached rows (computing and caching any step seen
  /// for the first time). Invalidated by fingerprint when the time-MLP
  /// parameters change (EMA swaps, optimizer steps).
  tensor::Tensor cached_time_embedding(const std::vector<std::int64_t>& k);

  nn::Var apply_res_block(const ResBlock& block, nn::Var h,
                          const nn::Var& time_emb, bool training,
                          common::Rng& rng) const;
  nn::Var apply_attention(const AttentionBlock& block, nn::Var h) const;

  UNetConfig config_;
  nn::ParamRegistry registry_;

  // Time-embedding MLP.
  std::unique_ptr<nn::Linear> time_fc1_;
  std::unique_ptr<nn::Linear> time_fc2_;
  // Stem.
  std::unique_ptr<nn::Conv2d> stem_;
  // Encoder / middle / decoder.
  std::vector<LevelBlocks> down_;
  std::unique_ptr<ResBlock> mid_block1_;
  std::unique_ptr<AttentionBlock> mid_attn_;
  std::unique_ptr<ResBlock> mid_block2_;
  std::vector<LevelBlocks> up_;
  // Head.
  std::unique_ptr<nn::GroupNorm> head_norm_;
  std::unique_ptr<nn::Conv2d> head_conv_;
  // Inference caches (arena plans + per-step time embeddings).
  std::unique_ptr<tensor::InferencePlanCache> plan_cache_;
  std::unique_ptr<TimeEmbedCache> time_cache_;
};

/// Converts the 2-logit-per-channel output into per-entry probabilities of
/// state 1: p1[n,c,h,w] = sigmoid(logit1 - logit0).
nn::Var logits_to_prob1(const nn::Var& logits, std::int64_t in_channels);

/// The logit difference d = logit1 - logit0 (used by the loss; p1 =
/// sigmoid(d)).
nn::Var logit_difference(const nn::Var& logits, std::int64_t in_channels);

}  // namespace diffpattern::unet
