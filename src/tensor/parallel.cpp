#include "tensor/parallel.h"

#include "common/compute_pool.h"

namespace diffpattern::tensor {

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  std::int64_t grain) {
  if (end <= begin) {
    return;
  }
  // Below-grain ranges run inline without touching the global pool: small
  // elementwise ops on the hot path skip the pool-handle mutex entirely.
  if (end - begin <= grain) {
    body(begin, end);
    return;
  }
  // The shared handle pins the pool for the whole region, so a concurrent
  // set_global_compute_threads cannot destroy it underneath us.
  common::global_compute_pool()->parallel_for(begin, end, grain, body);
}

void parallel_elements(
    std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  parallel_for(0, n, body, kElementwiseGrain);
}

}  // namespace diffpattern::tensor
