// Raw numeric kernels over Tensor: GEMM, im2col/col2im, reductions.
//
// These are the non-differentiable building blocks; gradient bookkeeping is
// layered on top in src/nn. All kernels are single-threaded and written for
// clarity first, with the GEMM loop order (i, k, j) chosen so the inner loop
// streams contiguously.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace diffpattern::tensor {

/// C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[M,N] += A[M,K] * B[K,N] accumulated into `out` (shapes must match).
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// C[K,N] = A[M,K]^T * B[M,N].
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C[M,K] = A[M,N] * B[K,N]^T.
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

struct Conv2dGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
  std::int64_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Unrolls one image [C,H,W] into columns [C*kh*kw, OH*OW]. Out-of-bounds
/// (padding) positions contribute zeros.
Tensor im2col(const Tensor& image, const Conv2dGeometry& geom);

/// Adjoint of im2col: folds columns [C*kh*kw, OH*OW] back into an image
/// [C,H,W], accumulating overlapping contributions.
Tensor col2im(const Tensor& columns, const Conv2dGeometry& geom);

/// Sum of all elements.
double sum(const Tensor& t);

/// Maximum element (requires non-empty tensor).
float max_value(const Tensor& t);

/// out[i] = a[i] + b[i] (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// out[i] = a[i] * b[i] (shapes must match).
Tensor mul(const Tensor& a, const Tensor& b);

/// out[i] = a[i] * s.
Tensor scale(const Tensor& a, float s);

/// Numerically stable row-wise softmax over the last axis of a 2-D tensor.
Tensor softmax_rows(const Tensor& logits);

}  // namespace diffpattern::tensor
