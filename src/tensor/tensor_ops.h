// Raw numeric kernels over Tensor: GEMM, im2col/col2im, reductions.
//
// These are the non-differentiable building blocks; gradient bookkeeping is
// layered on top in src/nn. The GEMM family and the batch-wide convolution
// unrolls run blocked and row-parallel on the process-wide compute pool
// (src/tensor/parallel.h), with the inner loops routed through the
// runtime-dispatched SIMD kernel tier (src/tensor/simd.h: scalar, AVX2/FMA,
// NEON). Every kernel keeps the canonical fused accumulation order defined
// by the scalar backend, so results are byte-identical for any thread count
// and any backend. The original single-threaded mul-then-add kernels are
// retained under tensor::reference as the test oracle; the canonical fused
// kernels agree with them within a small ULP bound
// (tests/test_simd_kernels.cpp), not bitwise.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace diffpattern::tensor {

/// C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[M,N] = A[M,K] * B[K,N] written into `out` (shape-checked, zeroed
/// first) — the allocation-free form for scratch-buffer reuse.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);

/// C[M,N] += A[M,K] * B[K,N] accumulated into `out` (shapes must match).
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// C[K,N] = A[M,K]^T * B[M,N].
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C[M,K] = A[M,N] * B[K,N]^T.
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

struct Conv2dGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
  std::int64_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Unrolls one image [C,H,W] into columns [C*kh*kw, OH*OW]. Out-of-bounds
/// (padding) positions contribute zeros.
Tensor im2col(const Tensor& image, const Conv2dGeometry& geom);

/// Batch-wide unroll: [N,C,H,W] -> [C*kh*kw, N*OH*OW], sample-major columns
/// (sample n owns columns [n*OH*OW, (n+1)*OH*OW)). One matmul against the
/// flattened conv weight then convolves the whole batch; each column block
/// is byte-identical to im2col of that sample, so batched convolution is
/// bit-equal to the per-sample path.
Tensor im2col_batch(const Tensor& images, const Conv2dGeometry& geom);

/// Allocation-free im2col_batch: resizes `cols` (reusing its storage across
/// denoising rounds) and overwrites every entry.
void im2col_batch_into(const Tensor& images, const Conv2dGeometry& geom,
                       Tensor& cols);

/// Adjoint of im2col: folds columns [C*kh*kw, OH*OW] back into an image
/// [C,H,W], accumulating overlapping contributions.
Tensor col2im(const Tensor& columns, const Conv2dGeometry& geom);

/// Adjoint of im2col_batch: folds [C*kh*kw, N*OH*OW] back into [N,C,H,W],
/// one independent (parallel) fold per sample.
Tensor col2im_batch(const Tensor& columns, const Conv2dGeometry& geom,
                    std::int64_t batch);

/// Sum of all elements (sequential double accumulation — deterministic).
double sum(const Tensor& t);

/// Maximum element (requires non-empty tensor).
float max_value(const Tensor& t);

/// out[i] = a[i] + b[i] (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// out[i] = a[i] * b[i] (shapes must match).
Tensor mul(const Tensor& a, const Tensor& b);

/// out[i] = a[i] * s.
Tensor scale(const Tensor& a, float s);

/// Numerically stable row-wise softmax over the last axis of a 2-D tensor.
Tensor softmax_rows(const Tensor& logits);

/// Retained naive single-threaded kernels: the oracle for the
/// blocked/parallel implementations above (tests assert agreement within a
/// tight ULP bound — the dispatched kernels accumulate with fused
/// multiply-adds, these keep separate mul/add roundings), and a readable
/// spec of the arithmetic.
namespace reference {
Tensor matmul(const Tensor& a, const Tensor& b);
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);
Tensor softmax_rows(const Tensor& logits);
}  // namespace reference

}  // namespace diffpattern::tensor
