// SIMD kernel tier: runtime-dispatched vectorized inner loops.
//
// The blocked/parallel kernels in tensor_ops.cpp and the NN forward loops in
// nn/ops.cpp call through the per-backend kernel table returned by
// simd::active(). Three backends exist:
//
//   * scalar — portable C++, runs everywhere. This is also the *canonical
//     semantics*: every kernel's accumulation order and rounding (fused
//     multiply-add via std::fma, lane-split reductions with a fixed
//     reduction tree) is defined by the scalar implementation.
//   * avx2   — AVX2 + FMA (x86-64), compiled into a separate object library
//     with -mavx2 -mfma so the portable build still carries it; selected at
//     runtime only when the CPU reports both features.
//   * neon   — AArch64 NEON (baseline on that architecture).
//
// Determinism contract: the vector backends implement the scalar canonical
// order *exactly* — same per-element fused operations, same lane-split
// partial accumulators, same reduction tree — so results are bitwise
// identical across backends, thread counts, and runs (IEEE-754 fma is
// correctly rounded whether it comes from vfmadd231ps, NEON fmla, or libm
// fmaf). The retained tensor::reference kernels keep the historic
// mul-then-add rounding and therefore agree only within a small ULP bound;
// tests/test_simd_kernels.cpp asserts both relations. The whole library is
// compiled with -ffp-contract=off so the compiler cannot re-fuse (or
// un-fuse) any of this behind our back.
//
// Dispatch: the process-wide backend starts at DIFFPATTERN_KERNEL_BACKEND
// (scalar|avx2|neon|auto; malformed or host-unsupported values are ignored)
// else the best backend the host supports. set_kernel_backend* follows the
// set_global_compute_threads precedent: unknown names and ISAs the host
// cannot run answer INVALID_ARGUMENT instead of aborting or silently
// falling back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace diffpattern::tensor {

enum class KernelBackend {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// "scalar", "avx2", or "neon".
const char* kernel_backend_label(KernelBackend backend);

/// Backend the current dispatch choice routes to.
KernelBackend kernel_backend();

/// kernel_backend_label(kernel_backend()).
std::string kernel_backend_name();

/// Best backend this host can execute (what "auto" resolves to).
KernelBackend detected_kernel_backend();

/// True when the host CPU (and this binary) can run `backend`.
bool kernel_backend_supported(KernelBackend backend);

/// Labels of every backend the host supports ("scalar" is always present).
std::vector<std::string> supported_kernel_backend_names();

/// Maps "scalar" / "avx2" / "neon" / "auto" onto a backend ("auto" resolves
/// to detected_kernel_backend()). Unknown names answer INVALID_ARGUMENT.
common::Result<KernelBackend> parse_kernel_backend(const std::string& name);

/// Switches the process-wide dispatch. INVALID_ARGUMENT when the host does
/// not support the requested backend. Like set_global_compute_threads, this
/// is a between-requests configuration knob: kernels already running keep
/// the table they grabbed.
common::Status set_kernel_backend(KernelBackend backend);

/// parse_kernel_backend + set_kernel_backend in one call (the CLI
/// --kernel-backend and ServiceConfig::kernel_backend entry point).
common::Status set_kernel_backend_name(const std::string& name);

namespace simd {

/// Per-backend kernel table. Every function implements the canonical
/// semantics documented at the top of this header; `n` is an element count
/// and all pointers may overlap only where a parameter is documented as
/// in-place capable.
struct Kernels {
  KernelBackend backend;

  /// y[i] = fma(a, x[i], y[i]) for i in [0,n) — the GEMM axpy micro-kernel.
  void (*axpy)(float a, const float* x, float* y, std::int64_t n);

  /// Canonical lane-split fused dot product: 8 partial accumulators
  /// (lane l owns i ≡ l mod 8 over full 8-blocks, the tail folds into
  /// lanes 0..), reduced as ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) —
  /// matching one 256-bit FMA register reduced hi-onto-lo.
  float (*dot)(const float* x, const float* y, std::int64_t n);

  /// y[i] += x[i].
  void (*add)(float* y, const float* x, std::int64_t n);
  /// y[i] *= x[i].
  void (*mul)(float* y, const float* x, std::int64_t n);
  /// y[i] *= s.
  void (*scale)(float* y, float s, std::int64_t n);
  /// y[i] = x[i] + s (y == x allowed: in-place bias add).
  void (*shift)(float* y, const float* x, float s, std::int64_t n);
  /// y[i] = y[i] > 0 ? y[i] : 0 (NaN and -0 map to +0, like vmaxps).
  void (*relu)(float* y, std::int64_t n);

  /// Canonical lane-split max (8 lanes seeded with x[0], combined with
  /// (m > v ? m : v), reduced with the dot tree). n must be >= 1. Exact
  /// for every non-NaN input.
  float (*max)(const float* x, std::int64_t n);

  /// Canonical 4-lane double-precision sum of x[0..n) (lane l owns
  /// i ≡ l mod 4 over full 4-blocks, tail folds into lanes 0..; reduced
  /// as (l0+l2) + (l1+l3)) — the group/layer-norm mean reduction.
  double (*sum)(const float* x, std::int64_t n);

  /// Same lane structure over d = double(x[i]) - mean, accumulating d*d —
  /// the group/layer-norm variance reduction.
  double (*sumsq_centered)(const float* x, double mean, std::int64_t n);

  /// xn = (x[i] - mean) * istd; xhat[i] = xn; y[i] = fma(xn, gamma, beta).
  /// Scalar gamma/beta: one group-norm channel plane per call.
  void (*normalize_affine)(const float* x, float mean, float istd,
                           float gamma, float beta, float* xhat, float* y,
                           std::int64_t n);

  /// Row variant with per-element gamma/beta (layer norm): y[i] =
  /// fma((x[i] - mean) * istd, gamma[i], beta[i]), xhat recorded likewise.
  void (*normalize_affine_rows)(const float* x, float mean, float istd,
                                const float* gamma, const float* beta,
                                float* xhat, float* y, std::int64_t n);
};

/// Table for the active backend (one relaxed atomic load — grab the
/// reference once per tensor op, not per element).
const Kernels& active();

/// Table for a specific backend, or nullptr when this host/binary cannot
/// run it. table_for(kScalar) never returns nullptr.
const Kernels* table_for(KernelBackend backend);

namespace detail {
/// Defined in simd_avx2.cpp (compiled with -mavx2 -mfma when the toolchain
/// targets x86); returns nullptr when the path is compiled out.
const Kernels* avx2_table();
}  // namespace detail

}  // namespace simd
}  // namespace diffpattern::tensor
