// AVX2 + FMA kernel table.
//
// This translation unit is compiled with -mavx2 -mfma (see the dp_simd_avx2
// object library in CMakeLists.txt) even in the portable build, so binaries
// built without -march=native still carry the vector path; runtime CPU
// detection in simd.cpp decides whether it may be selected. Everything here
// reproduces the scalar canonical semantics bit for bit: fused ops use FMA
// instructions exactly where the scalar backend calls std::fma, reductions
// keep the 8-float / 4-double lane split with the fixed reduction tree, and
// tails run the scalar canonical code on the stored lanes. Do not introduce
// re-associations here — bitwise backend parity is load-bearing
// (tests/test_simd_kernels.cpp, the sampling golden digest).
#include "tensor/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace diffpattern::tensor::simd {
namespace {

void avx2_axpy(float a, const float* x, float* y, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy));
  }
  for (; i < n; ++i) {
    y[i] = std::fma(a, x[i], y[i]);
  }
}

float avx2_dot(const float* x, const float* y, std::int64_t n) {
  __m256 vacc = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vacc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                           vacc);
  }
  alignas(32) float acc[8];
  _mm256_store_ps(acc, vacc);
  for (const std::int64_t base = i; i < n; ++i) {
    acc[i - base] = std::fma(x[i], y[i], acc[i - base]);
  }
  const float t0 = acc[0] + acc[4];
  const float t1 = acc[1] + acc[5];
  const float t2 = acc[2] + acc[6];
  const float t3 = acc[3] + acc[7];
  return (t0 + t2) + (t1 + t3);
}

void avx2_add(float* y, const float* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) {
    y[i] += x[i];
  }
}

void avx2_mul(float* y, const float* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) {
    y[i] *= x[i];
  }
}

void avx2_scale(float* y, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), vs));
  }
  for (; i < n; ++i) {
    y[i] *= s;
  }
}

void avx2_shift(float* y, const float* x, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) {
    y[i] = x[i] + s;
  }
}

void avx2_relu(float* y, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(v, 0) = (v > 0) ? v : +0 — NaN and -0 map to +0, matching the
    // scalar canonical ternary.
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), zero));
  }
  for (; i < n; ++i) {
    y[i] = y[i] > 0.0F ? y[i] : 0.0F;
  }
}

float avx2_max(const float* x, std::int64_t n) {
  __m256 vm = _mm256_set1_ps(x[0]);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max_ps(m, v) = (m > v) ? m : v — the canonical lane combine.
    vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
  }
  alignas(32) float m[8];
  _mm256_store_ps(m, vm);
  for (const std::int64_t base = i; i < n; ++i) {
    float& lane = m[i - base];
    lane = lane > x[i] ? lane : x[i];
  }
  const float t0 = m[0] > m[4] ? m[0] : m[4];
  const float t1 = m[1] > m[5] ? m[1] : m[5];
  const float t2 = m[2] > m[6] ? m[2] : m[6];
  const float t3 = m[3] > m[7] ? m[3] : m[7];
  const float u0 = t0 > t2 ? t0 : t2;
  const float u1 = t1 > t3 ? t1 : t3;
  return u0 > u1 ? u0 : u1;
}

double avx2_sum(const float* x, std::int64_t n) {
  __m256d vacc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Plain add (two roundings) — the canonical op here is NOT fused.
    vacc = _mm256_add_pd(vacc, _mm256_cvtps_pd(_mm_loadu_ps(x + i)));
  }
  alignas(32) double acc[4];
  _mm256_store_pd(acc, vacc);
  for (const std::int64_t base = i; i < n; ++i) {
    acc[i - base] += static_cast<double>(x[i]);
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

double avx2_sumsq_centered(const float* x, double mean, std::int64_t n) {
  const __m256d vmean = _mm256_set1_pd(mean);
  __m256d vacc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(x + i)), vmean);
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(d, d));  // mul+add, not FMA.
  }
  alignas(32) double acc[4];
  _mm256_store_pd(acc, vacc);
  for (const std::int64_t base = i; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    acc[i - base] += d * d;
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

void avx2_normalize_affine(const float* x, float mean, float istd,
                           float gamma, float beta, float* xhat, float* y,
                           std::int64_t n) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vistd = _mm256_set1_ps(istd);
  const __m256 vgamma = _mm256_set1_ps(gamma);
  const __m256 vbeta = _mm256_set1_ps(beta);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xn = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vistd);
    _mm256_storeu_ps(xhat + i, xn);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(xn, vgamma, vbeta));
  }
  for (; i < n; ++i) {
    const float xn = (x[i] - mean) * istd;
    xhat[i] = xn;
    y[i] = std::fma(xn, gamma, beta);
  }
}

void avx2_normalize_affine_rows(const float* x, float mean, float istd,
                                const float* gamma, const float* beta,
                                float* xhat, float* y, std::int64_t n) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vistd = _mm256_set1_ps(istd);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xn = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vistd);
    _mm256_storeu_ps(xhat + i, xn);
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(xn, _mm256_loadu_ps(gamma + i),
                                     _mm256_loadu_ps(beta + i)));
  }
  for (; i < n; ++i) {
    const float xn = (x[i] - mean) * istd;
    xhat[i] = xn;
    y[i] = std::fma(xn, gamma[i], beta[i]);
  }
}

constexpr Kernels kAvx2Table = {
    .backend = KernelBackend::kAvx2,
    .axpy = avx2_axpy,
    .dot = avx2_dot,
    .add = avx2_add,
    .mul = avx2_mul,
    .scale = avx2_scale,
    .shift = avx2_shift,
    .relu = avx2_relu,
    .max = avx2_max,
    .sum = avx2_sum,
    .sumsq_centered = avx2_sumsq_centered,
    .normalize_affine = avx2_normalize_affine,
    .normalize_affine_rows = avx2_normalize_affine_rows,
};

}  // namespace

namespace detail {
const Kernels* avx2_table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace diffpattern::tensor::simd

#else  // !(__AVX2__ && __FMA__)

namespace diffpattern::tensor::simd::detail {
// Compiled without AVX2+FMA codegen (non-x86 target, or a toolchain that
// rejects -mavx2 -mfma): the backend is simply absent at runtime.
const Kernels* avx2_table() { return nullptr; }
}  // namespace diffpattern::tensor::simd::detail

#endif
