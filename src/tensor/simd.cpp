#include "tensor/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace diffpattern::tensor {

namespace simd {
namespace {

// ---- scalar backend: the canonical semantics ------------------------------
//
// Every loop below is written in the exact lane structure the vector
// backends use (8 float lanes / 4 double lanes, tails folded into the low
// lanes, fixed reduction trees), with std::fma wherever the canonical op is
// fused. The vector implementations then reproduce these bits instruction
// for instruction; -ffp-contract=off (set project-wide) keeps the compiler
// from fusing or splitting anything on its own.

void scalar_axpy(float a, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = std::fma(a, x[i], y[i]);
  }
}

float scalar_dot(const float* x, const float* y, std::int64_t n) {
  float acc[8] = {0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F};
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      acc[l] = std::fma(x[i + l], y[i + l], acc[l]);
    }
  }
  for (const std::int64_t base = i; i < n; ++i) {
    acc[i - base] = std::fma(x[i], y[i], acc[i - base]);
  }
  const float t0 = acc[0] + acc[4];
  const float t1 = acc[1] + acc[5];
  const float t2 = acc[2] + acc[6];
  const float t3 = acc[3] + acc[7];
  return (t0 + t2) + (t1 + t3);
}

void scalar_add(float* y, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] += x[i];
  }
}

void scalar_mul(float* y, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] *= x[i];
  }
}

void scalar_scale(float* y, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] *= s;
  }
}

void scalar_shift(float* y, const float* x, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = x[i] + s;
  }
}

void scalar_relu(float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = y[i] > 0.0F ? y[i] : 0.0F;
  }
}

float scalar_max(const float* x, std::int64_t n) {
  float m[8];
  for (int l = 0; l < 8; ++l) {
    m[l] = x[0];
  }
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int l = 0; l < 8; ++l) {
      m[l] = m[l] > x[i + l] ? m[l] : x[i + l];
    }
  }
  for (const std::int64_t base = i; i < n; ++i) {
    float& lane = m[i - base];
    lane = lane > x[i] ? lane : x[i];
  }
  const float t0 = m[0] > m[4] ? m[0] : m[4];
  const float t1 = m[1] > m[5] ? m[1] : m[5];
  const float t2 = m[2] > m[6] ? m[2] : m[6];
  const float t3 = m[3] > m[7] ? m[3] : m[7];
  const float u0 = t0 > t2 ? t0 : t2;
  const float u1 = t1 > t3 ? t1 : t3;
  return u0 > u1 ? u0 : u1;
}

double scalar_sum(const float* x, std::int64_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      acc[l] += static_cast<double>(x[i + l]);
    }
  }
  for (const std::int64_t base = i; i < n; ++i) {
    acc[i - base] += static_cast<double>(x[i]);
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

double scalar_sumsq_centered(const float* x, double mean, std::int64_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int l = 0; l < 4; ++l) {
      const double d = static_cast<double>(x[i + l]) - mean;
      acc[l] += d * d;
    }
  }
  for (const std::int64_t base = i; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    acc[i - base] += d * d;
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

void scalar_normalize_affine(const float* x, float mean, float istd,
                             float gamma, float beta, float* xhat, float* y,
                             std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float xn = (x[i] - mean) * istd;
    xhat[i] = xn;
    y[i] = std::fma(xn, gamma, beta);
  }
}

void scalar_normalize_affine_rows(const float* x, float mean, float istd,
                                  const float* gamma, const float* beta,
                                  float* xhat, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float xn = (x[i] - mean) * istd;
    xhat[i] = xn;
    y[i] = std::fma(xn, gamma[i], beta[i]);
  }
}

constexpr Kernels kScalarTable = {
    .backend = KernelBackend::kScalar,
    .axpy = scalar_axpy,
    .dot = scalar_dot,
    .add = scalar_add,
    .mul = scalar_mul,
    .scale = scalar_scale,
    .shift = scalar_shift,
    .relu = scalar_relu,
    .max = scalar_max,
    .sum = scalar_sum,
    .sumsq_centered = scalar_sumsq_centered,
    .normalize_affine = scalar_normalize_affine,
    .normalize_affine_rows = scalar_normalize_affine_rows,
};

// ---- NEON backend (AArch64 baseline) --------------------------------------
//
// Mirrors the canonical 8-float / 4-double lane structure with paired
// 128-bit registers (lanes 0-3 in the A register, 4-7 in B); tails and
// reductions drop to the scalar canonical code on the stored lanes, so the
// result is bit-identical to the scalar backend.
#if defined(__aarch64__)

void neon_axpy(float a, const float* x, float* y, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) {
    y[i] = std::fma(a, x[i], y[i]);
  }
}

float neon_dot(const float* x, const float* y, std::int64_t n) {
  float32x4_t acc_a = vdupq_n_f32(0.0F);
  float32x4_t acc_b = vdupq_n_f32(0.0F);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_a = vfmaq_f32(acc_a, vld1q_f32(x + i), vld1q_f32(y + i));
    acc_b = vfmaq_f32(acc_b, vld1q_f32(x + i + 4), vld1q_f32(y + i + 4));
  }
  float acc[8];
  vst1q_f32(acc, acc_a);
  vst1q_f32(acc + 4, acc_b);
  for (const std::int64_t base = i; i < n; ++i) {
    acc[i - base] = std::fma(x[i], y[i], acc[i - base]);
  }
  const float t0 = acc[0] + acc[4];
  const float t1 = acc[1] + acc[5];
  const float t2 = acc[2] + acc[6];
  const float t3 = acc[3] + acc[7];
  return (t0 + t2) + (t1 + t3);
}

void neon_add(float* y, const float* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) {
    y[i] += x[i];
  }
}

void neon_mul(float* y, const float* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) {
    y[i] *= x[i];
  }
}

void neon_scale(float* y, float s, std::int64_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), vs));
  }
  for (; i < n; ++i) {
    y[i] *= s;
  }
}

void neon_shift(float* y, const float* x, float s, std::int64_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(x + i), vs));
  }
  for (; i < n; ++i) {
    y[i] = x[i] + s;
  }
}

void neon_relu(float* y, std::int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0F);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vbsl on (y > 0): keep y where strictly positive, else +0 — matches
    // the scalar canonical (NaN and -0 map to +0).
    const float32x4_t v = vld1q_f32(y + i);
    vst1q_f32(y + i, vbslq_f32(vcgtq_f32(v, zero), v, zero));
  }
  for (; i < n; ++i) {
    y[i] = y[i] > 0.0F ? y[i] : 0.0F;
  }
}

float neon_max(const float* x, std::int64_t n) {
  float32x4_t m_a = vdupq_n_f32(x[0]);
  float32x4_t m_b = m_a;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t va = vld1q_f32(x + i);
    const float32x4_t vb = vld1q_f32(x + i + 4);
    // Select m where m > v, else v — the canonical (m > v ? m : v).
    m_a = vbslq_f32(vcgtq_f32(m_a, va), m_a, va);
    m_b = vbslq_f32(vcgtq_f32(m_b, vb), m_b, vb);
  }
  float m[8];
  vst1q_f32(m, m_a);
  vst1q_f32(m + 4, m_b);
  for (const std::int64_t base = i; i < n; ++i) {
    float& lane = m[i - base];
    lane = lane > x[i] ? lane : x[i];
  }
  const float t0 = m[0] > m[4] ? m[0] : m[4];
  const float t1 = m[1] > m[5] ? m[1] : m[5];
  const float t2 = m[2] > m[6] ? m[2] : m[6];
  const float t3 = m[3] > m[7] ? m[3] : m[7];
  const float u0 = t0 > t2 ? t0 : t2;
  const float u1 = t1 > t3 ? t1 : t3;
  return u0 > u1 ? u0 : u1;
}

double neon_sum(const float* x, std::int64_t n) {
  float64x2_t acc_a = vdupq_n_f64(0.0);  // Lanes 0, 1.
  float64x2_t acc_b = vdupq_n_f64(0.0);  // Lanes 2, 3.
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    acc_a = vaddq_f64(acc_a, vcvt_f64_f32(vget_low_f32(v)));
    acc_b = vaddq_f64(acc_b, vcvt_f64_f32(vget_high_f32(v)));
  }
  double acc[4];
  vst1q_f64(acc, acc_a);
  vst1q_f64(acc + 2, acc_b);
  for (const std::int64_t base = i; i < n; ++i) {
    acc[i - base] += static_cast<double>(x[i]);
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

double neon_sumsq_centered(const float* x, double mean, std::int64_t n) {
  const float64x2_t vmean = vdupq_n_f64(mean);
  float64x2_t acc_a = vdupq_n_f64(0.0);
  float64x2_t acc_b = vdupq_n_f64(0.0);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    const float64x2_t da = vsubq_f64(vcvt_f64_f32(vget_low_f32(v)), vmean);
    const float64x2_t db = vsubq_f64(vcvt_f64_f32(vget_high_f32(v)), vmean);
    acc_a = vaddq_f64(acc_a, vmulq_f64(da, da));
    acc_b = vaddq_f64(acc_b, vmulq_f64(db, db));
  }
  double acc[4];
  vst1q_f64(acc, acc_a);
  vst1q_f64(acc + 2, acc_b);
  for (const std::int64_t base = i; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - mean;
    acc[i - base] += d * d;
  }
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

void neon_normalize_affine(const float* x, float mean, float istd,
                           float gamma, float beta, float* xhat, float* y,
                           std::int64_t n) {
  const float32x4_t vmean = vdupq_n_f32(mean);
  const float32x4_t vistd = vdupq_n_f32(istd);
  const float32x4_t vgamma = vdupq_n_f32(gamma);
  const float32x4_t vbeta = vdupq_n_f32(beta);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xn =
        vmulq_f32(vsubq_f32(vld1q_f32(x + i), vmean), vistd);
    vst1q_f32(xhat + i, xn);
    vst1q_f32(y + i, vfmaq_f32(vbeta, xn, vgamma));
  }
  for (; i < n; ++i) {
    const float xn = (x[i] - mean) * istd;
    xhat[i] = xn;
    y[i] = std::fma(xn, gamma, beta);
  }
}

void neon_normalize_affine_rows(const float* x, float mean, float istd,
                                const float* gamma, const float* beta,
                                float* xhat, float* y, std::int64_t n) {
  const float32x4_t vmean = vdupq_n_f32(mean);
  const float32x4_t vistd = vdupq_n_f32(istd);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xn =
        vmulq_f32(vsubq_f32(vld1q_f32(x + i), vmean), vistd);
    vst1q_f32(xhat + i, xn);
    vst1q_f32(y + i,
              vfmaq_f32(vld1q_f32(beta + i), xn, vld1q_f32(gamma + i)));
  }
  for (; i < n; ++i) {
    const float xn = (x[i] - mean) * istd;
    xhat[i] = xn;
    y[i] = std::fma(xn, gamma[i], beta[i]);
  }
}

constexpr Kernels kNeonTable = {
    .backend = KernelBackend::kNeon,
    .axpy = neon_axpy,
    .dot = neon_dot,
    .add = neon_add,
    .mul = neon_mul,
    .scale = neon_scale,
    .shift = neon_shift,
    .relu = neon_relu,
    .max = neon_max,
    .sum = neon_sum,
    .sumsq_centered = neon_sumsq_centered,
    .normalize_affine = neon_normalize_affine,
    .normalize_affine_rows = neon_normalize_affine_rows,
};

#endif  // defined(__aarch64__)

// ---- dispatch --------------------------------------------------------------

std::atomic<const Kernels*> g_active{nullptr};

/// Initial backend: DIFFPATTERN_KERNEL_BACKEND when set to a name the host
/// supports (following the DIFFPATTERN_THREADS precedent, malformed or
/// unsupported values are ignored), else the best detected backend.
const Kernels* resolve_initial() {
  if (const char* env = std::getenv("DIFFPATTERN_KERNEL_BACKEND")) {
    const auto parsed = parse_kernel_backend(env);
    if (parsed.ok()) {
      if (const Kernels* table = table_for(*parsed)) {
        return table;
      }
    }
  }
  return table_for(detected_kernel_backend());
}

}  // namespace

const Kernels& active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: every initializer computes the same table; first CAS
    // wins and the others adopt it.
    const Kernels* resolved = resolve_initial();
    const Kernels* expected = nullptr;
    g_active.compare_exchange_strong(expected, resolved,
                                     std::memory_order_acq_rel);
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

const Kernels* table_for(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &kScalarTable;
    case KernelBackend::kAvx2:
      return kernel_backend_supported(KernelBackend::kAvx2)
                 ? detail::avx2_table()
                 : nullptr;
    case KernelBackend::kNeon:
#if defined(__aarch64__)
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

}  // namespace simd

const char* kernel_backend_label(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

KernelBackend kernel_backend() { return simd::active().backend; }

std::string kernel_backend_name() {
  return kernel_backend_label(kernel_backend());
}

bool kernel_backend_supported(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return simd::detail::avx2_table() != nullptr &&
             __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case KernelBackend::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

KernelBackend detected_kernel_backend() {
  if (kernel_backend_supported(KernelBackend::kAvx2)) {
    return KernelBackend::kAvx2;
  }
  if (kernel_backend_supported(KernelBackend::kNeon)) {
    return KernelBackend::kNeon;
  }
  return KernelBackend::kScalar;
}

std::vector<std::string> supported_kernel_backend_names() {
  std::vector<std::string> names;
  for (const auto backend : {KernelBackend::kScalar, KernelBackend::kAvx2,
                             KernelBackend::kNeon}) {
    if (kernel_backend_supported(backend)) {
      names.emplace_back(kernel_backend_label(backend));
    }
  }
  return names;
}

common::Result<KernelBackend> parse_kernel_backend(const std::string& name) {
  if (name == "scalar") {
    return KernelBackend::kScalar;
  }
  if (name == "avx2") {
    return KernelBackend::kAvx2;
  }
  if (name == "neon") {
    return KernelBackend::kNeon;
  }
  if (name == "auto") {
    return detected_kernel_backend();
  }
  return common::Status::InvalidArgument(
      "unknown kernel backend '" + name +
      "' (expected scalar|avx2|neon|auto)");
}

common::Status set_kernel_backend(KernelBackend backend) {
  const simd::Kernels* table = simd::table_for(backend);
  if (table == nullptr) {
    std::string supported;
    for (const auto& name : supported_kernel_backend_names()) {
      supported += supported.empty() ? name : ", " + name;
    }
    return common::Status::InvalidArgument(
        std::string("kernel backend '") + kernel_backend_label(backend) +
        "' is not supported on this host (supported: " + supported + ")");
  }
  simd::g_active.store(table, std::memory_order_release);
  return common::Status::Ok();
}

common::Status set_kernel_backend_name(const std::string& name) {
  auto parsed = parse_kernel_backend(name);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return set_kernel_backend(*parsed);
}

}  // namespace diffpattern::tensor
