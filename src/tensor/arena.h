// Inference activation arena: planned, lifetime-aware reuse of tensor
// storage across denoising rounds.
//
// A steady-state reverse-diffusion round executes the exact same op
// sequence as the previous round (same model, same batch shape), so it
// requests the exact same sequence of intermediate-activation buffers. An
// ActivationArena exploits that: buffers released by round R's tensors are
// pooled by size and handed back, fill-free of heap traffic, to round R+1.
// The first round for a given batch shape records the working set (every
// acquire misses and grows the pool); every later round is served entirely
// from the pool — zero tensor-storage heap allocations in steady state
// (asserted by tests/test_inference_arena.cpp via tensor_alloc_stats()).
//
// The pool recycles whole std::vector<float> storages rather than carving
// offsets out of one slab. That keeps every buffer an independent heap
// object with its own ASan redzones — slab reuse is exactly where lifetime
// bugs hide, and CI runs these suites under ASan with the arena forced on —
// and it makes ownership trivially safe: a tensor that outlives its scope
// simply keeps (and eventually frees) its vector; nothing ever points into
// arena-owned memory.
//
// Wiring:
//   - Tensor's storage hooks (tensor.cpp) consult the thread-local scope on
//     every storage construction / growth / destruction.
//   - ArenaScope activates an arena for the current thread (RAII). The
//     diffusion sampling loops open one per round, leasing the arena from
//     the model's InferencePlanCache keyed by the round's batch shape —
//     strided sampling narrows the batch as coarse slots finish, and each
//     narrowed shape gets its own plan.
//   - Compute-pool worker threads have no scope installed, so temporaries
//     allocated inside parallel_for bodies fall back to the plain heap
//     (only bmm's per-slice GEMM buffers today). With a 1-thread pool the
//     caller runs every chunk inline and the arena sees every allocation.
//
// Kill switch: DIFFPATTERN_ARENA=off|0|false disables the feature
// process-wide (ServiceConfig::activation_arena and the CLI --arena flag
// land on set_activation_arena_enabled; last explicit choice wins, like the
// kernel-backend override). Disabled means ArenaScope installs nothing and
// every path behaves exactly as before this layer existed. On or off, the
// bytes are identical: the arena only changes where storage lives, never
// the math (pinned golden digests in test_sampling_determinism.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace diffpattern::tensor {

/// Process-wide arena kill switch. Defaults from DIFFPATTERN_ARENA at first
/// use ("off"/"0"/"false" disables; anything else, or unset, enables).
bool activation_arena_enabled();
/// Explicit override (ServiceConfig / CLI / tests); last call wins.
void set_activation_arena_enabled(bool enabled);

/// Process-wide arena telemetry (relaxed atomics; totals are monotone,
/// bytes_reserved is a gauge).
struct ArenaStats {
  /// Plan-cache leases served by an existing, idle plan.
  std::int64_t plan_cache_hits = 0;
  /// Leases that created a new plan (first round at a batch shape) or found
  /// the plan busy on another thread (no reuse happened either way).
  std::int64_t plan_cache_misses = 0;
  /// Storage acquisitions served from an arena pool (recycled buffer).
  std::int64_t pool_hits = 0;
  /// Storage acquisitions inside an active scope that had to grow the pool
  /// from the heap (plan recording, or a shape the plan has not seen).
  std::int64_t pool_misses = 0;
  /// Bytes currently pooled across live arenas. Sampled between rounds this
  /// is the planned working set; mid-round it dips while buffers are out.
  std::int64_t bytes_reserved = 0;
};
ArenaStats arena_stats();

/// Size-keyed freelist of recycled tensor storages. Not thread-safe: an
/// arena is leased exclusively (InferencePlanCache) and driven by exactly
/// one thread at a time.
class ActivationArena {
 public:
  ActivationArena() = default;
  ~ActivationArena();
  ActivationArena(const ActivationArena&) = delete;
  ActivationArena& operator=(const ActivationArena&) = delete;

  /// Hands `out` a cleared buffer with capacity >= n. Returns true when the
  /// buffer came from the pool (steady state); false when the pool had to
  /// reserve fresh heap storage into `out` (recording a new plan entry).
  bool acquire(std::vector<float>& out, std::size_t n);

  /// Returns a storage to the pool, keyed by its capacity. Accepts buffers
  /// the arena never handed out (a tensor constructed elsewhere but
  /// destroyed in-scope donates its storage); they pool like any other.
  void release(std::vector<float>&& buffer);

  /// Bytes currently sitting in the pool (capacity, not size).
  std::int64_t pooled_bytes() const { return pooled_bytes_; }

 private:
  void note_pooled(std::int64_t delta_bytes);

  std::unordered_map<std::size_t, std::vector<std::vector<float>>> pool_;
  std::int64_t pooled_bytes_ = 0;
};

/// LRU-bounded map of batch-shape -> ActivationArena owned by a model.
/// lease() is thread-safe; each plan is handed out exclusively, so two
/// threads forwarding the same shape concurrently get one plan + one
/// nullptr (the latter runs arena-less — same bytes, just unpooled).
class InferencePlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 8;

  explicit InferencePlanCache(std::size_t capacity = kDefaultCapacity);
  ~InferencePlanCache() = default;
  InferencePlanCache(const InferencePlanCache&) = delete;
  InferencePlanCache& operator=(const InferencePlanCache&) = delete;

  /// Leases the plan for `key`, creating (and LRU-evicting past capacity)
  /// as needed. Returns nullptr when the feature is disabled or the plan
  /// is currently leased by another thread. Pair with unlease().
  ActivationArena* lease(const Shape& key);
  void unlease(ActivationArena* arena);

  std::size_t plan_count() const;
  std::int64_t evictions() const;

 private:
  struct Entry {
    Shape key;
    std::unique_ptr<ActivationArena> arena;
    bool leased = false;
    std::uint64_t last_used = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::int64_t evictions_ = 0;
};

/// RAII thread-local arena activation. While alive, Tensor storage
/// construction/destruction on this thread routes through the arena.
/// Scopes nest (the previous arena is restored on destruction).
class ArenaScope {
 public:
  /// Activates `arena` (nullptr = inactive scope, all paths unchanged).
  explicit ArenaScope(ActivationArena* arena);
  /// Convenience for the sampling loops: leases `key` from `cache` when
  /// the feature is enabled, activates the lease, and unleases on exit.
  ArenaScope(InferencePlanCache& cache, const Shape& key);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The arena active on this thread, or nullptr.
  static ActivationArena* current();

 private:
  ActivationArena* previous_;
  ActivationArena* leased_ = nullptr;
  InferencePlanCache* cache_ = nullptr;
};

namespace detail {
void record_plan_hit();
void record_plan_miss();
void record_pool_hit();
void record_pool_miss();
void record_bytes_reserved(std::int64_t delta);
}  // namespace detail

}  // namespace diffpattern::tensor
