// Dense row-major float32 tensor.
//
// This is the numeric substrate for the neural-network stack (src/nn). It is
// deliberately simple: contiguous storage, value semantics, bounds-checked
// accessors, and a handful of shape utilities. All differentiable operations
// live in src/nn; the raw kernels (GEMM, im2col, reductions) live in
// tensor_ops.h.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace diffpattern::tensor {

using Shape = std::vector<std::int64_t>;

class Tensor {
 public:
  /// Empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Tensor of the given shape, filled with `fill`.
  explicit Tensor(Shape shape, float fill = 0.0F);

  // Storage routes through the thread-local ActivationArena (arena.h) when
  // one is active: construction/growth acquires a recycled buffer,
  // destruction donates the buffer back. Outside a scope these are the
  // plain vector operations they always were. Moves just steal.
  ~Tensor();
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept;

  /// Adopts `data`, which must have exactly the number of elements implied
  /// by `shape`.
  static Tensor from_data(Shape shape, std::vector<float> data);

  /// Scalar (rank-1, single-element) convenience constructor.
  static Tensor scalar(float value);

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& storage() const { return data_; }

  /// Bounds-checked multi-dimensional access.
  float& at(std::initializer_list<std::int64_t> index);
  float at(std::initializer_list<std::int64_t> index) const;

  /// Unchecked flat access (hot paths).
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Returns a copy with a new shape; element count must match. A dimension
  /// of -1 (at most one) is inferred.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  /// Reshapes in place, keeping the underlying allocation when the element
  /// count shrinks or already fits capacity (scratch-buffer reuse in the
  /// kernel hot paths). New elements are zero-initialized; existing element
  /// values are unspecified afterwards — callers must treat the tensor as
  /// uninitialized output storage.
  void resize(Shape shape);

  /// True iff shapes are equal element-wise.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_string() const;

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> index) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Process-wide tensor-storage allocation telemetry (relaxed atomics).
/// heap_allocations counts every storage materialization that reached the
/// heap (constructions, copies, growth, from_data adoptions); pool_reuses
/// counts storages served by an active ActivationArena instead. The
/// steady-state zero-allocation regression test asserts heap_allocations
/// stays flat across denoising rounds with the arena on. Node/closure
/// bookkeeping in nn/ is not storage and is not counted here.
struct AllocStats {
  std::int64_t heap_allocations = 0;
  std::int64_t heap_bytes = 0;
  std::int64_t pool_reuses = 0;
};
AllocStats tensor_alloc_stats();

/// Number of elements implied by a shape (product of dimensions).
std::int64_t shape_numel(const Shape& shape);

std::string shape_to_string(const Shape& shape);

}  // namespace diffpattern::tensor
