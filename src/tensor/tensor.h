// Dense row-major float32 tensor.
//
// This is the numeric substrate for the neural-network stack (src/nn). It is
// deliberately simple: contiguous storage, value semantics, bounds-checked
// accessors, and a handful of shape utilities. All differentiable operations
// live in src/nn; the raw kernels (GEMM, im2col, reductions) live in
// tensor_ops.h.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace diffpattern::tensor {

using Shape = std::vector<std::int64_t>;

class Tensor {
 public:
  /// Empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Tensor of the given shape, filled with `fill`.
  explicit Tensor(Shape shape, float fill = 0.0F);

  /// Adopts `data`, which must have exactly the number of elements implied
  /// by `shape`.
  static Tensor from_data(Shape shape, std::vector<float> data);

  /// Scalar (rank-1, single-element) convenience constructor.
  static Tensor scalar(float value);

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return storage_ref(); }
  const std::vector<float>& storage() const { return data_; }

  /// Bounds-checked multi-dimensional access.
  float& at(std::initializer_list<std::int64_t> index);
  float at(std::initializer_list<std::int64_t> index) const;

  /// Unchecked flat access (hot paths).
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Returns a copy with a new shape; element count must match. A dimension
  /// of -1 (at most one) is inferred.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  /// Reshapes in place, keeping the underlying allocation when the element
  /// count shrinks or already fits capacity (scratch-buffer reuse in the
  /// kernel hot paths). New elements are zero-initialized; existing element
  /// values are unspecified afterwards — callers must treat the tensor as
  /// uninitialized output storage.
  void resize(Shape shape);

  /// True iff shapes are equal element-wise.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_string() const;

 private:
  std::vector<float>& storage_ref() { return data_; }
  std::int64_t flat_index(std::initializer_list<std::int64_t> index) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape (product of dimensions).
std::int64_t shape_numel(const Shape& shape);

std::string shape_to_string(const Shape& shape);

}  // namespace diffpattern::tensor
