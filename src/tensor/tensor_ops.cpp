#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace diffpattern::tensor {

namespace {

void require_matrix(const Tensor& t, const char* name) {
  DP_REQUIRE(t.rank() == 2, std::string(name) + ": expected rank-2 tensor, got " +
                                t.shape_string());
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul(a)");
  require_matrix(b, "matmul(b)");
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  DP_REQUIRE(b.dim(0) == k, "matmul: inner dimension mismatch " +
                                a.shape_string() + " x " + b.shape_string());
  const auto n = b.dim(1);
  Tensor out({m, n}, 0.0F);
  matmul_accumulate(a, b, out);
  return out;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  DP_REQUIRE(out.dim(0) == m && out.dim(1) == n,
             "matmul_accumulate: bad output shape");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0F) {
        continue;
      }
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_a(a)");
  require_matrix(b, "matmul_transpose_a(b)");
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  DP_REQUIRE(b.dim(0) == m, "matmul_transpose_a: row mismatch");
  const auto n = b.dim(1);
  Tensor out({k, n}, 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0F) {
        continue;
      }
      float* crow = pc + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_b(a)");
  require_matrix(b, "matmul_transpose_b(b)");
  const auto m = a.dim(0);
  const auto n = a.dim(1);
  DP_REQUIRE(b.dim(1) == n, "matmul_transpose_b: column mismatch");
  const auto k = b.dim(0);
  Tensor out({m, k}, 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * n;
    float* crow = pc + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * n;
      float acc = 0.0F;
      for (std::int64_t j = 0; j < n; ++j) {
        acc += arow[j] * brow[j];
      }
      crow[kk] = acc;
    }
  }
  return out;
}

Tensor im2col(const Tensor& image, const Conv2dGeometry& geom) {
  DP_REQUIRE(image.rank() == 3, "im2col: expected [C,H,W]");
  DP_REQUIRE(image.dim(0) == geom.in_channels && image.dim(1) == geom.in_h &&
                 image.dim(2) == geom.in_w,
             "im2col: geometry mismatch with image " + image.shape_string());
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  DP_REQUIRE(oh > 0 && ow > 0, "im2col: empty output window");
  Tensor cols({geom.patch_size(), oh * ow}, 0.0F);
  const float* src = image.data();
  float* dst = cols.data();
  const auto n_out = oh * ow;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < geom.kernel_h; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel_w; ++kx) {
        const auto row =
            (c * geom.kernel_h + ky) * geom.kernel_w + kx;
        float* drow = dst + row * n_out;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const auto iy = oy * geom.stride - geom.padding + ky;
          if (iy < 0 || iy >= geom.in_h) {
            continue;  // Row stays zero (padding).
          }
          const float* srow = src + (c * geom.in_h + iy) * geom.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const auto ix = ox * geom.stride - geom.padding + kx;
            if (ix < 0 || ix >= geom.in_w) {
              continue;
            }
            drow[oy * ow + ox] = srow[ix];
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& columns, const Conv2dGeometry& geom) {
  DP_REQUIRE(columns.rank() == 2, "col2im: expected rank-2 columns");
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  DP_REQUIRE(columns.dim(0) == geom.patch_size() &&
                 columns.dim(1) == oh * ow,
             "col2im: column shape mismatch");
  Tensor image({geom.in_channels, geom.in_h, geom.in_w}, 0.0F);
  const float* src = columns.data();
  float* dst = image.data();
  const auto n_out = oh * ow;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < geom.kernel_h; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel_w; ++kx) {
        const auto row =
            (c * geom.kernel_h + ky) * geom.kernel_w + kx;
        const float* srow = src + row * n_out;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const auto iy = oy * geom.stride - geom.padding + ky;
          if (iy < 0 || iy >= geom.in_h) {
            continue;
          }
          float* drow = dst + (c * geom.in_h + iy) * geom.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const auto ix = ox * geom.stride - geom.padding + kx;
            if (ix < 0 || ix >= geom.in_w) {
              continue;
            }
            drow[ix] += srow[oy * ow + ox];
          }
        }
      }
    }
  }
  return image;
}

double sum(const Tensor& t) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    acc += t[i];
  }
  return acc;
}

float max_value(const Tensor& t) {
  DP_REQUIRE(!t.empty(), "max_value: empty tensor");
  float m = t[0];
  for (std::int64_t i = 1; i < t.numel(); ++i) {
    m = std::max(m, t[i]);
  }
  return m;
}

Tensor add(const Tensor& a, const Tensor& b) {
  DP_REQUIRE(a.same_shape(b), "add: shape mismatch " + a.shape_string() +
                                  " vs " + b.shape_string());
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] += b[i];
  }
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  DP_REQUIRE(a.same_shape(b), "mul: shape mismatch " + a.shape_string() +
                                  " vs " + b.shape_string());
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] *= b[i];
  }
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] *= s;
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  require_matrix(logits, "softmax_rows");
  const auto rows = logits.dim(0);
  const auto cols = logits.dim(1);
  Tensor out = logits;
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = out.data() + i * cols;
    float m = row[0];
    for (std::int64_t j = 1; j < cols; ++j) {
      m = std::max(m, row[j]);
    }
    double denom = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - m);
      denom += row[j];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] *= inv;
    }
  }
  return out;
}

}  // namespace diffpattern::tensor
