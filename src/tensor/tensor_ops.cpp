#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "tensor/parallel.h"
#include "tensor/simd.h"

namespace diffpattern::tensor {

namespace {

void require_matrix(const Tensor& t, const char* name) {
  DP_REQUIRE(t.rank() == 2, std::string(name) + ": expected rank-2 tensor, got " +
                                t.shape_string());
}

/// Column-tile width for the (i, k, j) GEMM kernels: the output row tile
/// stays hot in L1 while a K-panel of B streams through. Tiling only
/// reorders WHICH elements are touched when — each element's k-ascending
/// accumulation order is unchanged, so results stay bit-equal to the
/// reference kernels.
constexpr std::int64_t kColumnTile = 512;

/// Minimum multiply-accumulates per parallel chunk; rows are cheap enough
/// below this that pool dispatch dominates.
constexpr std::int64_t kGemmGrainFlops = 32 * 1024;

std::int64_t row_grain(std::int64_t flops_per_row) {
  return std::max<std::int64_t>(1,
                                kGemmGrainFlops / std::max<std::int64_t>(
                                                      1, flops_per_row));
}

/// One output row of C += A * B: crow[j] = fma(arow[k], b[k][j], crow[j]),
/// k ascending per element through the dispatched axpy micro-kernel
/// (canonical fused accumulation — see tensor/simd.h), skipping zero A
/// entries (binary topologies make A sparse on several hot paths; adding
/// exact zeros is a no-op for finite values).
void gemm_row(const simd::Kernels& kern, const float* arow, const float* pb,
              float* crow, std::int64_t k, std::int64_t n) {
  for (std::int64_t j0 = 0; j0 < n; j0 += kColumnTile) {
    const auto j1 = std::min(n, j0 + kColumnTile);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0F) {
        continue;
      }
      kern.axpy(av, pb + kk * n + j0, crow + j0, j1 - j0);
    }
  }
}

}  // namespace

// ---- GEMM family (blocked, row-parallel) ----------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul(a)");
  require_matrix(b, "matmul(b)");
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  DP_REQUIRE(b.dim(0) == k, "matmul: inner dimension mismatch " +
                                a.shape_string() + " x " + b.shape_string());
  const auto n = b.dim(1);
  Tensor out({m, n}, 0.0F);
  matmul_accumulate(a, b, out);
  return out;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  require_matrix(a, "matmul_into(a)");
  require_matrix(b, "matmul_into(b)");
  DP_REQUIRE(a.dim(1) == b.dim(0), "matmul_into: inner dimension mismatch " +
                                       a.shape_string() + " x " +
                                       b.shape_string());
  DP_REQUIRE(out.rank() == 2 && out.dim(0) == a.dim(0) &&
                 out.dim(1) == b.dim(1),
             "matmul_into: bad output shape " + out.shape_string());
  out.fill(0.0F);
  matmul_accumulate(a, b, out);
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  DP_REQUIRE(out.dim(0) == m && out.dim(1) == n,
             "matmul_accumulate: bad output shape");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  const auto& kern = simd::active();
  parallel_for(
      0, m,
      [&](std::int64_t row_begin, std::int64_t row_end) {
        for (std::int64_t i = row_begin; i < row_end; ++i) {
          gemm_row(kern, pa + i * k, pb, pc + i * n, k, n);
        }
      },
      row_grain(k * n));
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_a(a)");
  require_matrix(b, "matmul_transpose_a(b)");
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  DP_REQUIRE(b.dim(0) == m, "matmul_transpose_a: row mismatch");
  const auto n = b.dim(1);
  Tensor out({k, n}, 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  const auto& kern = simd::active();
  // Each task owns whole output rows (a column of A); the per-element
  // fused accumulation order over i is the same for every backend.
  parallel_for(
      0, k,
      [&](std::int64_t row_begin, std::int64_t row_end) {
        for (std::int64_t kk = row_begin; kk < row_end; ++kk) {
          float* crow = pc + kk * n;
          for (std::int64_t i = 0; i < m; ++i) {
            const float av = pa[i * k + kk];
            if (av == 0.0F) {
              continue;
            }
            kern.axpy(av, pb + i * n, crow, n);
          }
        }
      },
      row_grain(m * n));
  return out;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transpose_b(a)");
  require_matrix(b, "matmul_transpose_b(b)");
  const auto m = a.dim(0);
  const auto n = a.dim(1);
  DP_REQUIRE(b.dim(1) == n, "matmul_transpose_b: column mismatch");
  const auto k = b.dim(0);
  Tensor out({m, k}, 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  const auto& kern = simd::active();
  parallel_for(
      0, m,
      [&](std::int64_t row_begin, std::int64_t row_end) {
        for (std::int64_t i = row_begin; i < row_end; ++i) {
          const float* arow = pa + i * n;
          float* crow = pc + i * k;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            crow[kk] = kern.dot(arow, pb + kk * n, n);
          }
        }
      },
      row_grain(k * n));
  return out;
}

// ---- im2col / col2im ------------------------------------------------------

namespace {

/// Unrolls sample `image` into the column block starting at column `col0`
/// of `cols` (row stride `ncols`), overwriting the whole block. The block's
/// contents are independent of the other samples, so batch unrolls can run
/// one sample per task.
void im2col_block(const float* src, const Conv2dGeometry& geom, float* dst,
                  std::int64_t col0, std::int64_t ncols) {
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  const auto n_out = oh * ow;
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < geom.kernel_h; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel_w; ++kx) {
        const auto row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
        float* drow = dst + row * ncols + col0;
        std::fill(drow, drow + n_out, 0.0F);  // Padding contributes zeros.
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const auto iy = oy * geom.stride - geom.padding + ky;
          if (iy < 0 || iy >= geom.in_h) {
            continue;
          }
          const float* srow = src + (c * geom.in_h + iy) * geom.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const auto ix = ox * geom.stride - geom.padding + kx;
            if (ix < 0 || ix >= geom.in_w) {
              continue;
            }
            drow[oy * ow + ox] = srow[ix];
          }
        }
      }
    }
  }
}

/// Adjoint of im2col_block: folds one sample's column block back into its
/// image slice (pre-zeroed by the caller).
void col2im_block(const float* src, const Conv2dGeometry& geom, float* dst,
                  std::int64_t col0, std::int64_t ncols) {
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  for (std::int64_t c = 0; c < geom.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < geom.kernel_h; ++ky) {
      for (std::int64_t kx = 0; kx < geom.kernel_w; ++kx) {
        const auto row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
        const float* srow = src + row * ncols + col0;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const auto iy = oy * geom.stride - geom.padding + ky;
          if (iy < 0 || iy >= geom.in_h) {
            continue;
          }
          float* drow = dst + (c * geom.in_h + iy) * geom.in_w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const auto ix = ox * geom.stride - geom.padding + kx;
            if (ix < 0 || ix >= geom.in_w) {
              continue;
            }
            drow[ix] += srow[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace

Tensor im2col(const Tensor& image, const Conv2dGeometry& geom) {
  DP_REQUIRE(image.rank() == 3, "im2col: expected [C,H,W]");
  DP_REQUIRE(image.dim(0) == geom.in_channels && image.dim(1) == geom.in_h &&
                 image.dim(2) == geom.in_w,
             "im2col: geometry mismatch with image " + image.shape_string());
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  DP_REQUIRE(oh > 0 && ow > 0, "im2col: empty output window");
  Tensor cols({geom.patch_size(), oh * ow});
  im2col_block(image.data(), geom, cols.data(), 0, oh * ow);
  return cols;
}

void im2col_batch_into(const Tensor& images, const Conv2dGeometry& geom,
                       Tensor& cols) {
  DP_REQUIRE(images.rank() == 4, "im2col_batch: expected [N,C,H,W]");
  DP_REQUIRE(images.dim(1) == geom.in_channels &&
                 images.dim(2) == geom.in_h && images.dim(3) == geom.in_w,
             "im2col_batch: geometry mismatch with batch " +
                 images.shape_string());
  const auto batch = images.dim(0);
  const auto n_out = geom.out_h() * geom.out_w();
  DP_REQUIRE(n_out > 0, "im2col_batch: empty output window");
  const auto ncols = batch * n_out;
  cols.resize({geom.patch_size(), ncols});
  const auto per_sample = images.numel() / batch;
  const float* src = images.data();
  float* dst = cols.data();
  parallel_for(0, batch, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n) {
      im2col_block(src + n * per_sample, geom, dst, n * n_out, ncols);
    }
  });
}

Tensor im2col_batch(const Tensor& images, const Conv2dGeometry& geom) {
  Tensor cols;
  im2col_batch_into(images, geom, cols);
  return cols;
}

Tensor col2im(const Tensor& columns, const Conv2dGeometry& geom) {
  DP_REQUIRE(columns.rank() == 2, "col2im: expected rank-2 columns");
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  DP_REQUIRE(columns.dim(0) == geom.patch_size() &&
                 columns.dim(1) == oh * ow,
             "col2im: column shape mismatch");
  Tensor image({geom.in_channels, geom.in_h, geom.in_w}, 0.0F);
  col2im_block(columns.data(), geom, image.data(), 0, oh * ow);
  return image;
}

Tensor col2im_batch(const Tensor& columns, const Conv2dGeometry& geom,
                    std::int64_t batch) {
  DP_REQUIRE(columns.rank() == 2, "col2im_batch: expected rank-2 columns");
  DP_REQUIRE(batch >= 1, "col2im_batch: batch must be >= 1");
  const auto n_out = geom.out_h() * geom.out_w();
  DP_REQUIRE(columns.dim(0) == geom.patch_size() &&
                 columns.dim(1) == batch * n_out,
             "col2im_batch: column shape mismatch");
  Tensor images({batch, geom.in_channels, geom.in_h, geom.in_w}, 0.0F);
  const auto per_sample = images.numel() / batch;
  const float* src = columns.data();
  float* dst = images.data();
  parallel_for(0, batch, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n) {
      col2im_block(src, geom, dst + n * per_sample, n * n_out,
                   batch * n_out);
    }
  });
  return images;
}

// ---- reductions / elementwise ---------------------------------------------

double sum(const Tensor& t) {
  // Sequential double accumulation: the fixed order keeps the value
  // independent of thread count (this is a cold path next to the GEMMs).
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    acc += t[i];
  }
  return acc;
}

float max_value(const Tensor& t) {
  DP_REQUIRE(!t.empty(), "max_value: empty tensor");
  float m = t[0];
  for (std::int64_t i = 1; i < t.numel(); ++i) {
    m = std::max(m, t[i]);
  }
  return m;
}

Tensor add(const Tensor& a, const Tensor& b) {
  DP_REQUIRE(a.same_shape(b), "add: shape mismatch " + a.shape_string() +
                                  " vs " + b.shape_string());
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  const auto& kern = simd::active();
  parallel_elements(out.numel(), [&](std::int64_t i0, std::int64_t i1) {
    kern.add(po + i0, pb + i0, i1 - i0);
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  DP_REQUIRE(a.same_shape(b), "mul: shape mismatch " + a.shape_string() +
                                  " vs " + b.shape_string());
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  const auto& kern = simd::active();
  parallel_elements(out.numel(), [&](std::int64_t i0, std::int64_t i1) {
    kern.mul(po + i0, pb + i0, i1 - i0);
  });
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  float* po = out.data();
  const auto& kern = simd::active();
  parallel_elements(out.numel(), [&](std::int64_t i0, std::int64_t i1) {
    kern.scale(po + i0, s, i1 - i0);
  });
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  require_matrix(logits, "softmax_rows");
  const auto rows = logits.dim(0);
  const auto cols = logits.dim(1);
  Tensor out = logits;
  const auto& kern = simd::active();
  // Row-parallel: the max and final scale go through the dispatched
  // kernels (exact for every backend); the exp/denominator loop keeps its
  // fixed sequential double accumulation so the value is independent of
  // thread count and backend alike.
  parallel_for(
      0, rows,
      [&](std::int64_t row_begin, std::int64_t row_end) {
        for (std::int64_t i = row_begin; i < row_end; ++i) {
          float* row = out.data() + i * cols;
          const float m = kern.max(row, cols);
          double denom = 0.0;
          for (std::int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - m);
            denom += row[j];
          }
          const auto inv = static_cast<float>(1.0 / denom);
          kern.scale(row, inv, cols);
        }
      },
      std::max<std::int64_t>(1, kElementwiseGrain / std::max<std::int64_t>(
                                                        1, cols)));
  return out;
}

// ---- retained naive reference kernels -------------------------------------

namespace reference {

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  DP_REQUIRE(out.dim(0) == m && out.dim(1) == n,
             "reference::matmul_accumulate: bad output shape");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0F) {
        continue;
      }
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "reference::matmul(a)");
  require_matrix(b, "reference::matmul(b)");
  DP_REQUIRE(b.dim(0) == a.dim(1), "reference::matmul: inner mismatch");
  Tensor out({a.dim(0), b.dim(1)}, 0.0F);
  reference::matmul_accumulate(a, b, out);
  return out;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "reference::matmul_transpose_a(a)");
  require_matrix(b, "reference::matmul_transpose_a(b)");
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  DP_REQUIRE(b.dim(0) == m, "reference::matmul_transpose_a: row mismatch");
  const auto n = b.dim(1);
  Tensor out({k, n}, 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0F) {
        continue;
      }
      float* crow = pc + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "reference::matmul_transpose_b(a)");
  require_matrix(b, "reference::matmul_transpose_b(b)");
  const auto m = a.dim(0);
  const auto n = a.dim(1);
  DP_REQUIRE(b.dim(1) == n, "reference::matmul_transpose_b: column mismatch");
  const auto k = b.dim(0);
  Tensor out({m, k}, 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * n;
    float* crow = pc + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * n;
      float acc = 0.0F;
      for (std::int64_t j = 0; j < n; ++j) {
        acc += arow[j] * brow[j];
      }
      crow[kk] = acc;
    }
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  require_matrix(logits, "reference::softmax_rows");
  const auto rows = logits.dim(0);
  const auto cols = logits.dim(1);
  Tensor out = logits;
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = out.data() + i * cols;
    float m = row[0];
    for (std::int64_t j = 1; j < cols; ++j) {
      m = std::max(m, row[j]);
    }
    double denom = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - m);
      denom += row[j];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] *= inv;
    }
  }
  return out;
}

}  // namespace reference

}  // namespace diffpattern::tensor
