#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/contracts.h"
#include "tensor/arena.h"

namespace diffpattern::tensor {

namespace {

std::atomic<std::int64_t> g_heap_allocations{0};
std::atomic<std::int64_t> g_heap_bytes{0};
std::atomic<std::int64_t> g_pool_reuses{0};

void note_heap_alloc(std::size_t elems) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(static_cast<std::int64_t>(elems * sizeof(float)),
                         std::memory_order_relaxed);
}

/// Leaves `dst` empty with capacity >= n, recycled from the active arena
/// when possible. Callers must pass `dst` empty (or donate its old storage
/// first via release_storage) so nothing is freed behind the arena's back.
void acquire_storage(std::vector<float>& dst, std::size_t n) {
  ActivationArena* arena = ArenaScope::current();
  if (arena != nullptr && n > 0) {
    if (arena->acquire(dst, n)) {
      g_pool_reuses.fetch_add(1, std::memory_order_relaxed);
    } else {
      note_heap_alloc(n);
    }
    return;
  }
  dst.clear();
  if (dst.capacity() < n) {
    std::vector<float>().swap(dst);  // Old storage is stale; skip the copy.
    dst.reserve(n);
    note_heap_alloc(n);
  }
}

/// Donates `buf`'s storage to the active arena (leaving it empty); without
/// a scope the storage stays put for the caller to reuse or free normally.
void release_storage(std::vector<float>& buf) {
  if (buf.capacity() == 0) {
    return;
  }
  if (ActivationArena* arena = ArenaScope::current()) {
    arena->release(std::move(buf));
  }
}

}  // namespace

AllocStats tensor_alloc_stats() {
  AllocStats s;
  s.heap_allocations = g_heap_allocations.load(std::memory_order_relaxed);
  s.heap_bytes = g_heap_bytes.load(std::memory_order_relaxed);
  s.pool_reuses = g_pool_reuses.load(std::memory_order_relaxed);
  return s;
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    DP_REQUIRE(d >= 0, "shape_numel: negative dimension");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  const auto n = static_cast<std::size_t>(shape_numel(shape_));
  acquire_storage(data_, n);
  data_.assign(n, fill);
}

Tensor::~Tensor() { release_storage(data_); }

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  acquire_storage(data_, other.data_.size());
  data_.assign(other.data_.begin(), other.data_.end());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) {
    return *this;
  }
  shape_ = other.shape_;
  const auto n = other.data_.size();
  if (data_.capacity() < n) {
    release_storage(data_);
    acquire_storage(data_, n);
  }
  data_.assign(other.data_.begin(), other.data_.end());
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    release_storage(data_);
    data_ = std::move(other.data_);
    shape_ = std::move(other.shape_);
  }
  return *this;
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  DP_REQUIRE(shape_numel(shape) == static_cast<std::int64_t>(data.size()),
             "from_data: shape " + shape_to_string(shape) +
                 " does not match data size " + std::to_string(data.size()));
  if (data.capacity() > 0) {
    note_heap_alloc(data.capacity());  // Adopted storage is heap storage.
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::scalar(float value) {
  return from_data({1}, {value});
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  if (axis < 0) {
    axis += rank();
  }
  DP_REQUIRE(axis >= 0 && axis < rank(), "dim: axis out of range");
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::flat_index(
    std::initializer_list<std::int64_t> index) const {
  DP_REQUIRE(static_cast<std::int64_t>(index.size()) == rank(),
             "at: index rank mismatch for shape " + shape_string());
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (const auto i : index) {
    const auto d = shape_[axis];
    DP_REQUIRE(i >= 0 && i < d, "at: index out of bounds on axis " +
                                    std::to_string(axis));
    flat = flat * d + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  std::int64_t known = 1;
  std::int64_t infer_axis = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      DP_REQUIRE(infer_axis == -1, "reshaped: more than one inferred axis");
      infer_axis = static_cast<std::int64_t>(i);
    } else {
      DP_REQUIRE(new_shape[i] >= 0, "reshaped: negative dimension");
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    DP_REQUIRE(known > 0 && numel() % known == 0,
               "reshaped: cannot infer axis for shape " +
                   shape_to_string(new_shape));
    new_shape[static_cast<std::size_t>(infer_axis)] = numel() / known;
  }
  DP_REQUIRE(shape_numel(new_shape) == numel(),
             "reshaped: element count mismatch " + shape_string() + " -> " +
                 shape_to_string(new_shape));
  Tensor t(*this);  // Arena-aware storage copy.
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::resize(Shape shape) {
  const auto n = static_cast<std::size_t>(shape_numel(shape));
  shape_ = std::move(shape);
  if (n <= data_.capacity()) {
    data_.resize(n);  // In-place; the vector zero-fills any new tail.
    return;
  }
  // Growth: keep vector::resize semantics (prefix preserved, tail zeroed)
  // while routing the replacement storage through the arena.
  std::vector<float> grown;
  acquire_storage(grown, n);
  grown.assign(n, 0.0F);
  std::copy(data_.begin(), data_.end(), grown.begin());
  release_storage(data_);
  data_ = std::move(grown);
}

std::string Tensor::shape_string() const {
  return shape_to_string(shape_);
}

}  // namespace diffpattern::tensor
