#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "common/contracts.h"

namespace diffpattern::tensor {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    DP_REQUIRE(d >= 0, "shape_numel: negative dimension");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  DP_REQUIRE(shape_numel(shape) == static_cast<std::int64_t>(data.size()),
             "from_data: shape " + shape_to_string(shape) +
                 " does not match data size " + std::to_string(data.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::scalar(float value) {
  return from_data({1}, {value});
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  if (axis < 0) {
    axis += rank();
  }
  DP_REQUIRE(axis >= 0 && axis < rank(), "dim: axis out of range");
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::flat_index(
    std::initializer_list<std::int64_t> index) const {
  DP_REQUIRE(static_cast<std::int64_t>(index.size()) == rank(),
             "at: index rank mismatch for shape " + shape_string());
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (const auto i : index) {
    const auto d = shape_[axis];
    DP_REQUIRE(i >= 0 && i < d, "at: index out of bounds on axis " +
                                    std::to_string(axis));
    flat = flat * d + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  std::int64_t known = 1;
  std::int64_t infer_axis = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      DP_REQUIRE(infer_axis == -1, "reshaped: more than one inferred axis");
      infer_axis = static_cast<std::int64_t>(i);
    } else {
      DP_REQUIRE(new_shape[i] >= 0, "reshaped: negative dimension");
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    DP_REQUIRE(known > 0 && numel() % known == 0,
               "reshaped: cannot infer axis for shape " +
                   shape_to_string(new_shape));
    new_shape[static_cast<std::size_t>(infer_axis)] = numel() / known;
  }
  DP_REQUIRE(shape_numel(new_shape) == numel(),
             "reshaped: element count mismatch " + shape_string() + " -> " +
                 shape_to_string(new_shape));
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::resize(Shape shape) {
  const auto n = shape_numel(shape);
  shape_ = std::move(shape);
  data_.resize(static_cast<std::size_t>(n));
}

std::string Tensor::shape_string() const {
  return shape_to_string(shape_);
}

}  // namespace diffpattern::tensor
