#include "tensor/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/contracts.h"

namespace diffpattern::tensor {

namespace {

std::atomic<bool> g_arena_enabled{[] {
  const char* env = std::getenv("DIFFPATTERN_ARENA");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
       std::strcmp(env, "false") == 0)) {
    return false;
  }
  return true;
}()};

std::atomic<std::int64_t> g_plan_hits{0};
std::atomic<std::int64_t> g_plan_misses{0};
std::atomic<std::int64_t> g_pool_hits{0};
std::atomic<std::int64_t> g_pool_misses{0};
std::atomic<std::int64_t> g_bytes_reserved{0};

thread_local ActivationArena* t_current_arena = nullptr;

}  // namespace

bool activation_arena_enabled() {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

void set_activation_arena_enabled(bool enabled) {
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

ArenaStats arena_stats() {
  ArenaStats s;
  s.plan_cache_hits = g_plan_hits.load(std::memory_order_relaxed);
  s.plan_cache_misses = g_plan_misses.load(std::memory_order_relaxed);
  s.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = g_pool_misses.load(std::memory_order_relaxed);
  s.bytes_reserved = g_bytes_reserved.load(std::memory_order_relaxed);
  return s;
}

namespace detail {
void record_plan_hit() { g_plan_hits.fetch_add(1, std::memory_order_relaxed); }
void record_plan_miss() {
  g_plan_misses.fetch_add(1, std::memory_order_relaxed);
}
void record_pool_hit() { g_pool_hits.fetch_add(1, std::memory_order_relaxed); }
void record_pool_miss() {
  g_pool_misses.fetch_add(1, std::memory_order_relaxed);
}
void record_bytes_reserved(std::int64_t delta) {
  g_bytes_reserved.fetch_add(delta, std::memory_order_relaxed);
}
}  // namespace detail

// ---- ActivationArena -------------------------------------------------------

ActivationArena::~ActivationArena() {
  // The pooled storages die with the map; only the gauge needs unwinding.
  note_pooled(-pooled_bytes_);
}

void ActivationArena::note_pooled(std::int64_t delta_bytes) {
  pooled_bytes_ += delta_bytes;
  detail::record_bytes_reserved(delta_bytes);
}

bool ActivationArena::acquire(std::vector<float>& out, std::size_t n) {
  auto it = pool_.find(n);
  if (it != pool_.end() && !it->second.empty()) {
    out = std::move(it->second.back());
    it->second.pop_back();
    out.clear();
    note_pooled(-static_cast<std::int64_t>(out.capacity() * sizeof(float)));
    detail::record_pool_hit();
    return true;
  }
  // Recording pass (or a size the plan has not seen): take heap storage.
  // The buffer joins the pool when its tensor dies, so the next round hits.
  out.clear();
  out.reserve(n);
  detail::record_pool_miss();
  return false;
}

void ActivationArena::release(std::vector<float>&& buffer) {
  const auto cap = buffer.capacity();
  if (cap == 0) {
    return;
  }
  pool_[cap].push_back(std::move(buffer));
  note_pooled(static_cast<std::int64_t>(cap * sizeof(float)));
}

// ---- InferencePlanCache ----------------------------------------------------

InferencePlanCache::InferencePlanCache(std::size_t capacity)
    : capacity_(capacity) {
  DP_REQUIRE(capacity >= 1, "InferencePlanCache: capacity must be >= 1");
}

ActivationArena* InferencePlanCache::lease(const Shape& key) {
  if (!activation_arena_enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (auto& entry : entries_) {
    if (entry.key == key) {
      if (entry.leased) {
        // Another thread is forwarding this shape right now; the caller
        // runs arena-less. Bytes are unaffected either way.
        detail::record_plan_miss();
        return nullptr;
      }
      entry.leased = true;
      entry.last_used = tick_;
      detail::record_plan_hit();
      return entry.arena.get();
    }
  }
  detail::record_plan_miss();
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used idle plan. All-leased (would need more
    // concurrent shapes than capacity) simply lets the cache overflow.
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].leased) {
        continue;
      }
      if (victim == entries_.size() ||
          entries_[i].last_used < entries_[victim].last_used) {
        victim = i;
      }
    }
    if (victim < entries_.size()) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
      ++evictions_;
    }
  }
  Entry entry;
  entry.key = key;
  entry.arena = std::make_unique<ActivationArena>();
  entry.leased = true;
  entry.last_used = tick_;
  entries_.push_back(std::move(entry));
  return entries_.back().arena.get();
}

void InferencePlanCache::unlease(ActivationArena* arena) {
  if (arena == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    if (entry.arena.get() == arena) {
      DP_CHECK(entry.leased, "InferencePlanCache: unlease of idle plan");
      entry.leased = false;
      return;
    }
  }
  DP_CHECK(false, "InferencePlanCache: unlease of unknown plan");
}

std::size_t InferencePlanCache::plan_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::int64_t InferencePlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

// ---- ArenaScope ------------------------------------------------------------

ArenaScope::ArenaScope(ActivationArena* arena) : previous_(t_current_arena) {
  t_current_arena = arena;
}

ArenaScope::ArenaScope(InferencePlanCache& cache, const Shape& key)
    : previous_(t_current_arena), leased_(cache.lease(key)), cache_(&cache) {
  t_current_arena = leased_;
}

ArenaScope::~ArenaScope() {
  t_current_arena = previous_;
  if (cache_ != nullptr) {
    cache_->unlease(leased_);
  }
}

ActivationArena* ArenaScope::current() { return t_current_arena; }

}  // namespace diffpattern::tensor
