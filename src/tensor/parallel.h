// Parallel-for facade for the tensor kernels.
//
// All multicore execution in src/tensor and src/nn goes through this header,
// backed by the process-wide common::ComputePool. The determinism contract
// every caller must honor:
//
//   * The body owns the half-open index range it is given: it writes only
//     outputs addressed by those indices and reads no output written by
//     another range.
//   * Any floating-point reduction is confined to a single index (one output
//     row, one normalization group, one batch sample) and runs in a fixed
//     sequential order inside the body.
//
// Under that contract the result is byte-identical for every thread count
// and every chunking, which is what lets diffusion::sample_streams promise
// bit-reproducible output regardless of DIFFPATTERN_THREADS / --threads.
#pragma once

#include <cstdint>
#include <functional>

namespace diffpattern::tensor {

/// Default minimum number of elementwise operations worth shipping to the
/// pool; below this the dispatch overhead beats the parallel win.
inline constexpr std::int64_t kElementwiseGrain = 16 * 1024;

/// Runs body(chunk_begin, chunk_end) over a partition of [begin, end) on the
/// process-wide compute pool. `grain` is the minimum chunk width; ranges not
/// worth splitting (and nested calls) run inline on the caller.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  std::int64_t grain = 1);

/// parallel_for tuned for flat elementwise loops over `n` elements.
void parallel_elements(
    std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace diffpattern::tensor
