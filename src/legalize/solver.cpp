#include "legalize/solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/contracts.h"
#include "common/timer.h"
#include "drc/checker.h"
#include "geometry/components.h"

namespace diffpattern::legalize {

using geometry::BinaryGrid;

const char* to_string(InitMode mode) {
  switch (mode) {
    case InitMode::solving_r: return "Solving-R";
    case InitMode::solving_e: return "Solving-E";
  }
  return "unknown";
}

const char* to_string(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::repair: return "repair";
    case SolverBackend::penalty_descent: return "penalty-descent";
  }
  return "unknown";
}

namespace {

// ---- float-stage helpers ---------------------------------------------------

/// Linearly resamples `source` to `count` entries (used when a library
/// vector's length differs from the topology's grid size).
std::vector<double> resample(const std::vector<Coord>& source,
                             std::int64_t count) {
  std::vector<double> out(static_cast<std::size_t>(count));
  const auto n = static_cast<std::int64_t>(source.size());
  for (std::int64_t i = 0; i < count; ++i) {
    const auto src = std::min(n - 1, i * n / count);
    out[static_cast<std::size_t>(i)] =
        static_cast<double>(source[static_cast<std::size_t>(src)]);
  }
  return out;
}

std::vector<double> initial_deltas(const ConstraintSystem& system,
                                   const SolverConfig& config,
                                   common::Rng& rng,
                                   const std::vector<std::vector<Coord>>* pool,
                                   std::int64_t count, Coord total) {
  std::vector<double> d(static_cast<std::size_t>(count));
  if (config.init == InitMode::solving_e && pool != nullptr && !pool->empty()) {
    // Existing geometric vectors are jointly consistent (they sum to the
    // tile span and carry realistic run statistics), which is why this
    // initialization converges in fewer iterations (paper Sec. III-D).
    const auto& pick = (*pool)[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool->size()) - 1))];
    d = resample(pick, count);
  } else {
    // Solving-R: independent per-variable draws over the variable's range,
    // with no joint knowledge of the sum constraint — the generic start
    // point an off-the-shelf nonlinear solver would use.
    for (auto& v : d) {
      v = rng.uniform(static_cast<double>(system.delta_min),
                      static_cast<double>(total) / 4.0);
    }
  }
  // Multiplicative jitter for solution diversity.
  for (auto& v : d) {
    v = std::max<double>(static_cast<double>(system.delta_min),
                         v * (1.0 + config.jitter * rng.uniform(-1.0, 1.0)));
  }
  return d;
}

/// Stage A: repairs interval minimums and projects onto sum == total.
/// Returns the number of inner rounds used (for the Table II statistics).
std::int64_t repair_axis(std::vector<double>& d,
                         const std::vector<IntervalConstraint>& intervals,
                         Coord total, Coord delta_min,
                         std::int64_t max_rounds) {
  const auto n = static_cast<std::int64_t>(d.size());
  std::int64_t round = 0;
  for (; round < max_rounds; ++round) {
    bool dirty = false;
    for (auto& v : d) {
      if (v < static_cast<double>(delta_min)) {
        v = static_cast<double>(delta_min);
        dirty = true;
      }
    }
    for (const auto& c : intervals) {
      double s = 0.0;
      for (std::int64_t i = c.lo; i <= c.hi; ++i) {
        s += d[static_cast<std::size_t>(i)];
      }
      if (s < static_cast<double>(c.min_span)) {
        const double f = static_cast<double>(c.min_span) / s * 1.0001;
        for (std::int64_t i = c.lo; i <= c.hi; ++i) {
          d[static_cast<std::size_t>(i)] *= f;
        }
        dirty = true;
      }
    }
    double sum = 0.0;
    for (const auto v : d) {
      sum += v;
    }
    const double norm = static_cast<double>(total) / sum;
    if (std::abs(norm - 1.0) > 1e-9) {
      for (auto& v : d) {
        v *= norm;
      }
      dirty = dirty || std::abs(norm - 1.0) > 1e-6;
    }
    if (!dirty) {
      break;
    }
    (void)n;
  }
  return round + 1;
}

bool axis_feasible_float(const std::vector<double>& d,
                         const std::vector<IntervalConstraint>& intervals,
                         Coord delta_min) {
  for (const auto v : d) {
    if (v < static_cast<double>(delta_min) * (1.0 - 1e-6)) {
      return false;
    }
  }
  for (const auto& c : intervals) {
    double s = 0.0;
    for (std::int64_t i = c.lo; i <= c.hi; ++i) {
      s += d[static_cast<std::size_t>(i)];
    }
    if (s < static_cast<double>(c.min_span) * (1.0 - 1e-6)) {
      return false;
    }
  }
  return true;
}

double polygon_area(const PolygonConstraint& polygon,
                    const std::vector<double>& dx,
                    const std::vector<double>& dy) {
  double area = 0.0;
  for (const auto& cell : polygon.cells) {
    area += dx[static_cast<std::size_t>(cell.col)] *
            dy[static_cast<std::size_t>(cell.row)];
  }
  return area;
}

/// Stage B: one pass of per-polygon area scaling. Returns true if any
/// polygon needed adjustment.
bool area_pass(const ConstraintSystem& system, std::vector<double>& dx,
               std::vector<double>& dy) {
  bool adjusted = false;
  for (const auto& polygon : system.polygons) {
    const double area = polygon_area(polygon, dx, dy);
    double target = area;
    if (area < static_cast<double>(polygon.area_min)) {
      target = static_cast<double>(polygon.area_min) * 1.02;
    } else if (polygon.area_max > 0 &&
               area > static_cast<double>(polygon.area_max)) {
      target = static_cast<double>(polygon.area_max) * 0.98;
    } else {
      continue;
    }
    const double f = std::sqrt(target / area);
    std::set<std::int64_t> cols;
    std::set<std::int64_t> rows;
    for (const auto& cell : polygon.cells) {
      cols.insert(cell.col);
      rows.insert(cell.row);
    }
    for (const auto c : cols) {
      dx[static_cast<std::size_t>(c)] *= f;
    }
    for (const auto r : rows) {
      dy[static_cast<std::size_t>(r)] *= f;
    }
    adjusted = true;
  }
  return adjusted;
}

bool areas_feasible_float(const ConstraintSystem& system,
                          const std::vector<double>& dx,
                          const std::vector<double>& dy) {
  for (const auto& polygon : system.polygons) {
    const double area = polygon_area(polygon, dx, dy);
    if (area < static_cast<double>(polygon.area_min) * (1.0 - 1e-4)) {
      return false;
    }
    if (polygon.area_max > 0 &&
        area > static_cast<double>(polygon.area_max) * (1.0 + 1e-4)) {
      return false;
    }
  }
  return true;
}

/// Stage C: grows the gaps of Euclidean corner-space violations (extension
/// rule). Returns true if anything changed.
bool corner_pass(const BinaryGrid& topology,
                 const geometry::ComponentAnalysis& analysis,
                 const drc::DesignRules& rules, std::vector<double>& dx,
                 std::vector<double>& dy) {
  if (!rules.euclidean_corner_space || analysis.components.size() < 2) {
    return false;
  }
  (void)topology;
  // Prefix sums in float space.
  std::vector<double> xs(dx.size() + 1, 0.0);
  for (std::size_t i = 0; i < dx.size(); ++i) {
    xs[i + 1] = xs[i] + dx[i];
  }
  std::vector<double> ys(dy.size() + 1, 0.0);
  for (std::size_t i = 0; i < dy.size(); ++i) {
    ys[i + 1] = ys[i] + dy[i];
  }
  bool adjusted = false;
  const double need = static_cast<double>(rules.space_min);
  for (std::size_t a = 0; a < analysis.components.size(); ++a) {
    for (std::size_t b = a + 1; b < analysis.components.size(); ++b) {
      for (const auto& ca : analysis.components[a].cells) {
        for (const auto& cb : analysis.components[b].cells) {
          const auto col_lo = std::min(ca.col, cb.col);
          const auto col_hi = std::max(ca.col, cb.col);
          const auto row_lo = std::min(ca.row, cb.row);
          const auto row_hi = std::max(ca.row, cb.row);
          if (col_hi - col_lo < 2 || row_hi - row_lo < 2) {
            continue;  // No diagonal gap (adjacent or axis-aligned).
          }
          const double gx = xs[static_cast<std::size_t>(col_hi)] -
                            xs[static_cast<std::size_t>(col_lo + 1)];
          const double gy = ys[static_cast<std::size_t>(row_hi)] -
                            ys[static_cast<std::size_t>(row_lo + 1)];
          const double dist = std::hypot(gx, gy);
          if (dist >= need || dist <= 0.0) {
            continue;
          }
          const double f = need / dist * 1.02;
          for (std::int64_t ci = col_lo + 1; ci < col_hi; ++ci) {
            dx[static_cast<std::size_t>(ci)] *= f;
          }
          for (std::int64_t ri = row_lo + 1; ri < row_hi; ++ri) {
            dy[static_cast<std::size_t>(ri)] *= f;
          }
          adjusted = true;
        }
      }
    }
  }
  return adjusted;
}

/// Generic penalty-function gradient descent over all Eq. 14 constraints —
/// the paper-style NLP analogue. Squared-hinge penalties with trust-region
/// clamped steps; returns the number of gradient steps taken. Convergence
/// (and thus wall time) depends strongly on the distance of the initial
/// point from the feasible set, which is what separates Solving-R from
/// Solving-E in Table II.
std::int64_t penalty_descent(const ConstraintSystem& system,
                             std::vector<double>& dx, std::vector<double>& dy,
                             std::int64_t max_steps) {
  const auto nx = static_cast<std::int64_t>(dx.size());
  const auto ny = static_cast<std::int64_t>(dy.size());
  const double avg_x =
      static_cast<double>(system.tile_width) / static_cast<double>(nx);
  const double avg_y =
      static_cast<double>(system.tile_height) / static_cast<double>(ny);
  // Term weights bring the area penalty (nm^4 scale) onto the interval
  // penalty scale (nm^2).
  const double w_area = 1.0 / (avg_x * avg_y);
  const double lr = 0.5 / static_cast<double>(std::max(nx, ny));
  const double max_step_x = 0.10 * avg_x;
  const double max_step_y = 0.10 * avg_y;

  std::vector<double> gx(dx.size());
  std::vector<double> gy(dy.size());
  std::int64_t step = 0;
  for (; step < max_steps; ++step) {
    if (axis_feasible_float(dx, system.x_intervals, system.delta_min) &&
        axis_feasible_float(dy, system.y_intervals, system.delta_min) &&
        areas_feasible_float(system, dx, dy) &&
        std::abs(std::accumulate(dx.begin(), dx.end(), 0.0) -
                 static_cast<double>(system.tile_width)) < 0.5 &&
        std::abs(std::accumulate(dy.begin(), dy.end(), 0.0) -
                 static_cast<double>(system.tile_height)) < 0.5) {
      break;
    }
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);

    const auto axis_gradient = [&](std::vector<double>& g,
                                   const std::vector<double>& d,
                                   const std::vector<IntervalConstraint>& cs,
                                   Coord total, Coord delta_min) {
      double sum = 0.0;
      for (const auto v : d) {
        sum += v;
      }
      const double sum_err = sum - static_cast<double>(total);
      for (std::size_t j = 0; j < d.size(); ++j) {
        g[j] += 2.0 * sum_err;
        const double hinge = static_cast<double>(delta_min) - d[j];
        if (hinge > 0.0) {
          g[j] -= 2.0 * hinge;
        }
      }
      for (const auto& c : cs) {
        double s = 0.0;
        for (std::int64_t i = c.lo; i <= c.hi; ++i) {
          s += d[static_cast<std::size_t>(i)];
        }
        const double hinge = static_cast<double>(c.min_span) - s;
        if (hinge > 0.0) {
          for (std::int64_t i = c.lo; i <= c.hi; ++i) {
            g[static_cast<std::size_t>(i)] -= 2.0 * hinge;
          }
        }
      }
    };
    axis_gradient(gx, dx, system.x_intervals, system.tile_width,
                  system.delta_min);
    axis_gradient(gy, dy, system.y_intervals, system.tile_height,
                  system.delta_min);

    for (const auto& polygon : system.polygons) {
      const double area = polygon_area(polygon, dx, dy);
      double hinge = 0.0;
      if (area < static_cast<double>(polygon.area_min)) {
        hinge = area - static_cast<double>(polygon.area_min);  // Negative.
      } else if (polygon.area_max > 0 &&
                 area > static_cast<double>(polygon.area_max)) {
        hinge = area - static_cast<double>(polygon.area_max);  // Positive.
      } else {
        continue;
      }
      // dA/ddx_c = sum of dy over the polygon's cells in column c (and
      // symmetrically for rows).
      for (const auto& cell : polygon.cells) {
        gx[static_cast<std::size_t>(cell.col)] +=
            2.0 * w_area * hinge * dy[static_cast<std::size_t>(cell.row)];
        gy[static_cast<std::size_t>(cell.row)] +=
            2.0 * w_area * hinge * dx[static_cast<std::size_t>(cell.col)];
      }
    }

    for (std::size_t j = 0; j < dx.size(); ++j) {
      const double delta = std::clamp(-lr * gx[j], -max_step_x, max_step_x);
      dx[j] = std::max(0.5, dx[j] + delta);
    }
    for (std::size_t j = 0; j < dy.size(); ++j) {
      const double delta = std::clamp(-lr * gy[j], -max_step_y, max_step_y);
      dy[j] = std::max(0.5, dy[j] + delta);
    }
  }
  return step;
}

// ---- integer finalization ----------------------------------------------------

std::vector<Coord> to_integer(const std::vector<double>& d, Coord delta_min) {
  std::vector<Coord> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    out[i] = std::max<Coord>(delta_min,
                             static_cast<Coord>(std::llround(d[i])));
  }
  return out;
}

/// Slack of delta j: how far it can shrink without breaking delta_min or
/// any interval containing j.
Coord delta_slack(const std::vector<Coord>& d,
                  const std::vector<IntervalConstraint>& intervals,
                  std::int64_t j, Coord delta_min) {
  Coord slack = d[static_cast<std::size_t>(j)] - delta_min;
  for (const auto& c : intervals) {
    if (j < c.lo || j > c.hi) {
      continue;
    }
    Coord s = 0;
    for (std::int64_t i = c.lo; i <= c.hi; ++i) {
      s += d[static_cast<std::size_t>(i)];
    }
    slack = std::min(slack, s - c.min_span);
  }
  return slack;
}

/// Restores sum == total by 1-nm moves on maximal-slack (shrink) or
/// arbitrary (grow) deltas. Returns false if stuck.
bool fix_axis_sum(std::vector<Coord>& d,
                  const std::vector<IntervalConstraint>& intervals,
                  Coord total, Coord delta_min) {
  Coord sum = 0;
  for (const auto v : d) {
    sum += v;
  }
  // Grow: distribute deficit over the largest deltas.
  while (sum < total) {
    auto best = std::max_element(d.begin(), d.end());
    const Coord add = std::min<Coord>(total - sum, 1 + (total - sum) / 8);
    *best += add;
    sum += add;
  }
  // Shrink: take from maximal-slack deltas.
  std::int64_t guard = static_cast<std::int64_t>(d.size()) * 1024;
  while (sum > total) {
    DP_CHECK(--guard > 0, "fix_axis_sum: shrink loop diverged");
    std::int64_t best = -1;
    Coord best_slack = 0;
    for (std::int64_t j = 0; j < static_cast<std::int64_t>(d.size()); ++j) {
      const Coord slack = delta_slack(d, intervals, j, delta_min);
      if (slack > best_slack) {
        best_slack = slack;
        best = j;
      }
    }
    if (best < 0) {
      return false;  // No delta can shrink: integer-infeasible.
    }
    const Coord take = std::min<Coord>(best_slack, sum - total);
    d[static_cast<std::size_t>(best)] -= take;
    sum -= take;
  }
  return true;
}

bool axis_feasible_int(const std::vector<Coord>& d,
                       const std::vector<IntervalConstraint>& intervals,
                       Coord total, Coord delta_min) {
  Coord sum = 0;
  for (const auto v : d) {
    if (v < delta_min) {
      return false;
    }
    sum += v;
  }
  if (sum != total) {
    return false;
  }
  for (const auto& c : intervals) {
    Coord s = 0;
    for (std::int64_t i = c.lo; i <= c.hi; ++i) {
      s += d[static_cast<std::size_t>(i)];
    }
    if (s < c.min_span) {
      return false;
    }
  }
  return true;
}

}  // namespace

SolveResult legalize_topology(const BinaryGrid& topology,
                              const drc::DesignRules& rules, Coord tile_width,
                              Coord tile_height, const SolverConfig& config,
                              common::Rng& rng, const DeltaLibrary* library) {
  common::Timer timer;
  SolveResult result;

  const auto verdict = prefilter_topology(topology);
  if (verdict != PrefilterVerdict::ok) {
    result.failure_reason = std::string("prefilter: ") + to_string(verdict);
    result.stats.seconds = timer.seconds();
    return result;
  }

  const ConstraintSystem system =
      build_constraints(topology, rules, tile_width, tile_height);
  if (system.obviously_infeasible()) {
    result.failure_reason = "constraint demands exceed the tile span";
    result.stats.seconds = timer.seconds();
    return result;
  }
  const auto analysis = geometry::analyze_components(topology);

  for (std::int64_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    result.stats.attempts = attempt + 1;
    auto dx = initial_deltas(system, config, rng,
                             library != nullptr ? &library->dx_pool : nullptr,
                             system.cols, system.tile_width);
    auto dy = initial_deltas(system, config, rng,
                             library != nullptr ? &library->dy_pool : nullptr,
                             system.rows, system.tile_height);

    bool converged = false;
    if (config.backend == SolverBackend::penalty_descent) {
      const auto steps =
          penalty_descent(system, dx, dy, config.max_gradient_steps);
      result.stats.rounds += steps;
      converged = steps < config.max_gradient_steps;
      // The descent does not model the Euclidean corner extension; glue the
      // repair loop on top when that rule is active.
      if (converged && rules.euclidean_corner_space) {
        for (std::int64_t round = 0; round < 8; ++round) {
          if (!corner_pass(topology, analysis, rules, dx, dy)) {
            break;
          }
          result.stats.rounds +=
              repair_axis(dx, system.x_intervals, system.tile_width,
                          system.delta_min, 32);
          result.stats.rounds +=
              repair_axis(dy, system.y_intervals, system.tile_height,
                          system.delta_min, 32);
        }
      }
    } else {
      for (std::int64_t round = 0; round < config.max_rounds; ++round) {
        result.stats.rounds +=
            repair_axis(dx, system.x_intervals, system.tile_width,
                        system.delta_min, 32);
        result.stats.rounds +=
            repair_axis(dy, system.y_intervals, system.tile_height,
                        system.delta_min, 32);
        const bool area_adjusted = area_pass(system, dx, dy);
        const bool corner_adjusted =
            corner_pass(topology, analysis, rules, dx, dy);
        if (!area_adjusted && !corner_adjusted &&
            axis_feasible_float(dx, system.x_intervals, system.delta_min) &&
            axis_feasible_float(dy, system.y_intervals, system.delta_min) &&
            areas_feasible_float(system, dx, dy)) {
          converged = true;
          break;
        }
      }
    }
    if (!converged) {
      continue;  // Fresh jitter.
    }

    // Integer snap + local repair.
    auto dxi = to_integer(dx, system.delta_min);
    auto dyi = to_integer(dy, system.delta_min);
    if (!fix_axis_sum(dxi, system.x_intervals, system.tile_width,
                      system.delta_min) ||
        !fix_axis_sum(dyi, system.y_intervals, system.tile_height,
                      system.delta_min)) {
      continue;
    }
    if (!axis_feasible_int(dxi, system.x_intervals, system.tile_width,
                           system.delta_min) ||
        !axis_feasible_int(dyi, system.y_intervals, system.tile_height,
                           system.delta_min)) {
      continue;
    }

    layout::SquishPattern pattern;
    pattern.topology = topology;
    pattern.dx = std::move(dxi);
    pattern.dy = std::move(dyi);
    // Final oracle check: only DRC-clean geometry leaves the solver.
    if (!drc::check_pattern(pattern, rules).clean()) {
      continue;
    }
    result.success = true;
    result.pattern = std::move(pattern);
    result.stats.seconds = timer.seconds();
    return result;
  }

  result.failure_reason = "no DRC-clean assignment found within attempts";
  result.stats.seconds = timer.seconds();
  return result;
}

std::vector<layout::SquishPattern> legalize_topology_many(
    const BinaryGrid& topology, const drc::DesignRules& rules,
    Coord tile_width, Coord tile_height, const SolverConfig& config,
    std::int64_t count, common::Rng& rng, const DeltaLibrary* library) {
  DP_REQUIRE(count >= 1, "legalize_topology_many: count must be >= 1");
  std::vector<layout::SquishPattern> out;
  std::set<std::pair<std::vector<Coord>, std::vector<Coord>>> seen;
  // Oversample: duplicates and failures both consume draws.
  const std::int64_t budget = count * 4;
  SolverConfig diverse = config;
  diverse.jitter = std::max(config.jitter, 0.25);
  for (std::int64_t i = 0;
       i < budget && static_cast<std::int64_t>(out.size()) < count; ++i) {
    auto result = legalize_topology(topology, rules, tile_width, tile_height,
                                    diverse, rng, library);
    if (!result.success) {
      continue;
    }
    if (seen.insert({result.pattern.dx, result.pattern.dy}).second) {
      out.push_back(std::move(result.pattern));
    }
  }
  return out;
}

}  // namespace diffpattern::legalize
