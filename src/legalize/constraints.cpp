#include "legalize/constraints.h"

#include <algorithm>
#include <map>

#include "common/contracts.h"

namespace diffpattern::legalize {

using geometry::BinaryGrid;

namespace {

/// Collects interval constraints from the runs of one line; appends to the
/// (lo, hi) -> min_span map keeping the largest bound.
template <typename CellFn>
void collect_line_runs(CellFn cell, std::int64_t length, Coord width_min,
                       Coord space_min,
                       std::map<std::pair<std::int64_t, std::int64_t>, Coord>&
                           intervals) {
  std::int64_t i = 0;
  bool seen_shape = false;
  while (i < length) {
    const std::uint8_t v = cell(i);
    std::int64_t j = i;
    while (j < length && cell(j) == v) {
      ++j;
    }
    if (v == 1) {
      auto& bound = intervals[{i, j - 1}];
      bound = std::max(bound, width_min);
      seen_shape = true;
    } else if (seen_shape && j < length) {
      // Interior 0-run flanked by shapes on both sides.
      auto& bound = intervals[{i, j - 1}];
      bound = std::max(bound, space_min);
    }
    i = j;
  }
}

}  // namespace

bool ConstraintSystem::obviously_infeasible() const {
  // Greedy disjoint-demand lower bound per axis: sweep intervals by right
  // endpoint; demands of non-overlapping intervals add up.
  const auto axis_lower_bound = [&](const std::vector<IntervalConstraint>& cs,
                                    std::int64_t count) {
    std::vector<IntervalConstraint> sorted = cs;
    std::sort(sorted.begin(), sorted.end(),
              [](const IntervalConstraint& a, const IntervalConstraint& b) {
                return a.hi < b.hi;
              });
    Coord demand = 0;
    std::int64_t covered_up_to = -1;  // Highest index already charged.
    for (const auto& c : sorted) {
      if (c.lo > covered_up_to) {
        demand += std::max<Coord>(c.min_span,
                                  (c.hi - c.lo + 1) * delta_min);
        covered_up_to = c.hi;
      }
    }
    // Uncovered positions still need delta_min each.
    demand += std::max<std::int64_t>(0, count - (covered_up_to + 1)) *
              delta_min;
    return demand;
  };
  return axis_lower_bound(x_intervals, cols) > tile_width ||
         axis_lower_bound(y_intervals, rows) > tile_height;
}

ConstraintSystem build_constraints(const BinaryGrid& topology,
                                   const drc::DesignRules& rules,
                                   Coord tile_width, Coord tile_height) {
  DP_REQUIRE(topology.rows() >= 1 && topology.cols() >= 1,
             "build_constraints: empty topology");
  DP_REQUIRE(tile_width >= topology.cols() && tile_height >= topology.rows(),
             "build_constraints: tile too small for the grid");
  ConstraintSystem system;
  system.cols = topology.cols();
  system.rows = topology.rows();
  system.tile_width = tile_width;
  system.tile_height = tile_height;

  std::map<std::pair<std::int64_t, std::int64_t>, Coord> x_map;
  std::map<std::pair<std::int64_t, std::int64_t>, Coord> y_map;
  for (std::int64_t r = 0; r < topology.rows(); ++r) {
    collect_line_runs(
        [&](std::int64_t c) { return topology.get_unchecked(r, c); },
        topology.cols(), rules.width_min, rules.space_min, x_map);
  }
  for (std::int64_t c = 0; c < topology.cols(); ++c) {
    collect_line_runs(
        [&](std::int64_t r) { return topology.get_unchecked(r, c); },
        topology.rows(), rules.width_min, rules.space_min, y_map);
  }
  for (const auto& [span, bound] : x_map) {
    system.x_intervals.push_back({span.first, span.second, bound});
  }
  for (const auto& [span, bound] : y_map) {
    system.y_intervals.push_back({span.first, span.second, bound});
  }

  const auto analysis = geometry::analyze_components(topology);
  for (const auto& comp : analysis.components) {
    PolygonConstraint pc;
    pc.cells = comp.cells;
    pc.area_min = rules.area_min;
    pc.area_max = rules.has_area_max() ? rules.area_max : 0;
    system.polygons.push_back(std::move(pc));
  }
  return system;
}

const char* to_string(PrefilterVerdict verdict) {
  switch (verdict) {
    case PrefilterVerdict::ok: return "ok";
    case PrefilterVerdict::empty_topology: return "empty_topology";
    case PrefilterVerdict::bowtie: return "bowtie";
  }
  return "unknown";
}

PrefilterVerdict prefilter_topology(const BinaryGrid& topology) {
  if (topology.popcount() == 0) {
    return PrefilterVerdict::empty_topology;
  }
  if (geometry::has_bowtie(topology)) {
    return PrefilterVerdict::bowtie;
  }
  return PrefilterVerdict::ok;
}

}  // namespace diffpattern::legalize
