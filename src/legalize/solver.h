// Geometry-assignment solver for the nonlinear system of Eq. 14.
//
// The system is linear in the deltas except for the bilinear polygon-area
// terms, so the solver alternates:
//   Stage A (per axis)  — multiplicative repair of interval minimums
//                         followed by projection onto sum == tile span;
//                         converges geometrically for feasible systems.
//   Stage B (coupling)  — per-polygon area scaling of the supporting rows
//                         and columns, re-entering Stage A.
//   Stage C (extension) — Euclidean corner-gap repair when the rule set
//                         enables euclidean_corner_space.
// The float solution is then snapped to the integer nm grid, locally
// repaired, and finally VERIFIED against the DRC oracle; only DRC-clean
// geometry is ever returned (this is the paper's 100%-legality mechanism:
// unsolvable topologies are dropped, never emitted).
//
// Initialization implements both modes of Table II:
//   Solving-R — random positive deltas;
//   Solving-E — a pair of existing geometric vectors drawn from the
//               training library (empirically fewer repair rounds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "drc/rules.h"
#include "geometry/grid.h"
#include "layout/squish.h"
#include "legalize/constraints.h"

namespace diffpattern::legalize {

enum class InitMode {
  solving_r,  // Random initialization.
  solving_e,  // Existing geometric vectors from the dataset.
};

const char* to_string(InitMode mode);

/// Numerical backend for the float stage.
enum class SolverBackend {
  /// Special-purpose iterative repair + projection (fast; converges in a
  /// handful of rounds almost independently of the initial point).
  repair,
  /// Generic penalty-function gradient descent over all constraints — the
  /// closest analogue of the off-the-shelf nonlinear programming the paper
  /// uses, whose iteration count is strongly init-sensitive (this is the
  /// backend that reproduces Table II's Solving-R vs Solving-E gap).
  penalty_descent,
};

const char* to_string(SolverBackend backend);

/// Pool of existing geometric vectors used by Solving-E.
struct DeltaLibrary {
  std::vector<std::vector<Coord>> dx_pool;
  std::vector<std::vector<Coord>> dy_pool;

  bool empty() const { return dx_pool.empty() || dy_pool.empty(); }
};

struct SolverConfig {
  InitMode init = InitMode::solving_e;
  SolverBackend backend = SolverBackend::repair;
  /// Outer rounds of the A/B(/C) alternation per attempt (repair backend).
  std::int64_t max_rounds = 60;
  /// Gradient steps per attempt (penalty_descent backend).
  std::int64_t max_gradient_steps = 4000;
  /// Full restarts with fresh jitter before giving up.
  std::int64_t max_attempts = 8;
  /// Relative multiplicative jitter on initial deltas; drives solution
  /// diversity for DiffPattern-L and Fig. 7.
  double jitter = 0.15;
};

struct SolveStats {
  std::int64_t rounds = 0;
  std::int64_t attempts = 0;
  double seconds = 0.0;
};

struct SolveResult {
  bool success = false;
  layout::SquishPattern pattern;  // Valid iff success.
  SolveStats stats;
  std::string failure_reason;
};

/// Assigns legal geometric vectors to `topology` under `rules`. The returned
/// pattern is guaranteed DRC-clean (verified, not assumed).
SolveResult legalize_topology(const geometry::BinaryGrid& topology,
                              const drc::DesignRules& rules, Coord tile_width,
                              Coord tile_height, const SolverConfig& config,
                              common::Rng& rng,
                              const DeltaLibrary* library = nullptr);

/// Draws up to `count` DISTINCT legal geometry assignments for one topology
/// (paper Sec. IV-C, Fig. 7 and DiffPattern-L). Patterns are deduplicated on
/// their delta vectors.
std::vector<layout::SquishPattern> legalize_topology_many(
    const geometry::BinaryGrid& topology, const drc::DesignRules& rules,
    Coord tile_width, Coord tile_height, const SolverConfig& config,
    std::int64_t count, common::Rng& rng,
    const DeltaLibrary* library = nullptr);

}  // namespace diffpattern::legalize
