// Constraint extraction for the 2D legal pattern assessment (paper Eq. 14).
//
// Given a generated topology matrix and a design-rule set, the constraint
// system over the geometric vectors delta_x, delta_y is:
//   * delta_i >= delta_min (strict positivity, integer nm grid)
//   * sum(delta_x) == tile width, sum(delta_y) == tile height
//   * sum over every SetW interval >= Width_min   (maximal 1-runs)
//   * sum over every SetS interval >= Space_min   (interior 0-runs)
//   * every polygon's bilinear area in [Area_min, Area_max]
// SetW and SetS are pattern-dependent; the bounds come from the rules.
#pragma once

#include <cstdint>
#include <vector>

#include "drc/rules.h"
#include "geometry/components.h"
#include "geometry/grid.h"

namespace diffpattern::legalize {

using geometry::Coord;

/// sum(delta[lo..hi]) >= min_span, indices inclusive.
struct IntervalConstraint {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  Coord min_span = 0;

  friend bool operator==(const IntervalConstraint&,
                         const IntervalConstraint&) = default;
};

struct PolygonConstraint {
  std::vector<geometry::GridCell> cells;
  std::int64_t area_min = 0;
  std::int64_t area_max = 0;  // <= 0: unbounded
};

struct ConstraintSystem {
  std::int64_t cols = 0;
  std::int64_t rows = 0;
  Coord tile_width = 0;
  Coord tile_height = 0;
  Coord delta_min = 1;
  std::vector<IntervalConstraint> x_intervals;  // Over delta_x indices.
  std::vector<IntervalConstraint> y_intervals;  // Over delta_y indices.
  std::vector<PolygonConstraint> polygons;

  /// Quick necessary-feasibility screen: disjoint interval demands must fit
  /// in the tile span on each axis. (Not sufficient — the solver reports
  /// residual infeasibility.)
  bool obviously_infeasible() const;
};

/// Builds the system for `topology` under `rules`. Duplicate intervals from
/// different rows/columns are deduplicated, keeping the largest bound.
ConstraintSystem build_constraints(const geometry::BinaryGrid& topology,
                                   const drc::DesignRules& rules,
                                   Coord tile_width, Coord tile_height);

/// Topology pre-filter (paper Sec. III-C): rejects topologies no geometry
/// assignment can legalize structurally.
enum class PrefilterVerdict {
  ok,
  empty_topology,   // No shape cells at all.
  bowtie,           // Point-touching polygons.
};

const char* to_string(PrefilterVerdict verdict);

PrefilterVerdict prefilter_topology(const geometry::BinaryGrid& topology);

}  // namespace diffpattern::legalize
