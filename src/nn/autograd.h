// Reverse-mode automatic differentiation over tensor::Tensor.
//
// A Var is a shared handle to a graph node holding a value, an optional
// gradient, and a backward closure that scatters the node's gradient into
// its parents. Graphs are built implicitly by the ops in ops.h and torn down
// when the last Var handle goes out of scope; there is no global tape.
//
// Usage:
//   Var loss = ...;        // built from ops over parameters
//   loss.backward();       // populates .grad() on every reachable parameter
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace diffpattern::nn {

using tensor::Shape;
using tensor::Tensor;

class Var;

namespace detail {

struct Node {
  Tensor value;
  Tensor grad;              // Allocated lazily; same shape as value.
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Receives the gradient w.r.t. this node's value and accumulates into the
  // parents' grads. Empty for leaves and for nodes on no-grad paths.
  std::function<void(const Tensor& self_grad)> backward;

  void ensure_grad();
};

}  // namespace detail

/// RAII scope that disables graph construction (inference mode). Ops run
/// value-only while a guard is alive, so sampling loops neither allocate
/// backward closures nor retain intermediate tensors.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool active();

 private:
  bool previous_;
};

class Var {
 public:
  /// Default-constructed Var is empty (no node); most APIs reject it.
  Var() = default;

  /// Wraps a value. `requires_grad` marks a trainable leaf.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  const Tensor& grad() const;
  bool requires_grad() const;

  const Shape& shape() const { return value().shape(); }
  std::int64_t dim(std::int64_t axis) const { return value().dim(axis); }
  std::int64_t numel() const { return value().numel(); }

  /// Runs reverse-mode differentiation from this (scalar) node. Gradients
  /// accumulate into every reachable node with requires_grad.
  void backward() const;

  /// Clears the gradient buffer of this node (used on parameters between
  /// optimizer steps).
  void zero_grad();

  /// Internal: used by ops to assemble graphs.
  static Var from_node(std::shared_ptr<detail::Node> node);
  const std::shared_ptr<detail::Node>& node() const { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
};

namespace detail {

/// Helper for op implementations: creates a result node wired to `parents`
/// with the given backward closure, propagating requires_grad. If no parent
/// requires gradients the closure is dropped (value-only node).
Var make_op_node(Tensor value, std::vector<Var> parents,
                 std::function<void(const Tensor&)> backward);

/// True when op application must build a backward graph: gradient mode is
/// on and at least one operand requires gradients. Ops consult this BEFORE
/// constructing their backward closure, so inference forwards skip the
/// capture tensor copies and the std::function allocation entirely (the
/// closure make_op_node would drop is never even built).
bool graph_needed(std::initializer_list<const Var*> operands);

/// Value-only result node for the inference fast path: no parents, no
/// closure, no capture copies.
Var make_value_node(Tensor value);

/// Accumulates `delta` into the node's grad buffer (allocating if needed).
void accumulate_grad(Node& node, const Tensor& delta);

}  // namespace detail

}  // namespace diffpattern::nn
