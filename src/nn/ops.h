// Differentiable operations over Var.
//
// Every function builds a graph node whose backward closure scatters
// gradients into its operands. Operands named `const Tensor&` are treated as
// constants (no gradient flows into them); this is how the diffusion loss
// mixes fixed transition-matrix coefficients with network outputs.
//
// All ops are verified against central-difference numerical gradients in
// tests/test_nn_gradcheck.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/autograd.h"

namespace diffpattern::nn {

// ---- arithmetic ----------------------------------------------------------
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var neg(const Var& a);
Var scale(const Var& a, float s);
Var add_scalar(const Var& a, float s);
/// Element-wise product with a constant tensor (no grad into `c`).
Var mul_const(const Var& a, const Tensor& c);
/// Element-wise sum with a constant tensor (no grad into `c`).
Var add_const(const Var& a, const Tensor& c);

// ---- activations ---------------------------------------------------------
Var relu(const Var& a);
Var sigmoid(const Var& a);
Var silu(const Var& a);
Var gelu(const Var& a);
Var tanh_act(const Var& a);
/// Numerically stable softplus: log(1 + exp(x)).
Var softplus(const Var& a);
/// log(max(x, eps)); gradient is zero where the clamp is active.
Var log_clamped(const Var& a, float eps = 1e-12F);

// ---- shape ---------------------------------------------------------------
Var reshape(const Var& a, Shape shape);
/// General axis permutation (transpose); `dims` is a permutation of axes.
Var permute(const Var& a, std::vector<std::int64_t> dims);
/// x[N,C,H,W] -> x[N,count,H,W] taking channels [c0, c0+count).
Var slice_channels(const Var& x, std::int64_t c0, std::int64_t count);
/// Concatenation along the channel axis of two [N,C,H,W] tensors.
Var concat_channels(const Var& a, const Var& b);
/// x[N,C,H,W] + bias[N,C] broadcast over the spatial axes (time-embedding
/// injection in residual blocks).
Var add_spatial_broadcast(const Var& x, const Var& bias_nc);
/// Stops gradient flow: returns a leaf holding a copy of the value.
Var detach(const Var& a);

// ---- linear algebra ------------------------------------------------------
Var matmul(const Var& a, const Var& b);
/// Batched matmul: [B,M,K] x [B,K,N] -> [B,M,N].
Var bmm(const Var& a, const Var& b);
/// y = x * w^T + b with x:[N,Fin], w:[Fout,Fin], b:[Fout].
Var linear(const Var& x, const Var& w, const Var& b);
/// 2-D convolution, x:[N,C,H,W], w:[O,C,kh,kw], b:[O].
Var conv2d(const Var& x, const Var& w, const Var& b, std::int64_t stride,
           std::int64_t padding);

// ---- normalization -------------------------------------------------------
/// GroupNorm over [N,C,H,W] with per-channel affine (gamma, beta of [C]).
Var group_norm(const Var& x, const Var& gamma, const Var& beta,
               std::int64_t groups, float eps = 1e-5F);
/// LayerNorm over the last axis with affine parameters of that axis length.
Var layer_norm(const Var& x, const Var& gamma, const Var& beta,
               float eps = 1e-5F);

// ---- softmax / reductions ------------------------------------------------
/// Softmax over the last axis (any rank >= 1).
Var softmax_last(const Var& a);
Var sum_all(const Var& a);
Var mean_all(const Var& a);

// ---- resize --------------------------------------------------------------
/// Nearest-neighbour 2x upsampling of [N,C,H,W].
Var upsample_nearest2(const Var& x);
/// 2x2 average pooling (H and W must be even).
Var avg_pool2(const Var& x);

// ---- regularization / lookup ---------------------------------------------
/// Inverted dropout; identity when !training or p == 0.
Var dropout(const Var& x, float p, bool training, common::Rng& rng);
/// Row gather: table:[V,D], ids of length T -> [T,D].
Var embedding_lookup(const Var& table, const std::vector<std::int64_t>& ids);

}  // namespace diffpattern::nn
