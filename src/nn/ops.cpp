#include "nn/ops.h"

#include <cmath>
#include <numeric>

#include "common/contracts.h"
#include "tensor/parallel.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace diffpattern::nn {

namespace {

using detail::accumulate_grad;
using detail::graph_needed;
using detail::make_op_node;
using detail::make_value_node;
using tensor::parallel_elements;

void require_same_shape(const Var& a, const Var& b, const char* op) {
  DP_REQUIRE(a.value().same_shape(b.value()),
             std::string(op) + ": shape mismatch " +
                 a.value().shape_string() + " vs " + b.value().shape_string());
}

Tensor map_unary(const Tensor& x, float (*f)(float)) {
  Tensor out = x;
  float* po = out.data();
  parallel_elements(out.numel(), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      po[i] = f(po[i]);
    }
  });
  return out;
}

}  // namespace

// ---- arithmetic -----------------------------------------------------------

Var add(const Var& a, const Var& b) {
  require_same_shape(a, b, "add");
  Tensor out = tensor::add(a.value(), b.value());
  if (!graph_needed({&a, &b})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto pb = b.node();
  return make_op_node(std::move(out), {a, b}, [pa, pb](const Tensor& g) {
    if (pa->requires_grad) accumulate_grad(*pa, g);
    if (pb->requires_grad) accumulate_grad(*pb, g);
  });
}

Var sub(const Var& a, const Var& b) {
  require_same_shape(a, b, "sub");
  Tensor out = a.value();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] -= b.value()[i];
  }
  if (!graph_needed({&a, &b})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto pb = b.node();
  return make_op_node(std::move(out), {a, b}, [pa, pb](const Tensor& g) {
    if (pa->requires_grad) accumulate_grad(*pa, g);
    if (pb->requires_grad) accumulate_grad(*pb, tensor::scale(g, -1.0F));
  });
}

Var mul(const Var& a, const Var& b) {
  require_same_shape(a, b, "mul");
  Tensor out = tensor::mul(a.value(), b.value());
  if (!graph_needed({&a, &b})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto pb = b.node();
  Tensor av = a.value();
  Tensor bv = b.value();
  return make_op_node(
      std::move(out), {a, b},
      [pa, pb, av = std::move(av), bv = std::move(bv)](const Tensor& g) {
        if (pa->requires_grad) accumulate_grad(*pa, tensor::mul(g, bv));
        if (pb->requires_grad) accumulate_grad(*pb, tensor::mul(g, av));
      });
}

Var neg(const Var& a) { return scale(a, -1.0F); }

Var scale(const Var& a, float s) {
  Tensor out = tensor::scale(a.value(), s);
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  return make_op_node(std::move(out), {a}, [pa, s](const Tensor& g) {
    accumulate_grad(*pa, tensor::scale(g, s));
  });
}

Var add_scalar(const Var& a, float s) {
  Tensor out = a.value();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] += s;
  }
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  return make_op_node(std::move(out), {a}, [pa](const Tensor& g) {
    accumulate_grad(*pa, g);
  });
}

Var mul_const(const Var& a, const Tensor& c) {
  DP_REQUIRE(a.value().same_shape(c), "mul_const: shape mismatch");
  Tensor out = tensor::mul(a.value(), c);
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor cc = c;
  return make_op_node(std::move(out), {a},
                      [pa, cc = std::move(cc)](const Tensor& g) {
                        accumulate_grad(*pa, tensor::mul(g, cc));
                      });
}

Var add_const(const Var& a, const Tensor& c) {
  DP_REQUIRE(a.value().same_shape(c), "add_const: shape mismatch");
  Tensor out = tensor::add(a.value(), c);
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  return make_op_node(std::move(out), {a}, [pa](const Tensor& g) {
    accumulate_grad(*pa, g);
  });
}

// ---- activations ----------------------------------------------------------

Var relu(const Var& a) {
  Tensor out = a.value();
  float* po = out.data();
  const auto& kern = tensor::simd::active();
  parallel_elements(out.numel(), [&](std::int64_t i0, std::int64_t i1) {
    kern.relu(po + i0, i1 - i0);
  });
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor x = a.value();
  return make_op_node(std::move(out), {a},
                      [pa, x = std::move(x)](const Tensor& g) {
                        Tensor d = g;
                        for (std::int64_t i = 0; i < d.numel(); ++i) {
                          if (x[i] <= 0.0F) d[i] = 0.0F;
                        }
                        accumulate_grad(*pa, d);
                      });
}

Var sigmoid(const Var& a) {
  Tensor out = map_unary(a.value(), [](float x) {
    return x >= 0.0F ? 1.0F / (1.0F + std::exp(-x))
                     : std::exp(x) / (1.0F + std::exp(x));
  });
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor s = out;
  return make_op_node(std::move(out), {a},
                      [pa, s = std::move(s)](const Tensor& g) {
                        Tensor d = g;
                        for (std::int64_t i = 0; i < d.numel(); ++i) {
                          d[i] *= s[i] * (1.0F - s[i]);
                        }
                        accumulate_grad(*pa, d);
                      });
}

Var silu(const Var& a) {
  const Tensor& x = a.value();
  Tensor out = x;
  float* po = out.data();
  const float* px = x.data();
  if (!graph_needed({&a})) {
    // Inference: same per-element formula, no sigmoid stash and no capture
    // copies — bytes are identical to the training path below.
    parallel_elements(x.numel(), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const float v = px[i];
        const float sig = v >= 0.0F ? 1.0F / (1.0F + std::exp(-v))
                                    : std::exp(v) / (1.0F + std::exp(v));
        po[i] = v * sig;
      }
    });
    return make_value_node(std::move(out));
  }
  Tensor s(x.shape());
  float* ps = s.data();
  parallel_elements(x.numel(), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v = px[i];
      const float sig = v >= 0.0F ? 1.0F / (1.0F + std::exp(-v))
                                  : std::exp(v) / (1.0F + std::exp(v));
      ps[i] = sig;
      po[i] = v * sig;
    }
  });
  auto pa = a.node();
  Tensor xc = x;
  return make_op_node(
      std::move(out), {a},
      [pa, xc = std::move(xc), s = std::move(s)](const Tensor& g) {
        Tensor d = g;
        float* pd = d.data();
        parallel_elements(d.numel(), [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            const float sig = s[i];
            pd[i] *= sig * (1.0F + xc[i] * (1.0F - sig));
          }
        });
        accumulate_grad(*pa, d);
      });
}

Var gelu(const Var& a) {
  // tanh approximation; matches common framework implementations closely.
  constexpr float kC = 0.7978845608028654F;  // sqrt(2/pi)
  constexpr float kA = 0.044715F;
  const Tensor& x = a.value();
  Tensor out = x;
  float* po = out.data();
  parallel_elements(x.numel(), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v = po[i];
      const float t = std::tanh(kC * (v + kA * v * v * v));
      po[i] = 0.5F * v * (1.0F + t);
    }
  });
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor xc = x;
  return make_op_node(std::move(out), {a},
                      [pa, xc = std::move(xc)](const Tensor& g) {
                        Tensor d = g;
                        for (std::int64_t i = 0; i < d.numel(); ++i) {
                          const float v = xc[i];
                          const float u = kC * (v + kA * v * v * v);
                          const float t = std::tanh(u);
                          const float du = kC * (1.0F + 3.0F * kA * v * v);
                          d[i] *= 0.5F * (1.0F + t) +
                                  0.5F * v * (1.0F - t * t) * du;
                        }
                        accumulate_grad(*pa, d);
                      });
}

Var tanh_act(const Var& a) {
  Tensor out = map_unary(a.value(), [](float x) { return std::tanh(x); });
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor t = out;
  return make_op_node(std::move(out), {a},
                      [pa, t = std::move(t)](const Tensor& g) {
                        Tensor d = g;
                        for (std::int64_t i = 0; i < d.numel(); ++i) {
                          d[i] *= 1.0F - t[i] * t[i];
                        }
                        accumulate_grad(*pa, d);
                      });
}

Var softplus(const Var& a) {
  Tensor out = map_unary(a.value(), [](float x) {
    return std::max(x, 0.0F) + std::log1p(std::exp(-std::abs(x)));
  });
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor x = a.value();
  return make_op_node(std::move(out), {a},
                      [pa, x = std::move(x)](const Tensor& g) {
                        Tensor d = g;
                        for (std::int64_t i = 0; i < d.numel(); ++i) {
                          const float v = x[i];
                          const float sig =
                              v >= 0.0F ? 1.0F / (1.0F + std::exp(-v))
                                        : std::exp(v) / (1.0F + std::exp(v));
                          d[i] *= sig;
                        }
                        accumulate_grad(*pa, d);
                      });
}

Var log_clamped(const Var& a, float eps) {
  DP_REQUIRE(eps > 0.0F, "log_clamped: eps must be positive");
  const Tensor& x = a.value();
  Tensor out = x;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = std::log(std::max(x[i], eps));
  }
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor xc = x;
  return make_op_node(std::move(out), {a},
                      [pa, xc = std::move(xc), eps](const Tensor& g) {
                        Tensor d = g;
                        for (std::int64_t i = 0; i < d.numel(); ++i) {
                          d[i] = xc[i] > eps ? d[i] / xc[i] : 0.0F;
                        }
                        accumulate_grad(*pa, d);
                      });
}

// ---- shape ----------------------------------------------------------------

Var reshape(const Var& a, Shape shape) {
  Tensor out = a.value().reshaped(std::move(shape));
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Shape original = a.value().shape();
  return make_op_node(std::move(out), {a},
                      [pa, original = std::move(original)](const Tensor& g) {
                        accumulate_grad(*pa, g.reshaped(original));
                      });
}

namespace {

Tensor permute_tensor(const Tensor& x, const std::vector<std::int64_t>& dims) {
  const auto rank = x.rank();
  DP_REQUIRE(static_cast<std::int64_t>(dims.size()) == rank,
             "permute: dims rank mismatch");
  Shape out_shape(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    out_shape[i] = x.dim(dims[i]);
  }
  // Strides of the input, then gather.
  std::vector<std::int64_t> in_strides(static_cast<std::size_t>(rank), 1);
  for (std::int64_t i = rank - 2; i >= 0; --i) {
    in_strides[static_cast<std::size_t>(i)] =
        in_strides[static_cast<std::size_t>(i + 1)] * x.dim(i + 1);
  }
  Tensor out(out_shape);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank), 0);
  const auto n = x.numel();
  for (std::int64_t flat = 0; flat < n; ++flat) {
    std::int64_t src = 0;
    for (std::int64_t d = 0; d < rank; ++d) {
      src += idx[static_cast<std::size_t>(d)] *
             in_strides[static_cast<std::size_t>(dims[static_cast<std::size_t>(d)])];
    }
    out[flat] = x[src];
    // Increment the multi-index in output (row-major) order.
    for (std::int64_t d = rank - 1; d >= 0; --d) {
      auto& v = idx[static_cast<std::size_t>(d)];
      if (++v < out_shape[static_cast<std::size_t>(d)]) {
        break;
      }
      v = 0;
    }
  }
  return out;
}

std::vector<std::int64_t> inverse_permutation(
    const std::vector<std::int64_t>& dims) {
  std::vector<std::int64_t> inv(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    inv[static_cast<std::size_t>(dims[i])] = static_cast<std::int64_t>(i);
  }
  return inv;
}

}  // namespace

Var permute(const Var& a, std::vector<std::int64_t> dims) {
  // Validate that dims is a permutation.
  std::vector<bool> seen(dims.size(), false);
  for (const auto d : dims) {
    DP_REQUIRE(d >= 0 && d < static_cast<std::int64_t>(dims.size()) &&
                   !seen[static_cast<std::size_t>(d)],
               "permute: dims is not a permutation");
    seen[static_cast<std::size_t>(d)] = true;
  }
  Tensor out = permute_tensor(a.value(), dims);
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto inv = inverse_permutation(dims);
  return make_op_node(std::move(out), {a},
                      [pa, inv = std::move(inv)](const Tensor& g) {
                        accumulate_grad(*pa, permute_tensor(g, inv));
                      });
}

Var slice_channels(const Var& x, std::int64_t c0, std::int64_t count) {
  const Tensor& v = x.value();
  DP_REQUIRE(v.rank() == 4, "slice_channels: expected [N,C,H,W]");
  const auto n = v.dim(0);
  const auto c = v.dim(1);
  const auto h = v.dim(2);
  const auto w = v.dim(3);
  DP_REQUIRE(c0 >= 0 && count > 0 && c0 + count <= c,
             "slice_channels: range out of bounds");
  Tensor out({n, count, h, w});
  const auto plane = h * w;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = v.data() + (i * c + c0) * plane;
    float* dst = out.data() + i * count * plane;
    std::copy(src, src + count * plane, dst);
  }
  if (!graph_needed({&x})) {
    return make_value_node(std::move(out));
  }
  auto pa = x.node();
  return make_op_node(
      std::move(out), {x}, [pa, n, c, h, w, c0, count](const Tensor& g) {
        Tensor full({n, c, h, w}, 0.0F);
        const auto plane = h * w;
        for (std::int64_t i = 0; i < n; ++i) {
          const float* src = g.data() + i * count * plane;
          float* dst = full.data() + (i * c + c0) * plane;
          std::copy(src, src + count * plane, dst);
        }
        accumulate_grad(*pa, full);
      });
}

Var concat_channels(const Var& a, const Var& b) {
  const Tensor& va = a.value();
  const Tensor& vb = b.value();
  DP_REQUIRE(va.rank() == 4 && vb.rank() == 4,
             "concat_channels: expected [N,C,H,W]");
  DP_REQUIRE(va.dim(0) == vb.dim(0) && va.dim(2) == vb.dim(2) &&
                 va.dim(3) == vb.dim(3),
             "concat_channels: non-channel dims mismatch");
  const auto n = va.dim(0);
  const auto ca = va.dim(1);
  const auto cb = vb.dim(1);
  const auto h = va.dim(2);
  const auto w = va.dim(3);
  const auto plane = h * w;
  Tensor out({n, ca + cb, h, w});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* sa = va.data() + i * ca * plane;
    const float* sb = vb.data() + i * cb * plane;
    float* dst = out.data() + i * (ca + cb) * plane;
    std::copy(sa, sa + ca * plane, dst);
    std::copy(sb, sb + cb * plane, dst + ca * plane);
  }
  if (!graph_needed({&a, &b})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto pb = b.node();
  return make_op_node(
      std::move(out), {a, b}, [pa, pb, n, ca, cb, plane](const Tensor& g) {
        if (pa->requires_grad) {
          Tensor ga(pa->value.shape());
          for (std::int64_t i = 0; i < n; ++i) {
            const float* src = g.data() + i * (ca + cb) * plane;
            std::copy(src, src + ca * plane, ga.data() + i * ca * plane);
          }
          accumulate_grad(*pa, ga);
        }
        if (pb->requires_grad) {
          Tensor gb(pb->value.shape());
          for (std::int64_t i = 0; i < n; ++i) {
            const float* src = g.data() + (i * (ca + cb) + ca) * plane;
            std::copy(src, src + cb * plane, gb.data() + i * cb * plane);
          }
          accumulate_grad(*pb, gb);
        }
      });
}

Var add_spatial_broadcast(const Var& x, const Var& bias_nc) {
  const Tensor& v = x.value();
  const Tensor& b = bias_nc.value();
  DP_REQUIRE(v.rank() == 4, "add_spatial_broadcast: x must be [N,C,H,W]");
  DP_REQUIRE(b.rank() == 2 && b.dim(0) == v.dim(0) && b.dim(1) == v.dim(1),
             "add_spatial_broadcast: bias must be [N,C]");
  const auto n = v.dim(0);
  const auto c = v.dim(1);
  const auto plane = v.dim(2) * v.dim(3);
  Tensor out = v;
  const auto& kern = tensor::simd::active();
  tensor::parallel_for(
      0, n * c,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          float* dst = out.data() + i * plane;
          kern.shift(dst, dst, b[i], plane);
        }
      },
      std::max<std::int64_t>(1, tensor::kElementwiseGrain /
                                    std::max<std::int64_t>(1, plane)));
  if (!graph_needed({&x, &bias_nc})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  auto pb = bias_nc.node();
  return make_op_node(std::move(out), {x, bias_nc},
                      [px, pb, n, c, plane](const Tensor& g) {
                        if (px->requires_grad) {
                          accumulate_grad(*px, g);
                        }
                        if (pb->requires_grad) {
                          Tensor gb({n, c}, 0.0F);
                          for (std::int64_t i = 0; i < n * c; ++i) {
                            const float* src = g.data() + i * plane;
                            for (std::int64_t p = 0; p < plane; ++p) {
                              gb[i] += src[p];
                            }
                          }
                          accumulate_grad(*pb, gb);
                        }
                      });
}

Var detach(const Var& a) { return Var(a.value(), /*requires_grad=*/false); }

// ---- linear algebra --------------------------------------------------------

Var matmul(const Var& a, const Var& b) {
  Tensor out = tensor::matmul(a.value(), b.value());
  if (!graph_needed({&a, &b})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto pb = b.node();
  Tensor av = a.value();
  Tensor bv = b.value();
  return make_op_node(
      std::move(out), {a, b},
      [pa, pb, av = std::move(av), bv = std::move(bv)](const Tensor& g) {
        if (pa->requires_grad) {
          accumulate_grad(*pa, tensor::matmul_transpose_b(g, bv));
        }
        if (pb->requires_grad) {
          accumulate_grad(*pb, tensor::matmul_transpose_a(av, g));
        }
      });
}

namespace {

Tensor slice_batch(const Tensor& t, std::int64_t b) {
  const auto rows = t.dim(1);
  const auto cols = t.dim(2);
  Tensor out({rows, cols});
  const float* src = t.data() + b * rows * cols;
  std::copy(src, src + rows * cols, out.data());
  return out;
}

}  // namespace

Var bmm(const Var& a, const Var& b) {
  const Tensor& va = a.value();
  const Tensor& vb = b.value();
  DP_REQUIRE(va.rank() == 3 && vb.rank() == 3, "bmm: expected rank-3 inputs");
  DP_REQUIRE(va.dim(0) == vb.dim(0), "bmm: batch mismatch");
  DP_REQUIRE(va.dim(2) == vb.dim(1), "bmm: inner dimension mismatch");
  const auto batch = va.dim(0);
  const auto m = va.dim(1);
  const auto n = vb.dim(2);
  Tensor out({batch, m, n});
  // One independent GEMM per batch slice; the slice GEMMs run inline inside
  // the per-slice tasks (nested regions serialize), so parallelism comes
  // from the batch axis — the natural grain for the attention scores.
  tensor::parallel_for(0, batch, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i) {
      Tensor ci = tensor::matmul(slice_batch(va, i), slice_batch(vb, i));
      std::copy(ci.data(), ci.data() + m * n, out.data() + i * m * n);
    }
  });
  if (!graph_needed({&a, &b})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  auto pb = b.node();
  Tensor av = va;
  Tensor bv = vb;
  return make_op_node(
      std::move(out), {a, b},
      [pa, pb, av = std::move(av), bv = std::move(bv), batch, m,
       n](const Tensor& g) {
        const auto k = av.dim(2);
        if (pa->requires_grad) {
          Tensor ga(av.shape());
          tensor::parallel_for(0, batch, [&](std::int64_t b0,
                                             std::int64_t b1) {
            for (std::int64_t i = b0; i < b1; ++i) {
              Tensor gi({m, n});
              std::copy(g.data() + i * m * n, g.data() + (i + 1) * m * n,
                        gi.data());
              Tensor d = tensor::matmul_transpose_b(gi, slice_batch(bv, i));
              std::copy(d.data(), d.data() + m * k, ga.data() + i * m * k);
            }
          });
          accumulate_grad(*pa, ga);
        }
        if (pb->requires_grad) {
          Tensor gb(bv.shape());
          tensor::parallel_for(0, batch, [&](std::int64_t b0,
                                             std::int64_t b1) {
            for (std::int64_t i = b0; i < b1; ++i) {
              Tensor gi({m, n});
              std::copy(g.data() + i * m * n, g.data() + (i + 1) * m * n,
                        gi.data());
              Tensor d = tensor::matmul_transpose_a(slice_batch(av, i), gi);
              std::copy(d.data(), d.data() + k * n, gb.data() + i * k * n);
            }
          });
          accumulate_grad(*pb, gb);
        }
      });
}

Var linear(const Var& x, const Var& w, const Var& b) {
  const Tensor& vx = x.value();
  const Tensor& vw = w.value();
  const Tensor& vb = b.value();
  DP_REQUIRE(vx.rank() == 2, "linear: x must be [N,Fin]");
  DP_REQUIRE(vw.rank() == 2, "linear: w must be [Fout,Fin]");
  DP_REQUIRE(vx.dim(1) == vw.dim(1), "linear: feature mismatch");
  DP_REQUIRE(vb.rank() == 1 && vb.dim(0) == vw.dim(0),
             "linear: bias shape mismatch");
  Tensor out = tensor::matmul_transpose_b(vx, vw);
  const auto n = out.dim(0);
  const auto f = out.dim(1);
  const auto& kern = tensor::simd::active();
  const float* pbias = vb.data();
  for (std::int64_t i = 0; i < n; ++i) {
    kern.add(out.data() + i * f, pbias, f);
  }
  if (!graph_needed({&x, &w, &b})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  auto pw = w.node();
  auto pb = b.node();
  Tensor xc = vx;
  Tensor wc = vw;
  return make_op_node(
      std::move(out), {x, w, b},
      [px, pw, pb, xc = std::move(xc), wc = std::move(wc)](const Tensor& g) {
        if (px->requires_grad) {
          accumulate_grad(*px, tensor::matmul(g, wc));
        }
        if (pw->requires_grad) {
          accumulate_grad(*pw, tensor::matmul_transpose_a(g, xc));
        }
        if (pb->requires_grad) {
          const auto n = g.dim(0);
          const auto f = g.dim(1);
          Tensor gb({f}, 0.0F);
          for (std::int64_t i = 0; i < n; ++i) {
            const float* row = g.data() + i * f;
            for (std::int64_t j = 0; j < f; ++j) {
              gb[j] += row[j];
            }
          }
          accumulate_grad(*pb, gb);
        }
      });
}

Var conv2d(const Var& x, const Var& w, const Var& b, std::int64_t stride,
           std::int64_t padding) {
  const Tensor& vx = x.value();
  const Tensor& vw = w.value();
  const Tensor& vb = b.value();
  DP_REQUIRE(vx.rank() == 4, "conv2d: x must be [N,C,H,W]");
  DP_REQUIRE(vw.rank() == 4, "conv2d: w must be [O,C,kh,kw]");
  DP_REQUIRE(vx.dim(1) == vw.dim(1), "conv2d: channel mismatch");
  DP_REQUIRE(vb.rank() == 1 && vb.dim(0) == vw.dim(0),
             "conv2d: bias shape mismatch");
  DP_REQUIRE(stride >= 1 && padding >= 0, "conv2d: bad stride/padding");
  tensor::Conv2dGeometry geom;
  geom.in_channels = vx.dim(1);
  geom.in_h = vx.dim(2);
  geom.in_w = vx.dim(3);
  geom.kernel_h = vw.dim(2);
  geom.kernel_w = vw.dim(3);
  geom.stride = stride;
  geom.padding = padding;
  const auto batch = vx.dim(0);
  const auto out_ch = vw.dim(0);
  const auto oh = geom.out_h();
  const auto ow = geom.out_w();
  DP_REQUIRE(oh > 0 && ow > 0, "conv2d: output would be empty");

  const auto n_out = oh * ow;
  const auto ncols = batch * n_out;
  const Tensor w2d = vw.reshaped({out_ch, geom.patch_size()});

  // Batch-wide convolution: ONE im2col over the whole [N,C,H,W] batch into
  // [C*kh*kw, N*OH*OW] columns and a single GEMM against the flattened
  // weight — per-sample column blocks are bitwise what per-sample im2col
  // produces and each output element accumulates in the same k-ascending
  // order, so fused batches stay bit-equal to batch-1 runs. At inference
  // (NoGradGuard: the backward closure below is dropped) the unroll and GEMM
  // buffers are thread-local scratch reused across calls — one allocation
  // for a whole denoising chain instead of one per conv per round. Under
  // autograd the columns must outlive the forward (the weight-grad GEMM
  // consumes them), so they are freshly allocated and moved into the
  // closure.
  static thread_local Tensor t_cols_scratch;
  static thread_local Tensor t_gemm_scratch;
  const bool inference = NoGradGuard::active();
  Tensor cols_owned;
  Tensor& cols = inference ? t_cols_scratch : cols_owned;
  tensor::im2col_batch_into(vx, geom, cols);
  Tensor y_owned;
  Tensor& y = inference ? t_gemm_scratch : y_owned;
  y.resize({out_ch, ncols});
  tensor::matmul_into(w2d, cols, y);  // [O, N*OH*OW]

  // Scatter to [N, O, OH, OW] with the bias folded in.
  Tensor out({batch, out_ch, oh, ow});
  float* po = out.data();
  const float* py = y.data();
  const float* pbias = vb.data();
  const auto& kern = tensor::simd::active();
  tensor::parallel_for(
      0, batch * out_ch,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t idx = p0; idx < p1; ++idx) {
          const auto n = idx / out_ch;
          const auto o = idx % out_ch;
          kern.shift(po + idx * n_out, py + o * ncols + n * n_out, pbias[o],
                     n_out);
        }
      },
      std::max<std::int64_t>(1, tensor::kElementwiseGrain / n_out));

  if (!graph_needed({&x, &w, &b})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  auto pw = w.node();
  auto pb = b.node();
  return make_op_node(
      std::move(out), {x, w, b},
      [px, pw, pb, w2d, geom, batch, out_ch, oh, ow,
       cols = std::move(cols_owned)](const Tensor& g) {
        const auto n_out = oh * ow;
        const auto ncols = batch * n_out;
        // Gather g [N,O,OH,OW] into the GEMM layout [O, N*OH*OW] once; the
        // bias, weight, and input gradients all read it.
        Tensor gy2d({out_ch, ncols});
        const float* pg = g.data();
        float* pgy = gy2d.data();
        tensor::parallel_for(0, out_ch, [&](std::int64_t o0, std::int64_t o1) {
          for (std::int64_t o = o0; o < o1; ++o) {
            for (std::int64_t n = 0; n < batch; ++n) {
              const float* src = pg + (n * out_ch + o) * n_out;
              std::copy(src, src + n_out, pgy + o * ncols + n * n_out);
            }
          }
        });
        if (pb->requires_grad) {
          Tensor gb({out_ch}, 0.0F);
          float* pgb = gb.data();
          tensor::parallel_for(
              0, out_ch, [&](std::int64_t o0, std::int64_t o1) {
                for (std::int64_t o = o0; o < o1; ++o) {
                  const float* row = pgy + o * ncols;
                  for (std::int64_t p = 0; p < ncols; ++p) {
                    pgb[o] += row[p];
                  }
                }
              });
          accumulate_grad(*pb, gb);
        }
        if (pw->requires_grad) {
          // gW2d = gy2d * cols^T over the whole batch in one GEMM.
          Tensor gw2d = tensor::matmul_transpose_b(gy2d, cols);
          accumulate_grad(*pw, gw2d.reshaped(pw->value.shape()));
        }
        if (px->requires_grad) {
          Tensor gcols = tensor::matmul_transpose_a(w2d, gy2d);
          accumulate_grad(*px, tensor::col2im_batch(gcols, geom, batch));
        }
      });
}

// ---- normalization ---------------------------------------------------------

Var group_norm(const Var& x, const Var& gamma, const Var& beta,
               std::int64_t groups, float eps) {
  const Tensor& v = x.value();
  DP_REQUIRE(v.rank() == 4, "group_norm: expected [N,C,H,W]");
  const auto n = v.dim(0);
  const auto c = v.dim(1);
  const auto h = v.dim(2);
  const auto w = v.dim(3);
  DP_REQUIRE(groups >= 1 && c % groups == 0,
             "group_norm: groups must divide channels");
  DP_REQUIRE(gamma.value().rank() == 1 && gamma.value().dim(0) == c,
             "group_norm: gamma shape mismatch");
  DP_REQUIRE(beta.value().rank() == 1 && beta.value().dim(0) == c,
             "group_norm: beta shape mismatch");
  const auto cg = c / groups;
  const auto group_elems = cg * h * w;
  const auto plane = h * w;

  Tensor xhat(v.shape());
  Tensor inv_std({n, groups});
  Tensor out(v.shape());
  const float* gam = gamma.value().data();
  const float* bet = beta.value().data();
  const auto& kern = tensor::simd::active();
  // One task per (sample, group): the mean/variance reductions and the
  // normalize/affine loop run through the dispatched kernels, whose
  // canonical lane-split accumulation order is fixed — the output is
  // byte-identical for any thread count and any backend.
  tensor::parallel_for(0, n * groups, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const auto i = t / groups;
      const auto g = t % groups;
      const float* src = v.data() + (i * c + g * cg) * plane;
      const double mean =
          kern.sum(src, group_elems) / static_cast<double>(group_elems);
      const double var = kern.sumsq_centered(src, mean, group_elems) /
                         static_cast<double>(group_elems);
      const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
      inv_std.at({i, g}) = istd;
      float* xh = xhat.data() + (i * c + g * cg) * plane;
      float* dst = out.data() + (i * c + g * cg) * plane;
      for (std::int64_t cc = 0; cc < cg; ++cc) {
        const auto ch = g * cg + cc;
        kern.normalize_affine(src + cc * plane, static_cast<float>(mean),
                              istd, gam[ch], bet[ch], xh + cc * plane,
                              dst + cc * plane, plane);
      }
    }
  });

  if (!graph_needed({&x, &gamma, &beta})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  auto pg = gamma.node();
  auto pb = beta.node();
  Tensor gamma_c = gamma.value();
  return make_op_node(
      std::move(out), {x, gamma, beta},
      [px, pg, pb, xhat = std::move(xhat), inv_std = std::move(inv_std),
       gamma_c = std::move(gamma_c), n, c, groups, cg, plane,
       group_elems](const Tensor& g) {
        if (pg->requires_grad || pb->requires_grad) {
          Tensor ggam({c}, 0.0F);
          Tensor gbet({c}, 0.0F);
          // Parallel over channels; each channel's sample-major accumulation
          // order matches the sequential loop exactly.
          tensor::parallel_for(0, c, [&](std::int64_t c0, std::int64_t c1) {
            for (std::int64_t ch = c0; ch < c1; ++ch) {
              for (std::int64_t i = 0; i < n; ++i) {
                const float* grow = g.data() + (i * c + ch) * plane;
                const float* xrow = xhat.data() + (i * c + ch) * plane;
                for (std::int64_t p = 0; p < plane; ++p) {
                  ggam[ch] += grow[p] * xrow[p];
                  gbet[ch] += grow[p];
                }
              }
            }
          });
          if (pg->requires_grad) accumulate_grad(*pg, ggam);
          if (pb->requires_grad) accumulate_grad(*pb, gbet);
        }
        if (px->requires_grad) {
          Tensor gx(xhat.shape());
          tensor::parallel_for(0, n * groups, [&](std::int64_t t0,
                                                  std::int64_t t1) {
            for (std::int64_t t = t0; t < t1; ++t) {
              const auto i = t / groups;
              const auto gr = t % groups;
              const auto base = (i * c + gr * cg) * plane;
              const float* grow = g.data() + base;
              const float* xrow = xhat.data() + base;
              // dxhat = dy * gamma (per channel)
              double sum_dxhat = 0.0;
              double sum_dxhat_xhat = 0.0;
              for (std::int64_t cc = 0; cc < cg; ++cc) {
                const float gam = gamma_c[gr * cg + cc];
                for (std::int64_t p = 0; p < plane; ++p) {
                  const auto e = cc * plane + p;
                  const float dxh = grow[e] * gam;
                  sum_dxhat += dxh;
                  sum_dxhat_xhat += dxh * xrow[e];
                }
              }
              const float m = static_cast<float>(group_elems);
              const float istd = inv_std.at({i, gr});
              const float mean_dxhat = static_cast<float>(sum_dxhat) / m;
              const float mean_dxhat_xhat =
                  static_cast<float>(sum_dxhat_xhat) / m;
              float* dst = gx.data() + base;
              for (std::int64_t cc = 0; cc < cg; ++cc) {
                const float gam = gamma_c[gr * cg + cc];
                for (std::int64_t p = 0; p < plane; ++p) {
                  const auto e = cc * plane + p;
                  const float dxh = grow[e] * gam;
                  dst[e] = istd * (dxh - mean_dxhat -
                                   xrow[e] * mean_dxhat_xhat);
                }
              }
            }
          });
          accumulate_grad(*px, gx);
        }
      });
}

Var layer_norm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  const Tensor& v = x.value();
  DP_REQUIRE(v.rank() >= 2, "layer_norm: rank must be >= 2");
  const auto f = v.dim(-1);
  const auto rows = v.numel() / f;
  DP_REQUIRE(gamma.value().rank() == 1 && gamma.value().dim(0) == f,
             "layer_norm: gamma shape mismatch");
  DP_REQUIRE(beta.value().rank() == 1 && beta.value().dim(0) == f,
             "layer_norm: beta shape mismatch");
  Tensor xhat(v.shape());
  Tensor inv_std({rows});
  Tensor out(v.shape());
  const float* gam = gamma.value().data();
  const float* bet = beta.value().data();
  const auto& kern = tensor::simd::active();
  // Row-parallel; each row's reductions run through the dispatched kernels
  // (canonical lane-split order, backend- and thread-invariant).
  tensor::parallel_for(
      0, rows,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* src = v.data() + r * f;
          const double mean = kern.sum(src, f) / static_cast<double>(f);
          const double var =
              kern.sumsq_centered(src, mean, f) / static_cast<double>(f);
          const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
          inv_std[r] = istd;
          kern.normalize_affine_rows(src, static_cast<float>(mean), istd,
                                     gam, bet, xhat.data() + r * f,
                                     out.data() + r * f, f);
        }
      },
      std::max<std::int64_t>(1, tensor::kElementwiseGrain /
                                    std::max<std::int64_t>(1, f)));
  if (!graph_needed({&x, &gamma, &beta})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  auto pg = gamma.node();
  auto pb = beta.node();
  Tensor gamma_c = gamma.value();
  return make_op_node(
      std::move(out), {x, gamma, beta},
      [px, pg, pb, xhat = std::move(xhat), inv_std = std::move(inv_std),
       gamma_c = std::move(gamma_c), rows, f](const Tensor& g) {
        if (pg->requires_grad || pb->requires_grad) {
          Tensor ggam({f}, 0.0F);
          Tensor gbet({f}, 0.0F);
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* grow = g.data() + r * f;
            const float* xrow = xhat.data() + r * f;
            for (std::int64_t j = 0; j < f; ++j) {
              ggam[j] += grow[j] * xrow[j];
              gbet[j] += grow[j];
            }
          }
          if (pg->requires_grad) accumulate_grad(*pg, ggam);
          if (pb->requires_grad) accumulate_grad(*pb, gbet);
        }
        if (px->requires_grad) {
          Tensor gx(xhat.shape());
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* grow = g.data() + r * f;
            const float* xrow = xhat.data() + r * f;
            double sum_dxhat = 0.0;
            double sum_dxhat_xhat = 0.0;
            for (std::int64_t j = 0; j < f; ++j) {
              const float dxh = grow[j] * gamma_c[j];
              sum_dxhat += dxh;
              sum_dxhat_xhat += dxh * xrow[j];
            }
            const float istd = inv_std[r];
            const float mean_dxhat =
                static_cast<float>(sum_dxhat / static_cast<double>(f));
            const float mean_dxhat_xhat =
                static_cast<float>(sum_dxhat_xhat / static_cast<double>(f));
            float* dst = gx.data() + r * f;
            for (std::int64_t j = 0; j < f; ++j) {
              const float dxh = grow[j] * gamma_c[j];
              dst[j] = istd * (dxh - mean_dxhat - xrow[j] * mean_dxhat_xhat);
            }
          }
          accumulate_grad(*px, gx);
        }
      });
}

// ---- softmax / reductions ---------------------------------------------------

Var softmax_last(const Var& a) {
  const Tensor& v = a.value();
  DP_REQUIRE(v.rank() >= 1, "softmax_last: rank must be >= 1");
  const auto f = v.dim(-1);
  const auto rows = v.numel() / f;
  Tensor out = tensor::softmax_rows(v.reshaped({rows, f})).reshaped(v.shape());
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Tensor y = out;
  return make_op_node(
      std::move(out), {a},
      [pa, y = std::move(y), rows, f](const Tensor& g) {
        Tensor d(y.shape());
        tensor::parallel_for(
            0, rows,
            [&](std::int64_t r0, std::int64_t r1) {
              for (std::int64_t r = r0; r < r1; ++r) {
                const float* grow = g.data() + r * f;
                const float* yrow = y.data() + r * f;
                double dot = 0.0;
                for (std::int64_t j = 0; j < f; ++j) {
                  dot += grow[j] * yrow[j];
                }
                float* drow = d.data() + r * f;
                for (std::int64_t j = 0; j < f; ++j) {
                  drow[j] = yrow[j] * (grow[j] - static_cast<float>(dot));
                }
              }
            },
            std::max<std::int64_t>(1, tensor::kElementwiseGrain /
                                          std::max<std::int64_t>(1, f)));
        accumulate_grad(*pa, d);
      });
}

Var sum_all(const Var& a) {
  Tensor out = Tensor::scalar(static_cast<float>(tensor::sum(a.value())));
  if (!graph_needed({&a})) {
    return make_value_node(std::move(out));
  }
  auto pa = a.node();
  Shape shape = a.value().shape();
  return make_op_node(std::move(out), {a},
                      [pa, shape = std::move(shape)](const Tensor& g) {
                        Tensor d(shape, g[0]);
                        accumulate_grad(*pa, d);
                      });
}

Var mean_all(const Var& a) {
  const auto n = a.numel();
  DP_REQUIRE(n > 0, "mean_all: empty tensor");
  return scale(sum_all(a), 1.0F / static_cast<float>(n));
}

// ---- resize -----------------------------------------------------------------

Var upsample_nearest2(const Var& x) {
  const Tensor& v = x.value();
  DP_REQUIRE(v.rank() == 4, "upsample_nearest2: expected [N,C,H,W]");
  const auto n = v.dim(0);
  const auto c = v.dim(1);
  const auto h = v.dim(2);
  const auto w = v.dim(3);
  Tensor out({n, c, 2 * h, 2 * w});
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* src = v.data() + i * h * w;
    float* dst = out.data() + i * 4 * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t xx = 0; xx < w; ++xx) {
        const float val = src[y * w + xx];
        const auto base = (2 * y) * (2 * w) + 2 * xx;
        dst[base] = val;
        dst[base + 1] = val;
        dst[base + 2 * w] = val;
        dst[base + 2 * w + 1] = val;
      }
    }
  }
  if (!graph_needed({&x})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  return make_op_node(std::move(out), {x}, [px, n, c, h, w](const Tensor& g) {
    Tensor d({n, c, h, w});
    for (std::int64_t i = 0; i < n * c; ++i) {
      const float* src = g.data() + i * 4 * h * w;
      float* dst = d.data() + i * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t xx = 0; xx < w; ++xx) {
          const auto base = (2 * y) * (2 * w) + 2 * xx;
          dst[y * w + xx] = src[base] + src[base + 1] + src[base + 2 * w] +
                            src[base + 2 * w + 1];
        }
      }
    }
    accumulate_grad(*px, d);
  });
}

Var avg_pool2(const Var& x) {
  const Tensor& v = x.value();
  DP_REQUIRE(v.rank() == 4, "avg_pool2: expected [N,C,H,W]");
  const auto n = v.dim(0);
  const auto c = v.dim(1);
  const auto h = v.dim(2);
  const auto w = v.dim(3);
  DP_REQUIRE(h % 2 == 0 && w % 2 == 0, "avg_pool2: H and W must be even");
  Tensor out({n, c, h / 2, w / 2});
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* src = v.data() + i * h * w;
    float* dst = out.data() + i * (h / 2) * (w / 2);
    for (std::int64_t y = 0; y < h / 2; ++y) {
      for (std::int64_t xx = 0; xx < w / 2; ++xx) {
        const auto base = (2 * y) * w + 2 * xx;
        dst[y * (w / 2) + xx] = 0.25F * (src[base] + src[base + 1] +
                                         src[base + w] + src[base + w + 1]);
      }
    }
  }
  if (!graph_needed({&x})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  return make_op_node(std::move(out), {x}, [px, n, c, h, w](const Tensor& g) {
    Tensor d({n, c, h, w});
    for (std::int64_t i = 0; i < n * c; ++i) {
      const float* src = g.data() + i * (h / 2) * (w / 2);
      float* dst = d.data() + i * h * w;
      for (std::int64_t y = 0; y < h / 2; ++y) {
        for (std::int64_t xx = 0; xx < w / 2; ++xx) {
          const float val = 0.25F * src[y * (w / 2) + xx];
          const auto base = (2 * y) * w + 2 * xx;
          dst[base] = val;
          dst[base + 1] = val;
          dst[base + w] = val;
          dst[base + w + 1] = val;
        }
      }
    }
    accumulate_grad(*px, d);
  });
}

// ---- regularization / lookup -------------------------------------------------

Var dropout(const Var& x, float p, bool training, common::Rng& rng) {
  DP_REQUIRE(p >= 0.0F && p < 1.0F, "dropout: p must be in [0, 1)");
  if (!training || p == 0.0F) {
    return x;
  }
  const Tensor& v = x.value();
  Tensor mask(v.shape());
  const float keep_scale = 1.0F / (1.0F - p);
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.bernoulli(static_cast<double>(p)) ? 0.0F : keep_scale;
  }
  Tensor out = tensor::mul(v, mask);
  if (!graph_needed({&x})) {
    return make_value_node(std::move(out));
  }
  auto px = x.node();
  return make_op_node(std::move(out), {x},
                      [px, mask = std::move(mask)](const Tensor& g) {
                        accumulate_grad(*px, tensor::mul(g, mask));
                      });
}

Var embedding_lookup(const Var& table, const std::vector<std::int64_t>& ids) {
  const Tensor& v = table.value();
  DP_REQUIRE(v.rank() == 2, "embedding_lookup: table must be [V,D]");
  const auto vocab = v.dim(0);
  const auto d = v.dim(1);
  const auto t = static_cast<std::int64_t>(ids.size());
  Tensor out({t, d});
  for (std::int64_t i = 0; i < t; ++i) {
    const auto id = ids[static_cast<std::size_t>(i)];
    DP_REQUIRE(id >= 0 && id < vocab, "embedding_lookup: id out of range");
    std::copy(v.data() + id * d, v.data() + (id + 1) * d, out.data() + i * d);
  }
  if (!graph_needed({&table})) {
    return make_value_node(std::move(out));
  }
  auto pt = table.node();
  std::vector<std::int64_t> ids_copy = ids;
  return make_op_node(
      std::move(out), {table},
      [pt, ids_copy = std::move(ids_copy), vocab, d](const Tensor& g) {
        Tensor gt({vocab, d}, 0.0F);
        for (std::size_t i = 0; i < ids_copy.size(); ++i) {
          const auto id = ids_copy[i];
          const float* src = g.data() + static_cast<std::int64_t>(i) * d;
          float* dst = gt.data() + id * d;
          for (std::int64_t j = 0; j < d; ++j) {
            dst[j] += src[j];
          }
        }
        accumulate_grad(*pt, gt);
      });
}

}  // namespace diffpattern::nn
