#include "nn/modules.h"

#include <cmath>

#include "common/contracts.h"

namespace diffpattern::nn {

Var ParamRegistry::add(const std::string& name, Tensor init) {
  for (const auto& existing : names_) {
    DP_REQUIRE(existing != name, "ParamRegistry: duplicate parameter " + name);
  }
  Var v(std::move(init), /*requires_grad=*/true);
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

std::int64_t ParamRegistry::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : params_) {
    n += p.numel();
  }
  return n;
}

Tensor kaiming_normal(common::Rng& rng, Shape shape, std::int64_t fan_in) {
  DP_REQUIRE(fan_in > 0, "kaiming_normal: fan_in must be positive");
  Tensor t(std::move(shape));
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor uniform_fan_in(common::Rng& rng, Shape shape, std::int64_t fan_in) {
  DP_REQUIRE(fan_in > 0, "uniform_fan_in: fan_in must be positive");
  Tensor t(std::move(shape));
  const double bound = 1.0 / std::sqrt(static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  return t;
}

Linear::Linear(ParamRegistry& registry, common::Rng& rng,
               const std::string& name, std::int64_t in_features,
               std::int64_t out_features)
    : weight(registry.add(
          name + ".weight",
          kaiming_normal(rng, {out_features, in_features}, in_features))),
      bias(registry.add(name + ".bias", Tensor({out_features}, 0.0F))) {}

Conv2d::Conv2d(ParamRegistry& registry, common::Rng& rng,
               const std::string& name, std::int64_t in_channels,
               std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride_in, std::int64_t padding_in)
    : weight(registry.add(
          name + ".weight",
          kaiming_normal(rng, {out_channels, in_channels, kernel, kernel},
                         in_channels * kernel * kernel))),
      bias(registry.add(name + ".bias", Tensor({out_channels}, 0.0F))),
      stride(stride_in),
      padding(padding_in) {}

GroupNorm::GroupNorm(ParamRegistry& registry, const std::string& name,
                     std::int64_t channels, std::int64_t groups_in)
    : gamma(registry.add(name + ".gamma", Tensor({channels}, 1.0F))),
      beta(registry.add(name + ".beta", Tensor({channels}, 0.0F))),
      groups(groups_in) {
  DP_REQUIRE(channels % groups == 0, "GroupNorm: groups must divide channels");
}

LayerNorm::LayerNorm(ParamRegistry& registry, const std::string& name,
                     std::int64_t features)
    : gamma(registry.add(name + ".gamma", Tensor({features}, 1.0F))),
      beta(registry.add(name + ".beta", Tensor({features}, 0.0F))) {}

Embedding::Embedding(ParamRegistry& registry, common::Rng& rng,
                     const std::string& name, std::int64_t vocab,
                     std::int64_t dim)
    : table(registry.add(name + ".table",
                         kaiming_normal(rng, {vocab, dim}, dim))) {}

std::int64_t pick_group_count(std::int64_t channels, std::int64_t preferred) {
  DP_REQUIRE(channels >= 1, "pick_group_count: channels must be >= 1");
  for (std::int64_t g = std::min(preferred, channels); g > 1; --g) {
    if (channels % g == 0) {
      return g;
    }
  }
  return 1;
}

}  // namespace diffpattern::nn
