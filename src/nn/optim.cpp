#include "nn/optim.h"

#include <cmath>

#include "common/contracts.h"

namespace diffpattern::nn {

Adam::Adam(std::vector<Var> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  DP_REQUIRE(!params_.empty(), "Adam: no parameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    DP_REQUIRE(p.defined() && p.requires_grad(),
               "Adam: parameter must require gradients");
    m_.emplace_back(p.value().shape(), 0.0F);
    v_.emplace_back(p.value().shape(), 0.0F);
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) {
    p.zero_grad();
  }
}

double Adam::step() {
  // Global gradient norm.
  double norm_sq = 0.0;
  for (const auto& p : params_) {
    const Tensor& g = p.grad();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      norm_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(norm_sq);
  double clip_scale = 1.0;
  if (config_.grad_clip_norm > 0.0F && norm > config_.grad_clip_norm) {
    clip_scale = config_.grad_clip_norm / norm;
  }

  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& value = params_[i].mutable_value();
    const Tensor& g = params_[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < value.numel(); ++j) {
      const float gj = static_cast<float>(g[j] * clip_scale);
      m[j] = config_.beta1 * m[j] + (1.0F - config_.beta1) * gj;
      v[j] = config_.beta2 * v[j] + (1.0F - config_.beta2) * gj * gj;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      value[j] -= static_cast<float>(config_.learning_rate * mhat /
                                     (std::sqrt(vhat) + config_.eps));
    }
  }
  return norm;
}

}  // namespace diffpattern::nn
