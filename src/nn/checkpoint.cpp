#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>

#include "common/contracts.h"

namespace diffpattern::nn {

namespace {

constexpr char kMagic[] = "DPCKPT01";
constexpr std::size_t kMagicLen = 8;

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) {
    throw std::runtime_error("checkpoint: truncated file");
  }
  return v;
}

}  // namespace

void save_checkpoint(const ParamRegistry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("checkpoint: cannot open for write: " + path);
  }
  out.write(kMagic, kMagicLen);
  write_u64(out, registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const std::string& name = registry.names()[i];
    const Tensor& value = registry.params()[i].value();
    write_u64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(out, static_cast<std::uint64_t>(value.rank()));
    for (std::int64_t d = 0; d < value.rank(); ++d) {
      write_u64(out, static_cast<std::uint64_t>(value.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!out) {
    throw std::runtime_error("checkpoint: write failed: " + path);
  }
}

void load_checkpoint(ParamRegistry& registry, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open for read: " + path);
  }
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto count = read_u64(in);
  DP_REQUIRE(count == registry.size(),
             "checkpoint: parameter count mismatch (file has " +
                 std::to_string(count) + ", registry has " +
                 std::to_string(registry.size()) + ")");
  for (std::size_t i = 0; i < count; ++i) {
    const auto name_len = read_u64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    DP_REQUIRE(name == registry.names()[i],
               "checkpoint: parameter name mismatch at index " +
                   std::to_string(i) + ": file has '" + name +
                   "', registry has '" + registry.names()[i] + "'");
    const auto rank = read_u64(in);
    tensor::Shape shape(rank);
    for (auto& d : shape) {
      d = static_cast<std::int64_t>(read_u64(in));
    }
    Var param = registry.params()[i];
    DP_REQUIRE(shape == param.value().shape(),
               "checkpoint: shape mismatch for " + name);
    Tensor& value = param.mutable_value();
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    if (!in) {
      throw std::runtime_error("checkpoint: truncated data for " + name);
    }
  }
}

bool is_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  return in && std::string(magic, kMagicLen) == kMagic;
}

}  // namespace diffpattern::nn
