// Parameterized layers.
//
// Layers are plain structs owning their parameter Vars. Construction takes a
// ParamRegistry, which records every parameter under a hierarchical name so
// the optimizer and the checkpoint reader/writer see a stable, ordered list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"

namespace diffpattern::nn {

/// Ordered registry of named trainable parameters.
class ParamRegistry {
 public:
  Var add(const std::string& name, Tensor init);

  const std::vector<Var>& params() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }
  std::size_t size() const { return params_.size(); }

  /// Total number of scalar parameters.
  std::int64_t parameter_count() const;

 private:
  std::vector<Var> params_;
  std::vector<std::string> names_;
};

/// Kaiming-normal initialization: N(0, sqrt(2 / fan_in)).
Tensor kaiming_normal(common::Rng& rng, Shape shape, std::int64_t fan_in);
/// Uniform Xavier-style init in [-1/sqrt(fan_in), 1/sqrt(fan_in)].
Tensor uniform_fan_in(common::Rng& rng, Shape shape, std::int64_t fan_in);

struct Linear {
  Linear(ParamRegistry& registry, common::Rng& rng, const std::string& name,
         std::int64_t in_features, std::int64_t out_features);

  Var operator()(const Var& x) const { return linear(x, weight, bias); }

  Var weight;  // [out, in]
  Var bias;    // [out]
};

struct Conv2d {
  Conv2d(ParamRegistry& registry, common::Rng& rng, const std::string& name,
         std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding);

  Var operator()(const Var& x) const {
    return conv2d(x, weight, bias, stride, padding);
  }

  Var weight;  // [out, in, k, k]
  Var bias;    // [out]
  std::int64_t stride = 1;
  std::int64_t padding = 0;
};

struct GroupNorm {
  GroupNorm(ParamRegistry& registry, const std::string& name,
            std::int64_t channels, std::int64_t groups);

  Var operator()(const Var& x) const {
    return group_norm(x, gamma, beta, groups);
  }

  Var gamma;  // [C], initialized to ones
  Var beta;   // [C], initialized to zeros
  std::int64_t groups = 1;
};

struct LayerNorm {
  LayerNorm(ParamRegistry& registry, const std::string& name,
            std::int64_t features);

  Var operator()(const Var& x) const { return layer_norm(x, gamma, beta); }

  Var gamma;
  Var beta;
};

struct Embedding {
  Embedding(ParamRegistry& registry, common::Rng& rng, const std::string& name,
            std::int64_t vocab, std::int64_t dim);

  Var operator()(const std::vector<std::int64_t>& ids) const {
    return embedding_lookup(table, ids);
  }

  Var table;  // [V, D]
};

/// Picks a GroupNorm group count that divides `channels` (<= preferred).
std::int64_t pick_group_count(std::int64_t channels,
                              std::int64_t preferred = 8);

}  // namespace diffpattern::nn
