// Binary checkpoint format for ParamRegistry contents.
//
// Layout: magic "DPCKPT01", u64 param count, then per parameter:
//   u64 name length, name bytes, u64 rank, u64 dims..., f32 data...
// Loading requires exact name/shape agreement with the registry, so a
// checkpoint can only be restored into the architecture that produced it.
#pragma once

#include <string>

#include "nn/modules.h"

namespace diffpattern::nn {

void save_checkpoint(const ParamRegistry& registry, const std::string& path);

/// Loads parameter values in place. Throws std::runtime_error on I/O or
/// format problems, std::invalid_argument on name/shape mismatch.
void load_checkpoint(ParamRegistry& registry, const std::string& path);

/// True if `path` exists and starts with the checkpoint magic.
bool is_checkpoint_file(const std::string& path);

}  // namespace diffpattern::nn
