// Adam optimizer with optional global-norm gradient clipping, matching the
// paper's training setup (Adam, lr 2e-4, grad clip 1.0).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/autograd.h"

namespace diffpattern::nn {

struct AdamConfig {
  float learning_rate = 2e-4F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float eps = 1e-8F;
  /// Maximum global gradient L2 norm; <= 0 disables clipping.
  float grad_clip_norm = 1.0F;
};

class Adam {
 public:
  Adam(std::vector<Var> params, AdamConfig config);

  /// Applies one Adam update using the gradients currently stored on the
  /// parameters, after optional global-norm clipping. Returns the pre-clip
  /// global gradient norm (useful for logging and tests).
  double step();

  void zero_grad();

  const AdamConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  std::int64_t steps_taken() const { return t_; }

 private:
  std::vector<Var> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace diffpattern::nn
