#include "nn/autograd.h"

#include <algorithm>
#include <unordered_set>

#include "common/contracts.h"

namespace diffpattern::nn {

namespace {
thread_local bool g_no_grad_active = false;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_no_grad_active) {
  g_no_grad_active = true;
}

NoGradGuard::~NoGradGuard() { g_no_grad_active = previous_; }

bool NoGradGuard::active() { return g_no_grad_active; }

namespace detail {

void Node::ensure_grad() {
  if (grad.numel() != value.numel()) {
    grad = Tensor(value.shape(), 0.0F);
  }
}

void accumulate_grad(Node& node, const Tensor& delta) {
  DP_CHECK(delta.numel() == node.value.numel(),
           "accumulate_grad: gradient shape mismatch");
  node.ensure_grad();
  float* g = node.grad.data();
  const float* d = delta.data();
  const auto n = delta.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    g[i] += d[i];
  }
}

bool graph_needed(std::initializer_list<const Var*> operands) {
  bool needed = false;
  for (const Var* v : operands) {
    DP_REQUIRE(v != nullptr && v->defined(), "op: undefined Var operand");
    needed = needed || v->node()->requires_grad;
  }
  return needed && !NoGradGuard::active();
}

Var make_value_node(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  return Var::from_node(std::move(node));
}

Var make_op_node(Tensor value, std::vector<Var> parents,
                 std::function<void(const Tensor&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool needs_grad = false;
  node->parents.reserve(parents.size());
  for (const auto& p : parents) {
    DP_REQUIRE(p.defined(), "op: undefined Var operand");
    node->parents.push_back(p.node());
    needs_grad = needs_grad || p.node()->requires_grad;
  }
  if (NoGradGuard::active()) {
    needs_grad = false;
  }
  node->requires_grad = needs_grad;
  if (needs_grad) {
    node->backward = std::move(backward);
  } else {
    node->parents.clear();  // Value-only node; no graph retained.
  }
  return Var::from_node(std::move(node));
}

}  // namespace detail

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var Var::from_node(std::shared_ptr<detail::Node> node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

const Tensor& Var::value() const {
  DP_REQUIRE(defined(), "Var::value: empty Var");
  return node_->value;
}

Tensor& Var::mutable_value() {
  DP_REQUIRE(defined(), "Var::mutable_value: empty Var");
  return node_->value;
}

const Tensor& Var::grad() const {
  DP_REQUIRE(defined(), "Var::grad: empty Var");
  DP_REQUIRE(node_->grad.numel() == node_->value.numel(),
             "Var::grad: gradient not populated (run backward first)");
  return node_->grad;
}

bool Var::requires_grad() const {
  DP_REQUIRE(defined(), "Var::requires_grad: empty Var");
  return node_->requires_grad;
}

void Var::zero_grad() {
  DP_REQUIRE(defined(), "Var::zero_grad: empty Var");
  node_->ensure_grad();
  node_->grad.fill(0.0F);
}

void Var::backward() const {
  DP_REQUIRE(defined(), "Var::backward: empty Var");
  DP_REQUIRE(numel() == 1, "Var::backward: loss must be scalar, got shape " +
                               value().shape_string());
  DP_REQUIRE(node_->requires_grad,
             "Var::backward: node does not require gradients");

  // Iterative post-order DFS to get a topological order of the subgraph.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  struct Frame {
    detail::Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      detail::Node* parent = frame.node->parents[frame.next_parent].get();
      ++frame.next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed and propagate in reverse topological order.
  node_->ensure_grad();
  node_->grad.fill(1.0F);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* node = *it;
    if (node->backward) {
      node->ensure_grad();
      node->backward(node->grad);
    }
  }
}

}  // namespace diffpattern::nn
