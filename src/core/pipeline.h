// DiffPattern pipeline facade (paper Fig. 4): dataset -> deep squish ->
// discrete diffusion training -> topology sampling -> pre-filter ->
// white-box legalization -> DRC -> metrics.
//
// Pipeline is now a thin compatibility wrapper: it still owns dataset
// construction and training, but every generation call delegates to an
// embedded service::PatternService (the trained model is registered there
// under Pipeline::kServiceModel). New code should talk to the service
// directly — typed requests, Status/Result errors, concurrent batched
// execution; this facade keeps the original throwing single-threaded
// surface for the existing examples, benches, and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "diffusion/diffusion.h"
#include "drc/checker.h"
#include "legalize/solver.h"
#include "metrics/metrics.h"
#include "service/pattern_service.h"

namespace diffpattern::core {

struct PipelineConfig {
  datagen::DatagenConfig datagen;
  std::int64_t dataset_tiles = 128;
  double test_fraction = 0.2;

  /// Topology matrix side (after pad_to) and deep-squish channel count;
  /// model spatial size M = grid_side / sqrt(channels).
  std::int64_t grid_side = 16;
  std::int64_t channels = 4;

  diffusion::ScheduleConfig schedule{.steps = 50, .beta_start = 0.01,
                                     .beta_end = 0.5};
  std::int64_t model_channels = 32;
  std::vector<std::int64_t> channel_mult = {1, 2};
  std::int64_t num_res_blocks = 1;
  std::set<std::int64_t> attention_levels = {1};
  float dropout = 0.1F;

  diffusion::LossConfig loss;
  nn::AdamConfig adam{.learning_rate = 1e-3F, .grad_clip_norm = 1.0F};
  std::int64_t train_iterations = 200;
  std::int64_t batch_size = 8;

  legalize::SolverConfig solver;
  std::uint64_t seed = 1;

  /// Flow-control policy handed to the embedded PatternService (admission
  /// windows, shedding thresholds, stream buffer bound — see
  /// service::FlowControlConfig). The facade's own sequential calls never
  /// queue deep enough to shed; this exists so the CLI can configure the
  /// service it exposes via service().
  service::FlowControlConfig flow;

  /// Maintain an exponential moving average of the model weights during
  /// training and sample with it (standard DDPM practice). Only worthwhile
  /// for longer runs; off by default at the scaled settings.
  bool use_ema = false;
  double ema_decay = 0.995;

  /// The paper's configuration for reference (Sec. IV-A): 2048 nm tiles,
  /// 128x128 topology folded to 16x32x32, K = 1000, U-Net [128, 256, 256,
  /// 256] with attention at 16x16, 0.5M iterations at batch 128. Running it
  /// requires the authors' 8-GPU budget; see DESIGN.md for the scaling
  /// rationale.
  static PipelineConfig paper();

  /// Derived model input side M.
  std::int64_t folded_side() const;
  unet::UNetConfig unet_config() const;
  /// The service-side view of this configuration (model architecture,
  /// schedule, solver, tile, default rule deck).
  service::ModelConfig to_model_config() const;
};

struct GenerationReport {
  std::vector<layout::SquishPattern> patterns;
  std::int64_t topologies_requested = 0;
  std::int64_t topologies_generated = 0;  // == requested (sampler never fails)
  std::int64_t prefilter_rejected = 0;
  std::int64_t solver_rejected = 0;
  double sampling_seconds = 0.0;   // Total reverse-diffusion time.
  double solving_seconds = 0.0;    // Total geometry-assignment time.
  std::int64_t solver_rounds = 0;  // Accumulated repair rounds.
};

struct Evaluation {
  std::int64_t total_patterns = 0;
  double diversity = 0.0;
  std::int64_t legal_patterns = 0;
  double legal_diversity = 0.0;
  double legality_ratio() const {
    return total_patterns == 0
               ? 0.0
               : static_cast<double>(legal_patterns) /
                     static_cast<double>(total_patterns);
  }
};

/// Scores a pattern set against `rules` (a Table I row).
Evaluation evaluate_patterns(const std::vector<layout::SquishPattern>& patterns,
                             const drc::DesignRules& rules);

/// Naive geometry assignment used by the pixel-based baselines in Table I:
/// a delta pair drawn from the dataset library with no constraint solving
/// (this is why baseline legality is low — paper Sec. IV-B).
layout::SquishPattern assign_library_deltas(
    const geometry::BinaryGrid& topology, const legalize::DeltaLibrary& library,
    geometry::Coord tile_width, geometry::Coord tile_height, common::Rng& rng);

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  /// Name under which the trained model is registered in service().
  static constexpr const char* kServiceModel = "default";

  /// Generates the dataset (idempotent).
  const datagen::Dataset& dataset();

  /// Trains the diffusion model for config.train_iterations steps.
  using ProgressFn =
      std::function<void(std::int64_t iteration,
                         const diffusion::LossBreakdown& loss)>;
  void train(const ProgressFn& progress = nullptr);

  /// Samples topology matrices from the (trained) model.
  std::vector<geometry::BinaryGrid> sample_topologies(std::int64_t count);

  /// Full generation: sample topologies, pre-filter, legalize
  /// (`geometries_per_topology` > 1 is DiffPattern-L).
  GenerationReport generate(std::int64_t topologies,
                            std::int64_t geometries_per_topology = 1);

  /// Legalizes externally produced topologies (used to give baselines a
  /// DiffPattern-style assessment in the ablation benches).
  GenerationReport legalize_topologies(
      const std::vector<geometry::BinaryGrid>& topologies,
      std::int64_t geometries_per_topology = 1);

  unet::UNet& model();
  const PipelineConfig& config() const { return config_; }

  /// The underlying service, with this pipeline's trained model registered
  /// as kServiceModel (synced on first use and after train / load_model).
  /// Issue typed requests against it for concurrent batched generation.
  service::PatternService& service();

  void save_model(const std::string& path);
  void load_model(const std::string& path);

 private:
  /// (Re-)registers the current weights + delta library with the service.
  void sync_service();
  std::uint64_t next_request_seed();
  /// Converts a service error into the facade's legacy throwing behavior.
  [[noreturn]] static void throw_status(const common::Status& status);

  PipelineConfig config_;
  common::Rng rng_;
  std::optional<datagen::Dataset> dataset_;
  std::unique_ptr<unet::UNet> model_;
  std::unique_ptr<diffusion::BinarySchedule> schedule_;
  std::unique_ptr<diffusion::Ema> ema_;
  std::unique_ptr<service::PatternService> service_;
  bool model_synced_ = false;
};

/// RAII helper: swaps EMA weights in for the scope when `ema` is non-null
/// and not already active.
class ScopedEmaWeights {
 public:
  explicit ScopedEmaWeights(diffusion::Ema* ema);
  ~ScopedEmaWeights();
  ScopedEmaWeights(const ScopedEmaWeights&) = delete;
  ScopedEmaWeights& operator=(const ScopedEmaWeights&) = delete;

 private:
  diffusion::Ema* ema_;
};

}  // namespace diffpattern::core
