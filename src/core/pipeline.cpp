#include "core/pipeline.h"

#include <cmath>
#include <limits>

#include "common/contracts.h"
#include "common/timer.h"
#include "nn/checkpoint.h"

namespace diffpattern::core {

using geometry::BinaryGrid;
using layout::SquishPattern;

PipelineConfig PipelineConfig::paper() {
  PipelineConfig cfg;
  cfg.dataset_tiles = 13869;
  cfg.grid_side = 128;
  cfg.channels = 16;
  cfg.schedule = diffusion::ScheduleConfig::paper();
  cfg.model_channels = 128;
  cfg.channel_mult = {1, 2, 2, 2};
  cfg.num_res_blocks = 2;
  cfg.attention_levels = {1};
  cfg.dropout = 0.1F;
  cfg.loss.lambda = 0.001F;
  cfg.adam = nn::AdamConfig{.learning_rate = 2e-4F, .grad_clip_norm = 1.0F};
  cfg.train_iterations = 500000;
  cfg.batch_size = 128;
  return cfg;
}

std::int64_t PipelineConfig::folded_side() const {
  layout::DeepSquishConfig fold;
  fold.channels = channels;
  const auto patch = fold.patch_side();
  DP_REQUIRE(grid_side % patch == 0,
             "PipelineConfig: grid_side must be divisible by sqrt(channels)");
  return grid_side / patch;
}

unet::UNetConfig PipelineConfig::unet_config() const {
  return to_model_config().unet_config();
}

service::ModelConfig PipelineConfig::to_model_config() const {
  service::ModelConfig cfg;
  cfg.grid_side = grid_side;
  cfg.channels = channels;
  cfg.schedule = schedule;
  cfg.model_channels = model_channels;
  cfg.channel_mult = channel_mult;
  cfg.num_res_blocks = num_res_blocks;
  cfg.attention_levels = attention_levels;
  cfg.dropout = dropout;
  cfg.solver = solver;
  cfg.tile = datagen.tile;
  cfg.rules = datagen.rules;
  return cfg;
}

Evaluation evaluate_patterns(const std::vector<SquishPattern>& patterns,
                             const drc::DesignRules& rules) {
  Evaluation eval;
  eval.total_patterns = static_cast<std::int64_t>(patterns.size());
  std::vector<metrics::Complexity> all;
  std::vector<metrics::Complexity> legal;
  all.reserve(patterns.size());
  for (const auto& p : patterns) {
    const auto complexity = metrics::pattern_complexity(p);
    all.push_back(complexity);
    // A legal pattern must contain shapes: an empty tile passes every DRC
    // predicate vacuously but is not a usable layout pattern.
    if (p.topology.popcount() > 0 && drc::check_pattern(p, rules).clean()) {
      legal.push_back(complexity);
      ++eval.legal_patterns;
    }
  }
  eval.diversity = metrics::diversity_entropy(all);
  eval.legal_diversity = metrics::diversity_entropy(legal);
  return eval;
}

SquishPattern assign_library_deltas(const BinaryGrid& topology,
                                    const legalize::DeltaLibrary& library,
                                    geometry::Coord tile_width,
                                    geometry::Coord tile_height,
                                    common::Rng& rng) {
  DP_REQUIRE(!library.empty(), "assign_library_deltas: empty library");
  const auto pick = [&](const std::vector<std::vector<geometry::Coord>>& pool,
                        std::int64_t count, geometry::Coord total) {
    const auto& src = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    std::vector<geometry::Coord> out(static_cast<std::size_t>(count));
    const auto n = static_cast<std::int64_t>(src.size());
    geometry::Coord sum = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      out[static_cast<std::size_t>(i)] =
          src[static_cast<std::size_t>(std::min(n - 1, i * n / count))];
      sum += out[static_cast<std::size_t>(i)];
    }
    // Rescale to the tile span (largest-delta absorbs rounding).
    std::size_t largest = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::max<geometry::Coord>(
          1, out[i] * total / std::max<geometry::Coord>(1, sum));
      if (out[i] > out[largest]) {
        largest = i;
      }
    }
    geometry::Coord new_sum = 0;
    for (const auto d : out) {
      new_sum += d;
    }
    out[largest] += total - new_sum;
    DP_CHECK(out[largest] > 0, "assign_library_deltas: rescale failed");
    return out;
  };
  SquishPattern pattern;
  pattern.topology = topology;
  pattern.dx = pick(library.dx_pool, topology.cols(), tile_width);
  pattern.dy = pick(library.dy_pool, topology.rows(), tile_height);
  pattern.validate();
  return pattern;
}

Pipeline::Pipeline(PipelineConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  (void)config_.folded_side();  // Validates grid/channel compatibility.
  schedule_ = std::make_unique<diffusion::BinarySchedule>(config_.schedule);
  model_ = std::make_unique<unet::UNet>(config_.unet_config(),
                                        rng_.split().engine()());
  service::ServiceConfig service_config;
  // Matches the old in-pipeline sampling chunk size (bounds peak memory).
  service_config.max_fused_batch = 16;
  // The legacy facade never capped request sizes; chunked rounds keep the
  // memory bounded, so don't let the service's serving limits reject what
  // the old API accepted.
  service_config.max_count = std::numeric_limits<std::int64_t>::max();
  service_config.max_geometries = std::numeric_limits<std::int64_t>::max();
  service_config.flow = config_.flow;
  service_ = std::make_unique<service::PatternService>(service_config);
}

const datagen::Dataset& Pipeline::dataset() {
  if (!dataset_.has_value()) {
    common::Rng data_rng = rng_.split();
    dataset_ = datagen::build_dataset(config_.datagen, config_.dataset_tiles,
                                      config_.grid_side, config_.channels,
                                      config_.test_fraction, data_rng);
  }
  return *dataset_;
}

ScopedEmaWeights::ScopedEmaWeights(diffusion::Ema* ema)
    : ema_(ema != nullptr && !ema->active() ? ema : nullptr) {
  if (ema_ != nullptr) {
    ema_->swap_in();
  }
}

ScopedEmaWeights::~ScopedEmaWeights() {
  if (ema_ != nullptr) {
    ema_->swap_out();
  }
}

void Pipeline::train(const ProgressFn& progress) {
  const auto& data = dataset();
  diffusion::DiffusionTrainer trainer(*model_, *schedule_, config_.loss,
                                      config_.adam);
  if (config_.use_ema && ema_ == nullptr) {
    ema_ = std::make_unique<diffusion::Ema>(model_->registry(),
                                            config_.ema_decay);
  }
  common::Rng train_rng = rng_.split();
  for (std::int64_t it = 0; it < config_.train_iterations; ++it) {
    const auto batch =
        data.sample_training_batch(config_.batch_size, train_rng);
    const auto breakdown = trainer.step(batch, train_rng);
    if (ema_ != nullptr) {
      ema_->update();
    }
    if (progress) {
      progress(it, breakdown);
    }
  }
  model_synced_ = false;
}

void Pipeline::throw_status(const common::Status& status) {
  if (status.code() == common::StatusCode::kInvalidArgument) {
    throw std::invalid_argument(status.to_string());
  }
  throw std::runtime_error(status.to_string());
}

std::uint64_t Pipeline::next_request_seed() {
  // One draw per generation call keeps the legacy semantics: results depend
  // deterministically on the construction seed and the call sequence.
  return static_cast<std::uint64_t>(rng_.engine()());
}

void Pipeline::sync_service() {
  if (model_synced_) {
    return;
  }
  const auto& data = dataset();
  // Serve the EMA weights when enabled (the standard DDPM evaluation trick).
  const ScopedEmaWeights ema_scope(ema_.get());
  const auto status = service_->models().register_model(
      kServiceModel, config_.to_model_config(), model_->registry(),
      data.library);
  if (!status.ok()) {
    throw_status(status);
  }
  model_synced_ = true;
}

service::PatternService& Pipeline::service() {
  sync_service();
  return *service_;
}

std::vector<BinaryGrid> Pipeline::sample_topologies(std::int64_t count) {
  DP_REQUIRE(count >= 1, "sample_topologies: count must be >= 1");
  sync_service();
  service::SampleTopologiesRequest request;
  request.model = kServiceModel;
  request.count = count;
  request.seed = next_request_seed();
  auto result = service_->sample_topologies(request);
  if (!result.ok()) {
    throw_status(result.status());
  }
  return std::move(result->topologies);
}

namespace {

GenerationReport to_report(service::GenerateResult result) {
  GenerationReport report;
  report.topologies_requested = result.stats.topologies_requested;
  report.topologies_generated = result.stats.topologies_requested;
  report.prefilter_rejected = result.stats.prefilter_rejected;
  report.solver_rejected = result.stats.solver_rejected;
  report.solver_rounds = result.stats.solver_rounds;
  report.sampling_seconds = result.stats.sampling_seconds;
  report.solving_seconds = result.stats.solving_seconds;
  report.patterns = std::move(result.patterns);
  return report;
}

}  // namespace

GenerationReport Pipeline::generate(std::int64_t topologies,
                                    std::int64_t geometries_per_topology) {
  sync_service();
  service::GenerateRequest request;
  request.model = kServiceModel;
  request.count = topologies;
  request.geometries_per_topology = geometries_per_topology;
  request.seed = next_request_seed();
  auto result = service_->generate(request);
  if (!result.ok()) {
    throw_status(result.status());
  }
  return to_report(std::move(result).value());
}

GenerationReport Pipeline::legalize_topologies(
    const std::vector<BinaryGrid>& topologies,
    std::int64_t geometries_per_topology) {
  if (topologies.empty()) {
    return GenerationReport{};  // Legacy behavior: empty in, empty report.
  }
  sync_service();
  service::LegalizeTopologiesRequest request;
  request.model = kServiceModel;
  request.topologies = topologies;
  request.geometries_per_topology = geometries_per_topology;
  request.seed = next_request_seed();
  auto result = service_->legalize_topologies(request);
  if (!result.ok()) {
    throw_status(result.status());
  }
  return to_report(std::move(result).value());
}

unet::UNet& Pipeline::model() { return *model_; }

void Pipeline::save_model(const std::string& path) {
  nn::save_checkpoint(model_->registry(), path);
}

void Pipeline::load_model(const std::string& path) {
  nn::load_checkpoint(model_->registry(), path);
  model_synced_ = false;
}

}  // namespace diffpattern::core
