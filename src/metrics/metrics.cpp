#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/contracts.h"

namespace diffpattern::metrics {

Complexity pattern_complexity(const layout::SquishPattern& pattern) {
  const auto canon = layout::canonicalize(pattern);
  return Complexity{canon.topology.cols() - 1, canon.topology.rows() - 1};
}

Complexity topology_complexity(const geometry::BinaryGrid& topology) {
  DP_REQUIRE(topology.rows() >= 1 && topology.cols() >= 1,
             "topology_complexity: empty grid");
  layout::SquishPattern synthetic;
  synthetic.topology = topology;
  synthetic.dx.assign(static_cast<std::size_t>(topology.cols()), 1);
  synthetic.dy.assign(static_cast<std::size_t>(topology.rows()), 1);
  return pattern_complexity(synthetic);
}

double diversity_entropy(const std::vector<Complexity>& complexities) {
  if (complexities.empty()) {
    return 0.0;
  }
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> counts;
  for (const auto& c : complexities) {
    ++counts[{c.cx, c.cy}];
  }
  const double n = static_cast<double>(complexities.size());
  double entropy = 0.0;
  for (const auto& [key, count] : counts) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

ComplexityHistogram::ComplexityHistogram(std::int64_t max_cx,
                                         std::int64_t max_cy)
    : max_cx_(max_cx), max_cy_(max_cy),
      counts_(static_cast<std::size_t>((max_cx + 1) * (max_cy + 1)), 0) {
  DP_REQUIRE(max_cx >= 0 && max_cy >= 0, "ComplexityHistogram: bad bounds");
}

void ComplexityHistogram::add(const Complexity& c) {
  const auto cx = std::clamp<std::int64_t>(c.cx, 0, max_cx_);
  const auto cy = std::clamp<std::int64_t>(c.cy, 0, max_cy_);
  ++counts_[static_cast<std::size_t>(cy * (max_cx_ + 1) + cx)];
  ++total_;
}

void ComplexityHistogram::add_all(const std::vector<Complexity>& cs) {
  for (const auto& c : cs) {
    add(c);
  }
}

std::int64_t ComplexityHistogram::count(std::int64_t cx,
                                        std::int64_t cy) const {
  DP_REQUIRE(cx >= 0 && cx <= max_cx_ && cy >= 0 && cy <= max_cy_,
             "ComplexityHistogram::count: out of range");
  return counts_[static_cast<std::size_t>(cy * (max_cx_ + 1) + cx)];
}

double ComplexityHistogram::probability(std::int64_t cx,
                                        std::int64_t cy) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(count(cx, cy)) / static_cast<double>(total_);
}

double ComplexityHistogram::intersection(
    const ComplexityHistogram& other) const {
  DP_REQUIRE(max_cx_ == other.max_cx_ && max_cy_ == other.max_cy_,
             "ComplexityHistogram::intersection: bounds mismatch");
  double overlap = 0.0;
  for (std::int64_t cy = 0; cy <= max_cy_; ++cy) {
    for (std::int64_t cx = 0; cx <= max_cx_; ++cx) {
      overlap += std::min(probability(cx, cy), other.probability(cx, cy));
    }
  }
  return overlap;
}

std::string ComplexityHistogram::to_csv() const {
  std::ostringstream out;
  out << "cy\\cx";
  for (std::int64_t cx = 0; cx <= max_cx_; ++cx) {
    out << ',' << cx;
  }
  out << '\n';
  for (std::int64_t cy = 0; cy <= max_cy_; ++cy) {
    out << cy;
    for (std::int64_t cx = 0; cx <= max_cx_; ++cx) {
      out << ',' << probability(cx, cy);
    }
    out << '\n';
  }
  return out.str();
}

std::string ComplexityHistogram::to_ascii(std::int64_t display_bins) const {
  DP_REQUIRE(display_bins >= 1, "to_ascii: display_bins must be >= 1");
  const char shades[] = " .:-=+*#%@";
  const std::int64_t n_shades = 9;
  std::ostringstream out;
  const auto bin_w = std::max<std::int64_t>(1, (max_cx_ + 1) / display_bins);
  const auto bin_h = std::max<std::int64_t>(1, (max_cy_ + 1) / display_bins);
  double peak = 0.0;
  std::vector<double> bins(
      static_cast<std::size_t>(display_bins * display_bins), 0.0);
  for (std::int64_t cy = 0; cy <= max_cy_; ++cy) {
    for (std::int64_t cx = 0; cx <= max_cx_; ++cx) {
      const auto by = std::min(display_bins - 1, cy / bin_h);
      const auto bx = std::min(display_bins - 1, cx / bin_w);
      auto& bin = bins[static_cast<std::size_t>(by * display_bins + bx)];
      bin += probability(cx, cy);
      peak = std::max(peak, bin);
    }
  }
  for (std::int64_t by = display_bins - 1; by >= 0; --by) {
    for (std::int64_t bx = 0; bx < display_bins; ++bx) {
      const double v =
          peak > 0.0
              ? bins[static_cast<std::size_t>(by * display_bins + bx)] / peak
              : 0.0;
      out << shades[static_cast<std::size_t>(std::llround(v * n_shades))];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace diffpattern::metrics
