// Pattern complexity and library diversity (paper Sec. II-C, Eq. 4).
//
// Complexity of a pattern is (c_x, c_y) = scan-line counts minus one along
// each axis, computed on the CANONICAL squish form (padding scan lines
// inserted for the fixed model input size do not count). Diversity H of a
// library is the Shannon entropy (log base 2) of the empirical joint
// distribution of complexities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/squish.h"

namespace diffpattern::metrics {

struct Complexity {
  std::int64_t cx = 0;
  std::int64_t cy = 0;

  friend bool operator==(const Complexity&, const Complexity&) = default;
};

/// Complexity of one pattern (canonicalized first).
Complexity pattern_complexity(const layout::SquishPattern& pattern);

/// Complexity of a bare topology grid (merges duplicate rows/columns, which
/// is the canonical complexity of any geometry assigned to it).
Complexity topology_complexity(const geometry::BinaryGrid& topology);

/// Shannon entropy (bits) of the joint complexity distribution (Eq. 4).
double diversity_entropy(const std::vector<Complexity>& complexities);

/// 2-D histogram over (c_x, c_y) for Fig. 9.
class ComplexityHistogram {
 public:
  ComplexityHistogram(std::int64_t max_cx, std::int64_t max_cy);

  void add(const Complexity& c);
  void add_all(const std::vector<Complexity>& cs);

  std::int64_t total() const { return total_; }
  std::int64_t count(std::int64_t cx, std::int64_t cy) const;
  double probability(std::int64_t cx, std::int64_t cy) const;

  /// Histogram intersection in [0, 1] (1 = identical distributions); the
  /// quantitative summary of Fig. 9's visual comparison.
  double intersection(const ComplexityHistogram& other) const;

  /// CSV matrix (rows = cy, cols = cx) of probabilities.
  std::string to_csv() const;
  /// Coarse ASCII heatmap for terminal output.
  std::string to_ascii(std::int64_t display_bins = 16) const;

 private:
  std::int64_t max_cx_;
  std::int64_t max_cy_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace diffpattern::metrics
