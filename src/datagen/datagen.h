// Synthetic layout dataset generator.
//
// Substitution note (DESIGN.md Sec. 2): the paper trains on 2048x2048 nm^2
// tiles split from the ICCAD-2014 contest layout, which is not distributable
// here. This generator produces the same artifact type — DRC-clean Manhattan
// metal-layer tiles with rectangles and L/T shapes of varying widths — so
// every downstream code path (squish extraction, folding, diffusion
// training, legalization, DRC, diversity metrics) is exercised identically.
// Every generated tile is verified by dp_drc before it enters the dataset.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "drc/rules.h"
#include "layout/deep_squish.h"
#include "layout/squish.h"
#include "legalize/solver.h"

namespace diffpattern::datagen {

using geometry::Coord;

struct DatagenConfig {
  Coord tile = 2048;
  drc::DesignRules rules = drc::standard_rules();
  std::int64_t min_shapes = 2;
  std::int64_t max_shapes = 6;
  /// Probability that a placed rectangle grows an abutting extension
  /// (forming an L- or T-shaped polygon).
  double extend_probability = 0.35;
  /// Placement coordinates snap to this quantum so scan lines coincide
  /// across shapes (keeps topology matrices compact, like real layouts with
  /// track-based routing).
  Coord quantum = 64;
  /// Placement attempts per shape before giving up on the tile.
  std::int64_t max_placement_attempts = 64;
  /// Add the horizontal mirror and the transpose of every tile to the
  /// dataset (the flip/rotation augmentation DeePattern [7] motivates).
  /// Design rules are symmetric under both, so augmented patterns stay
  /// DRC-clean. Triples the dataset for the same generation cost.
  bool augment = false;
};

/// Generates one DRC-clean tile. Throws only on configuration errors; tiles
/// that fail DRC by construction are regenerated internally.
layout::Layout generate_tile(const DatagenConfig& config, common::Rng& rng);

/// A dataset of fixed-size squish patterns ready for the diffusion model.
struct Dataset {
  DatagenConfig config;
  layout::DeepSquishConfig fold;
  std::int64_t grid_side = 0;  // Padded topology side == sqrt(C) * M.
  std::vector<layout::SquishPattern> patterns;   // All padded to grid_side.
  legalize::DeltaLibrary library;                // Geometry pool (Solving-E).
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;

  std::vector<geometry::BinaryGrid> topologies(
      const std::vector<std::size_t>& indices) const;
  /// Folded [N, C, M, M] tensor over the given pattern indices.
  tensor::Tensor folded_batch(const std::vector<std::size_t>& indices) const;
  /// Draws `batch` random training patterns and folds them.
  tensor::Tensor sample_training_batch(std::int64_t batch,
                                       common::Rng& rng) const;
};

/// Generates `tiles` tiles, extracts + pads their squish patterns to
/// `grid_side` (tiles whose extraction exceeds grid_side are regenerated),
/// and splits train/test (paper: 3000 of ~13869 held out; here a ratio).
Dataset build_dataset(const DatagenConfig& config, std::int64_t tiles,
                      std::int64_t grid_side, std::int64_t channels,
                      double test_fraction, common::Rng& rng);

}  // namespace diffpattern::datagen
