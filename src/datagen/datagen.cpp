#include "datagen/datagen.h"

#include <algorithm>

#include "common/contracts.h"
#include "drc/checker.h"

namespace diffpattern::datagen {

using geometry::Rect;
using layout::Layout;
using layout::SquishPattern;

namespace {

Coord snap(Coord value, Coord quantum) {
  return (value / quantum) * quantum;
}

/// True if `candidate` keeps at least space_min clearance (and thus also
/// Euclidean corner clearance) from every rect in `placed`.
bool clear_of(const Rect& candidate, const std::vector<Rect>& placed,
              Coord space_min) {
  const Rect inflated = candidate.inflated(space_min);
  for (const auto& r : placed) {
    if (inflated.overlaps(r)) {
      return false;
    }
  }
  return true;
}

/// Samples a legal shape dimension in [width_min, 6 * width_min], snapped.
Coord sample_dim(const DatagenConfig& config, common::Rng& rng) {
  const Coord lo = config.rules.width_min;
  const Coord hi = std::min<Coord>(config.tile / 3, 6 * lo);
  Coord d = snap(rng.uniform_int(lo, hi), config.quantum);
  return std::max(d, lo);
}

}  // namespace

Layout generate_tile(const DatagenConfig& config, common::Rng& rng) {
  DP_REQUIRE(config.tile > 4 * config.rules.width_min,
             "generate_tile: tile too small for the rules");
  DP_REQUIRE(config.quantum > 0, "generate_tile: quantum must be positive");
  for (std::int64_t tile_attempt = 0; tile_attempt < 32; ++tile_attempt) {
    Layout layout;
    layout.width = config.tile;
    layout.height = config.tile;
    const auto target_shapes =
        rng.uniform_int(config.min_shapes, config.max_shapes);
    std::vector<Rect> placed;  // Flattened rects for clearance tests.

    for (std::int64_t s = 0; s < target_shapes; ++s) {
      for (std::int64_t attempt = 0; attempt < config.max_placement_attempts;
           ++attempt) {
        const Coord w = sample_dim(config, rng);
        Coord h = sample_dim(config, rng);
        // Respect the minimum area with the sampled width.
        while (w * h < config.rules.area_min) {
          h += config.quantum;
        }
        if (config.rules.has_area_max() && w * h > config.rules.area_max) {
          continue;
        }
        const Coord x0 = snap(rng.uniform_int(0, config.tile - w),
                              config.quantum);
        const Coord y0 = snap(rng.uniform_int(0, config.tile - h),
                              config.quantum);
        const Rect base{x0, y0, x0 + w, y0 + h};
        if (base.x1 > config.tile || base.y1 > config.tile ||
            !clear_of(base, placed, config.rules.space_min)) {
          continue;
        }
        layout.rects.push_back(base);
        placed.push_back(base);

        // Optional abutting extension -> L/T polygon.
        if (rng.bernoulli(config.extend_probability)) {
          const bool on_top = rng.bernoulli(0.5);
          const Coord ew = std::max<Coord>(
              config.rules.width_min,
              snap(rng.uniform_int(config.rules.width_min, w), config.quantum));
          const Coord eh = sample_dim(config, rng);
          const Coord ex0 =
              snap(base.x0 + rng.uniform_int(0, std::max<Coord>(0, w - ew)),
                   config.quantum);
          Rect ext;
          if (on_top) {
            ext = Rect{ex0, base.y1, ex0 + ew, base.y1 + eh};
          } else {
            ext = Rect{ex0, base.y0 - eh, ex0 + ew, base.y0};
          }
          // Keep the extension flush with the base's span and in-tile.
          if (ext.x0 >= base.x0 && ext.x1 <= base.x1 && ext.y0 >= 0 &&
              ext.y1 <= config.tile &&
              (!config.rules.has_area_max() ||
               base.area() + ext.area() <= config.rules.area_max)) {
            // Clearance against everything except the base it abuts.
            std::vector<Rect> others(placed.begin(), placed.end() - 1);
            if (clear_of(ext, others, config.rules.space_min)) {
              layout.rects.push_back(ext);
              placed.push_back(ext);
            }
          }
        }
        break;
      }
    }

    if (layout.rects.empty()) {
      continue;
    }
    // Verification: construction-by-clearance should be clean, but the DRC
    // oracle has the final word (e.g. L-extension shoulder widths).
    if (drc::check_layout(layout, config.rules).clean()) {
      return layout;
    }
  }
  throw std::runtime_error(
      "generate_tile: could not produce a DRC-clean tile; rules too tight "
      "for the configured shape counts");
}

std::vector<geometry::BinaryGrid> Dataset::topologies(
    const std::vector<std::size_t>& indices) const {
  std::vector<geometry::BinaryGrid> out;
  out.reserve(indices.size());
  for (const auto i : indices) {
    out.push_back(patterns[i].topology);
  }
  return out;
}

tensor::Tensor Dataset::folded_batch(
    const std::vector<std::size_t>& indices) const {
  DP_REQUIRE(!indices.empty(), "folded_batch: empty index list");
  return layout::fold_batch(topologies(indices), fold);
}

tensor::Tensor Dataset::sample_training_batch(std::int64_t batch,
                                              common::Rng& rng) const {
  DP_REQUIRE(!train_indices.empty(), "sample_training_batch: no train split");
  std::vector<std::size_t> picks;
  picks.reserve(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    picks.push_back(train_indices[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(train_indices.size()) - 1))]);
  }
  return folded_batch(picks);
}

Dataset build_dataset(const DatagenConfig& config, std::int64_t tiles,
                      std::int64_t grid_side, std::int64_t channels,
                      double test_fraction, common::Rng& rng) {
  DP_REQUIRE(tiles >= 1, "build_dataset: need at least one tile");
  DP_REQUIRE(test_fraction >= 0.0 && test_fraction < 1.0,
             "build_dataset: bad test fraction");
  Dataset dataset;
  dataset.config = config;
  dataset.fold.channels = channels;
  dataset.grid_side = grid_side;
  const auto patch = dataset.fold.patch_side();
  DP_REQUIRE(grid_side % patch == 0,
             "build_dataset: grid_side must be divisible by sqrt(channels)");

  const auto add_pattern = [&dataset](SquishPattern pattern) {
    dataset.library.dx_pool.push_back(pattern.dx);
    dataset.library.dy_pool.push_back(pattern.dy);
    dataset.patterns.push_back(std::move(pattern));
  };
  while (static_cast<std::int64_t>(dataset.patterns.size()) < tiles) {
    Layout tile = generate_tile(config, rng);
    SquishPattern pattern = layout::extract_squish(tile);
    if (pattern.topology.rows() > grid_side ||
        pattern.topology.cols() > grid_side) {
      continue;  // Too complex for the configured grid; regenerate.
    }
    SquishPattern padded = layout::pad_to(pattern, grid_side, grid_side);
    if (config.augment &&
        static_cast<std::int64_t>(dataset.patterns.size()) + 2 < tiles) {
      // Horizontal mirror: columns (and dx) reverse.
      SquishPattern mirrored;
      mirrored.topology = geometry::mirrored_horizontal(padded.topology);
      mirrored.dx.assign(padded.dx.rbegin(), padded.dx.rend());
      mirrored.dy = padded.dy;
      mirrored.validate();
      add_pattern(std::move(mirrored));
      // Transpose: axes (and delta vectors) swap.
      SquishPattern transposed;
      transposed.topology = geometry::transposed(padded.topology);
      transposed.dx = padded.dy;
      transposed.dy = padded.dx;
      transposed.validate();
      add_pattern(std::move(transposed));
    }
    add_pattern(std::move(padded));
  }

  std::vector<std::size_t> order(dataset.patterns.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  rng.shuffle(order);
  const auto test_count = static_cast<std::size_t>(
      static_cast<double>(order.size()) * test_fraction);
  dataset.test_indices.assign(order.begin(),
                              order.begin() + static_cast<std::ptrdiff_t>(
                                                  test_count));
  dataset.train_indices.assign(
      order.begin() + static_cast<std::ptrdiff_t>(test_count), order.end());
  return dataset;
}

}  // namespace diffpattern::datagen
