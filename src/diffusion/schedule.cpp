#include "diffusion/schedule.h"

#include <algorithm>

#include "common/contracts.h"

namespace diffpattern::diffusion {

ScheduleConfig ScheduleConfig::paper() {
  return ScheduleConfig{};  // K = 1000, beta in [0.01, 0.5].
}

BinarySchedule::BinarySchedule(ScheduleConfig config) : config_(config) {
  DP_REQUIRE(config_.steps >= 1, "BinarySchedule: steps must be >= 1");
  DP_REQUIRE(config_.beta_start > 0.0 && config_.beta_start < 1.0,
             "BinarySchedule: beta_start outside (0, 1)");
  DP_REQUIRE(config_.beta_end > 0.0 && config_.beta_end <= 0.5,
             "BinarySchedule: beta_end outside (0, 0.5]");
  DP_REQUIRE(config_.beta_start <= config_.beta_end,
             "BinarySchedule: beta_start must not exceed beta_end");
  betas_.resize(static_cast<std::size_t>(config_.steps));
  cumulative_flip_.assign(static_cast<std::size_t>(config_.steps) + 1, 0.0);
  for (std::int64_t k = 1; k <= config_.steps; ++k) {
    // Eq. 8: linear interpolation from beta_1 to beta_K.
    const double beta =
        config_.steps == 1
            ? config_.beta_start
            : config_.beta_start + static_cast<double>(k - 1) *
                                       (config_.beta_end - config_.beta_start) /
                                       static_cast<double>(config_.steps - 1);
    betas_[static_cast<std::size_t>(k - 1)] = beta;
    const double prev = cumulative_flip_[static_cast<std::size_t>(k - 1)];
    cumulative_flip_[static_cast<std::size_t>(k)] =
        prev + beta - 2.0 * prev * beta;
  }
}

double BinarySchedule::beta(std::int64_t k) const {
  DP_REQUIRE(k >= 1 && k <= config_.steps, "beta: k outside [1, K]");
  return betas_[static_cast<std::size_t>(k - 1)];
}

double BinarySchedule::cumulative_flip(std::int64_t k) const {
  DP_REQUIRE(k >= 0 && k <= config_.steps,
             "cumulative_flip: k outside [0, K]");
  return cumulative_flip_[static_cast<std::size_t>(k)];
}

double BinarySchedule::posterior_prob1(std::int64_t k, int x_k, int x_0) const {
  return posterior_prob1_between(k - 1, k, x_k, x_0);
}

double BinarySchedule::flip_between(std::int64_t from, std::int64_t to) const {
  DP_REQUIRE(from >= 0 && from <= to && to <= config_.steps,
             "flip_between: need 0 <= from <= to <= K");
  // Composition rule for symmetric 2-state matrices M(c): M(a)M(s) = M(a +
  // s - 2as). Solve cbar_to = cbar_from + s - 2 * cbar_from * s for s.
  const double a = cumulative_flip(from);
  const double b = cumulative_flip(to);
  const double denom = 1.0 - 2.0 * a;
  if (denom < 1e-300) {
    // The chain is already at the uniform stationary distribution at
    // `from`; any further transition is indistinguishable from uniform.
    return 0.5;
  }
  return std::clamp((b - a) / denom, 0.0, 0.5);
}

double BinarySchedule::posterior_prob1_between(std::int64_t k_prev,
                                               std::int64_t k, int x_k,
                                               int x_0) const {
  DP_REQUIRE(k >= 1 && k <= config_.steps,
             "posterior_prob1_between: k outside [1, K]");
  DP_REQUIRE(k_prev >= 0 && k_prev < k,
             "posterior_prob1_between: need 0 <= k_prev < k");
  DP_REQUIRE((x_k == 0 || x_k == 1) && (x_0 == 0 || x_0 == 1),
             "posterior_prob1_between: states must be binary");
  // Adjacent steps use beta(k) exactly; the composite formula suffers
  // catastrophic cancellation near stationarity and is reserved for jumps.
  const double step_flip =
      k_prev == k - 1 ? beta(k) : flip_between(k_prev, k);
  const double cb_prev = cumulative_flip(k_prev);
  // q(x_{k_prev} = s | x_k, x_0) ∝ Q_{k_prev->k}[s -> x_k] *
  // Qbar_{k_prev}[x_0 -> s].
  const auto q_step = [&](int s) {
    return s == x_k ? 1.0 - step_flip : step_flip;
  };
  const auto q_cum = [&](int s) { return s == x_0 ? 1.0 - cb_prev : cb_prev; };
  const double w1 = q_step(1) * q_cum(1);
  const double w0 = q_step(0) * q_cum(0);
  DP_CHECK(w0 + w1 > 0.0, "posterior_prob1_between: degenerate posterior");
  return w1 / (w0 + w1);
}

}  // namespace diffpattern::diffusion
