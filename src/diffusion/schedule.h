// Noise schedule and binary-state transition matrices (paper Eqs. 7-8).
//
// The forward process applies, at step k, the doubly stochastic matrix
//   Q_k = [[1-beta_k, beta_k], [beta_k, 1-beta_k]]
// independently to every entry. Products of such matrices stay in the same
// family, so the cumulative transition Qbar_k = Q_1 ... Q_k is fully
// described by one scalar: the cumulative flip probability
//   cbar_k = cbar_{k-1} + beta_k - 2 * cbar_{k-1} * beta_k.
// With the paper's linear beta schedule (0.01 -> 0.5 over K steps) cbar_K
// converges to 0.5 — the uniform stationary distribution of Eq. 6.
#pragma once

#include <cstdint>
#include <vector>

namespace diffpattern::diffusion {

struct ScheduleConfig {
  std::int64_t steps = 1000;       // K
  double beta_start = 0.01;        // beta_1
  double beta_end = 0.5;           // beta_K

  /// Paper default (Sec. IV-A). Scaled runs shrink `steps` only; the beta
  /// range already drives cbar to 0.5 for any K >= ~5.
  static ScheduleConfig paper();
};

class BinarySchedule {
 public:
  explicit BinarySchedule(ScheduleConfig config);

  std::int64_t steps() const { return config_.steps; }
  const ScheduleConfig& config() const { return config_; }

  /// beta_k for k in [1, K] (Eq. 8, linear).
  double beta(std::int64_t k) const;

  /// Cumulative flip probability of Qbar_k; cumulative_flip(0) == 0.
  double cumulative_flip(std::int64_t k) const;

  /// q(x_{k-1} = 1 | x_k, x_0) — the closed-form posterior of Eq. 12
  /// specialized to binary states.
  double posterior_prob1(std::int64_t k, int x_k, int x_0) const;

  /// Flip probability of the composite transition Q_{a+1} ... Q_b (the
  /// matrix that advances state a -> state b in one jump). flip_between(k-1,
  /// k) == beta(k); flip_between(0, k) == cumulative_flip(k).
  double flip_between(std::int64_t from, std::int64_t to) const;

  /// Generalized posterior for strided (DDIM-style) sampling:
  /// q(x_{k_prev} = 1 | x_k, x_0) for any 0 <= k_prev < k <= K. With
  /// k_prev == k - 1 this equals posterior_prob1.
  double posterior_prob1_between(std::int64_t k_prev, std::int64_t k, int x_k,
                                 int x_0) const;

 private:
  ScheduleConfig config_;
  std::vector<double> betas_;           // betas_[k-1] = beta_k
  std::vector<double> cumulative_flip_; // [k] = cbar_k, size K+1, [0] = 0
};

}  // namespace diffpattern::diffusion
