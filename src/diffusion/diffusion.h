// Discrete diffusion over binary topology tensors (paper Sec. III-C).
//
// Pipeline:
//   * q_sample draws x_k ~ q(x_k | x_0) in one shot via the cumulative flip
//     probability (Eq. 10) — no need to apply k transitions.
//   * The U-Net predicts per-entry logits of p_theta(x0_tilde | x_k); the
//     reverse kernel p_theta(x_{k-1} | x_k) marginalizes the closed-form
//     posterior over both x0_tilde states (Eq. 11).
//   * The training loss is L = KL(q(x_{k-1}|x_k,x_0) || p_theta(x_{k-1}|x_k))
//     + lambda * CE(x_0, p_theta(x0_tilde|x_k)) for k >= 2, and plain CE at
//     k = 1 (Eq. 9 with the D3PM k=1 convention).
//   * Sampling starts from the uniform stationary distribution and walks the
//     reverse chain (Eq. 13).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "diffusion/schedule.h"
#include "nn/autograd.h"
#include "nn/optim.h"
#include "unet/unet.h"

namespace diffpattern::diffusion {

struct LossConfig {
  /// Weight of the auxiliary cross-entropy term (paper: 0.001).
  float lambda = 0.001F;
};

struct LossBreakdown {
  double total = 0.0;
  double kl = 0.0;             // Mean over k>=2 entries (0 if none).
  double cross_entropy = 0.0;  // Mean auxiliary CE over all entries.
};

/// Draws x_k ~ q(x_k | x_0) entrywise; x0 is a binary [N,C,H,W] tensor and
/// `k` holds one step per sample.
tensor::Tensor q_sample(const BinarySchedule& schedule,
                        const tensor::Tensor& x0,
                        const std::vector<std::int64_t>& k, common::Rng& rng);

/// Builds the differentiable training loss for one batch. Samples per-sample
/// steps k ~ U[1, K] and noise internally. Returns the loss Var (call
/// backward() on it) plus a numeric breakdown for logging.
struct LossResult {
  nn::Var loss;
  LossBreakdown breakdown;
};
LossResult diffusion_loss(unet::UNet& model, const BinarySchedule& schedule,
                          const tensor::Tensor& x0, const LossConfig& config,
                          common::Rng& rng);

/// One training step (loss + backward + Adam step). Returns the breakdown.
class DiffusionTrainer {
 public:
  DiffusionTrainer(unet::UNet& model, const BinarySchedule& schedule,
                   LossConfig loss_config, nn::AdamConfig adam_config);

  LossBreakdown step(const tensor::Tensor& x0_batch, common::Rng& rng);

  std::int64_t steps_taken() const { return optimizer_.steps_taken(); }

 private:
  unet::UNet& model_;
  const BinarySchedule& schedule_;
  LossConfig loss_config_;
  nn::Adam optimizer_;
};

struct SamplerConfig {
  /// Take the argmax of p_theta(x0|x1) at the final step instead of
  /// sampling (crisper topologies; both modes are exposed for the ablation).
  bool final_argmax = true;
};

/// Per-step observer for the reverse chain (used by the Fig. 6 bench):
/// called with (k, current x_k) after every denoising step, including the
/// initial noise (k = K) and the final sample (k = 0).
using SampleObserver =
    std::function<void(std::int64_t k, const tensor::Tensor& x)>;

/// Runs the reverse diffusion chain and returns binary samples [N,C,H,W].
tensor::Tensor sample(unet::UNet& model, const BinarySchedule& schedule,
                      std::int64_t batch, std::int64_t height,
                      std::int64_t width, const SamplerConfig& config,
                      common::Rng& rng,
                      const SampleObserver& observer = nullptr);

/// Per-step hook for the fused sampler, called after every completed
/// reverse step with (k just finished, batch size). Unlike SampleObserver
/// it deliberately does NOT expose the intermediate tensor: it exists for
/// round-structured bookkeeping (the service's denoise-step counters and
/// progress accounting), so the sampler never has to copy state out of the
/// hot loop. Must not throw.
using RoundHook = std::function<void(std::int64_t k, std::int64_t batch)>;

/// Fused reverse-diffusion over streams.size() samples in ONE batch: the
/// U-Net forward runs once per step for the whole batch, while sample i
/// draws its stochastic transitions exclusively from *streams[i]. Every
/// network op treats batch entries independently, so slot i's output is
/// bit-identical to a batch-1 run fed the same stream — this is what lets
/// the service fuse queued requests without breaking per-request
/// reproducibility. Returns [streams.size(), C, height, width].
/// `round_hook`, when set, fires once per reverse step (schedule.steps()
/// times) and never affects the sampled values.
tensor::Tensor sample_streams(unet::UNet& model,
                              const BinarySchedule& schedule,
                              std::int64_t height, std::int64_t width,
                              const SamplerConfig& config,
                              const std::vector<common::Rng*>& streams,
                              const RoundHook& round_hook = nullptr);

/// Network evaluations a strided walk performs: the subsequence
/// K, K - stride, ..., 1 has ceil(K / stride) entries. stride == 1 gives K
/// (the full ancestral chain).
std::int64_t strided_step_count(std::int64_t schedule_steps,
                                std::int64_t stride);

/// Fused strided reverse diffusion: like sample_streams, but slot i also
/// carries its own step subsequence K, K - strides[i], K - 2*strides[i], ...
/// (DDIM-style jumps via the generalized posterior
/// q(x_{k_prev} | x_k, x0_tilde)). Each round runs ONE U-Net forward over
/// exactly the slots whose subsequence visits that step, so the fused batch
/// narrows as coarse-stride slots finish early — `round_hook` fires once per
/// executed round with (k, active slots this round), which is what the
/// service's fill-ratio accounting consumes. Slot i draws exclusively from
/// *streams[i] in a fixed order, so its bytes are identical to a solo run
/// with the same (stream, stride) regardless of which other strides share
/// the batch. With strides[i] == 1 for all i this reproduces sample_streams
/// bit for bit. strides must pair 1:1 with streams, each in
/// [1, schedule.steps()].
tensor::Tensor sample_streams_strided(
    unet::UNet& model, const BinarySchedule& schedule, std::int64_t height,
    std::int64_t width, const SamplerConfig& config,
    const std::vector<common::Rng*>& streams,
    const std::vector<std::int64_t>& strides,
    const RoundHook& round_hook = nullptr);

/// Strided (DDIM-style [12]) fast sampler: walks a subsequence of the K
/// steps — K, K - stride, K - 2*stride, ..., 1 — using the generalized
/// jump posterior q(x_{k_prev} | x_k, x0_tilde). stride == 1 reduces to the
/// full ancestral sampler; larger strides trade sample quality for a
/// proportional cut in network evaluations (see
/// bench_ablation_stride).
tensor::Tensor sample_strided(unet::UNet& model,
                              const BinarySchedule& schedule,
                              std::int64_t batch, std::int64_t height,
                              std::int64_t width, std::int64_t stride,
                              const SamplerConfig& config, common::Rng& rng,
                              const SampleObserver& observer = nullptr);

/// Exponential moving average of model parameters — the standard DDPM
/// evaluation trick: train on the raw weights, sample with the smoothed
/// copy. Usage:
///   Ema ema(model.registry(), 0.999);
///   loop { trainer.step(...); ema.update(); }
///   ema.swap_in();   // Registry now holds EMA weights (sampling).
///   ema.swap_out();  // Restore raw training weights.
class Ema {
 public:
  Ema(nn::ParamRegistry& registry, double decay);

  void update();
  void swap_in();
  void swap_out();
  bool active() const { return active_; }
  double decay() const { return decay_; }

 private:
  nn::ParamRegistry& registry_;
  double decay_;
  std::vector<tensor::Tensor> shadow_;
  std::vector<tensor::Tensor> backup_;
  bool active_ = false;
};

}  // namespace diffpattern::diffusion
