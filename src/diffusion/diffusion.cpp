#include "diffusion/diffusion.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "nn/ops.h"
#include "tensor/arena.h"
#include "tensor/parallel.h"
#include "tensor/tensor_ops.h"

namespace diffpattern::diffusion {

using nn::Var;
using tensor::Tensor;

namespace {

void require_binary(const Tensor& t, const char* what) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    DP_REQUIRE(t[i] == 0.0F || t[i] == 1.0F,
               std::string(what) + ": entries must be binary");
  }
}

/// Per-step posterior coefficients: prob(x_{k-1} = 1 | x_k, x0_tilde) for
/// the four (x_k, x0_tilde) combinations.
struct PosteriorCoeffs {
  double a0;  // x0_tilde = 1, x_k = 0
  double a1;  // x0_tilde = 1, x_k = 1
  double b0;  // x0_tilde = 0, x_k = 0
  double b1;  // x0_tilde = 0, x_k = 1
};

PosteriorCoeffs posterior_coeffs(const BinarySchedule& schedule,
                                 std::int64_t k) {
  return PosteriorCoeffs{
      schedule.posterior_prob1(k, /*x_k=*/0, /*x_0=*/1),
      schedule.posterior_prob1(k, /*x_k=*/1, /*x_0=*/1),
      schedule.posterior_prob1(k, /*x_k=*/0, /*x_0=*/0),
      schedule.posterior_prob1(k, /*x_k=*/1, /*x_0=*/0),
  };
}

}  // namespace

Tensor q_sample(const BinarySchedule& schedule, const Tensor& x0,
                const std::vector<std::int64_t>& k, common::Rng& rng) {
  DP_REQUIRE(x0.rank() == 4, "q_sample: x0 must be [N,C,H,W]");
  DP_REQUIRE(static_cast<std::int64_t>(k.size()) == x0.dim(0),
             "q_sample: one step per sample required");
  Tensor xk = x0;
  const auto per_sample = x0.numel() / x0.dim(0);
  for (std::int64_t n = 0; n < x0.dim(0); ++n) {
    const double flip =
        schedule.cumulative_flip(k[static_cast<std::size_t>(n)]);
    float* data = xk.data() + n * per_sample;
    for (std::int64_t i = 0; i < per_sample; ++i) {
      DP_REQUIRE(data[i] == 0.0F || data[i] == 1.0F,
                 "q_sample: x0 entries must be binary");
      if (rng.bernoulli(flip)) {
        data[i] = 1.0F - data[i];
      }
    }
  }
  return xk;
}

LossResult diffusion_loss(unet::UNet& model, const BinarySchedule& schedule,
                          const Tensor& x0, const LossConfig& config,
                          common::Rng& rng) {
  DP_REQUIRE(x0.rank() == 4, "diffusion_loss: x0 must be [N,C,H,W]");
  const auto n = x0.dim(0);
  const auto c = x0.dim(1);
  const auto per_sample = x0.numel() / n;

  // Per-sample diffusion step k ~ U[1, K].
  std::vector<std::int64_t> k(static_cast<std::size_t>(n));
  for (auto& ki : k) {
    ki = rng.uniform_int(1, schedule.steps());
  }
  const Tensor xk = q_sample(schedule, x0, k, rng);

  // Constant coefficient tensors (no gradient flows into them).
  Tensor coeff_a(x0.shape());   // prob1 coefficient for x0_tilde = 1
  Tensor coeff_b(x0.shape());   // prob1 coefficient for x0_tilde = 0
  Tensor q1(x0.shape());        // true posterior prob(x_{k-1} = 1)
  Tensor entropy_q(x0.shape()); // -H(q), the constant completing the KL
  Tensor kl_mask(x0.shape());   // 1 for entries whose sample has k >= 2
  for (std::int64_t s = 0; s < n; ++s) {
    const auto ks = k[static_cast<std::size_t>(s)];
    const auto coeffs = posterior_coeffs(schedule, ks);
    const float mask = ks >= 2 ? 1.0F : 0.0F;
    for (std::int64_t i = 0; i < per_sample; ++i) {
      const auto idx = s * per_sample + i;
      const int xkv = xk[idx] != 0.0F ? 1 : 0;
      const int x0v = x0[idx] != 0.0F ? 1 : 0;
      const double a = xkv == 1 ? coeffs.a1 : coeffs.a0;
      const double b = xkv == 1 ? coeffs.b1 : coeffs.b0;
      coeff_a[idx] = static_cast<float>(a);
      coeff_b[idx] = static_cast<float>(b);
      const double q = x0v == 1 ? a : b;
      q1[idx] = static_cast<float>(q);
      const double h = (q > 0.0 ? q * std::log(q) : 0.0) +
                       (q < 1.0 ? (1.0 - q) * std::log(1.0 - q) : 0.0);
      entropy_q[idx] = static_cast<float>(h);  // = -H(q)
      kl_mask[idx] = mask;
    }
  }

  // Network forward: logits of p_theta(x0_tilde | x_k).
  Var logits = model.forward(xk, k, /*training=*/true, rng);
  Var d = unet::logit_difference(logits, c);
  Var p0 = nn::sigmoid(d);  // prob(x0_tilde = 1 | x_k)

  // p_theta(x_{k-1} = 1 | x_k) = A * p0 + B * (1 - p0)  (Eq. 11).
  Tensor a_minus_b(x0.shape());
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    a_minus_b[i] = coeff_a[i] - coeff_b[i];
  }
  Var p1 = nn::add_const(nn::mul_const(p0, a_minus_b), coeff_b);

  // KL(q || p) per entry: -q1*log(p1) - (1-q1)*log(1-p1) - H(q).
  Tensor one_minus_q1(x0.shape());
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    one_minus_q1[i] = 1.0F - q1[i];
  }
  Var log_p1 = nn::log_clamped(p1);
  Var log_1mp1 = nn::log_clamped(nn::add_scalar(nn::neg(p1), 1.0F));
  Var ce_q_p = nn::neg(nn::add(nn::mul_const(log_p1, q1),
                               nn::mul_const(log_1mp1, one_minus_q1)));
  Var kl = nn::add_const(ce_q_p, entropy_q);  // entropy_q = -H(q)

  // Auxiliary CE on x0: softplus(d) - x0 * d  (== -log p_theta(x0 | x_k)).
  Var ce = nn::sub(nn::softplus(d), nn::mul_const(d, x0));

  // Entry weights: k == 1 -> plain CE; k >= 2 -> KL + lambda * CE (Eq. 9).
  Tensor ce_weight(x0.shape());
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    ce_weight[i] = kl_mask[i] == 1.0F ? config.lambda : 1.0F;
  }
  Var combined =
      nn::add(nn::mul_const(kl, kl_mask), nn::mul_const(ce, ce_weight));
  Var loss = nn::mean_all(combined);

  LossBreakdown breakdown;
  breakdown.total = loss.value()[0];
  const auto kl_entries = tensor::sum(kl_mask);
  breakdown.kl =
      kl_entries > 0.0
          ? tensor::sum(tensor::mul(kl.value(), kl_mask)) / kl_entries
          : 0.0;
  breakdown.cross_entropy =
      tensor::sum(ce.value()) / static_cast<double>(x0.numel());
  return LossResult{loss, breakdown};
}

DiffusionTrainer::DiffusionTrainer(unet::UNet& model,
                                   const BinarySchedule& schedule,
                                   LossConfig loss_config,
                                   nn::AdamConfig adam_config)
    : model_(model),
      schedule_(schedule),
      loss_config_(loss_config),
      optimizer_(model.registry().params(), adam_config) {}

LossBreakdown DiffusionTrainer::step(const Tensor& x0_batch,
                                     common::Rng& rng) {
  optimizer_.zero_grad();
  LossResult result = diffusion_loss(model_, schedule_, x0_batch,
                                     loss_config_, rng);
  result.loss.backward();
  optimizer_.step();
  return result.breakdown;
}

Tensor sample(unet::UNet& model, const BinarySchedule& schedule,
              std::int64_t batch, std::int64_t height, std::int64_t width,
              const SamplerConfig& config, common::Rng& rng,
              const SampleObserver& observer) {
  DP_REQUIRE(batch >= 1 && height >= 1 && width >= 1,
             "sample: bad output shape");
  nn::NoGradGuard no_grad;
  const auto c = model.config().in_channels;
  Tensor x({batch, c, height, width});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.bernoulli(0.5) ? 1.0F : 0.0F;  // Uniform stationary prior.
  }
  if (observer) {
    observer(schedule.steps(), x);
  }

  for (std::int64_t k = schedule.steps(); k >= 1; --k) {
    // Lease this shape's activation plan for the round; every tensor the
    // forward allocates below recycles through it (see tensor/arena.h).
    tensor::ArenaScope arena_scope(model.plan_cache(), x.shape());
    const std::vector<std::int64_t> ks(static_cast<std::size_t>(batch), k);
    Var logits = model.forward(x, ks, /*training=*/false, rng);
    const Tensor p0 = unet::logits_to_prob1(logits, c).value();
    if (k == 1) {
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const double p = p0[i];
        const bool one =
            config.final_argmax ? p >= 0.5 : rng.bernoulli(p);
        x[i] = one ? 1.0F : 0.0F;
      }
    } else {
      const auto coeffs = posterior_coeffs(schedule, k);
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const int xkv = x[i] != 0.0F ? 1 : 0;
        const double a = xkv == 1 ? coeffs.a1 : coeffs.a0;
        const double b = xkv == 1 ? coeffs.b1 : coeffs.b0;
        const double p1 = a * p0[i] + b * (1.0 - p0[i]);
        x[i] = rng.bernoulli(p1) ? 1.0F : 0.0F;
      }
    }
    if (observer) {
      observer(k - 1, x);
    }
  }
  require_binary(x, "sample output");
  return x;
}

Tensor sample_streams(unet::UNet& model, const BinarySchedule& schedule,
                      std::int64_t height, std::int64_t width,
                      const SamplerConfig& config,
                      const std::vector<common::Rng*>& streams,
                      const RoundHook& round_hook) {
  const auto batch = static_cast<std::int64_t>(streams.size());
  DP_REQUIRE(batch >= 1 && height >= 1 && width >= 1,
             "sample_streams: bad output shape");
  for (const auto* s : streams) {
    DP_REQUIRE(s != nullptr, "sample_streams: null stream");
  }
  nn::NoGradGuard no_grad;
  const auto c = model.config().in_channels;
  Tensor x({batch, c, height, width});
  const auto per_sample = x.numel() / batch;
  // Uniform stationary prior. Slot n consumes only streams[n], so slots are
  // independent and fan out across the compute pool: each task owns whole
  // slots, which keeps the draw order inside every stream fixed and the
  // output byte-identical for any thread count.
  tensor::parallel_for(0, batch, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      float* slot = x.data() + n * per_sample;
      for (std::int64_t i = 0; i < per_sample; ++i) {
        slot[i] = streams[static_cast<std::size_t>(n)]->bernoulli(0.5) ? 1.0F
                                                                       : 0.0F;
      }
    }
  });

  // The forward pass never draws randomness at inference (dropout is
  // identity when training == false), so a throwaway engine keeps the
  // signature satisfied without coupling slots.
  common::Rng forward_rng(0);
  for (std::int64_t k = schedule.steps(); k >= 1; --k) {
    // Round-scoped activation plan lease (see tensor/arena.h).
    tensor::ArenaScope arena_scope(model.plan_cache(), x.shape());
    const std::vector<std::int64_t> ks(static_cast<std::size_t>(batch), k);
    Var logits = model.forward(x, ks, /*training=*/false, forward_rng);
    const Tensor p0 = unet::logits_to_prob1(logits, c).value();
    const auto coeffs = posterior_coeffs(schedule, k);
    // Per-slot reverse transitions, parallel across slots (see the prior
    // init above for why this preserves bit-reproducibility).
    tensor::parallel_for(0, batch, [&](std::int64_t n0, std::int64_t n1) {
      for (std::int64_t n = n0; n < n1; ++n) {
        common::Rng& rng = *streams[static_cast<std::size_t>(n)];
        float* slot = x.data() + n * per_sample;
        const float* p0_slot = p0.data() + n * per_sample;
        if (k == 1) {
          for (std::int64_t i = 0; i < per_sample; ++i) {
            const double p = p0_slot[i];
            const bool one =
                config.final_argmax ? p >= 0.5 : rng.bernoulli(p);
            slot[i] = one ? 1.0F : 0.0F;
          }
        } else {
          for (std::int64_t i = 0; i < per_sample; ++i) {
            const int xkv = slot[i] != 0.0F ? 1 : 0;
            const double a = xkv == 1 ? coeffs.a1 : coeffs.a0;
            const double b = xkv == 1 ? coeffs.b1 : coeffs.b0;
            const double p1 = a * p0_slot[i] + b * (1.0 - p0_slot[i]);
            slot[i] = rng.bernoulli(p1) ? 1.0F : 0.0F;
          }
        }
      }
    });
    if (round_hook) {
      round_hook(k, batch);
    }
  }
  require_binary(x, "sample_streams output");
  return x;
}

std::int64_t strided_step_count(std::int64_t schedule_steps,
                                std::int64_t stride) {
  DP_REQUIRE(schedule_steps >= 1, "strided_step_count: bad schedule");
  DP_REQUIRE(stride >= 1, "strided_step_count: stride must be >= 1");
  return (schedule_steps + stride - 1) / stride;
}

tensor::Tensor sample_streams_strided(
    unet::UNet& model, const BinarySchedule& schedule, std::int64_t height,
    std::int64_t width, const SamplerConfig& config,
    const std::vector<common::Rng*>& streams,
    const std::vector<std::int64_t>& strides, const RoundHook& round_hook) {
  const auto batch = static_cast<std::int64_t>(streams.size());
  DP_REQUIRE(batch >= 1 && height >= 1 && width >= 1,
             "sample_streams_strided: bad output shape");
  DP_REQUIRE(strides.size() == streams.size(),
             "sample_streams_strided: one stride per stream required");
  for (const auto* s : streams) {
    DP_REQUIRE(s != nullptr, "sample_streams_strided: null stream");
  }
  for (const auto stride : strides) {
    DP_REQUIRE(stride >= 1 && stride <= schedule.steps(),
               "sample_streams_strided: stride outside [1, K]");
  }
  nn::NoGradGuard no_grad;
  const auto c = model.config().in_channels;
  Tensor x({batch, c, height, width});
  const auto per_sample = x.numel() / batch;
  // Uniform stationary prior, drawn exactly as in sample_streams: slot n
  // consumes only streams[n], tasks own whole slots, so the per-stream draw
  // order (and therefore the bytes) is fixed for any thread count.
  tensor::parallel_for(0, batch, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      float* slot = x.data() + n * per_sample;
      for (std::int64_t i = 0; i < per_sample; ++i) {
        slot[i] = streams[static_cast<std::size_t>(n)]->bernoulli(0.5) ? 1.0F
                                                                       : 0.0F;
      }
    }
  });

  // Slot n's next step: starts at K, jumps by strides[n], 0 == finished.
  std::vector<std::int64_t> current_k(static_cast<std::size_t>(batch),
                                      schedule.steps());
  std::vector<std::int64_t> active;
  active.reserve(static_cast<std::size_t>(batch));
  common::Rng forward_rng(0);  // Inference forward draws no randomness.
  while (true) {
    std::int64_t k = 0;
    for (const auto ck : current_k) {
      k = std::max(k, ck);
    }
    if (k < 1) {
      break;
    }
    active.clear();
    for (std::int64_t n = 0; n < batch; ++n) {
      if (current_k[static_cast<std::size_t>(n)] == k) {
        active.push_back(n);
      }
    }
    const auto m = static_cast<std::int64_t>(active.size());

    // One fused forward over exactly the active slots. Every network op
    // treats batch entries independently, so gathering a sub-batch leaves
    // each slot's logits bit-identical to any other batch composition —
    // this is the narrowing that converts skipped steps into throughput.
    // The plan lease is keyed by the NARROWED shape, so each sub-batch
    // width the strides produce gets its own recycled plan.
    tensor::ArenaScope arena_scope(model.plan_cache(),
                                   tensor::Shape{m, c, height, width});
    Tensor p0_active;
    if (m == batch) {
      const std::vector<std::int64_t> ks(static_cast<std::size_t>(batch), k);
      Var logits = model.forward(x, ks, /*training=*/false, forward_rng);
      p0_active = unet::logits_to_prob1(logits, c).value();
    } else {
      Tensor xa({m, c, height, width});
      for (std::int64_t j = 0; j < m; ++j) {
        const float* src =
            x.data() + active[static_cast<std::size_t>(j)] * per_sample;
        std::copy(src, src + per_sample, xa.data() + j * per_sample);
      }
      const std::vector<std::int64_t> ks(static_cast<std::size_t>(m), k);
      Var logits = model.forward(xa, ks, /*training=*/false, forward_rng);
      p0_active = unet::logits_to_prob1(logits, c).value();
    }

    // Per-slot jump transitions, parallel across ACTIVE slots only; each
    // task owns whole slots so stream draw order stays fixed.
    tensor::parallel_for(0, m, [&](std::int64_t j0, std::int64_t j1) {
      for (std::int64_t j = j0; j < j1; ++j) {
        const auto n = active[static_cast<std::size_t>(j)];
        const auto stride = strides[static_cast<std::size_t>(n)];
        const std::int64_t k_prev = std::max<std::int64_t>(0, k - stride);
        common::Rng& rng = *streams[static_cast<std::size_t>(n)];
        float* slot = x.data() + n * per_sample;
        const float* p0_slot = p0_active.data() + j * per_sample;
        if (k_prev == 0) {
          for (std::int64_t i = 0; i < per_sample; ++i) {
            const double p = p0_slot[i];
            const bool one =
                config.final_argmax ? p >= 0.5 : rng.bernoulli(p);
            slot[i] = one ? 1.0F : 0.0F;
          }
        } else {
          // Jump posterior coefficients for this slot's (k_prev, k). At
          // stride 1 these equal the ancestral posterior_prob1(k, ...)
          // exactly (it delegates to posterior_prob1_between(k-1, k, ...)),
          // which is what makes stride-1 reproduce sample_streams.
          const double a0 = schedule.posterior_prob1_between(k_prev, k, 0, 1);
          const double a1 = schedule.posterior_prob1_between(k_prev, k, 1, 1);
          const double b0 = schedule.posterior_prob1_between(k_prev, k, 0, 0);
          const double b1 = schedule.posterior_prob1_between(k_prev, k, 1, 0);
          for (std::int64_t i = 0; i < per_sample; ++i) {
            const int xkv = slot[i] != 0.0F ? 1 : 0;
            const double a = xkv == 1 ? a1 : a0;
            const double b = xkv == 1 ? b1 : b0;
            const double p1 = a * p0_slot[i] + b * (1.0 - p0_slot[i]);
            slot[i] = rng.bernoulli(p1) ? 1.0F : 0.0F;
          }
        }
        current_k[static_cast<std::size_t>(n)] = k_prev;
      }
    });
    if (round_hook) {
      round_hook(k, m);
    }
  }
  require_binary(x, "sample_streams_strided output");
  return x;
}

tensor::Tensor sample_strided(unet::UNet& model,
                              const BinarySchedule& schedule,
                              std::int64_t batch, std::int64_t height,
                              std::int64_t width, std::int64_t stride,
                              const SamplerConfig& config, common::Rng& rng,
                              const SampleObserver& observer) {
  DP_REQUIRE(stride >= 1, "sample_strided: stride must be >= 1");
  DP_REQUIRE(batch >= 1 && height >= 1 && width >= 1,
             "sample_strided: bad output shape");
  nn::NoGradGuard no_grad;
  const auto c = model.config().in_channels;
  Tensor x({batch, c, height, width});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.bernoulli(0.5) ? 1.0F : 0.0F;
  }
  if (observer) {
    observer(schedule.steps(), x);
  }

  std::int64_t k = schedule.steps();
  while (k >= 1) {
    // Round-scoped activation plan lease (see tensor/arena.h).
    tensor::ArenaScope arena_scope(model.plan_cache(), x.shape());
    const std::int64_t k_prev = std::max<std::int64_t>(0, k - stride);
    const std::vector<std::int64_t> ks(static_cast<std::size_t>(batch), k);
    Var logits = model.forward(x, ks, /*training=*/false, rng);
    const Tensor p0 = unet::logits_to_prob1(logits, c).value();
    if (k_prev == 0) {
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const double p = p0[i];
        const bool one = config.final_argmax ? p >= 0.5 : rng.bernoulli(p);
        x[i] = one ? 1.0F : 0.0F;
      }
    } else {
      // Jump posterior coefficients for (x_k, x0_tilde) combinations.
      const double a0 = schedule.posterior_prob1_between(k_prev, k, 0, 1);
      const double a1 = schedule.posterior_prob1_between(k_prev, k, 1, 1);
      const double b0 = schedule.posterior_prob1_between(k_prev, k, 0, 0);
      const double b1 = schedule.posterior_prob1_between(k_prev, k, 1, 0);
      for (std::int64_t i = 0; i < x.numel(); ++i) {
        const int xkv = x[i] != 0.0F ? 1 : 0;
        const double a = xkv == 1 ? a1 : a0;
        const double b = xkv == 1 ? b1 : b0;
        const double p1 = a * p0[i] + b * (1.0 - p0[i]);
        x[i] = rng.bernoulli(p1) ? 1.0F : 0.0F;
      }
    }
    if (observer) {
      observer(k_prev, x);
    }
    k = k_prev;
  }
  require_binary(x, "sample_strided output");
  return x;
}

Ema::Ema(nn::ParamRegistry& registry, double decay)
    : registry_(registry), decay_(decay) {
  DP_REQUIRE(decay > 0.0 && decay < 1.0, "Ema: decay outside (0, 1)");
  shadow_.reserve(registry_.size());
  for (const auto& p : registry_.params()) {
    shadow_.push_back(p.value());
  }
}

void Ema::update() {
  DP_REQUIRE(!active_, "Ema::update: EMA weights are swapped in");
  for (std::size_t i = 0; i < shadow_.size(); ++i) {
    const Tensor& current = registry_.params()[i].value();
    Tensor& avg = shadow_[i];
    for (std::int64_t j = 0; j < avg.numel(); ++j) {
      avg[j] = static_cast<float>(decay_ * avg[j] +
                                  (1.0 - decay_) * current[j]);
    }
  }
}

void Ema::swap_in() {
  DP_REQUIRE(!active_, "Ema::swap_in: already active");
  backup_.clear();
  backup_.reserve(registry_.size());
  for (std::size_t i = 0; i < shadow_.size(); ++i) {
    Var param = registry_.params()[i];
    backup_.push_back(param.value());
    param.mutable_value() = shadow_[i];
  }
  active_ = true;
}

void Ema::swap_out() {
  DP_REQUIRE(active_, "Ema::swap_out: not active");
  for (std::size_t i = 0; i < backup_.size(); ++i) {
    Var param = registry_.params()[i];
    param.mutable_value() = backup_[i];
  }
  backup_.clear();
  active_ = false;
}

}  // namespace diffpattern::diffusion
