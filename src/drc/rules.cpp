#include "drc/rules.h"

namespace diffpattern::drc {

DesignRules standard_rules() {
  DesignRules rules;
  rules.space_min = 64;
  rules.width_min = 64;
  rules.area_min = 8192;
  rules.area_max = 1048576;  // A quarter of the 2048x2048 nm tile.
  return rules;
}

DesignRules larger_space_rules() {
  DesignRules rules = standard_rules();
  rules.space_min = 128;
  return rules;
}

DesignRules smaller_area_rules() {
  DesignRules rules = standard_rules();
  rules.area_max = 262144;  // 1/16 of the tile.
  return rules;
}

}  // namespace diffpattern::drc
