#include "drc/checker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/contracts.h"
#include "geometry/components.h"

namespace diffpattern::drc {

using geometry::Coord;
using layout::SquishPattern;

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::width: return "width";
    case ViolationKind::space: return "space";
    case ViolationKind::corner_contact: return "corner_contact";
    case ViolationKind::corner_space: return "corner_space";
    case ViolationKind::area_min: return "area_min";
    case ViolationKind::area_max: return "area_max";
  }
  return "unknown";
}

std::string Violation::description() const {
  std::ostringstream out;
  out << to_string(kind);
  if (axis != '-') {
    out << " along " << axis;
  }
  if (index >= 0) {
    out << " at " << (kind == ViolationKind::area_min ||
                              kind == ViolationKind::area_max
                          ? "polygon "
                          : "line ")
        << index;
  }
  out << ": measured " << measured << ", required " << required;
  return out.str();
}

std::int64_t DrcReport::count(ViolationKind kind) const {
  std::int64_t n = 0;
  for (const auto& v : violations) {
    if (v.kind == kind) {
      ++n;
    }
  }
  return n;
}

namespace {

/// Sum of deltas over the inclusive grid-index range [a, b].
Coord span(const std::vector<Coord>& deltas, std::int64_t a, std::int64_t b) {
  Coord s = 0;
  for (std::int64_t i = a; i <= b; ++i) {
    s += deltas[static_cast<std::size_t>(i)];
  }
  return s;
}

/// Checks 1-runs (width) and interior 0-runs (space) along one line of the
/// topology. `line(i)` returns the cell at position i; `deltas` are the
/// interval lengths along the traversal axis.
template <typename LineFn>
void check_runs(LineFn line, std::int64_t length,
                const std::vector<Coord>& deltas, const DesignRules& rules,
                char axis, std::int64_t line_index,
                std::vector<Violation>& out) {
  std::int64_t i = 0;
  bool seen_shape = false;
  while (i < length) {
    const std::uint8_t v = line(i);
    std::int64_t j = i;
    while (j < length && line(j) == v) {
      ++j;
    }
    const Coord run_span = span(deltas, i, j - 1);
    if (v == 1) {
      if (run_span < rules.width_min) {
        out.push_back(Violation{ViolationKind::width, axis, line_index,
                                run_span, rules.width_min});
      }
      seen_shape = true;
    } else {
      const bool flanked_right = j < length;  // A shape follows.
      if (seen_shape && flanked_right && run_span < rules.space_min) {
        out.push_back(Violation{ViolationKind::space, axis, line_index,
                                run_span, rules.space_min});
      }
    }
    i = j;
  }
}

struct NmBox {
  Coord x0, y0, x1, y1;
};

double box_gap_x(const NmBox& a, const NmBox& b) {
  return std::max<Coord>({0, b.x0 - a.x1, a.x0 - b.x1});
}

double box_gap_y(const NmBox& a, const NmBox& b) {
  return std::max<Coord>({0, b.y0 - a.y1, a.y0 - b.y1});
}

}  // namespace

DrcReport check_pattern(const SquishPattern& pattern,
                        const DesignRules& rules) {
  pattern.validate();
  DrcReport report;
  const auto& topo = pattern.topology;
  const auto rows = topo.rows();
  const auto cols = topo.cols();

  // Width / space runs along x (per row) and y (per column).
  for (std::int64_t r = 0; r < rows; ++r) {
    check_runs([&](std::int64_t c) { return topo.get_unchecked(r, c); }, cols,
               pattern.dx, rules, 'x', r, report.violations);
  }
  for (std::int64_t c = 0; c < cols; ++c) {
    check_runs([&](std::int64_t r) { return topo.get_unchecked(r, c); }, rows,
               pattern.dy, rules, 'y', c, report.violations);
  }

  // Diagonal corner contact (zero clearance).
  for (std::int64_t r = 0; r + 1 < rows; ++r) {
    for (std::int64_t c = 0; c + 1 < cols; ++c) {
      const auto a = topo.get_unchecked(r, c);
      const auto b = topo.get_unchecked(r, c + 1);
      const auto d = topo.get_unchecked(r + 1, c);
      const auto e = topo.get_unchecked(r + 1, c + 1);
      if ((a == 1 && e == 1 && b == 0 && d == 0) ||
          (b == 1 && d == 1 && a == 0 && e == 0)) {
        report.violations.push_back(Violation{ViolationKind::corner_contact,
                                              '-', r, 0, rules.space_min});
      }
    }
  }

  // Areas per connected component.
  const auto analysis = geometry::analyze_components(topo);
  for (const auto& comp : analysis.components) {
    std::int64_t area = 0;
    for (const auto& cell : comp.cells) {
      area += pattern.dx[static_cast<std::size_t>(cell.col)] *
              pattern.dy[static_cast<std::size_t>(cell.row)];
    }
    if (area < rules.area_min) {
      report.violations.push_back(
          Violation{ViolationKind::area_min, '-', comp.id, area,
                    rules.area_min});
    }
    if (rules.has_area_max() && area > rules.area_max) {
      report.violations.push_back(
          Violation{ViolationKind::area_max, '-', comp.id, area,
                    rules.area_max});
    }
  }

  // Optional Euclidean corner spacing between distinct polygons.
  if (rules.euclidean_corner_space && analysis.components.size() > 1) {
    // Prefix sums for nm coordinates.
    std::vector<Coord> xs(pattern.dx.size() + 1, 0);
    for (std::size_t i = 0; i < pattern.dx.size(); ++i) {
      xs[i + 1] = xs[i] + pattern.dx[i];
    }
    std::vector<Coord> ys(pattern.dy.size() + 1, 0);
    for (std::size_t i = 0; i < pattern.dy.size(); ++i) {
      ys[i + 1] = ys[i] + pattern.dy[i];
    }
    const auto cell_box = [&](const geometry::GridCell& cell) {
      return NmBox{xs[static_cast<std::size_t>(cell.col)],
                   ys[static_cast<std::size_t>(cell.row)],
                   xs[static_cast<std::size_t>(cell.col + 1)],
                   ys[static_cast<std::size_t>(cell.row + 1)]};
    };
    const auto comp_box = [&](const geometry::Component& comp) {
      return NmBox{xs[static_cast<std::size_t>(comp.min_col)],
                   ys[static_cast<std::size_t>(comp.min_row)],
                   xs[static_cast<std::size_t>(comp.max_col + 1)],
                   ys[static_cast<std::size_t>(comp.max_row + 1)]};
    };
    for (std::size_t i = 0; i < analysis.components.size(); ++i) {
      for (std::size_t j = i + 1; j < analysis.components.size(); ++j) {
        const auto& ca = analysis.components[i];
        const auto& cb = analysis.components[j];
        const NmBox ba = comp_box(ca);
        const NmBox bb = comp_box(cb);
        const double bgx = box_gap_x(ba, bb);
        const double bgy = box_gap_y(ba, bb);
        if (std::hypot(bgx, bgy) >= static_cast<double>(rules.space_min)) {
          continue;  // Bounding boxes already far enough apart.
        }
        double best = std::numeric_limits<double>::infinity();
        for (const auto& cell_a : ca.cells) {
          const NmBox ra = cell_box(cell_a);
          for (const auto& cell_b : cb.cells) {
            const NmBox rb = cell_box(cell_b);
            const double gx = box_gap_x(ra, rb);
            const double gy = box_gap_y(ra, rb);
            if (gx > 0.0 && gy > 0.0) {
              best = std::min(best, std::hypot(gx, gy));
            }
          }
        }
        if (best < static_cast<double>(rules.space_min)) {
          report.violations.push_back(Violation{
              ViolationKind::corner_space, '-', ca.id,
              static_cast<std::int64_t>(std::floor(best)), rules.space_min});
        }
      }
    }
  }

  return report;
}

DrcReport check_layout(const layout::Layout& layout, const DesignRules& rules) {
  return check_pattern(layout::extract_squish(layout), rules);
}

}  // namespace diffpattern::drc
