// Design rules (paper Fig. 3): Space, Width, and Area.
//
// * Width: every maximal run of shape cells, along both axes, must span at
//   least width_min nm.
// * Space: every maximal run of empty cells flanked by shapes on both sides
//   (same row or column) must span at least space_min nm; shapes may never
//   touch diagonally (zero-clearance corner contact).
// * Area: every polygon's area must lie in [area_min, area_max].
//
// These are exactly the predicates the paper's legalization system (Eq. 14)
// constrains, which is what makes the white-box legality guarantee checkable.
// The optional euclidean_corner_space extension additionally applies the
// space rule to diagonal corner-to-corner distances between distinct
// polygons (closer to a production DRC deck); see DESIGN.md.
#pragma once

#include <cstdint>

#include "geometry/types.h"

namespace diffpattern::drc {

struct DesignRules {
  geometry::Coord space_min = 0;
  geometry::Coord width_min = 0;
  std::int64_t area_min = 0;
  /// <= 0 means unbounded above.
  std::int64_t area_max = 0;
  /// Extension: also require sqrt(gap_x^2 + gap_y^2) >= space_min between
  /// diagonally separated polygons.
  bool euclidean_corner_space = false;

  bool has_area_max() const { return area_max > 0; }
};

/// The rule set used throughout the benchmarks ("normal rules" of Fig. 8a),
/// scaled to the synthetic 2048 nm tiles.
DesignRules standard_rules();

/// Fig. 8b: the same rules with a larger minimum spacing.
DesignRules larger_space_rules();

/// Fig. 8c: the same rules with a smaller maximum area.
DesignRules smaller_area_rules();

}  // namespace diffpattern::drc
