// Design-rule checker over layouts and squish patterns.
//
// This is the repository's stand-in for the KLayout-based legality check in
// the paper's evaluation (Sec. IV-B). It never trusts the generator: given a
// Layout it re-derives scan lines from the polygon geometry before applying
// the run/space/area predicates of rules.h.
#pragma once

#include <string>
#include <vector>

#include "drc/rules.h"
#include "layout/squish.h"

namespace diffpattern::drc {

enum class ViolationKind {
  width,          // 1-run shorter than width_min
  space,          // 0-run between shapes shorter than space_min
  corner_contact, // diagonal cell contact (zero clearance)
  corner_space,   // Euclidean corner gap below space_min (extension rule)
  area_min,
  area_max,
};

const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::width;
  /// 'x' for a horizontal measurement, 'y' for vertical, '-' otherwise.
  char axis = '-';
  /// Row (axis 'x') or column (axis 'y') of the offending run; component id
  /// for area violations; -1 when not applicable.
  std::int64_t index = -1;
  /// Measured value (nm for width/space, nm^2 for area).
  std::int64_t measured = 0;
  /// Rule bound that was violated.
  std::int64_t required = 0;

  std::string description() const;
};

struct DrcReport {
  std::vector<Violation> violations;

  bool clean() const { return violations.empty(); }
  std::int64_t count(ViolationKind kind) const;
};

/// Checks a squish pattern directly (topology runs weighted by deltas).
DrcReport check_pattern(const layout::SquishPattern& pattern,
                        const DesignRules& rules);

/// Checks a layout by re-extracting its squish pattern first.
DrcReport check_layout(const layout::Layout& layout, const DesignRules& rules);

}  // namespace diffpattern::drc
