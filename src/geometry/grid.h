// Binary occupancy grid: the raw form of a squish-pattern topology matrix.
//
// Entry semantics follow the paper's squish representation: 1 = shape
// (polygon interior), 0 = space. Row index is the y axis (row 0 at the
// bottom of the layout), column index is the x axis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace diffpattern::geometry {

class BinaryGrid {
 public:
  BinaryGrid() = default;
  BinaryGrid(std::int64_t rows, std::int64_t cols, std::uint8_t fill = 0);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t cell_count() const { return rows_ * cols_; }
  bool empty() const { return cells_.empty(); }

  std::uint8_t at(std::int64_t row, std::int64_t col) const;
  void set(std::int64_t row, std::int64_t col, std::uint8_t value);

  /// Unchecked access for hot loops.
  std::uint8_t get_unchecked(std::int64_t row, std::int64_t col) const {
    return cells_[static_cast<std::size_t>(row * cols_ + col)];
  }

  const std::vector<std::uint8_t>& cells() const { return cells_; }

  /// Number of 1-cells.
  std::int64_t popcount() const;

  /// Multi-line ASCII rendering ('#' = shape, '.' = space), top row first.
  std::string to_ascii() const;

  friend bool operator==(const BinaryGrid&, const BinaryGrid&) = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::uint8_t> cells_;
};

/// Detects the "bow-tie" defect: two diagonal 1-cells meeting two diagonal
/// 0-cells in a 2x2 window, i.e. polygons touching at a single point. Such
/// topologies are rejected by the pre-filter (paper Sec. III-C).
bool has_bowtie(const BinaryGrid& grid);

/// Horizontal mirror (flips columns) and transpose, used by the data
/// augmentation in the dataset builder.
BinaryGrid mirrored_horizontal(const BinaryGrid& grid);
BinaryGrid transposed(const BinaryGrid& grid);

}  // namespace diffpattern::geometry
