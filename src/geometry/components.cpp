#include "geometry/components.h"

#include <algorithm>

#include "common/contracts.h"

namespace diffpattern::geometry {

ComponentAnalysis analyze_components(const BinaryGrid& grid) {
  ComponentAnalysis out;
  out.rows = grid.rows();
  out.cols = grid.cols();
  out.labels.assign(static_cast<std::size_t>(grid.cell_count()), -1);

  std::vector<GridCell> frontier;
  for (std::int64_t r = 0; r < grid.rows(); ++r) {
    for (std::int64_t c = 0; c < grid.cols(); ++c) {
      if (grid.get_unchecked(r, c) == 0 ||
          out.labels[static_cast<std::size_t>(r * grid.cols() + c)] >= 0) {
        continue;
      }
      const auto id = static_cast<std::int64_t>(out.components.size());
      Component comp;
      comp.id = id;
      comp.min_row = comp.max_row = r;
      comp.min_col = comp.max_col = c;
      frontier.clear();
      frontier.push_back({r, c});
      out.labels[static_cast<std::size_t>(r * grid.cols() + c)] = id;
      while (!frontier.empty()) {
        const GridCell cell = frontier.back();
        frontier.pop_back();
        comp.cells.push_back(cell);
        comp.min_row = std::min(comp.min_row, cell.row);
        comp.max_row = std::max(comp.max_row, cell.row);
        comp.min_col = std::min(comp.min_col, cell.col);
        comp.max_col = std::max(comp.max_col, cell.col);
        const GridCell neighbors[4] = {{cell.row - 1, cell.col},
                                       {cell.row + 1, cell.col},
                                       {cell.row, cell.col - 1},
                                       {cell.row, cell.col + 1}};
        for (const auto& n : neighbors) {
          if (n.row < 0 || n.row >= grid.rows() || n.col < 0 ||
              n.col >= grid.cols()) {
            continue;
          }
          auto& label =
              out.labels[static_cast<std::size_t>(n.row * grid.cols() + n.col)];
          if (grid.get_unchecked(n.row, n.col) == 1 && label < 0) {
            label = id;
            frontier.push_back(n);
          }
        }
      }
      out.components.push_back(std::move(comp));
    }
  }
  return out;
}

namespace {

enum class Heading : std::uint8_t { East, North, West, South };

Heading turn_left(Heading h) {
  switch (h) {
    case Heading::East: return Heading::North;
    case Heading::North: return Heading::West;
    case Heading::West: return Heading::South;
    case Heading::South: return Heading::East;
  }
  return Heading::East;
}

Heading turn_right(Heading h) {
  switch (h) {
    case Heading::East: return Heading::South;
    case Heading::South: return Heading::West;
    case Heading::West: return Heading::North;
    case Heading::North: return Heading::East;
  }
  return Heading::East;
}

Point step(Point p, Heading h) {
  switch (h) {
    case Heading::East: return {p.x + 1, p.y};
    case Heading::North: return {p.x, p.y + 1};
    case Heading::West: return {p.x - 1, p.y};
    case Heading::South: return {p.x, p.y - 1};
  }
  return p;
}

}  // namespace

std::vector<Point> trace_outer_boundary(const ComponentAnalysis& analysis,
                                        std::int64_t component_id) {
  DP_REQUIRE(component_id >= 0 &&
                 component_id <
                     static_cast<std::int64_t>(analysis.components.size()),
             "trace_outer_boundary: bad component id");
  const Component& comp =
      analysis.components[static_cast<std::size_t>(component_id)];
  DP_CHECK(!comp.cells.empty(), "trace_outer_boundary: empty component");

  const auto inside = [&](std::int64_t row, std::int64_t col) {
    if (row < 0 || row >= analysis.rows || col < 0 || col >= analysis.cols) {
      return false;
    }
    return analysis.label_at(row, col) == component_id;
  };

  // Start at the bottom-left corner of the bottom-most, left-most cell,
  // heading east: the interior is on the left (counter-clockwise loop).
  GridCell start_cell = comp.cells.front();
  for (const auto& cell : comp.cells) {
    if (cell.row < start_cell.row ||
        (cell.row == start_cell.row && cell.col < start_cell.col)) {
      start_cell = cell;
    }
  }
  const Point start{start_cell.col, start_cell.row};
  Point pos = start;
  Heading heading = Heading::East;

  // Cells ahead-left / ahead-right of a corner for each heading.
  const auto ahead_cells = [&](Point p, Heading h) {
    struct Pair {
      bool left;
      bool right;
    };
    switch (h) {
      case Heading::East:
        return Pair{inside(p.y, p.x), inside(p.y - 1, p.x)};
      case Heading::North:
        return Pair{inside(p.y, p.x - 1), inside(p.y, p.x)};
      case Heading::West:
        return Pair{inside(p.y - 1, p.x - 1), inside(p.y, p.x - 1)};
      case Heading::South:
        return Pair{inside(p.y - 1, p.x), inside(p.y - 1, p.x - 1)};
    }
    return Pair{false, false};
  };

  std::vector<Point> loop;
  const std::int64_t max_steps = 8 * (analysis.rows + 2) * (analysis.cols + 2);
  std::int64_t steps = 0;
  const Heading start_heading = heading;
  do {
    DP_CHECK(++steps < max_steps, "trace_outer_boundary: tracing diverged");
    const auto ahead = ahead_cells(pos, heading);
    Heading next = heading;
    if (!ahead.left) {
      next = turn_left(heading);
    } else if (ahead.right) {
      next = turn_right(heading);
    }
    if (next != heading) {
      // Direction change: `pos` is a polygon vertex.
      loop.push_back(pos);
      heading = next;
      continue;  // Re-evaluate with the new heading before stepping.
    }
    pos = step(pos, heading);
  } while (!(pos == start && heading == start_heading));

  DP_CHECK(loop.size() >= 4, "trace_outer_boundary: degenerate loop");
  // Rotate so the loop starts at the start corner for deterministic output.
  const auto it = std::find(loop.begin(), loop.end(), start);
  if (it != loop.end()) {
    std::rotate(loop.begin(), it, loop.end());
  }
  return loop;
}

}  // namespace diffpattern::geometry
